"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestHull:
    def test_json_output(self, capsys):
        main(["hull", "--n", "200", "--d", "2", "--seed", "3"])
        out = json.loads(capsys.readouterr().out)
        assert out["n"] == 200
        assert out["hull_facets"] == out["hull_vertices"]
        assert out["dependence_depth"] >= 1

    def test_sphere_workload(self, capsys):
        main(["hull", "--n", "100", "--d", "3", "--workload", "sphere"])
        out = json.loads(capsys.readouterr().out)
        assert out["hull_vertices"] == 100

    def test_thread_executor(self, capsys):
        main(["hull", "--n", "150", "--executor", "threads", "--workers", "2"])
        out = json.loads(capsys.readouterr().out)
        assert out["executor"] == "threads"

    def test_process_executor(self, capsys):
        main(["hull", "--n", "100", "--executor", "process", "--workers", "2"])
        out = json.loads(capsys.readouterr().out)
        assert out["executor"] == "process"
        assert out["hull_facets"] > 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["hull", "--workload", "torus"])


class TestDepth:
    def test_table_printed(self, capsys):
        main(["depth", "--sizes", "64", "128", "--seeds", "2"])
        out = capsys.readouterr().out
        assert "mean depth" in out
        assert "64" in out and "128" in out
        assert "slope" in out


class TestWork:
    def test_equivalence_reported(self, capsys):
        main(["work", "--n", "150", "--seed", "1"])
        out = json.loads(capsys.readouterr().out)
        assert out["same_created"] in (True, "True")
        assert out["ratio"] <= 1.0


class TestSpeedup:
    def test_table(self, capsys):
        main(["speedup", "--n", "200", "--procs", "1", "4"])
        out = capsys.readouterr().out
        assert "speedup" in out and "model" in out


class TestFigure1:
    def test_walkthrough(self, capsys):
        main(["figure1"])
        out = capsys.readouterr().out
        assert "round 1:" in out and "round 3:" in out
        assert "create v-c" in out
        assert "final hull:" in out


class TestCRCW:
    def test_both_modes(self, capsys):
        main(["crcw", "--n", "150"])
        out = capsys.readouterr().out
        assert "approximate" in out and "exact" in out


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestDelaunayCommand:
    def test_three_way_agreement(self, capsys):
        main(["delaunay", "--n", "80", "--seed", "2"])
        out = capsys.readouterr().out
        assert "all agree: True" in out
        assert "identical tests BW==parallel: True" in out


class TestChaosCommand:
    def test_small_suite_json(self, capsys):
        main(["chaos", "--seed", "0", "--budget", "small"])
        out = json.loads(capsys.readouterr().out)
        assert out["ok"] is True
        assert out["budget"] == "small"
        assert {s["impl"] for s in out["stall_sweeps"]} == {"cas", "tas"}
        assert all(r["same_facets"] for r in out["roundtrips"])
        # The small budget exercises all three executor disciplines.
        assert {r["executor"] for r in out["roundtrips"]} == {
            "rounds", "threads", "procs"}

    def test_executor_filter_process(self, capsys):
        # --executor restricts the roundtrips to one family and skips
        # the executor-independent stall sweeps (the CI soak knob).
        main(["chaos", "--seed", "0", "--budget", "small",
              "--executor", "process"])
        out = json.loads(capsys.readouterr().out)
        assert out["ok"] is True
        assert out["stall_sweeps"] == []
        assert {r["executor"] for r in out["roundtrips"]} == {"procs"}
        assert all(r["trace_identical"] for r in out["roundtrips"])

    def test_executor_filter_thread(self, capsys):
        main(["chaos", "--seed", "1", "--budget", "small",
              "--executor", "thread"])
        out = json.loads(capsys.readouterr().out)
        assert out["ok"] is True
        assert {r["executor"] for r in out["roundtrips"]} == {"threads"}

    def test_unknown_budget_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--budget", "galactic"])

    def test_unknown_executor_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--executor", "quantum"])


class TestCertifyCommand:
    def test_workload_certified(self, capsys):
        main(["certify", "--n", "60", "--d", "3", "--seed", "2"])
        out = json.loads(capsys.readouterr().out)
        assert out["verified"] is True
        assert out["mode"] == "float"
        assert out["escalations"] == ["float:ok"]
        assert out["facets"] > 0

    def test_degenerate_family(self, capsys):
        main(["certify", "--family", "coplanar-3d"])
        out = json.loads(capsys.readouterr().out)
        assert out["source"] == "coplanar-3d"
        assert out["mode"] == "sos"
        assert out["sos"] is True
        assert out["verified"] is True

    def test_corruption_rejected(self, capsys):
        # Exit 0 with rejected=True is the self-test passing: the
        # verifier caught the deliberately corrupted certificate.
        for mode in ("drop-facet", "flip-orientation", "duplicate-ridge"):
            main(["certify", "--family", "grid-2d", "--corrupt", mode])
            out = json.loads(capsys.readouterr().out)
            assert out["rejected"] is True, mode
            assert out["rejection_error"]

    def test_certificate_file_written(self, capsys, tmp_path):
        dest = tmp_path / "cert.json"
        main(["certify", "--n", "40", "--d", "2", "--json-out", str(dest)])
        out = json.loads(capsys.readouterr().out)
        assert out["certificate_file"] == str(dest)
        blob = json.loads(dest.read_text())
        assert blob["schema"].startswith("repro-hull-certificate/")
        assert len(blob["facets"]) == out["facets"]

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            main(["certify", "--family", "moebius"])

    def test_unknown_corruption_rejected(self):
        with pytest.raises(SystemExit):
            main(["certify", "--corrupt", "gamma-rays"])


class TestHullNoise:
    def test_noisy_hull_reports_escalation_path(self, capsys):
        main(["hull", "--n", "120", "--d", "3", "--seed", "4",
              "--noise", "0.05", "--votes", "3"])
        out = json.loads(capsys.readouterr().out)
        assert out["escalations"][-1].endswith(":ok")
        assert out["mode"] == out["escalations"][-1].split(":")[0].split("#")[0]
        assert out["hull_facets"] > 0

    def test_adaptive_votes_accepted(self, capsys):
        main(["hull", "--n", "80", "--seed", "1",
              "--noise", "0.01", "--votes", "adaptive"])
        out = json.loads(capsys.readouterr().out)
        assert out["mode"].startswith(("noisy[", "float"))
        # Noise provenance rides in the kernel stats block.
        if out["mode"].startswith("noisy["):
            assert out["kernel"]["noise_p"] == 0.01

    def test_no_noise_keeps_plain_output(self, capsys):
        main(["hull", "--n", "80", "--seed", "1"])
        out = json.loads(capsys.readouterr().out)
        assert "mode" not in out and "escalations" not in out

    def test_invalid_votes_rejected(self):
        with pytest.raises(SystemExit):
            main(["hull", "--noise", "0.01", "--votes", "several"])

    def test_invalid_p_rejected(self):
        with pytest.raises(SystemExit):
            main(["hull", "--noise", "0.7", "--votes", "1"])


class TestNoisyCommand:
    def test_smoke_report_written(self, capsys, tmp_path):
        dest = tmp_path / "noisy.json"
        main(["noisy", "--smoke", "--seed", "0", "--out", str(dest)])
        blob = json.loads(dest.read_text())
        assert blob["schema"] == "repro.bench.noisy/1"
        assert blob["smoke"] is True
        assert blob["summary"]["all_ladder_runs_match_exact"] is True
        assert blob["summary"]["validator_false_accepts"] == 0
        assert blob["grid"] and blob["ladder"]
