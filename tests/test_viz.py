"""Tests for the SVG rendering module (structure-level: the output is a
well-formed SVG string with the expected element counts)."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.apps import delaunay, incremental_disk_intersection
from repro.configspace.spaces import clustered_unit_circles
from repro.geometry import figure1_points, uniform_ball
from repro.hull import parallel_hull
from repro.viz import SVGCanvas, render_delaunay, render_disk_boundary, render_hull_rounds


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


NS = "{http://www.w3.org/2000/svg}"


class TestCanvas:
    def test_empty_canvas_is_valid_svg(self):
        root = parse(SVGCanvas().render())
        assert root.tag == f"{NS}svg"

    def test_elements_accumulate(self):
        c = SVGCanvas()
        c.fit(np.array([[0.0, 0], [1, 1]]))
        c.circle([0.5, 0.5], 3)
        c.line([0, 0], [1, 1])
        c.polygon([[0, 0], [1, 0], [0, 1]])
        c.text([0.5, 0.5], "hi")
        root = parse(c.render())
        tags = [child.tag for child in root]
        assert f"{NS}circle" in tags and f"{NS}line" in tags
        assert f"{NS}polygon" in tags and f"{NS}text" in tags

    def test_transform_orientation(self):
        # Higher data y must map to a smaller pixel y (SVG is flipped).
        c = SVGCanvas()
        c.fit(np.array([[0.0, 0], [1, 1]]))
        assert c._ty(1.0) < c._ty(0.0)

    def test_degenerate_extent_guarded(self):
        c = SVGCanvas()
        c.fit(np.array([[2.0, 3.0], [2.0, 3.0]]))
        c.circle([2, 3], 2)
        parse(c.render())


class TestHullRounds:
    def test_figure1_rendering(self):
        pts, _ = figure1_points()
        run = parallel_hull(pts, order=np.arange(10), base_size=7)
        svg = render_hull_rounds(run)
        root = parse(svg)
        lines = [e for e in root if e.tag == f"{NS}line"]
        assert len(lines) == len(run.created)
        solid = [l for l in lines if l.get("stroke-dasharray") is None]
        assert len(solid) == len(run.facets)

    def test_3d_rejected(self):
        run = parallel_hull(uniform_ball(20, 3, seed=1), seed=2)
        with pytest.raises(ValueError):
            render_hull_rounds(run)

    def test_round_legend_present(self):
        run = parallel_hull(uniform_ball(60, 2, seed=3), seed=4)
        svg = render_hull_rounds(run)
        assert "round 0" in svg


class TestDelaunay:
    def test_triangle_count(self):
        pts = uniform_ball(30, 2, seed=5)
        res = delaunay(pts, seed=6)
        root = parse(render_delaunay(res))
        polys = [e for e in root if e.tag == f"{NS}polygon"]
        assert len(polys) == res.n_triangles


class TestDiskBoundary:
    def test_arc_count(self):
        centers = clustered_unit_circles(12, seed=7)
        res = incremental_disk_intersection(centers, seed=8)
        root = parse(render_disk_boundary(res, show_circles=False))
        paths = [e for e in root if e.tag == f"{NS}path"]
        assert len(paths) == len(res.boundary())


class TestDepthChart:
    def test_chart_structure(self):
        from repro.viz import render_depth_chart

        series = {
            "hull": [(64, 12), (256, 18), (1024, 25)],
            "delaunay": [(64, 14), (256, 20), (1024, 28)],
        }
        root = parse(render_depth_chart(series))
        texts = [e.text for e in root if e.tag == f"{NS}text"]
        assert "hull" in texts and "delaunay" in texts
        circles = [e for e in root if e.tag == f"{NS}circle"]
        assert len(circles) == 6

    def test_empty_series_rejected(self):
        from repro.viz import render_depth_chart

        with pytest.raises(ValueError):
            render_depth_chart({})
