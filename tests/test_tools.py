"""Smoke tests for the repository tools (fuzzer, report generator)."""

import pathlib
import sys

import numpy as np
import pytest

TOOLS_DIR = str(pathlib.Path(__file__).resolve().parent.parent / "tools")


class TestFuzzer:
    def test_cases_agree(self):
        sys.path.insert(0, TOOLS_DIR)
        try:
            from fuzz import one_case
        finally:
            sys.path.pop(0)
        rng = np.random.default_rng(123)
        for _ in range(8):
            assert one_case(rng, verbose=False) is None

    def test_kernel_cases_agree(self):
        sys.path.insert(0, TOOLS_DIR)
        try:
            from fuzz import one_kernel_case
        finally:
            sys.path.pop(0)
        rng = np.random.default_rng(321)
        for _ in range(6):
            assert one_kernel_case(rng, verbose=False) is None

    def test_hotpath_cases_never_crash(self):
        sys.path.insert(0, TOOLS_DIR)
        try:
            from fuzz import one_hotpath_case
        finally:
            sys.path.pop(0)
        rng = np.random.default_rng(7)
        for _ in range(25):
            assert one_hotpath_case(rng, verbose=False) is None

    def test_hotpath_flag_wired(self):
        sys.path.insert(0, TOOLS_DIR)
        try:
            import fuzz
        finally:
            sys.path.pop(0)
        old_argv = sys.argv
        sys.argv = ["fuzz.py", "--hotpath", "--iterations", "5", "--seed", "11"]
        try:
            assert fuzz.main() == 0
        finally:
            sys.argv = old_argv

    def test_chaos_proc_cases_agree(self):
        sys.path.insert(0, TOOLS_DIR)
        try:
            from fuzz import one_chaos_proc_case
        finally:
            sys.path.pop(0)
        rng = np.random.default_rng(77)
        for _ in range(2):
            assert one_chaos_proc_case(rng, verbose=False) is None

    def test_chaos_proc_flag_wired(self):
        sys.path.insert(0, TOOLS_DIR)
        try:
            import fuzz
        finally:
            sys.path.pop(0)
        old_argv = sys.argv
        sys.argv = ["fuzz.py", "--chaos-proc", "--iterations", "1",
                    "--seed", "3"]
        try:
            assert fuzz.main() == 0
        finally:
            sys.argv = old_argv

    def test_kernels_flag_wired(self):
        sys.path.insert(0, TOOLS_DIR)
        try:
            import fuzz
        finally:
            sys.path.pop(0)
        old_argv = sys.argv
        sys.argv = ["fuzz.py", "--kernels", "--iterations", "2", "--seed", "5"]
        try:
            assert fuzz.main() == 0
        finally:
            sys.argv = old_argv

    def test_fpcheck_cases_never_crash(self):
        sys.path.insert(0, TOOLS_DIR)
        try:
            from fuzz import one_fpcheck_case
        finally:
            sys.path.pop(0)
        rng = np.random.default_rng(9)
        for _ in range(25):
            assert one_fpcheck_case(rng, verbose=False) is None

    def test_fpcheck_flag_wired(self):
        sys.path.insert(0, TOOLS_DIR)
        try:
            import fuzz
        finally:
            sys.path.pop(0)
        old_argv = sys.argv
        sys.argv = ["fuzz.py", "--fpcheck", "--iterations", "5", "--seed", "13"]
        try:
            assert fuzz.main() == 0
        finally:
            sys.argv = old_argv

    def test_noisy_cases_agree(self):
        sys.path.insert(0, TOOLS_DIR)
        try:
            from fuzz import one_noisy_case
        finally:
            sys.path.pop(0)
        rng = np.random.default_rng(55)
        for _ in range(3):
            assert one_noisy_case(rng, verbose=False) is None

    def test_noisy_flag_wired(self):
        sys.path.insert(0, TOOLS_DIR)
        try:
            import fuzz
        finally:
            sys.path.pop(0)
        old_argv = sys.argv
        sys.argv = ["fuzz.py", "--noisy", "--iterations", "2", "--seed", "6"]
        try:
            assert fuzz.main() == 0
        finally:
            sys.argv = old_argv


class TestReportHelpers:
    def test_banner_and_sections_importable(self):
        sys.path.insert(0, TOOLS_DIR)
        try:
            import make_report
        finally:
            sys.path.pop(0)
        # The cheapest section end-to-end.
        make_report.e4_figure1()
