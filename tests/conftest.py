"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.kernels import KERNEL_STATS
from repro.geometry.predicates import STATS


@pytest.fixture(autouse=True)
def _reset_predicate_stats():
    """Each test sees fresh predicate and kernel counters."""
    STATS.reset()
    KERNEL_STATS.reset()
    yield


@pytest.fixture
def rng():
    return np.random.default_rng(20200715)  # SPAA'20 conference date
