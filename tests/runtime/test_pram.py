"""Tests for the round-counting CRCW PRAM primitives."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.pram import (
    PRAM,
    ParallelHashTable,
    compact,
    log_star,
    pram_min,
    prefix_sum,
)


class TestLogStar:
    def test_small_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4
        # 2^65536 overflows a float; 2^1024 is representable-ish via
        # math.ldexp and still has log* == 5.
        assert log_star(2.0**1000) == 5


class TestPRAM:
    def test_counters(self):
        p = PRAM()
        p.step(10, "a")
        p.step(5)
        assert p.rounds == 2 and p.work == 15
        assert p.log == [(1, "a", 10)]
        p.reset()
        assert p.rounds == p.work == 0

    def test_negative_ops_rejected(self):
        with pytest.raises(ValueError):
            PRAM().step(-1)


class TestPrefixSum:
    @given(st.lists(st.integers(-100, 100), max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_matches_numpy(self, xs):
        p = PRAM()
        out = prefix_sum(p, np.array(xs, dtype=np.int64))
        expect = np.concatenate([[0], np.cumsum(xs)[:-1]]) if xs else np.array([])
        assert np.array_equal(out, expect.astype(np.int64))

    def test_rounds_logarithmic(self):
        for n in (64, 1024, 16384):
            p = PRAM()
            prefix_sum(p, np.ones(n, dtype=np.int64))
            assert p.rounds == 2 * math.ceil(math.log2(n))
            assert p.work <= 4 * n


class TestCompact:
    @given(st.lists(st.booleans(), max_size=150))
    @settings(max_examples=80, deadline=None)
    def test_matches_nonzero(self, flags):
        p = PRAM()
        out = compact(p, np.array(flags, dtype=bool))
        assert np.array_equal(out, np.nonzero(flags)[0])

    def test_rounds_logarithmic(self):
        p = PRAM()
        compact(p, np.arange(4096) % 3 == 0)
        assert p.rounds <= 2 * math.ceil(math.log2(4096)) + 1


class TestPramMin:
    @given(st.lists(st.integers(-10**6, 10**6), min_size=1, max_size=300),
           st.integers(0, 1000))
    @settings(max_examples=80, deadline=None)
    def test_correct(self, xs, seed):
        p = PRAM()
        rng = np.random.default_rng(seed)
        assert pram_min(p, np.array(xs), rng) == min(xs)

    def test_constant_expected_rounds(self):
        """O(1) rounds whp: over many trials on n = 10^4, the mean round
        count stays tiny and the max bounded."""
        rounds = []
        for seed in range(30):
            p = PRAM()
            rng = np.random.default_rng(seed)
            arr = rng.integers(0, 10**9, size=10_000)
            pram_min(p, arr, rng)
            rounds.append(p.rounds)
        assert np.mean(rounds) < 10
        assert max(rounds) < 16

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pram_min(PRAM(), np.array([]), np.random.default_rng(0))


class TestParallelHashTable:
    def test_insert_and_find_all(self):
        p = PRAM()
        table = ParallelHashTable(capacity=256, seed=1)
        keys = np.arange(100) * 7 + 1
        placed = table.insert_all(p, keys)
        assert set(placed) == set(int(k) for k in keys)
        for k, pos in placed.items():
            assert table.slots[pos] == k

    def test_rounds_doubly_logarithmic(self):
        """At load factor 1/2 the retry scheme converges in very few
        rounds -- the executable stand-in for [39]'s O(log* n)."""
        for n in (256, 1024, 4096):
            p = PRAM()
            table = ParallelHashTable(capacity=2 * n, seed=2)
            table.insert_all(p, np.arange(n) + 1)
            assert p.rounds <= 3 * math.ceil(math.log2(math.log2(n))) + 6, (n, p.rounds)

    def test_capacity_guard(self):
        table = ParallelHashTable(capacity=4)
        with pytest.raises(ValueError):
            table.insert_all(PRAM(), np.arange(10))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ParallelHashTable(capacity=0)

    def test_work_linearish(self):
        n = 2048
        p = PRAM()
        table = ParallelHashTable(capacity=2 * n, seed=3)
        table.insert_all(p, np.arange(n) + 1)
        assert p.work <= 4 * n
