"""Tests for the work-span tracker and the greedy-schedule simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import WorkSpanTracker


def chain(tracker, n, cost=1):
    prev = ()
    tids = []
    for _ in range(n):
        t = tracker.add_task(cost, deps=prev)
        prev = (t,)
        tids.append(t)
    return tids


class TestWorkSpan:
    def test_empty(self):
        t = WorkSpanTracker()
        assert t.work == 0
        assert t.span == 0
        assert len(t) == 0

    def test_chain_span_equals_work(self):
        t = WorkSpanTracker()
        chain(t, 10, cost=3)
        assert t.work == 30
        assert t.span == 30
        assert t.depth == 10
        assert t.parallelism == 1.0

    def test_independent_tasks(self):
        t = WorkSpanTracker()
        for _ in range(10):
            t.add_task(cost=4)
        assert t.work == 40
        assert t.span == 4
        assert t.depth == 1
        assert t.parallelism == 10.0

    def test_diamond(self):
        t = WorkSpanTracker()
        a = t.add_task(1)
        b = t.add_task(10, deps=(a,))
        c = t.add_task(2, deps=(a,))
        d = t.add_task(1, deps=(b, c))
        assert t.work == 14
        assert t.span == 12  # a -> b -> d
        assert t.depth == 3

    def test_unknown_dep_rejected(self):
        t = WorkSpanTracker()
        with pytest.raises(KeyError):
            t.add_task(1, deps=(42,))

    def test_min_cost_clamped_to_one(self):
        t = WorkSpanTracker()
        t.add_task(0)
        assert t.work == 1


class TestGreedySchedule:
    def test_one_processor_is_total_work(self):
        t = WorkSpanTracker()
        for _ in range(5):
            t.add_task(3)
        assert t.simulate_greedy(1).makespan == 15

    def test_infinite_processors_is_span(self):
        t = WorkSpanTracker()
        a = t.add_task(2)
        t.add_task(5, deps=(a,))
        t.add_task(3, deps=(a,))
        assert t.simulate_greedy(100).makespan == t.span == 7

    def test_processor_validation(self):
        t = WorkSpanTracker()
        t.add_task(1)
        with pytest.raises(ValueError):
            t.simulate_greedy(0)

    def test_utilisation_bounds(self):
        t = WorkSpanTracker()
        chain(t, 4, cost=2)
        for _ in range(4):
            t.add_task(2)
        r = t.simulate_greedy(2)
        assert 0 < r.utilisation <= 1

    @given(
        st.lists(
            st.tuples(st.integers(1, 9), st.integers(0, 4)), min_size=1, max_size=40
        ),
        st.integers(1, 8),
    )
    @settings(max_examples=100, deadline=None)
    def test_brent_bound_holds(self, spec, p):
        """The simulated greedy makespan must satisfy both the Brent
        upper bound and the trivial lower bounds max(W/P, S)."""
        t = WorkSpanTracker()
        tids = []
        for cost, back in spec:
            deps = tuple(tids[-back:]) if back and tids else ()
            tids.append(t.add_task(cost, deps=deps))
        m = t.simulate_greedy(p).makespan
        assert m <= t.work / p + t.span + 1e-9
        assert m >= t.span
        assert m >= t.work / p - 1e-9

    def test_speedup_curve_monotone(self):
        t = WorkSpanTracker()
        for i in range(50):
            deps = (max(0, i - 3),) if i else ()
            t.add_task(2, deps=deps if i else ())
        curve = t.speedup_curve([1, 2, 4, 8])
        values = [curve[p] for p in (1, 2, 4, 8)]
        assert values[0] == pytest.approx(1.0)
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


class TestSpanCostModel:
    """Tasks with internal parallelism: span_cost < cost."""

    def test_span_uses_span_cost(self):
        t = WorkSpanTracker()
        a = t.add_task(1000, span_cost=10)
        t.add_task(1000, deps=(a,), span_cost=10)
        assert t.work == 2000
        assert t.span == 20
        assert t.cost_span == 2000

    def test_default_span_cost_equals_cost(self):
        t = WorkSpanTracker()
        t.add_task(7)
        assert t.span == t.cost_span == 7

    def test_model_speedup_beats_nonmalleable(self):
        t = WorkSpanTracker()
        prev = ()
        for _ in range(20):
            tid = t.add_task(500, deps=prev, span_cost=5)
            prev = (tid,)
            for _ in range(3):
                t.add_task(500, deps=prev, span_cost=5)
        p = 16
        greedy = t.work / t.simulate_greedy(p).makespan
        model = t.brent_speedup(p)
        assert model >= greedy - 1e-9

    def test_model_speedup_bounded_by_p_and_parallelism(self):
        t = WorkSpanTracker()
        prev = ()
        for _ in range(30):
            tid = t.add_task(100, deps=prev, span_cost=4)
            prev = (tid,)
        for p in (2, 8, 64):
            s = t.brent_speedup(p)
            assert s <= p + 1e-9
            assert s <= t.parallelism + 1e-9
