"""An intentionally-broken TASMultimap: the yield before the shared
``data`` write is removed, fusing the slot reservation and the data
publication into one scheduler step.

The interleave scheduler can no longer preempt between them, so the
exhaustive schedule sweeps would (wrongly) keep passing -- exactly the
rot the happens-before race checker exists to catch: the write is
recorded as an unannounced *plain* access, conflicting reads of the
slot are unordered by happens-before, and ``RaceChecker`` reports the
pair.  The static twin of this bug is lint rule RPR003.
"""

from __future__ import annotations

from typing import Any, Generator, Hashable

from repro.runtime.multimap import MultimapFullError, TASMultimap


class BrokenTASMultimap(TASMultimap):
    """TASMultimap with the ``("write-data", i)`` preemption point
    removed from ``insert_and_set_steps``."""

    def insert_and_set_steps(self, key: Hashable, value: Any) -> Generator:
        i = self._hash(key) % self.capacity
        probes = 0
        while True:
            yield ("tas-taken", i)
            if not self._slots[i].taken.test_and_set():
                break
            i = (i + 1) % self.capacity
            probes += 1
            if probes > self.capacity:
                raise MultimapFullError("BrokenTASMultimap wrapped around")
        # BUG (deliberate): no `yield ("write-data", i)` here -- the
        # write below executes in the same step as the winning TAS.
        self._slots[i].data = (key, value)
        j = self._hash(key) % self.capacity
        probes = 0
        while True:
            yield ("read-taken", j)
            if not self._slots[j].taken.is_set():
                return True
            yield ("read-data", j)
            data = self._slots[j].data
            if data is not None and data[0] == key:
                yield ("tas-check", j)
                if self._slots[j].check.test_and_set():
                    return False
            j = (j + 1) % self.capacity
            probes += 1
            if probes > self.capacity:
                return True
