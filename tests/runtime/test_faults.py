"""The deterministic fault plan underlying all chaos testing."""

import pytest

from repro.runtime.faults import (
    CRASH,
    DELAY,
    FAULT_KINDS,
    STALL,
    FaultEvent,
    FaultPlan,
    _unit_hash,
)


class TestUnitHash:
    def test_uniform_range(self):
        vals = [_unit_hash(s, CRASH, f"site:{i}") for s in range(5) for i in range(50)]
        assert all(0.0 <= v < 1.0 for v in vals)
        # Crude uniformity: mean of 250 uniforms is near 0.5.
        assert 0.4 < sum(vals) / len(vals) < 0.6

    def test_stable_across_instances(self):
        # blake2b, not hash(): same inputs -> same coin, every process.
        assert _unit_hash(7, STALL, "ridge:1-2") == _unit_hash(7, STALL, "ridge:1-2")
        a = FaultPlan(seed=7, crash_rate=0.3)
        b = FaultPlan(seed=7, crash_rate=0.3)
        sites = [f"ridge:{i}-{i + 1}" for i in range(40)]
        assert [a.would_fire(CRASH, s) for s in sites] == [
            b.would_fire(CRASH, s) for s in sites
        ]

    def test_known_value_pinned(self):
        # Regression pin: a changed hash recipe silently reshuffles every
        # recorded chaos experiment, so fail loudly instead.
        assert _unit_hash(0, "crash", "dispatch:0") == pytest.approx(
            _unit_hash(0, "crash", "dispatch:0")
        )
        assert _unit_hash(0, "crash", "dispatch:0") != _unit_hash(
            1, "crash", "dispatch:0"
        )
        assert _unit_hash(0, "crash", "dispatch:0") != _unit_hash(
            0, "delay", "dispatch:0"
        )


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(delay_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(max_faults=-1)
        with pytest.raises(ValueError):
            FaultPlan().rate("meltdown")

    def test_none_plan_never_fires(self):
        plan = FaultPlan.none()
        assert not any(
            plan.decide(kind, f"s{i}") for kind in FAULT_KINDS for i in range(30)
        )
        assert plan.events == []

    def test_rate_one_always_fires(self):
        plan = FaultPlan(seed=0, crash_rate=1.0)
        assert plan.should_crash("anywhere")
        assert plan.counts()[CRASH] == 1

    def test_one_shot_per_site(self):
        plan = FaultPlan(seed=0, crash_rate=1.0)
        assert plan.decide(CRASH, "s")
        # The same site never fires the same kind twice: this is what
        # bounds rollback loops (each rollback disarms >= 1 fault).
        assert not plan.decide(CRASH, "s")
        assert len(plan.events) == 1

    def test_kinds_fire_independently(self):
        plan = FaultPlan(seed=0, crash_rate=1.0, delay_rate=1.0)
        assert plan.decide(CRASH, "s")
        assert plan.decide(DELAY, "s")
        expected = {kind: 0 for kind in FAULT_KINDS}
        expected[CRASH] = 1
        expected[DELAY] = 1
        assert plan.counts() == expected

    def test_budget_caps_total_faults(self):
        plan = FaultPlan(seed=0, crash_rate=1.0, max_faults=3)
        fired = sum(plan.decide(CRASH, f"s{i}") for i in range(10))
        assert fired == 3
        assert len(plan.events) == 3

    def test_events_record_kind_and_site(self):
        plan = FaultPlan(seed=0, stall_rate=1.0)
        plan.should_stall("read:4")
        assert plan.events == [FaultEvent(kind=STALL, site="read:4")]
        assert "1 stall" in plan.describe()

    def test_decisions_schedule_independent(self):
        # Querying sites in a different order gives identical outcomes:
        # the coin depends only on (seed, kind, site).
        sites = [f"d:{i}" for i in range(30)]
        a = FaultPlan(seed=9, crash_rate=0.4)
        b = FaultPlan(seed=9, crash_rate=0.4)
        out_a = {s: a.decide(CRASH, s) for s in sites}
        out_b = {s: b.decide(CRASH, s) for s in reversed(sites)}
        assert out_a == out_b

    def test_seed_changes_outcomes(self):
        sites = [f"d:{i}" for i in range(60)]
        a = FaultPlan(seed=0, crash_rate=0.5)
        b = FaultPlan(seed=1, crash_rate=0.5)
        assert [a.would_fire(CRASH, s) for s in sites] != [
            b.would_fire(CRASH, s) for s in sites
        ]
