"""The deterministic fault plan underlying all chaos testing."""

import pytest

from repro.runtime.faults import (
    CRASH,
    DELAY,
    FAULT_KINDS,
    STALL,
    FaultEvent,
    FaultPlan,
    _unit_hash,
    unit_hash,
    unit_hash_attempt,
)


class TestUnitHash:
    def test_uniform_range(self):
        vals = [_unit_hash(s, CRASH, f"site:{i}") for s in range(5) for i in range(50)]
        assert all(0.0 <= v < 1.0 for v in vals)
        # Crude uniformity: mean of 250 uniforms is near 0.5.
        assert 0.4 < sum(vals) / len(vals) < 0.6

    def test_stable_across_instances(self):
        # blake2b, not hash(): same inputs -> same coin, every process.
        assert _unit_hash(7, STALL, "ridge:1-2") == _unit_hash(7, STALL, "ridge:1-2")
        a = FaultPlan(seed=7, crash_rate=0.3)
        b = FaultPlan(seed=7, crash_rate=0.3)
        sites = [f"ridge:{i}-{i + 1}" for i in range(40)]
        assert [a.would_fire(CRASH, s) for s in sites] == [
            b.would_fire(CRASH, s) for s in sites
        ]

    def test_known_value_pinned(self):
        # Regression pin: a changed hash recipe silently reshuffles every
        # recorded chaos experiment, so fail loudly instead.
        assert _unit_hash(0, "crash", "dispatch:0") == pytest.approx(
            _unit_hash(0, "crash", "dispatch:0")
        )
        assert _unit_hash(0, "crash", "dispatch:0") != _unit_hash(
            1, "crash", "dispatch:0"
        )
        assert _unit_hash(0, "crash", "dispatch:0") != _unit_hash(
            0, "delay", "dispatch:0"
        )


class TestUnitHashAttempt:
    """The keyed per-attempt coin: majority-vote repair (geometry.noisy)
    and chunk-retry fault injection both assume distinct attempts draw
    independent, non-replayable coins."""

    def test_public_alias(self):
        assert unit_hash is _unit_hash

    def test_deterministic_and_uniform(self):
        a = [unit_hash_attempt(3, "flip", "f:1-2-3:7", j) for j in range(200)]
        assert a == [unit_hash_attempt(3, "flip", "f:1-2-3:7", j) for j in range(200)]
        assert all(0.0 <= v < 1.0 for v in a)
        assert 0.4 < sum(a) / len(a) < 0.6

    def test_attempts_statistically_independent(self):
        # Pairwise correlation across attempt indices on the same site:
        # threshold coins at rate p must agree at ~ p^2 + (1-p)^2, not
        # follow each other.  1000 sites x attempt pairs (0,1), p=0.5
        # -> agreement should be ~0.5, far from 1.0 (replay) and 0.0
        # (anti-correlation).
        agree = sum(
            (unit_hash_attempt(1, "flip", f"s{i}", 0) < 0.5)
            == (unit_hash_attempt(1, "flip", f"s{i}", 1) < 0.5)
            for i in range(1000)
        )
        assert 420 <= agree <= 580
        # And across a longer attempt axis on one site: ~half the coins
        # land under 0.5, i.e. attempts are not biased by the index.
        under = sum(
            unit_hash_attempt(1, "flip", "one-site", j) < 0.5
            for j in range(1000)
        )
        assert 420 <= under <= 580

    def test_no_attempt_replays_another(self):
        # One-shot per (site, attempt): the full keyed stream over many
        # sites and attempts never collides, so no attempt can replay
        # another's digest (8-byte digests: a birthday collision over
        # 5000 draws has probability ~6e-13).
        draws = {
            unit_hash_attempt(0, "flip", f"f:{i}", j)
            for i in range(500)
            for j in range(10)
        }
        assert len(draws) == 5000

    def test_site_attempt_encoding_injective(self):
        # The length-prefixed site defeats concatenation aliasing:
        # ("a1", 1) and ("a", 11) must NOT hash alike.
        assert unit_hash_attempt(0, "flip", "a1", 1) != unit_hash_attempt(
            0, "flip", "a", 11
        )
        assert unit_hash_attempt(0, "flip", "a|1", 2) != unit_hash_attempt(
            0, "flip", "a", 12
        )

    def test_distinct_from_siteonly_hash(self):
        # The attempt axis is a different keyed stream, not a suffix
        # trick over _unit_hash's site namespace.
        assert unit_hash_attempt(5, CRASH, "site", 0) != _unit_hash(5, CRASH, "site")
        assert unit_hash_attempt(5, CRASH, "site", 0) != _unit_hash(
            5, CRASH, "site|0"
        )


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(delay_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(max_faults=-1)
        with pytest.raises(ValueError):
            FaultPlan().rate("meltdown")

    def test_none_plan_never_fires(self):
        plan = FaultPlan.none()
        assert not any(
            plan.decide(kind, f"s{i}") for kind in FAULT_KINDS for i in range(30)
        )
        assert plan.events == []

    def test_rate_one_always_fires(self):
        plan = FaultPlan(seed=0, crash_rate=1.0)
        assert plan.should_crash("anywhere")
        assert plan.counts()[CRASH] == 1

    def test_one_shot_per_site(self):
        plan = FaultPlan(seed=0, crash_rate=1.0)
        assert plan.decide(CRASH, "s")
        # The same site never fires the same kind twice: this is what
        # bounds rollback loops (each rollback disarms >= 1 fault).
        assert not plan.decide(CRASH, "s")
        assert len(plan.events) == 1

    def test_kinds_fire_independently(self):
        plan = FaultPlan(seed=0, crash_rate=1.0, delay_rate=1.0)
        assert plan.decide(CRASH, "s")
        assert plan.decide(DELAY, "s")
        expected = {kind: 0 for kind in FAULT_KINDS}
        expected[CRASH] = 1
        expected[DELAY] = 1
        assert plan.counts() == expected

    def test_budget_caps_total_faults(self):
        plan = FaultPlan(seed=0, crash_rate=1.0, max_faults=3)
        fired = sum(plan.decide(CRASH, f"s{i}") for i in range(10))
        assert fired == 3
        assert len(plan.events) == 3

    def test_events_record_kind_and_site(self):
        plan = FaultPlan(seed=0, stall_rate=1.0)
        plan.should_stall("read:4")
        assert plan.events == [FaultEvent(kind=STALL, site="read:4")]
        assert "1 stall" in plan.describe()

    def test_decisions_schedule_independent(self):
        # Querying sites in a different order gives identical outcomes:
        # the coin depends only on (seed, kind, site).
        sites = [f"d:{i}" for i in range(30)]
        a = FaultPlan(seed=9, crash_rate=0.4)
        b = FaultPlan(seed=9, crash_rate=0.4)
        out_a = {s: a.decide(CRASH, s) for s in sites}
        out_b = {s: b.decide(CRASH, s) for s in reversed(sites)}
        assert out_a == out_b

    def test_seed_changes_outcomes(self):
        sites = [f"d:{i}" for i in range(60)]
        a = FaultPlan(seed=0, crash_rate=0.5)
        b = FaultPlan(seed=1, crash_rate=0.5)
        assert [a.would_fire(CRASH, s) for s in sites] != [
            b.would_fire(CRASH, s) for s in sites
        ]
