"""Experiment E11: the concurrent multimap of Algorithms 4 and 5.

Theorem A.1: of two ``InsertAndSet`` calls on the same ridge, exactly
one returns False.  Theorem A.2: when ``GetValue`` runs (only after an
``InsertAndSet`` lost), both entries are present and the other facet is
returned.  Verified under sequential use, randomized step-level
interleavings (hypothesis-driven), exhaustive small schedules, forced
hash collisions, and real threads.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    CASMultimap,
    DictMultimap,
    MultimapFullError,
    TASMultimap,
    run_interleaved,
    run_schedule,
)

IMPLS = [
    ("dict", lambda: DictMultimap()),
    ("cas", lambda: CASMultimap(capacity=16)),
    ("tas", lambda: TASMultimap(capacity=16)),
]


@pytest.mark.parametrize("name,make", IMPLS)
class TestSequentialSemantics:
    def test_first_insert_true_second_false(self, name, make):
        m = make()
        assert m.insert_and_set("r", "t1") is True
        assert m.insert_and_set("r", "t2") is False

    def test_get_value_returns_other(self, name, make):
        m = make()
        m.insert_and_set("r", "t1")
        m.insert_and_set("r", "t2")
        assert m.get_value("r", "t2") == "t1"

    def test_independent_keys(self, name, make):
        m = make()
        for k in range(5):
            assert m.insert_and_set(("ridge", k), f"first{k}") is True
        for k in range(5):
            assert m.insert_and_set(("ridge", k), f"second{k}") is False
            assert m.get_value(("ridge", k), f"second{k}") == f"first{k}"


class TestDictInvariant:
    def test_third_insert_asserts(self):
        m = DictMultimap()
        m.insert_and_set("r", 1)
        m.insert_and_set("r", 2)
        with pytest.raises(AssertionError):
            m.insert_and_set("r", 3)

    def test_len(self):
        m = DictMultimap()
        m.insert_and_set("a", 1)
        m.insert_and_set("b", 1)
        m.insert_and_set("a", 2)
        assert len(m) == 2


class TestCollisions:
    @pytest.mark.parametrize("cls", [CASMultimap, TASMultimap])
    def test_all_keys_hash_to_same_slot(self, cls):
        m = cls(capacity=32, hash_fn=lambda k: 0)
        for k in range(10):
            assert m.insert_and_set(k, f"a{k}") is True
        for k in range(10):
            assert m.insert_and_set(k, f"b{k}") is False
            assert m.get_value(k, f"b{k}") == f"a{k}"

    @pytest.mark.parametrize("cls", [CASMultimap, TASMultimap])
    def test_table_full_raises(self, cls):
        m = cls(capacity=4, hash_fn=lambda k: 0)
        with pytest.raises(MultimapFullError):
            for k in range(10):
                m.insert_and_set(k, "v")

    @pytest.mark.parametrize("cls", [CASMultimap, TASMultimap])
    def test_capacity_validation(self, cls):
        with pytest.raises(ValueError):
            cls(capacity=1)


def _theorem_a1_a2(make_map, seed, collide=False):
    """One randomized interleaving of the two racing inserts; asserts
    both theorems."""
    m = make_map()
    results = run_interleaved(
        {
            "p": lambda: m.insert_and_set_steps("ridge", "t1"),
            "q": lambda: m.insert_and_set_steps("ridge", "t2"),
        },
        seed=seed,
    )
    values = sorted([results["p"].value, results["q"].value])
    assert values == [False, True], f"A.1 violated: {values}"
    loser = "t1" if results["p"].value is False else "t2"
    winner = "t2" if loser == "t1" else "t1"
    assert m.get_value("ridge", loser) == winner, "A.2 violated"


class TestInterleavedTheorems:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=200, deadline=None)
    def test_cas_theorem_a1_a2(self, seed):
        _theorem_a1_a2(lambda: CASMultimap(capacity=8), seed)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=200, deadline=None)
    def test_tas_theorem_a1_a2(self, seed):
        _theorem_a1_a2(lambda: TASMultimap(capacity=8), seed)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=200, deadline=None)
    def test_tas_with_forced_collisions(self, seed):
        """Collisions plus a third concurrent op on another key sharing
        every slot: the adversarial regime of the Appendix A proof."""
        m = TASMultimap(capacity=8, hash_fn=lambda k: 0)
        results = run_interleaved(
            {
                "p": lambda: m.insert_and_set_steps("r1", "t1"),
                "q": lambda: m.insert_and_set_steps("r1", "t2"),
                "z": lambda: m.insert_and_set_steps("r2", "t3"),
            },
            seed=seed,
        )
        assert sorted([results["p"].value, results["q"].value]) == [False, True]
        assert results["z"].value is True
        loser = "t1" if results["p"].value is False else "t2"
        winner = "t2" if loser == "t1" else "t1"
        assert m.get_value("r1", loser) == winner

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=100, deadline=None)
    def test_cas_with_forced_collisions(self, seed):
        m = CASMultimap(capacity=8, hash_fn=lambda k: 0)
        results = run_interleaved(
            {
                "p": lambda: m.insert_and_set_steps("r1", "t1"),
                "q": lambda: m.insert_and_set_steps("r1", "t2"),
                "z": lambda: m.insert_and_set_steps("r2", "t3"),
            },
            seed=seed,
        )
        assert sorted([results["p"].value, results["q"].value]) == [False, True]
        assert results["z"].value is True


class TestExhaustiveSmallSchedules:
    """Exhaustively check every schedule prefix of bounded length for
    the two-inserter race (the suffix completes deterministically, so
    prefixes of length 8 cover all distinct interleavings of these
    short operations)."""

    @pytest.mark.parametrize("cls", [CASMultimap, TASMultimap])
    def test_all_prefixes(self, cls):
        from itertools import product

        for prefix in product("pq", repeat=8):
            m = cls(capacity=8, hash_fn=lambda k: 0)
            ops = {
                "p": m.insert_and_set_steps("ridge", "t1"),
                "q": m.insert_and_set_steps("ridge", "t2"),
            }
            results = run_schedule(ops, prefix)
            values = sorted([results["p"].value, results["q"].value])
            assert values == [False, True], f"schedule {prefix}: {values}"
            loser = "t1" if results["p"].value is False else "t2"
            winner = "t2" if loser == "t1" else "t1"
            assert m.get_value("ridge", loser) == winner


class TestRealThreads:
    @pytest.mark.parametrize("cls", [CASMultimap, TASMultimap])
    def test_hammer(self, cls):
        m = cls(capacity=4096)
        n_keys = 300
        outcomes: dict[int, list] = {k: [] for k in range(n_keys)}
        lock = threading.Lock()
        barrier = threading.Barrier(2)

        def worker(tag):
            barrier.wait()
            for k in range(n_keys):
                r = m.insert_and_set(k, tag)
                with lock:
                    outcomes[k].append((tag, r))

        t1 = threading.Thread(target=worker, args=("A",))
        t2 = threading.Thread(target=worker, args=("B",))
        t1.start(); t2.start(); t1.join(); t2.join()
        for k, res in outcomes.items():
            rets = sorted(r for _tag, r in res)
            assert rets == [False, True], f"key {k}: {res}"
            (loser_tag,) = [tag for tag, r in res if r is False]
            other = "B" if loser_tag == "A" else "A"
            assert m.get_value(k, loser_tag) == other


class TestExhaustiveThreeOps:
    """Exhaustive schedules over THREE racing operations (two on one
    key, one on a colliding key) for bounded prefix lengths -- a denser
    slice of the Appendix A adversary than the random sweep."""

    @pytest.mark.parametrize("cls", [CASMultimap, TASMultimap])
    def test_all_three_op_prefixes(self, cls):
        from itertools import product

        for prefix in product("pqz", repeat=6):
            m = cls(capacity=8, hash_fn=lambda k: 0)
            ops = {
                "p": m.insert_and_set_steps("r1", "t1"),
                "q": m.insert_and_set_steps("r1", "t2"),
                "z": m.insert_and_set_steps("r2", "t3"),
            }
            results = run_schedule(ops, prefix)
            assert sorted([results["p"].value, results["q"].value]) == [False, True]
            assert results["z"].value is True
            loser = "t1" if results["p"].value is False else "t2"
            winner = "t2" if loser == "t1" else "t1"
            assert m.get_value("r1", loser) == winner
