"""Experiment E16: the dynamic happens-before race checker.

The shipped multimaps announce every shared access with a yield and
must pass every exhaustive schedule; the broken fixture (yield removed
before the ``data`` write) must fail -- with the unannounced access
surfaced *and* a concrete conflicting pair unordered by happens-before.
Also checks the memory model itself: release/acquire message passing
orders plain accesses, unsynchronized plain conflicts race.
"""

import pytest

from repro.runtime import AtomicCell, CASMultimap, RaceChecker, TASMultimap, check_multimap
from repro.runtime.racecheck import DEFAULT_PLAIN_ATTRS, multimap_scenario

from .broken_multimap import BrokenTASMultimap


class TestShippedMultimapsPass:
    @pytest.mark.parametrize("impl", ["cas", "tas"])
    def test_exhaustive_two_op_sweep(self, impl):
        summary = check_multimap(impl, capacity=4, prefix_len=8)
        assert summary.ok, summary.describe()
        assert summary.schedules == 2 ** 8

    @pytest.mark.parametrize("impl", ["cas", "tas"])
    def test_three_op_colliding_sweep(self, impl):
        summary = check_multimap(impl, capacity=8, prefix_len=5, n_ops=3)
        assert summary.ok, summary.describe()
        assert summary.schedules == 3 ** 5

    @pytest.mark.parametrize("impl", ["cas", "tas"])
    def test_without_forced_collisions(self, impl):
        summary = check_multimap(impl, capacity=4, prefix_len=6, collide=False)
        assert summary.ok, summary.describe()

    def test_every_access_announced(self):
        m = TASMultimap(4, hash_fn=lambda k: 0)
        report = RaceChecker().run(multimap_scenario(m), ("p", "q") * 6)
        assert report.unannounced == []
        assert all(a.tag is not None for a in report.accesses)


class TestBrokenMultimapFails:
    def test_exhaustive_sweep_reports_races(self):
        summary = check_multimap(BrokenTASMultimap, capacity=4, prefix_len=6)
        assert not summary.ok
        # The fused TAS+write executes on *every* schedule.
        assert summary.racy_schedules == summary.schedules
        assert summary.first_failure is not None
        assert summary.first_failure.races, summary.first_failure.describe()

    def test_race_pair_identifies_the_plain_write(self):
        m = BrokenTASMultimap(4, hash_fn=lambda k: 0)
        report = RaceChecker().run(multimap_scenario(m), ("p", "q") * 8)
        assert any(not a.announced and a.kind == "write" for a in report.unannounced)
        race = report.races[0]
        plain = race.a if not race.a.announced else race.b
        assert plain.kind == "write"
        assert plain.loc.fname == "data"

    def test_a1_still_holds_despite_race(self):
        """The broken variant is still linearizable in CPython (object
        writes are atomic) -- the race checker catches the *model*
        violation that the schedule space no longer covers the write."""
        summary = check_multimap(BrokenTASMultimap, capacity=4, prefix_len=6)
        assert summary.schedules > 0  # no AssertionError from A.1 escaped


def _message_passing_ops(sync: bool):
    """The classic message-passing idiom over *plain* (unannounced)
    payload accesses: the writer stores a plain payload and releases an
    announced flag; the reader acquires the flag and, if set, reads the
    payload.  With the release *after* the payload write (sync=True)
    happens-before orders the plain pair; releasing first (sync=False)
    leaves the payload write uncovered and it races."""

    class Box:
        def __init__(self):
            self.payload = None

    box = Box()
    flag = AtomicCell(False)

    def writer():
        if sync:
            box.payload = 41  # plain write, covered by the release below
        yield ("release-flag", 0)
        flag.store(True)  # announced release
        if not sync:
            box.payload = 41  # plain write AFTER the release: uncovered
        return True

    def reader():
        yield ("acquire-flag", 0)
        ready = flag.load()  # announced acquire
        if ready:
            return box.payload  # plain read, ordered only via the acquire
        return None

    return Box, {"w": writer, "r": reader}


class TestMemoryModel:
    def test_release_acquire_orders_plain_accesses(self):
        box_cls, ops = _message_passing_ops(sync=True)
        checker = RaceChecker(plain_attrs=DEFAULT_PLAIN_ATTRS + ((box_cls, "payload"),))
        report = checker.run(ops, ("w", "w", "r", "r"))
        assert report.races == [], report.describe()
        # The plain accesses really happened and really were plain.
        assert any(not a.announced for a in report.accesses)

    def test_unreleased_store_races(self):
        box_cls, ops = _message_passing_ops(sync=False)
        checker = RaceChecker(plain_attrs=DEFAULT_PLAIN_ATTRS + ((box_cls, "payload"),))
        report = checker.run(ops, ("w", "w", "w", "r", "r"))
        assert report.races, "unsynchronized store must race"
        assert {report.races[0].a.loc.fname, report.races[0].b.loc.fname} == {"payload"}

    def test_read_read_pairs_never_race(self):
        m = TASMultimap(4, hash_fn=lambda k: 0)
        # Two concurrent GetValues after sequential inserts: reads only.
        m.insert_and_set("r1", "t0")
        m.insert_and_set("r1", "t1")
        report = RaceChecker().run(
            {
                "g1": lambda: m.get_value_steps("r1", "t0"),
                "g2": lambda: m.get_value_steps("r1", "t1"),
            },
            ("g1", "g2") * 6,
        )
        assert report.ok, report.describe()

    def test_instrumentation_restored_after_run(self):
        cell = AtomicCell(None)
        RaceChecker().run(
            {"a": lambda: iter([("noop", 0)])}, ("a",)
        )
        # Patched methods must be restored: plain calls don't record.
        assert AtomicCell.load.__qualname__.startswith("AtomicCell.")
        assert cell.compare_and_swap(None, 1)
        from repro.runtime.multimap import _TASSlot

        assert not isinstance(_TASSlot.__dict__["data"], property)


class TestCLI:
    def test_race_check_command_ok(self, capsys):
        from repro.cli import main

        main(["race-check", "--impl", "tas", "--prefix", "4"])
        out = capsys.readouterr().out
        assert "race-check[tas]" in out and "ok" in out

    def test_lint_command_clean_tree(self, capsys):
        from repro.cli import main

        main(["lint"])  # exits 0 <=> returns


class TestAccessSites:
    """`Access.site` / `RaceReport.sites()`: the dynamic half of the
    static/dynamic soundness differential (see tests/analyze)."""

    def test_sites_point_into_the_generator_body(self):
        m = TASMultimap(4, hash_fn=lambda k: 0)
        report = RaceChecker().run(multimap_scenario(m), ("p", "q") * 6)
        sites = report.sites()
        assert sites, "no sites recorded"
        assert all(s["path"].endswith("multimap.py") for s in sites)
        assert all(s["line"] > 0 and s["count"] > 0 for s in sites)
        funcs = {f for s in sites for f in s["funcs"]}
        assert "insert_and_set_steps" in funcs

    def test_broken_fixture_write_site_is_unannounced(self):
        m = BrokenTASMultimap(4, hash_fn=lambda k: 0)
        report = RaceChecker().run(multimap_scenario(m), ("p", "q") * 8)
        plain = [s for s in report.sites() if not s["announced"]]
        assert plain, "the fused write should surface as a plain site"
        assert any(
            s["path"].endswith("broken_multimap.py") and "write" in s["kinds"]
            for s in plain
        )
        # the shipped parent class contributes only announced sites
        announced = [s for s in report.sites() if s["announced"]]
        assert announced

    def test_sites_are_json_serializable_and_aggregated(self):
        import json as _json

        m = TASMultimap(4, hash_fn=lambda k: 0)
        report = RaceChecker().run(multimap_scenario(m), ("p", "q") * 6)
        round_tripped = _json.loads(_json.dumps(report.sites()))
        assert round_tripped == report.sites()
        keys = [(s["path"], s["line"]) for s in report.sites()]
        assert keys == sorted(keys) and len(keys) == len(set(keys))

    def test_check_multimap_unions_sites_across_schedules(self):
        summary = check_multimap("cas", capacity=4, prefix_len=4)
        assert summary.sites
        total = sum(s["count"] for s in summary.sites)
        assert total > len(summary.sites)  # many schedules aggregated

    def test_setup_accesses_record_no_sites(self):
        m = TASMultimap(4, hash_fn=lambda k: 0)
        # outside any scheduled step: traced but not attributed
        m.insert_and_set("r1", "t0")
        m.insert_and_set("r1", "t1")
        report = RaceChecker().run(
            {"g": lambda: m.get_value_steps("r1", "t0")}, ("g",) * 6
        )
        paths = {s["path"] for s in report.sites()}
        assert all(p.endswith("multimap.py") for p in paths)
        funcs = {f for s in report.sites() for f in s["funcs"]}
        assert "insert_and_set" not in funcs
