"""Supervised process executor: shared memory, supervision, faults.

These tests spawn real worker processes (fork on Linux) with tight
timeouts; geometry-level differential coverage lives in
``tests/hull/test_proc_hull.py``.
"""

import time

import numpy as np
import pytest

from repro.runtime.backoff import BackoffPolicy
from repro.runtime.faults import FaultPlan
from repro.runtime.procexec import (
    ChunkQuarantined,
    ExecutorBrokenError,
    ProcessExecutor,
    SharedArray,
    active_segments,
)


# Module-level compute functions: picklable under any start method.

def _double(arrays, item):
    return float(arrays["x"][item] * 2.0)


def _sum_all(arrays, item):
    return float(arrays["x"].sum()) + item


def _boom(arrays, item):
    raise ValueError(f"poison item {item}")


def _make(n_workers=2, **kw):
    kw.setdefault("chunk_timeout", 5.0)
    kw.setdefault("hb_timeout", 2.0)
    kw.setdefault("hb_interval", 0.02)
    kw.setdefault("round_timeout", 30.0)
    return ProcessExecutor(n_workers=n_workers, **kw)


class TestSharedArray:
    def test_roundtrip_and_descriptor_attach(self):
        arr = np.arange(12, dtype=np.float64).reshape(3, 4)
        with SharedArray.create(arr) as sa:
            assert np.array_equal(sa.array, arr)
            other = SharedArray.attach(sa.descriptor())
            try:
                assert np.array_equal(other.array, arr)
                # Writes through one mapping are visible in the other.
                sa.array[1, 2] = -7.0
                assert other.array[1, 2] == -7.0
            finally:
                other.close()

    def test_snapshot_restore_byte_exact(self):
        arr = np.linspace(0.0, 1.0, 16).reshape(4, 4)
        with SharedArray.create(arr) as sa:
            snap = sa.snapshot()
            sa.array[...] = 0.0
            sa.restore(snap)
            assert sa.array.tobytes() == snap
            assert np.array_equal(sa.array, arr)

    def test_restore_wrong_size_rejected(self):
        with SharedArray.create(np.zeros(4)) as sa:
            with pytest.raises(ValueError, match="snapshot"):
                sa.restore(b"\x00" * 8)

    def test_close_idempotent_and_tracked(self):
        sa = SharedArray.create(np.ones(3))
        name = sa.descriptor()[0]
        assert name in active_segments()
        sa.close()
        assert name not in active_segments()
        sa.close()  # no-op, no raise
        with pytest.raises(ValueError, match="closed"):
            _ = sa.array

    def test_attach_does_not_own(self):
        sa = SharedArray.create(np.ones(3))
        try:
            other = SharedArray.attach(sa.descriptor())
            other.close()
            # Closing the attachment must not unlink the owner's segment.
            assert np.array_equal(sa.array, np.ones(3))
            assert sa.descriptor()[0] in active_segments()
        finally:
            sa.close()

    def test_no_leak_after_exception(self):
        before = active_segments()
        with pytest.raises(RuntimeError):
            with SharedArray.create(np.zeros(5)):
                raise RuntimeError("crash inside the context")
        assert active_segments() == before


class TestLifecycle:
    def test_validation(self):
        with pytest.raises(ValueError, match="n_workers"):
            ProcessExecutor(n_workers=0)
        with pytest.raises(ValueError, match="max_retries"):
            ProcessExecutor(max_retries=-1)

    def test_run_round_before_start_raises(self):
        ex = _make()
        with pytest.raises(RuntimeError, match="not running"):
            ex.run_round([[1]])

    def test_started_property_and_double_start(self):
        ex = _make()
        assert not ex.started
        ex.start({"x": np.arange(4.0)}, _double)
        try:
            assert ex.started
            with pytest.raises(RuntimeError, match="already started"):
                ex.start({"x": np.arange(4.0)}, _double)
        finally:
            ex.close()
        assert not ex.started

    def test_close_idempotent_no_segment_leak(self):
        before = active_segments()
        ex = _make()
        ex.start({"x": np.arange(8.0)}, _double)
        assert len(active_segments()) == len(before) + 1
        ex.close()
        ex.close()
        assert active_segments() == before

    def test_context_manager_cleans_up_on_error(self):
        before = active_segments()
        with pytest.raises(RuntimeError, match="boom"):
            with _make() as ex:
                ex.start({"x": np.arange(4.0)}, _double)
                raise RuntimeError("boom")
        assert active_segments() == before

    def test_keyboard_interrupt_path_cleans_up(self):
        # KeyboardInterrupt is a BaseException: the finally/close path
        # must still drain the segments.
        before = active_segments()
        with pytest.raises(KeyboardInterrupt):
            with _make() as ex:
                ex.start({"x": np.arange(4.0)}, _double)
                ex.run_round([[0, 1], [2, 3]])
                raise KeyboardInterrupt
        assert active_segments() == before


class TestFaultFreeRounds:
    def test_results_in_payload_order(self):
        with _make(n_workers=2) as ex:
            ex.start({"x": np.arange(10.0)}, _double)
            out = ex.run_round([[0, 1], [2], [3, 4, 5]])
        assert out == [[0.0, 2.0], [4.0], [6.0, 8.0, 10.0]]

    def test_empty_round(self):
        with _make() as ex:
            ex.start({"x": np.arange(4.0)}, _double)
            assert ex.run_round([]) == []

    def test_multiple_rounds_reuse_pool(self):
        with _make(n_workers=2) as ex:
            ex.start({"x": np.arange(6.0)}, _sum_all)
            total = float(np.arange(6.0).sum())
            for rnd in range(4):
                out = ex.run_round([[rnd], [rnd + 1]])
                assert out == [[total + rnd], [total + rnd + 1]]
            assert ex.stats.worker_deaths == 0
            assert ex.stats.retries == 0

    def test_more_chunks_than_workers(self):
        with _make(n_workers=2) as ex:
            ex.start({"x": np.arange(20.0)}, _double)
            out = ex.run_round([[i] for i in range(12)])
        assert out == [[float(2 * i)] for i in range(12)]


class TestSupervision:
    def test_killed_workers_are_respawned_and_chunks_retried(self):
        plan = FaultPlan(seed=5, kill_rate=0.5)
        with _make(n_workers=2, plan=plan, max_retries=10,
                   max_respawns=64) as ex:
            ex.start({"x": np.arange(16.0)}, _double)
            out = ex.run_round([[i, i + 1] for i in range(0, 16, 2)])
        assert out == [[float(2 * i), float(2 * i + 2)]
                       for i in range(0, 16, 2)]
        assert ex.stats.worker_deaths > 0
        assert ex.stats.respawns > 0
        assert ex.stats.retries >= ex.stats.worker_deaths

    def test_stalled_worker_is_killed_by_stale_heartbeat(self):
        plan = FaultPlan(seed=3, stall_rate=0.9)
        with _make(n_workers=2, plan=plan, max_retries=20, max_respawns=64,
                   hb_timeout=0.3, chunk_timeout=10.0) as ex:
            ex.start({"x": np.arange(4.0)}, _double)
            out = ex.run_round([[0, 1], [2, 3]])
        assert out == [[0.0, 2.0], [4.0, 6.0]]
        assert ex.stats.stall_kills > 0

    def test_dropped_results_hit_the_deadline(self):
        plan = FaultPlan(seed=1, drop_rate=0.8)
        with _make(n_workers=2, plan=plan, max_retries=20, max_respawns=64,
                   chunk_timeout=0.4, hb_timeout=10.0) as ex:
            ex.start({"x": np.arange(4.0)}, _double)
            out = ex.run_round([[0, 1], [2, 3]])
        assert out == [[0.0, 2.0], [4.0, 6.0]]
        assert ex.stats.deadline_kills > 0

    def test_duplicate_results_applied_once(self):
        plan = FaultPlan(seed=2, dup_rate=1.0)
        with _make(n_workers=2, plan=plan) as ex:
            ex.start({"x": np.arange(8.0)}, _double)
            out = ex.run_round([[i] for i in range(6)])
            # Late second copies surface on the next round's drain (or
            # this one's); either way they may only bump the counter.
            out2 = ex.run_round([[i] for i in range(6)])
        assert out == out2 == [[float(2 * i)] for i in range(6)]
        assert ex.stats.duplicates_dropped > 0

    def test_poison_chunk_quarantined(self):
        with _make(n_workers=2, max_retries=2,
                   backoff=BackoffPolicy(base=0.0, cap=0.0, jitter=0.0)) as ex:
            ex.start({"x": np.arange(4.0)}, _boom)
            with pytest.raises(ChunkQuarantined) as ei:
                ex.run_round([[0], [1]])
        assert sorted(ei.value.chunk_ids) == [0, 1]
        assert any("poison item" in r for r in ei.value.reasons)
        assert ex.stats.quarantined == 2
        # A worker exception is not a worker death.
        assert ex.stats.worker_deaths == 0

    def test_respawn_budget_exhaustion_breaks_executor(self):
        plan = FaultPlan(seed=7, kill_rate=1.0)
        with _make(n_workers=2, plan=plan, max_retries=50,
                   max_respawns=3) as ex:
            ex.start({"x": np.arange(4.0)}, _double)
            with pytest.raises(ExecutorBrokenError, match="respawn budget"):
                ex.run_round([[0], [1], [2], [3]])

    def test_heartbeats_observed(self):
        with _make(n_workers=2) as ex:
            ex.start({"x": np.arange(4.0)}, _double)
            ex.run_round([[0, 1]])
            # Idle workers beat every hb_interval; give them a moment
            # and drain on the next round.
            deadline = time.monotonic() + 2.0
            while ex.stats.heartbeats == 0 and time.monotonic() < deadline:
                time.sleep(0.05)
                ex.run_round([[2, 3]])
        assert ex.stats.heartbeats > 0
