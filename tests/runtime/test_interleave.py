"""Tests for the interleaving scheduler itself."""

import pytest

from repro.runtime import all_schedules, run_interleaved, run_schedule


def make_op(log, name, steps):
    def gen():
        for i in range(steps):
            log.append((name, i))
            yield (name, i)
        return f"{name}-done"

    return gen


class TestRunSchedule:
    def test_follows_schedule(self):
        log = []
        ops = {"a": make_op(log, "a", 2)(), "b": make_op(log, "b", 2)()}
        results = run_schedule(ops, ["a", "b", "a", "b"])
        assert results["a"].value == "a-done"
        assert results["b"].value == "b-done"
        assert log == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]

    def test_prefix_completed_in_name_order(self):
        log = []
        ops = {"b": make_op(log, "b", 3)(), "a": make_op(log, "a", 3)()}
        run_schedule(ops, [])
        # No schedule: everything runs to completion, 'a' first.
        assert log[:3] == [("a", 0), ("a", 1), ("a", 2)]

    def test_mentions_of_finished_ops_skipped(self):
        log = []
        ops = {"a": make_op(log, "a", 1)()}
        results = run_schedule(ops, ["a", "a", "a", "a"])
        assert results["a"].value == "a-done"
        assert results["a"].steps == 1

    def test_error_propagates_when_strict(self):
        def boom():
            yield "x"
            raise ValueError("bad")

        with pytest.raises(ValueError):
            run_schedule({"a": boom()}, ["a", "a"])

    def test_error_captured_when_lenient(self):
        def boom():
            yield "x"
            raise ValueError("bad")

        results = run_schedule({"a": boom()}, ["a", "a"], strict=False)
        assert isinstance(results["a"].error, ValueError)


class TestRunInterleaved:
    def test_deterministic_given_seed(self):
        def build(tag, log):
            return {
                "p": make_op(log, "p", 5),
                "q": make_op(log, "q", 5),
            }

        log1, log2 = [], []
        run_interleaved(build("x", log1), seed=42)
        run_interleaved(build("x", log2), seed=42)
        assert log1 == log2

    def test_different_seeds_vary(self):
        logs = []
        for seed in range(20):
            log = []
            run_interleaved(
                {"p": make_op(log, "p", 4), "q": make_op(log, "q", 4)}, seed=seed
            )
            logs.append(tuple(log))
        assert len(set(logs)) > 1

    def test_nonterminating_op_raises(self):
        def forever():
            while True:
                yield "spin"

        with pytest.raises(RuntimeError):
            run_interleaved({"a": lambda: forever()}, seed=0, max_steps=50)


class TestAllSchedules:
    def test_counts(self):
        assert len(list(all_schedules(["a", "b"], 3))) == 8
        assert len(list(all_schedules(["a", "b", "c"], 2))) == 9
