"""Tests for the interleaving scheduler itself."""

import pytest

from repro.runtime import (
    CASMultimap,
    TASMultimap,
    all_schedules,
    run_interleaved,
    run_schedule,
)


def make_op(log, name, steps):
    def gen():
        for i in range(steps):
            log.append((name, i))
            yield (name, i)
        return f"{name}-done"

    return gen


class TestRunSchedule:
    def test_follows_schedule(self):
        log = []
        ops = {"a": make_op(log, "a", 2)(), "b": make_op(log, "b", 2)()}
        results = run_schedule(ops, ["a", "b", "a", "b"])
        assert results["a"].value == "a-done"
        assert results["b"].value == "b-done"
        assert log == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]

    def test_prefix_completed_in_name_order(self):
        log = []
        ops = {"b": make_op(log, "b", 3)(), "a": make_op(log, "a", 3)()}
        run_schedule(ops, [])
        # No schedule: everything runs to completion, 'a' first.
        assert log[:3] == [("a", 0), ("a", 1), ("a", 2)]

    def test_mentions_of_finished_ops_skipped(self):
        log = []
        ops = {"a": make_op(log, "a", 1)()}
        results = run_schedule(ops, ["a", "a", "a", "a"])
        assert results["a"].value == "a-done"
        assert results["a"].steps == 1

    def test_error_propagates_when_strict(self):
        def boom():
            yield "x"
            raise ValueError("bad")

        with pytest.raises(ValueError):
            run_schedule({"a": boom()}, ["a", "a"])

    def test_error_captured_when_lenient(self):
        def boom():
            yield "x"
            raise ValueError("bad")

        results = run_schedule({"a": boom()}, ["a", "a"], strict=False)
        assert isinstance(results["a"].error, ValueError)
        assert not results["a"].done

    def test_lenient_keeps_driving_remaining_ops(self):
        # One poisoned op must not hide what the others do: the healthy
        # ops run to completion and report their values.
        def boom():
            yield "x"
            raise ValueError("bad")

        log = []
        ops = {"a": boom(), "b": make_op(log, "b", 3)(), "c": make_op(log, "c", 2)()}
        results = run_schedule(ops, ["a", "a", "b"], strict=False)
        assert isinstance(results["a"].error, ValueError)
        assert results["b"].done and results["b"].value == "b-done"
        assert results["c"].done and results["c"].value == "c-done"


class TestStall:
    def test_stalled_op_freezes_at_budget(self):
        log = []
        ops = {"a": make_op(log, "a", 5)(), "b": make_op(log, "b", 3)()}
        results = run_schedule(ops, ["a"] * 5, stall={"a": 2})
        assert results["a"].stalled
        assert not results["a"].done
        assert results["a"].steps == 2
        # The other op is drained to completion regardless.
        assert results["b"].done and results["b"].value == "b-done"

    def test_stall_at_zero_freezes_before_first_step(self):
        log = []
        results = run_schedule({"a": make_op(log, "a", 3)()}, ["a", "a"],
                               stall={"a": 0})
        assert results["a"].stalled and results["a"].steps == 0
        assert log == []

    def test_stall_budget_beyond_completion_is_harmless(self):
        log = []
        results = run_schedule({"a": make_op(log, "a", 2)()}, [], stall={"a": 99})
        assert results["a"].done and not results["a"].stalled

    def test_unknown_stall_name_rejected(self):
        log = []
        with pytest.raises(KeyError):
            run_schedule({"a": make_op(log, "a", 1)()}, [], stall={"zz": 1})

    def test_max_steps_guards_livelock(self):
        # A spinning op (e.g. waiting on a lock held by a stalled op)
        # must be abandoned with an error, not hang the drain loop.
        def forever():
            while True:
                yield "spin"

        results = run_schedule({"a": forever()}, [], strict=False, max_steps=40)
        assert results["a"].error is not None
        assert not results["a"].done
        assert results["a"].steps == 40

    def test_max_steps_strict_raises(self):
        def forever():
            while True:
                yield "spin"

        with pytest.raises(RuntimeError, match="exceeded"):
            run_schedule({"a": forever()}, [], max_steps=10)


class TestRunInterleaved:
    def test_deterministic_given_seed(self):
        def build(tag, log):
            return {
                "p": make_op(log, "p", 5),
                "q": make_op(log, "q", 5),
            }

        log1, log2 = [], []
        run_interleaved(build("x", log1), seed=42)
        run_interleaved(build("x", log2), seed=42)
        assert log1 == log2

    def test_different_seeds_vary(self):
        logs = []
        for seed in range(20):
            log = []
            run_interleaved(
                {"p": make_op(log, "p", 4), "q": make_op(log, "q", 4)}, seed=seed
            )
            logs.append(tuple(log))
        assert len(set(logs)) > 1

    def test_nonterminating_op_raises(self):
        def forever():
            while True:
                yield "spin"

        with pytest.raises(RuntimeError):
            run_interleaved({"a": lambda: forever()}, seed=0, max_steps=50)


class TestAllSchedules:
    def test_counts(self):
        assert len(list(all_schedules(["a", "b"], 3))) == 8
        assert len(list(all_schedules(["a", "b", "c"], 2))) == 9

    def test_covers_every_interleaving_of_short_ops(self):
        """Every schedule drives a distinct interleaving: over 2 ops of
        2 steps each, the 4-step schedules must realize all C(4,2) = 6
        step orders (and nothing else)."""
        orders = set()
        for schedule in all_schedules("ab", 4):
            log: list[tuple[str, int]] = []
            run_schedule({"a": make_op(log, "a", 2)(), "b": make_op(log, "b", 2)()},
                         schedule)
            orders.add(tuple(log))
        assert len(orders) == 6

    @pytest.mark.parametrize("cls", [CASMultimap, TASMultimap])
    def test_theorem_a1_on_every_schedule(self, cls):
        """Theorem A.1 under *exhaustive* small-model checking: on every
        one of the 2^10 schedule prefixes (the deterministic completion
        extends each to a full schedule, so every interleaving of the
        two racing InsertAndSet calls is covered), exactly one call
        returns False -- not just on sampled interleavings."""
        checked = 0
        for schedule in all_schedules("pq", 10):
            m = cls(capacity=4, hash_fn=lambda k: 0)
            results = run_schedule(
                {
                    "p": m.insert_and_set_steps("ridge", "t1"),
                    "q": m.insert_and_set_steps("ridge", "t2"),
                },
                schedule,
            )
            values = sorted([results["p"].value, results["q"].value])
            assert values == [False, True], f"A.1 violated on {schedule}: {values}"
            loser, winner = (
                ("t1", "t2") if results["p"].value is False else ("t2", "t1")
            )
            assert m.get_value("ridge", loser) == winner, f"A.2 violated on {schedule}"
            checked += 1
        assert checked == 2 ** 10
