"""Shared retry-backoff policy (used by chaos + process supervisors)."""

import pytest

from repro.runtime.backoff import BackoffPolicy


class TestDelaySchedule:
    def test_monotone_in_attempt(self):
        # factor >= 1 + jitter guarantees delays never shrink as the
        # attempt count grows (the module-level invariant).
        pol = BackoffPolicy(base=0.001, factor=2.0, cap=10.0, jitter=0.5, seed=3)
        for site in ("", "chunk:0", "retry:w2"):
            delays = [pol.delay(a, site=site) for a in range(12)]
            assert all(b >= a for a, b in zip(delays, delays[1:]))

    def test_exponential_growth_without_jitter(self):
        pol = BackoffPolicy(base=0.001, factor=2.0, cap=10.0, jitter=0.0)
        assert pol.delay(0) == pytest.approx(0.001)
        assert pol.delay(3) == pytest.approx(0.008)
        assert pol.delay(6) == pytest.approx(0.064)

    def test_cap_saturates(self):
        pol = BackoffPolicy(base=0.002, factor=2.0, cap=0.05, jitter=0.5)
        assert pol.delay(30, site="x") == 0.05
        assert pol.delay(60, site="x") == 0.05
        # ... and every delay respects it, jitter included.
        assert all(pol.delay(a, site="y") <= 0.05 for a in range(20))

    def test_jitter_bounded(self):
        pol = BackoffPolicy(base=0.001, factor=2.0, cap=10.0, jitter=0.5)
        for a in range(8):
            raw = 0.001 * 2.0 ** a
            d = pol.delay(a, site="s")
            assert raw <= d <= raw * 1.5


class TestDeterminism:
    def test_replayable_from_seed(self):
        a = BackoffPolicy(seed=42)
        b = BackoffPolicy(seed=42)
        assert [a.delay(i, "chunk:3") for i in range(6)] == [
            b.delay(i, "chunk:3") for i in range(6)
        ]

    def test_sites_draw_distinct_jitter(self):
        # Distinct sites must fan out, not re-collide: at least one
        # attempt level has to differ between two sites.
        pol = BackoffPolicy(base=0.001, factor=2.0, cap=10.0, jitter=0.5, seed=0)
        s1 = [pol.delay(i, "chunk:1") for i in range(6)]
        s2 = [pol.delay(i, "chunk:2") for i in range(6)]
        assert s1 != s2

    def test_seeds_draw_distinct_jitter(self):
        p0 = BackoffPolicy(base=0.001, factor=2.0, cap=10.0, jitter=0.5, seed=0)
        p1 = BackoffPolicy(base=0.001, factor=2.0, cap=10.0, jitter=0.5, seed=1)
        assert [p0.delay(i, "s") for i in range(6)] != [
            p1.delay(i, "s") for i in range(6)
        ]


class TestValidation:
    def test_negative_base_rejected(self):
        with pytest.raises(ValueError, match="base"):
            BackoffPolicy(base=-0.001)

    def test_cap_below_base_rejected(self):
        with pytest.raises(ValueError, match="cap"):
            BackoffPolicy(base=0.01, cap=0.001)

    def test_jitter_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="jitter"):
            BackoffPolicy(jitter=1.5)

    def test_factor_below_monotone_bound_rejected(self):
        # factor < 1 + jitter would let a lucky jitter draw shrink the
        # next delay below the previous one.
        with pytest.raises(ValueError, match="factor"):
            BackoffPolicy(factor=1.2, jitter=0.5)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError, match="attempt"):
            BackoffPolicy().delay(-1)

    def test_frozen(self):
        with pytest.raises(Exception):
            BackoffPolicy().base = 1.0


class TestSleep:
    def test_sleep_returns_delay(self):
        pol = BackoffPolicy(base=0.0, factor=2.0, cap=0.0, jitter=0.0)
        assert pol.sleep(5, site="s") == 0.0

    def test_sleep_matches_delay(self):
        pol = BackoffPolicy(base=0.0005, factor=2.0, cap=0.001, jitter=0.5, seed=9)
        assert pol.sleep(1, site="s") == pol.delay(1, site="s")
