"""Tests for the atomic primitives, including real-thread hammering."""

import threading

from repro.runtime import AtomicCell, AtomicCounter, AtomicFlag, Mutex


class TestAtomicCell:
    def test_load_store(self):
        c = AtomicCell(5)
        assert c.load() == 5
        c.store(7)
        assert c.load() == 7

    def test_cas_success_and_failure(self):
        c = AtomicCell(None)
        assert c.compare_and_swap(None, "a")
        assert not c.compare_and_swap(None, "b")
        assert c.load() == "a"

    def test_cas_on_equal_values(self):
        c = AtomicCell((1, 2))
        assert c.compare_and_swap((1, 2), "next")
        assert c.load() == "next"

    def test_cas_does_not_conflate_false_with_zero(self):
        """Regression: ``0 == False`` in Python, so the old equality
        fallback let CAS(expected=0) claim a cell holding False."""
        c = AtomicCell(False)
        assert not c.compare_and_swap(0, "stolen")
        assert c.load() is False
        assert c.compare_and_swap(False, "ok")
        assert c.load() == "ok"

    def test_cas_does_not_conflate_zero_with_false(self):
        c = AtomicCell(0)
        assert not c.compare_and_swap(False, "stolen")
        assert c.load() == 0
        assert c.compare_and_swap(0, "ok")

    def test_cas_does_not_conflate_int_with_float(self):
        c = AtomicCell(1)
        assert not c.compare_and_swap(1.0, "stolen")
        assert c.compare_and_swap(1, "ok")

    def test_cas_equal_same_type_values_still_match(self):
        c = AtomicCell("key")
        assert c.compare_and_swap("k" + "ey", "next")  # equal, not identical
        assert c.load() == "next"

    def test_cas_race_single_winner(self):
        c = AtomicCell(None)
        wins = []
        barrier = threading.Barrier(8)

        def racer(i):
            barrier.wait()
            if c.compare_and_swap(None, i):
                wins.append(i)

        threads = [threading.Thread(target=racer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        assert c.load() == wins[0]


class TestAtomicFlag:
    def test_first_tas_wins(self):
        f = AtomicFlag()
        assert f.test_and_set() is False  # previous value
        assert f.test_and_set() is True
        assert f.is_set()

    def test_tas_race_single_winner(self):
        f = AtomicFlag()
        winners = []
        barrier = threading.Barrier(8)

        def racer(i):
            barrier.wait()
            if not f.test_and_set():
                winners.append(i)

        threads = [threading.Thread(target=racer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(winners) == 1


class TestAtomicCounter:
    def test_fetch_add_returns_previous(self):
        c = AtomicCounter(10)
        assert c.fetch_add(5) == 10
        assert c.value == 15

    def test_concurrent_increments_all_counted(self):
        c = AtomicCounter()
        n_threads, per_thread = 8, 500

        def work():
            for _ in range(per_thread):
                c.fetch_add()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * per_thread

    def test_unique_tickets(self):
        c = AtomicCounter()
        tickets: list[int] = []
        lock = threading.Lock()

        def work():
            mine = [c.fetch_add() for _ in range(200)]
            with lock:
                tickets.extend(mine)

        threads = [threading.Thread(target=work) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(tickets)) == len(tickets) == 1200


class TestMutex:
    def test_context_manager(self):
        m = Mutex()
        assert not m.locked()
        with m:
            assert m.locked()
        assert not m.locked()

    def test_excludes_threads(self):
        m = Mutex()
        hits: list[int] = []

        def work():
            for _ in range(300):
                with m:
                    hits.append(len(hits))

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # With mutual exclusion each append saw the true length.
        assert hits == list(range(1200))


class TestShardedCounter:
    def test_single_thread_value(self):
        from repro.runtime.atomics import ShardedCounter

        c = ShardedCounter()
        c.add(3)
        c.add(4)
        assert c.value == 7
        c.reset()
        assert c.value == 0
        c.add(1)
        assert c.value == 1

    def test_concurrent_adds_all_counted(self):
        # Regression: these used to be plain ``int +=`` on a shared
        # object -- a read-modify-write that silently loses updates
        # under the thread executors.  Per-thread shards make each
        # write exclusive to its owner.
        from repro.runtime.atomics import ShardedCounter

        c = ShardedCounter()
        n_threads, per_thread = 8, 2000

        def work():
            for _ in range(per_thread):
                c.add(1)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * per_thread

    def test_reset_discards_stale_shards(self):
        from repro.runtime.atomics import ShardedCounter

        c = ShardedCounter()
        c.add(5)

        t = threading.Thread(target=lambda: c.add(7))
        t.start()
        t.join()
        assert c.value == 12
        c.reset()
        # A reset mid-life must not resurrect pre-reset shards, even
        # ones owned by threads that no longer exist.
        c.add(2)
        assert c.value == 2


class TestPredicateStatsConcurrency:
    def test_concurrent_predicate_counts_exact(self):
        from repro.geometry.predicates import PredicateStats

        stats = PredicateStats()
        n_threads, per_thread = 6, 1500

        def work():
            for _ in range(per_thread):
                stats.count_float()
                stats.count_exact(2)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = stats.snapshot()
        assert snap["float_calls"] == n_threads * per_thread
        assert snap["exact_calls"] == 2 * n_threads * per_thread
        assert snap["sos_calls"] == 0
