"""Chaos layer: dying workers, stalled multimap ops, the bundled suite."""

import threading

import pytest

from repro.runtime import ExecutionStats
from repro.runtime.chaos import (
    ChaosThreadExecutor,
    run_chaos_suite,
    sweep_stalled_multimap,
)
from repro.runtime.faults import CRASH, FaultPlan, RetryBudgetExceeded


def binary_spawner(depth):
    def fn(task):
        level, i = task
        if level >= depth:
            return []
        return [(level + 1, 2 * i), (level + 1, 2 * i + 1)]

    return fn


class TestChaosThreadExecutor:
    def test_no_plan_matches_thread_executor(self):
        stats = ChaosThreadExecutor(3).run([(0, 0)], binary_spawner(4))
        assert stats.tasks_executed == 2**5 - 1
        assert stats.worker_deaths == 0
        assert stats.retries == 0

    def test_empty_initial(self):
        stats = ChaosThreadExecutor(2, plan=FaultPlan(seed=0, crash_rate=1.0)).run(
            [], binary_spawner(3)
        )
        assert stats.tasks_executed == 0

    def test_crashes_detected_and_all_tasks_still_execute(self):
        # Every task must be executed exactly once despite lost workers.
        seen = set()
        lock = threading.Lock()

        def fn(task):
            with lock:
                assert task not in seen, "task executed twice"
                seen.add(task)
            return binary_spawner(5)(task)

        plan = FaultPlan(seed=2, crash_rate=0.25)
        stats = ChaosThreadExecutor(3, plan=plan).run([(0, 0)], fn)
        assert stats.tasks_executed == len(seen) == 2**6 - 1
        assert stats.worker_deaths > 0
        assert stats.retries == stats.worker_deaths
        assert plan.counts()[CRASH] == stats.worker_deaths

    def test_delay_faults_slow_but_complete(self):
        plan = FaultPlan(seed=1, delay_rate=0.5)
        stats = ChaosThreadExecutor(2, plan=plan).run([(0, 0)], binary_spawner(3))
        assert stats.tasks_executed == 2**4 - 1
        assert stats.tasks_delayed > 0
        assert stats.worker_deaths == 0

    def test_retry_budget_exceeded(self):
        # crash_rate=1.0 kills every dispatch; with max_retries=2 the
        # third loss of the same task must surface as an error, not hang.
        plan = FaultPlan(seed=0, crash_rate=1.0)
        ex = ChaosThreadExecutor(2, plan=plan, max_retries=2)
        with pytest.raises(RetryBudgetExceeded):
            ex.run([(0, 0)], binary_spawner(2))

    def test_genuine_exception_propagates_not_retried(self):
        calls = [0]
        lock = threading.Lock()

        def fn(task):
            with lock:
                calls[0] += 1
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            ChaosThreadExecutor(2).run([1], fn)
        assert calls[0] == 1  # poisoned tasks are not re-dispatched

    def test_invalid_retry_budget(self):
        with pytest.raises(ValueError):
            ChaosThreadExecutor(2, max_retries=-1)

    def test_returns_execution_stats(self):
        assert isinstance(
            ChaosThreadExecutor(2).run([(0, 0)], binary_spawner(2)),
            ExecutionStats,
        )


class TestStallSweep:
    """ISSUE acceptance: an op frozen forever at *any* yield point never
    blocks the remaining ops (exhaustive schedules x stall points)."""

    @pytest.mark.parametrize("impl", ["cas", "tas"])
    def test_two_colliding_inserts(self, impl):
        summary = sweep_stalled_multimap(
            impl, capacity=4, prefix_len=5, n_ops=2, max_stall=8
        )
        assert summary.ok, summary.describe()
        assert summary.runs > 0
        # max_stall covers every yield point of both passes.
        assert summary.stall_points == 2 * 9

    @pytest.mark.parametrize("impl", ["cas", "tas"])
    def test_three_ops_with_getvalue(self, impl):
        # Op 'r' is GetValue; stalling it must not block p/q, and A.1
        # (exactly one winner among p, q) must hold for the survivors.
        summary = sweep_stalled_multimap(
            impl, capacity=4, prefix_len=4, n_ops=3, max_stall=5
        )
        assert summary.ok, summary.describe()

    def test_no_collisions_regime(self):
        summary = sweep_stalled_multimap(
            "tas", capacity=5, prefix_len=4, collide=False, max_stall=4
        )
        assert summary.ok, summary.describe()

    def test_blocking_implementation_is_caught(self):
        # A lock-based multimap is NOT lock-free: freeze the lock holder
        # and the other op spins forever.  The sweep must fail on it.
        from repro.runtime.atomics import AtomicFlag

        class LockingMultimap:
            def __init__(self, capacity, hash_fn=None):
                self._locked = AtomicFlag()
                self._first = {}
                self._second = {}

            def insert_and_set_steps(self, key, value):
                while True:
                    yield ("tas-lock", 0)
                    if not self._locked.test_and_set():
                        break  # acquired; a stall here wedges everyone
                yield ("write", 0)
                if key in self._first:
                    self._second[key] = value
                    won = False
                else:
                    self._first[key] = value
                    won = True
                self._locked.clear()
                return won

            def get_value_steps(self, key, value):
                yield ("read", 0)
                other = self._first[key]
                return self._second[key] if other is value else other

        summary = sweep_stalled_multimap(
            LockingMultimap, capacity=4, prefix_len=4, max_stall=4
        )
        assert not summary.ok
        assert any("blocked" in msg for msg in summary.failures)


class TestChaosSuite:
    def test_small_suite_passes(self):
        report = run_chaos_suite(seed=0, budget="small")
        assert report.ok
        d = report.as_dict()
        assert d["ok"] is True
        assert len(d["stall_sweeps"]) == 2
        assert all(r["same_facets"] for r in d["roundtrips"])

    def test_unknown_budget_rejected(self):
        with pytest.raises(ValueError):
            run_chaos_suite(budget="galactic")
