"""Tests for the task executors over synthetic dynamic task DAGs."""

import threading

import pytest

from repro.runtime import ExecutionStats, RoundExecutor, SerialExecutor, ThreadExecutor


def binary_spawner(depth):
    """Step function: task (level, i) spawns two children until depth."""

    def fn(task):
        level, i = task
        if level >= depth:
            return []
        return [(level + 1, 2 * i), (level + 1, 2 * i + 1)]

    return fn


@pytest.mark.parametrize(
    "executor",
    [SerialExecutor(), RoundExecutor(), RoundExecutor(seed=3), ThreadExecutor(4)],
    ids=["serial", "round", "round-shuffled", "threads"],
)
class TestAllExecutors:
    def test_executes_full_tree(self, executor):
        stats = executor.run([(0, 0)], binary_spawner(5))
        assert stats.tasks_executed == 2**6 - 1

    def test_empty_initial(self, executor):
        stats = executor.run([], binary_spawner(3))
        assert stats.tasks_executed == 0

    def test_no_children(self, executor):
        stats = executor.run([(9, 0), (9, 1)], binary_spawner(5))
        assert stats.tasks_executed == 2


class TestRoundSemantics:
    def test_rounds_equal_tree_depth(self):
        stats = RoundExecutor().run([(0, 0)], binary_spawner(4))
        assert stats.rounds == 5
        assert stats.round_sizes == [1, 2, 4, 8, 16]
        assert stats.max_round_width == 16

    def test_shuffle_does_not_change_counts(self):
        a = RoundExecutor().run([(0, 0)], binary_spawner(4))
        b = RoundExecutor(seed=11).run([(0, 0)], binary_spawner(4))
        assert a.tasks_executed == b.tasks_executed
        assert a.rounds == b.rounds


class TestSerialSemantics:
    def test_depth_first_order(self):
        seen = []

        def fn(task):
            seen.append(task)
            level, i = task
            return [] if level >= 2 else [(level + 1, 2 * i), (level + 1, 2 * i + 1)]

        SerialExecutor().run([(0, 0)], fn)
        # LIFO: the second child of the root is explored after the first
        # child's entire subtree... (stack pops last-appended first).
        assert seen[0] == (0, 0)
        assert seen[1][0] == 1


class TestThreadSemantics:
    def test_worker_exception_propagates(self):
        def fn(task):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            ThreadExecutor(3).run([1, 2, 3], fn)

    def test_poisoned_task_mid_dag_propagates(self):
        # The raising step fn fires deep inside the DAG, after other
        # tasks have already spawned children -- the executor must still
        # surface the exception instead of hanging or swallowing it.
        def fn(task):
            level, i = task
            if level == 3 and i == 5:
                raise KeyError("poisoned mid-DAG task")
            return binary_spawner(5)(task)

        for workers in (1, 4):
            with pytest.raises(KeyError, match="poisoned"):
                ThreadExecutor(workers).run([(0, 0)], fn)

    def test_iterable_initial_tasks(self):
        # Regression: `initial` used to be counted with len(list(...))
        # and then iterated again, so a generator was exhausted by the
        # count and zero tasks were enqueued -- the run hung forever on
        # the completion event.
        initial = ((0, i) for i in range(4))
        stats = ThreadExecutor(2).run(initial, binary_spawner(2))
        assert stats.tasks_executed == 4 * (2**3 - 1)

    def test_all_tasks_seen_exactly_once(self):
        seen = set()
        lock = threading.Lock()

        def fn(task):
            with lock:
                assert task not in seen
                seen.add(task)
            level, i = task
            return [] if level >= 6 else [(level + 1, 2 * i), (level + 1, 2 * i + 1)]

        stats = ThreadExecutor(8).run([(0, 0)], fn)
        assert stats.tasks_executed == len(seen) == 2**7 - 1

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ThreadExecutor(0)
