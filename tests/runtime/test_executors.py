"""Tests for the task executors over synthetic dynamic task DAGs."""

import threading

import pytest

from repro.runtime import ExecutionStats, RoundExecutor, SerialExecutor, ThreadExecutor


def binary_spawner(depth):
    """Step function: task (level, i) spawns two children until depth."""

    def fn(task):
        level, i = task
        if level >= depth:
            return []
        return [(level + 1, 2 * i), (level + 1, 2 * i + 1)]

    return fn


@pytest.mark.parametrize(
    "executor",
    [SerialExecutor(), RoundExecutor(), RoundExecutor(seed=3), ThreadExecutor(4)],
    ids=["serial", "round", "round-shuffled", "threads"],
)
class TestAllExecutors:
    def test_executes_full_tree(self, executor):
        stats = executor.run([(0, 0)], binary_spawner(5))
        assert stats.tasks_executed == 2**6 - 1

    def test_empty_initial(self, executor):
        stats = executor.run([], binary_spawner(3))
        assert stats.tasks_executed == 0

    def test_no_children(self, executor):
        stats = executor.run([(9, 0), (9, 1)], binary_spawner(5))
        assert stats.tasks_executed == 2


class TestRoundSemantics:
    def test_rounds_equal_tree_depth(self):
        stats = RoundExecutor().run([(0, 0)], binary_spawner(4))
        assert stats.rounds == 5
        assert stats.round_sizes == [1, 2, 4, 8, 16]
        assert stats.max_round_width == 16

    def test_shuffle_does_not_change_counts(self):
        a = RoundExecutor().run([(0, 0)], binary_spawner(4))
        b = RoundExecutor(seed=11).run([(0, 0)], binary_spawner(4))
        assert a.tasks_executed == b.tasks_executed
        assert a.rounds == b.rounds


class TestSerialSemantics:
    def test_depth_first_order(self):
        seen = []

        def fn(task):
            seen.append(task)
            level, i = task
            return [] if level >= 2 else [(level + 1, 2 * i), (level + 1, 2 * i + 1)]

        SerialExecutor().run([(0, 0)], fn)
        # LIFO: the second child of the root is explored after the first
        # child's entire subtree... (stack pops last-appended first).
        assert seen[0] == (0, 0)
        assert seen[1][0] == 1


class TestThreadSemantics:
    def test_worker_exception_propagates(self):
        def fn(task):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            ThreadExecutor(3).run([1, 2, 3], fn)

    def test_all_tasks_seen_exactly_once(self):
        seen = set()
        lock = threading.Lock()

        def fn(task):
            with lock:
                assert task not in seen
                seen.add(task)
            level, i = task
            return [] if level >= 6 else [(level + 1, 2 * i), (level + 1, 2 * i + 1)]

        stats = ThreadExecutor(8).run([(0, 0)], fn)
        assert stats.tasks_executed == len(seen) == 2**7 - 1

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ThreadExecutor(0)
