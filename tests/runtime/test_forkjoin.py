"""Tests for the work-stealing simulator against the classic
binary-forking bounds (Theorem 5.5's execution model)."""

import numpy as np
import pytest

from repro.geometry import on_sphere, uniform_ball
from repro.hull import parallel_hull
from repro.runtime import WorkSpanTracker
from repro.runtime.forkjoin import simulate_work_stealing


def chain_tracker(n, cost=3):
    t = WorkSpanTracker()
    prev = ()
    for _ in range(n):
        tid = t.add_task(cost, deps=prev)
        prev = (tid,)
    return t


def wide_tracker(n, cost=3):
    t = WorkSpanTracker()
    for _ in range(n):
        t.add_task(cost)
    return t


class TestBasics:
    def test_empty(self):
        stats = simulate_work_stealing(WorkSpanTracker(), 4)
        assert stats.makespan == 0 and stats.steals == 0

    def test_single_processor_executes_all_work(self):
        t = wide_tracker(20)
        stats = simulate_work_stealing(t, 1)
        assert stats.busy == t.work
        assert stats.makespan == t.work
        assert stats.steals == 0

    def test_processor_validation(self):
        with pytest.raises(ValueError):
            simulate_work_stealing(wide_tracker(3), 0)

    def test_chain_gains_nothing_from_parallelism(self):
        t = chain_tracker(30)
        s1 = simulate_work_stealing(t, 1)
        s8 = simulate_work_stealing(t, 8)
        assert s8.makespan >= s1.makespan  # pure chain: no speedup
        assert s8.busy == t.work

    def test_wide_dag_scales(self):
        t = wide_tracker(64, cost=5)
        s1 = simulate_work_stealing(t, 1)
        s8 = simulate_work_stealing(t, 8, seed=1)
        assert s8.makespan < s1.makespan / 4  # near-linear on independent work

    def test_deterministic_given_seed(self):
        t = wide_tracker(40)
        a = simulate_work_stealing(t, 4, seed=9)
        b = simulate_work_stealing(t, 4, seed=9)
        assert (a.makespan, a.steals) == (b.makespan, b.steals)


class TestClassicBounds:
    @pytest.fixture(scope="class")
    def hull_tracker(self):
        run = parallel_hull(on_sphere(800, 2, seed=6), seed=7)
        return run.tracker

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_makespan_within_ws_bound(self, hull_tracker, p):
        """T_P <= c * (W/P + S_cost) for a modest constant c (the
        expectation bound of randomized work stealing, with the
        non-malleable cost-weighted span)."""
        stats = simulate_work_stealing(hull_tracker, p, seed=p)
        bound = hull_tracker.work / p + hull_tracker.cost_span
        assert stats.makespan <= 3 * bound + 10
        assert stats.busy == hull_tracker.work

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_steals_linear_in_p_times_depth(self, hull_tracker, p):
        """Successful steals = O(P * S) whp (classic WS bound; we use
        the unit-depth proxy which dominates for our DAGs)."""
        stats = simulate_work_stealing(hull_tracker, p, seed=p + 100)
        assert stats.steals <= 20 * p * hull_tracker.depth

    def test_speedup_on_hull_dag(self, hull_tracker):
        s1 = simulate_work_stealing(hull_tracker, 1)
        s4 = simulate_work_stealing(hull_tracker, 4, seed=3)
        assert s1.makespan / s4.makespan > 2.0

    def test_ball_workload_also_scales(self):
        run = parallel_hull(uniform_ball(1000, 2, seed=8), seed=9)
        s1 = simulate_work_stealing(run.tracker, 1)
        s4 = simulate_work_stealing(run.tracker, 4, seed=2)
        assert s1.makespan / s4.makespan > 1.5
