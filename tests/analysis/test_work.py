"""Experiments E2/E6/E13 (analysis side): work accounting, the
Clarkson--Shor bound, and simulated speedups."""

import numpy as np
import pytest

from repro.analysis import compare_work, speedup_table, work_scaling
from repro.configspace.theory import clarkson_shor_conflict_bound, harmonic
from repro.geometry import on_sphere, uniform_ball
from repro.hull import parallel_hull, sequential_hull


class TestCompareWork:
    def test_row_fields(self):
        pts = uniform_ball(100, 2, seed=1)
        row = compare_work(pts, seed=2).row()
        assert row["same_facets"] and row["same_created"]
        assert 0 < row["ratio"] <= 1.0
        assert row["n"] == 100 and row["d"] == 2


class TestWorkScaling:
    def test_nlogn_shape_2d(self):
        """Theorem 5.4 for d=2: visibility tests / (n log n) stays flat."""
        rows = work_scaling([128, 256, 512, 1024], 2, uniform_ball, seed=3)
        ratios = [r["tests_per_nlogn"] for r in rows]
        assert max(ratios) / min(ratios) < 2.0

    def test_nlogn_shape_3d_sphere(self):
        rows = work_scaling([128, 256, 512], 3, on_sphere, seed=4)
        ratios = [r["tests_per_nlogn"] for r in rows]
        assert max(ratios) / min(ratios) < 2.5


class TestClarksonShor:
    def test_measured_conflicts_below_bound_2d(self):
        """Theorem 3.1: total conflict size of the construction is below
        the analytic bound with t_i <= 2i (hull size bound in 2D counts
        both orientations' facets as <= i each... facets of an i-point
        2D hull <= i)."""
        n = 300
        pts = uniform_ball(n, 2, seed=5)
        seq = sequential_hull(pts, seed=6)
        total_conflicts = sum(len(f.conflicts) for f in seq.created)
        bound = clarkson_shor_conflict_bound([float(i) for i in range(1, n + 1)], g=2)
        assert total_conflicts <= bound

    def test_visibility_tests_order_nlogn(self):
        n = 1000
        pts = uniform_ball(n, 2, seed=7)
        seq = sequential_hull(pts, seed=8)
        assert seq.counters.visibility_tests <= 30 * n * harmonic(n)


class TestSpeedup:
    @pytest.fixture(scope="class")
    def run(self):
        pts = on_sphere(400, 2, seed=9)
        return parallel_hull(pts, seed=10)

    def test_speedup_table(self, run):
        rows = speedup_table(run, [1, 2, 4, 8, 16])
        speedups = [r["speedup"] for r in rows]
        assert speedups[0] == pytest.approx(1.0)
        # Monotone non-decreasing and eventually well above 1.
        assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))
        assert speedups[-1] > 3.0

    def test_brent_bound_respected(self, run):
        for row in speedup_table(run, [2, 8, 32]):
            assert row["T_P"] <= row["brent_T_P"] + 1

    def test_parallelism_grows_with_n(self):
        pars = []
        for n in (100, 400):
            pts = on_sphere(n, 2, seed=n)
            r = parallel_hull(pts, seed=1)
            pars.append(r.tracker.parallelism)
        assert pars[1] > pars[0]
