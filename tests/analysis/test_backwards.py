"""Tests of the backwards-analysis process (the proof engine of
Theorem 4.2), executed on concrete instances."""

import numpy as np
import pytest

from repro.analysis.backwards import backwards_campaign, backwards_path
from repro.configspace.spaces import HalfplaneSpace, HullFacetSpace, tangent_halfplanes
from repro.configspace.theory import chernoff_tail, harmonic
from repro.geometry import uniform_ball


@pytest.fixture(scope="module")
def hull_space():
    pts = uniform_ball(14, 2, seed=3)
    return HullFacetSpace(pts)


class TestSinglePath:
    def test_runs_and_counts(self, hull_space):
        run = backwards_path(hull_space, list(range(14)), seed=1)
        assert 0 <= run.length <= 14
        assert len(run.extended_at) == run.length
        assert all(d <= hull_space.degree for d in run.degrees)

    def test_deterministic_given_seed(self, hull_space):
        a = backwards_path(hull_space, list(range(14)), seed=5)
        b = backwards_path(hull_space, list(range(14)), seed=5)
        assert a.length == b.length and a.extended_at == b.extended_at

    def test_custom_start(self, hull_space):
        active = hull_space.active_set(range(14))
        start = sorted(active, key=lambda c: sorted(c.defining))[-1]
        run = backwards_path(hull_space, list(range(14)), seed=2, start=start)
        assert run.length >= 0

    def test_inactive_start_rejected(self, hull_space):
        from repro.configspace import Config

        fake = Config(defining=frozenset({0, 1}), tag=99, conflicts=frozenset())
        with pytest.raises(ValueError):
            backwards_path(hull_space, list(range(14)), seed=0, start=fake)


class TestProofBounds:
    def test_mean_length_below_gHn(self, hull_space):
        """The proof's first inequality: E[L] <= g * H_n."""
        stats = backwards_campaign(hull_space, list(range(14)), trials=120, seed=0)
        assert stats["mean_length"] <= stats["bound_gHn"]

    def test_extension_rate_bounded_by_g_over_i(self, hull_space):
        """Per-step extension probability <= g/i (the proof's key
        estimate), within sampling noise."""
        trials = 300
        stats = backwards_campaign(hull_space, list(range(14)), trials=trials, seed=1)
        g = stats["g"]
        for i, rate in stats["extension_rate_by_step"].items():
            bound = min(1.0, g / i)
            sigma = np.sqrt(bound * (1 - bound) / trials) if bound < 1 else 0.0
            assert rate <= bound + 4 * sigma + 1e-9, (i, rate, bound)

    def test_tail_dominated_by_chernoff(self, hull_space):
        """Pr[L >= A] <= (e * gH_n / A)^A empirically."""
        stats = backwards_campaign(hull_space, list(range(14)), trials=200, seed=2)
        lengths = np.array(stats["lengths"])
        mean_bound = stats["bound_gHn"]
        for a in range(int(mean_bound) + 1, int(lengths.max()) + 2):
            emp = float((lengths >= a).mean())
            assert emp <= chernoff_tail(mean_bound, a) + 0.1

    def test_halfplane_space_too(self):
        normals, offsets = tangent_halfplanes(12, seed=4)
        space = HalfplaneSpace(normals, offsets)
        stats = backwards_campaign(space, list(range(12)), trials=60, seed=3)
        assert stats["mean_length"] <= stats["bound_gHn"]
