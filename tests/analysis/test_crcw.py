"""Tests for the CRCW span accounting (E3's PRAM side)."""

import math

import pytest

from repro.analysis.crcw import crcw_span
from repro.geometry import on_sphere, uniform_ball
from repro.hull import parallel_hull
from repro.runtime.pram import log_star


@pytest.fixture(scope="module")
def runs():
    return {
        n: parallel_hull(on_sphere(n, 2, seed=n), seed=5) for n in (128, 512, 2048)
    }


class TestCRCWSpan:
    def test_span_exceeds_algorithm_rounds(self, runs):
        for run in runs.values():
            rep = crcw_span(run)
            assert rep.span_rounds >= rep.algorithm_rounds
            assert rep.work_ops > 0

    def test_per_round_cost_small_and_stable(self, runs):
        """Each algorithm round costs a near-constant handful of PRAM
        rounds (the O(log* n) charge of Theorem 5.4)."""
        per_round = [crcw_span(run).span_per_round for run in runs.values()]
        assert all(2 <= c <= 25 for c in per_round)
        assert max(per_round) / min(per_round) < 2.5

    def test_normalized_span_bounded(self, runs):
        for n, run in runs.items():
            rep = crcw_span(run)
            assert rep.normalized() < 15, (n, rep)

    def test_exact_compaction_costs_more(self, runs):
        run = runs[512]
        approx = crcw_span(run, compaction="approximate")
        exact = crcw_span(run, compaction="exact")
        assert exact.span_rounds > approx.span_rounds

    def test_invalid_mode(self, runs):
        with pytest.raises(ValueError):
            crcw_span(runs[128], compaction="fancy")

    def test_deterministic_given_seed(self):
        run = parallel_hull(uniform_ball(200, 2, seed=1), seed=2)
        a = crcw_span(run, seed=7)
        b = crcw_span(run, seed=7)
        assert a.span_rounds == b.span_rounds
