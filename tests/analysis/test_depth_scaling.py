"""Experiment E1: Theorems 1.1 / 4.2 / 5.3 -- the dependence depth of
the incremental hull is O(log n) whp.

We verify the *shape*: the empirical sigma = depth / H_n stays bounded
as n grows (a super-logarithmic depth would make it drift up), the
measured depth stays under the analytic whp bound, and the tail bound
formula dominates the empirical tail frequencies.
"""

import numpy as np
import pytest

from repro.analysis import DepthCampaign, fit_log_slope, measure_hull_depths
from repro.configspace.theory import depth_bound_whp, harmonic, min_sigma
from repro.geometry import on_sphere, uniform_ball
from repro.hull import parallel_hull


@pytest.fixture(scope="module")
def campaign_2d():
    return measure_hull_depths(
        ns=[64, 128, 256, 512, 1024], d=2, seeds=range(5)
    )


class TestLogDepth2D:
    def test_sigma_bounded(self, campaign_2d):
        # Empirical sigma = depth / H_n must stay well below the
        # theorem's constant g*k*e^2 ~ 29.6 for d=2 (and in practice
        # lands around 3-5).
        for s in campaign_2d.samples:
            assert s.depth_over_harmonic < min_sigma(2, 2)

    def test_sigma_not_drifting(self, campaign_2d):
        sigmas = [s.depth_over_harmonic for s in campaign_2d.samples]
        # Ratio between largest-n and smallest-n sigma stays near 1;
        # linear depth would give ~ n/log n growth (>5x here).
        assert sigmas[-1] / sigmas[0] < 1.6

    def test_depth_below_whp_bound(self, campaign_2d):
        for s in campaign_2d.samples:
            assert s.max_depth <= depth_bound_whp(s.n, g=2, k=2, c=2)

    def test_log_slope_sane(self, campaign_2d):
        ns = np.array([s.n for s in campaign_2d.samples], dtype=float)
        ds = np.array([s.mean_depth for s in campaign_2d.samples])
        slope = fit_log_slope(ns, ds)
        # Theta(log n) depth: slope per ln n is a small constant.
        assert 0.5 < slope < 12.0
        # Against sqrt growth: depth(1024)/depth(64) ~ log ratio ~1.67,
        # not sqrt ratio 4.
        assert ds[-1] / ds[0] < 2.5

    def test_rounds_track_depth(self, campaign_2d):
        for s in campaign_2d.samples:
            assert max(s.rounds) <= s.max_depth + 2


class TestHigherDimensions:
    @pytest.mark.parametrize("d", [3, 4])
    def test_depth_logarithmic(self, d):
        camp = measure_hull_depths(ns=[64, 256, 1024], d=d, seeds=range(3))
        sigmas = [s.depth_over_harmonic for s in camp.samples]
        assert sigmas[-1] / sigmas[0] < 1.8
        assert all(sig < min_sigma(d, 2) for sig in sigmas)


class TestAllExtremeWorkload:
    def test_sphere_depth_still_logarithmic(self):
        camp = measure_hull_depths(
            ns=[64, 256, 1024], d=2, seeds=range(3), generator=on_sphere
        )
        sigmas = [s.depth_over_harmonic for s in camp.samples]
        assert sigmas[-1] / sigmas[0] < 1.8


class TestTailBound:
    def test_empirical_tail_below_theorem(self):
        """Theorem 4.2 at sigma = g*k*e^2: the bound is >= 1 for these n
        (vacuous), so check the sharper structural fact instead -- no
        run among many seeds exceeds sigma* H_n for sigma* = 8."""
        n = 256
        depths = []
        for seed in range(20):
            pts = uniform_ball(n, 2, seed=seed)
            run = parallel_hull(pts, seed=seed + 1000)
            depths.append(run.dependence_depth())
        assert max(depths) <= 8 * harmonic(n)

    def test_distribution_concentrated(self):
        """whp concentration: the spread of depths across seeds is small
        relative to the mean."""
        n = 512
        depths = []
        for seed in range(15):
            pts = uniform_ball(n, 2, seed=seed + 40)
            run = parallel_hull(pts, seed=seed)
            depths.append(run.dependence_depth())
        depths = np.array(depths, dtype=float)
        assert depths.std() < 0.35 * depths.mean()


class TestCampaignTable:
    def test_table_structure(self, campaign_2d):
        table = campaign_2d.table()
        assert [row["n"] for row in table] == [64, 128, 256, 512, 1024]
        for row in table:
            assert row["mean_depth"] > 0
            assert row["depth/H_n"] > 0

    def test_sigma_stability_helper(self, campaign_2d):
        assert campaign_2d.sigma_stable(rel_tol=1.0)
