"""Differential tests: the noisy oracle's self-healing ladder vs the
exact oracle.

Claim under test: for any input -- Hypothesis-driven random clouds and
every family of the adversarial degenerate corpus -- ``robust_hull``
with a :class:`NoisyKernel` returns the *same hull* as the noise-free
ladder, because every noisy rung is gated by the independently-exact
certificate and rejection escalates (votes, then the exact rungs).
The escalation path must be recorded and end on the surviving rung.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import uniform_ball, uniform_cube
from repro.geometry.degenerate import CORPUS
from repro.geometry.noisy import ADAPTIVE, NoisyKernel
from repro.hull.robust import robust_hull


def _global_keys(run) -> set:
    order = np.asarray(run.order)
    return {tuple(sorted(int(order[r]) for r in f.indices)) for f in run.facets}


def _assert_ladder_matches_exact(pts, seed, nk):
    res = robust_hull(pts, seed=seed, noise=nk)
    exact = robust_hull(pts, seed=seed)
    assert _global_keys(res.run) == _global_keys(exact.run)
    assert res.escalations
    assert res.escalations[-1].split("#")[0].startswith(res.mode)
    assert res.escalations[-1].endswith(":ok") or res.mode == "joggle"


instances = st.tuples(
    st.integers(2, 4),            # d
    st.integers(12, 60),          # n
    st.integers(0, 10_000),       # point seed
    st.integers(0, 10_000),       # noise seed
    st.sampled_from([0.001, 0.01, 0.05]),
    st.booleans(),                # ball vs cube
)


@given(instances)
@settings(max_examples=8, deadline=None)
def test_ladder_matches_exact_on_random_inputs(params):
    d, n, seed, nseed, p, ball = params
    n = max(n, d + 2)
    gen = uniform_ball if ball else uniform_cube
    pts = gen(n, d, seed=seed)
    _assert_ladder_matches_exact(
        pts, seed, NoisyKernel(p=p, votes=ADAPTIVE, seed=nseed)
    )


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_ladder_matches_exact_on_corpus(name):
    # Degenerate inputs make the noisy rungs fail for *two* reasons at
    # once (lies and genuine degeneracy); the gate must still land the
    # ladder on exactly the hull the noise-free ladder picks.
    pts = CORPUS[name](0)
    _assert_ladder_matches_exact(
        pts, 0, NoisyKernel(p=0.05, votes=ADAPTIVE, seed=1)
    )
