"""Differential tests: the batched kernel vs the scalar oracle.

Structure-preserving claim under test: ``kernel="batch"`` is a pure
engine swap -- for any input, any executor, and any multimap, the hull
run produces the *same facets with the same conflict sets and the same
work counters* as the scalar path, because every batched sign is either
float-certified inside the same error envelope the scalar predicates
use or re-decided by the very same exact ladder.  Hypothesis drives the
instances; the executor matrix covers sequential, round-synchronous
(ordered and shuffled), threaded, fault-injected rounds, and thread
chaos.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import uniform_ball, uniform_cube
from repro.geometry.kernels import orient_batch
from repro.geometry.predicates import orient
from repro.hull import parallel_hull, sequential_hull
from repro.hull.point_parallel import point_parallel_hull
from repro.runtime import RoundExecutor, SerialExecutor, ThreadExecutor
from repro.runtime.chaos import ChaosThreadExecutor
from repro.runtime.faults import FaultPlan

# -- predicate level ---------------------------------------------------------

blocks = st.tuples(
    st.integers(2, 4),          # d
    st.integers(1, 8),          # simplices
    st.integers(1, 12),         # queries
    st.integers(0, 10_000),     # seed
)


@given(blocks)
@settings(max_examples=25, deadline=None)
def test_orient_batch_equals_orient_floats(params):
    d, nf, nq, seed = params
    rng = np.random.default_rng(seed)
    simplices = rng.standard_normal((nf, d, d))
    queries = rng.standard_normal((nq, d))
    got = orient_batch(simplices, queries)
    want = np.array(
        [[orient(simplices[f], queries[q]) for q in range(nq)] for f in range(nf)]
    )
    assert np.array_equal(got, want)


@given(blocks)
@settings(max_examples=25, deadline=None)
def test_orient_batch_equals_orient_integer_grids(params):
    """Small-integer coordinates force exact ties: the filter must
    escalate, never guess."""
    d, nf, nq, seed = params
    rng = np.random.default_rng(seed)
    simplices = rng.integers(-3, 4, size=(nf, d, d)).astype(float)
    queries = rng.integers(-3, 4, size=(nq, d)).astype(float)
    got = orient_batch(simplices, queries)
    want = np.array(
        [[orient(simplices[f], queries[q]) for q in range(nq)] for f in range(nf)]
    )
    assert np.array_equal(got, want)


# -- hull level: executor matrix --------------------------------------------

EXECUTORS = [
    ("serial", lambda: (SerialExecutor(), "dict", None)),
    ("rounds", lambda: (RoundExecutor(), "dict", None)),
    ("rounds-shuffled", lambda: (RoundExecutor(seed=5), "dict", None)),
    ("threads-cas", lambda: (ThreadExecutor(2), "cas", None)),
    (
        "rounds-faults",
        lambda: (RoundExecutor(), "dict", FaultPlan(seed=3, crash_rate=0.2)),
    ),
    (
        "chaos-threads",
        lambda: (
            ChaosThreadExecutor(2, plan=FaultPlan(seed=7, crash_rate=0.15)),
            "cas",
            None,
        ),
    ),
]

hull_instances = st.tuples(
    st.integers(0, 5_000),                    # seed
    st.integers(12, 70),                      # n
    st.sampled_from([2, 3]),                  # d
)


def _reference(pts, order):
    return sequential_hull(pts, order=order.copy(), kernel="scalar")


@pytest.mark.parametrize("name,make", EXECUTORS, ids=[e[0] for e in EXECUTORS])
@given(hull_instances)
@settings(max_examples=10, deadline=None)
def test_batch_hull_matches_scalar_reference(name, make, params):
    seed, n, d = params
    pts = uniform_ball(n, d, seed=seed)
    order = np.random.default_rng(seed + 1).permutation(n)
    ref = _reference(pts, order)
    executor, multimap, plan = make()
    run = parallel_hull(
        pts,
        order=order.copy(),
        executor=executor,
        multimap=multimap,
        fault_plan=plan,
        kernel="batch",
    )
    assert run.facet_keys() == ref.facet_keys()
    assert run.exec_stats.kernel_stats["kernel"] == "batch"
    assert run.exec_stats.kernel_stats["batched_signs"] > 0


@given(hull_instances)
@settings(max_examples=10, deadline=None)
def test_batch_sequential_identical_counters(params):
    """Same engine-for-engine run: facets, conflicts, and every counter
    must be bit-identical, not just the final hull."""
    seed, n, d = params
    pts = uniform_cube(n, d, seed=seed)
    order = np.random.default_rng(seed + 2).permutation(n)
    a = sequential_hull(pts, order=order.copy(), kernel="scalar")
    b = sequential_hull(pts, order=order.copy(), kernel="batch")
    assert a.facet_keys() == b.facet_keys()
    assert a.created_keys() == b.created_keys()
    assert a.counters.as_dict() == b.counters.as_dict()
    for fa, fb in zip(a.created, b.created):
        assert fa.fid == fb.fid
        assert np.array_equal(fa.conflicts, fb.conflicts)


@given(hull_instances)
@settings(max_examples=8, deadline=None)
def test_batch_point_parallel_matches_scalar(params):
    seed, n, d = params
    pts = uniform_ball(n, d, seed=seed + 9)
    order = np.random.default_rng(seed + 3).permutation(n)
    a = point_parallel_hull(pts, order=order.copy(), kernel="scalar")
    b = point_parallel_hull(pts, order=order.copy(), kernel="batch")
    assert a.facet_keys() == b.facet_keys()


def test_chaos_rollback_hits_sign_cache():
    """A crash-heavy fault plan forces facet re-creation; the re-created
    facets must answer from the sign cache and still match the
    fault-free hull."""
    pts = uniform_ball(80, 2, seed=13)
    order = np.random.default_rng(14).permutation(80)
    clean = parallel_hull(pts, order=order.copy(), kernel="batch")
    plan = FaultPlan(seed=21, crash_rate=0.4)
    run = parallel_hull(
        pts,
        order=order.copy(),
        executor=RoundExecutor(),
        fault_plan=plan,
        kernel="batch",
    )
    assert run.facet_keys() == clean.facet_keys()
    assert run.exec_stats.rollbacks > 0, "plan injected no faults; bump rates"
    assert run.exec_stats.kernel_stats["cache_hits"] > 0


# -- external oracle ---------------------------------------------------------

@given(st.tuples(st.integers(0, 2_000), st.integers(16, 60), st.sampled_from([2, 3])))
@settings(max_examples=8, deadline=None)
def test_batch_hull_matches_scipy_vertices(params):
    scipy_spatial = pytest.importorskip("scipy.spatial")
    seed, n, d = params
    pts = uniform_ball(n, d, seed=seed + 77)
    run = parallel_hull(pts, seed=seed, kernel="batch")
    ours = set(map(int, run.vertex_indices()))
    theirs = set(map(int, scipy_spatial.ConvexHull(pts).vertices))
    assert ours == theirs
