"""Kernel-vs-scalar agreement over the adversarial degenerate corpus.

Every family in :data:`repro.geometry.degenerate.CORPUS` is a designed
trap for float predicates -- exact ties (duplicates, grids, cocircular
points) or near-ties inside naive tolerances.  The batched kernel must
*escalate* on these, never silently disagree: its float filter may only
certify signs outside the error envelope, so every exact tie lands in
the fallback counter and comes back with the scalar ladder's answer.
"""

import numpy as np
import pytest

from repro.geometry.degenerate import CORPUS
from repro.geometry.kernels import KERNEL_STATS, orient_batch
from repro.geometry.predicates import orient
from repro.hull.robust import robust_hull

#: Families containing *exact* ties (signed volume exactly zero for
#: some simplex x query pair).  The near-* families sit ~1e-13 off the
#: ties -- inside naive tolerances but resolvable by an honest float
#: filter, so the fallback counter may legitimately stay zero there.
TIE_FAMILIES = {
    "duplicates-2d",
    "duplicates-3d",
    "all-coincident",
    "collinear-3d",
    "coplanar-3d",
    "grid-2d",
    "grid-3d",
    "cocircular",
    "cospherical",
}


def _sampled_simplices(pts: np.ndarray, seed: int) -> np.ndarray:
    """A deterministic batch of d-subsets: sliding windows plus random
    draws, so ties between defining points and queries are guaranteed."""
    n, d = pts.shape
    rng = np.random.default_rng(seed)
    rows = [np.arange(i, i + d) % n for i in range(min(n, 10))]
    rows += [rng.choice(n, size=d, replace=False) for _ in range(10)]
    return pts[np.stack(rows)]


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_predicate_agreement_on_corpus(name):
    pts = CORPUS[name](0)
    simplices = _sampled_simplices(pts, seed=hash(name) % 2**31)
    got = orient_batch(simplices, pts)
    for f in range(simplices.shape[0]):
        for q in range(pts.shape[0]):
            assert got[f, q] == orient(simplices[f], pts[q]), (name, f, q)
    if name in TIE_FAMILIES:
        # The queries include each simplex's own defining points, so
        # exact ties exist and every one must have taken the fallback.
        assert KERNEL_STATS.fallbacks > 0, name


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_hull_agreement_on_corpus(name):
    """The escalation ladder lands on the same rung and the same facet
    set whichever visibility engine runs underneath."""
    pts = CORPUS[name](1)
    scalar = robust_hull(pts, seed=2, certify=False, kernel="scalar")
    KERNEL_STATS.reset()
    batch = robust_hull(pts, seed=2, certify=False, kernel="batch")
    assert batch.mode == scalar.mode, name
    assert batch.run.facet_keys() == scalar.run.facet_keys(), name
    if name in TIE_FAMILIES:
        assert KERNEL_STATS.fallbacks > 0, name
