"""Round-level differential tests: the conflict-list SoA engine vs the
scalar oracle.

Claim under test (the determinism theorem made executable): for any
input and insertion order, the SoA engine creates the *same facet
multiset with the same per-facet conflict sets* as the sequential
scalar driver, emits byte-identical certificates, and accounts the same
scalar-equivalent work -- because every float-certain sign is proven by
the shared error envelope and every ambiguous sign takes the same exact
ladder.  Hypothesis drives the instances; fixed sweeps cover the
degenerate corpus, both kernels, the noisy p=0 bit-identity, and the
driver adapters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import uniform_ball, uniform_cube
from repro.geometry.degenerate import corpus_case, corpus_names
from repro.geometry.noisy import NoisyKernel
from repro.hull import (
    make_certificate,
    parallel_hull,
    robust_hull,
    sequential_hull,
    soa_hull,
    validate_hull,
    verify_certificate,
)
from repro.hull.common import HullSetupError

hull_instances = st.tuples(
    st.integers(0, 5_000),                    # seed
    st.integers(12, 70),                      # n
    st.sampled_from([2, 3, 4]),               # d
)


def _oracle(pts, order):
    return sequential_hull(pts, order=order.copy(), kernel="scalar")


def _assert_equivalent(soa, ref):
    """The full intrinsic-identity contract between an SoAHullRun and
    the scalar oracle's SequentialHullResult."""
    assert soa.facet_keys() == ref.facet_keys()
    assert soa.created_keys() == ref.created_keys()
    ref_conf = {f.key(): f.conflicts for f in ref.created}
    soa_conf = soa.created_conflicts()
    assert set(soa_conf) == set(ref_conf)
    for k, want in ref_conf.items():
        assert np.array_equal(soa_conf[k], want)
    # Intrinsic counters (execution-order independent by the paper's
    # determinism theorem) are exactly equal; the order-dependent ridge
    # counters (flips, buried, ...) are deliberately not compared.
    assert soa.counters.visibility_tests == ref.counters.visibility_tests
    assert soa.counters.facets_created == ref.counters.facets_created


@pytest.mark.parametrize("kernel", ["batch", "scalar"])
@given(hull_instances)
@settings(max_examples=10, deadline=None)
def test_soa_matches_scalar_oracle(kernel, params):
    seed, n, d = params
    pts = uniform_ball(n, d, seed=seed)
    order = np.random.default_rng(seed + 1).permutation(n)
    ref = _oracle(pts, order)
    soa = soa_hull(pts, order=order.copy(), kernel=kernel)
    _assert_equivalent(soa, ref)


@given(hull_instances)
@settings(max_examples=8, deadline=None)
def test_soa_work_span_scalar_equivalent(params):
    """One batched sweep per round at the round's summed candidate cost:
    total work equals the scalar-equivalent visibility-test count, and
    the span reflects the round-synchronous schedule."""
    seed, n, d = params
    pts = uniform_cube(n, d, seed=seed)
    order = np.random.default_rng(seed + 2).permutation(n)
    ref = _oracle(pts, order)
    soa = soa_hull(pts, order=order.copy())
    assert soa.tracker.work == soa.counters.visibility_tests
    assert soa.counters.visibility_tests == ref.counters.visibility_tests
    assert 0 < soa.tracker.span <= soa.tracker.work
    assert soa.exec_stats.rounds >= 1


@given(hull_instances)
@settings(max_examples=8, deadline=None)
def test_soa_certificate_identical_and_independently_verified(params):
    """Certificates are emitted from the SoA run directly (duck-typed
    over points/order/facets), equal the oracle's byte for byte, and
    pass the independent exact verifier."""
    seed, n, d = params
    pts = uniform_ball(n, d, seed=seed + 11)
    order = np.random.default_rng(seed + 3).permutation(n)
    ref = _oracle(pts, order)
    soa = soa_hull(pts, order=order.copy())
    cert_soa = make_certificate(soa, "float")
    cert_ref = make_certificate(ref, "float")
    assert cert_soa.to_dict() == cert_ref.to_dict()
    verify_certificate(cert_soa, pts)
    validate_hull(soa.facets, soa.points)


@pytest.mark.parametrize("name", corpus_names())
def test_soa_on_degenerate_corpus(name):
    """Every family of the degenerate corpus: the SoA engine either
    produces the oracle's exact facet/conflict structure or raises the
    same setup/degeneracy error the oracle raises."""
    for seed in (0, 1):
        pts = corpus_case(name, seed)
        order = np.random.default_rng(seed + 5).permutation(pts.shape[0])
        try:
            ref = _oracle(pts, order)
        except (HullSetupError, ValueError) as exc:
            ref, ref_err = None, type(exc)
        else:
            ref_err = None
        if ref_err is None:
            soa = soa_hull(pts, order=order.copy())
            _assert_equivalent(soa, ref)
        else:
            with pytest.raises((HullSetupError, ValueError)):
                soa_hull(pts, order=order.copy())


@pytest.mark.parametrize("name", ["coplanar-3d", "collinear-3d", "all-coincident"])
def test_soa_robust_ladder_reaches_same_rung(name):
    """Degenerate families that defeat the float and exact rungs: the
    SoA-engined ladder escalates through the same path to the same
    surviving rung and facet set as the object-engined one."""
    pts = corpus_case(name, 0)
    a = robust_hull(pts, seed=0)
    b = robust_hull(pts, seed=0, engine="soa", kernel="batch")
    assert a.mode == b.mode
    assert a.escalations == b.escalations
    assert a.run.facet_keys() == b.run.facet_keys()


@pytest.mark.parametrize("base", ["scalar", "batch"])
def test_soa_noisy_p0_bit_identity(base):
    """A p=0 NoisyKernel must be a no-op wrapper: facets, counters, and
    the flat conflict pool are bit-identical to the unwrapped engine,
    which in turn matches the scalar oracle."""
    pts = uniform_ball(64, 3, seed=21)
    order = np.random.default_rng(22).permutation(64)
    plain = soa_hull(pts, order=order.copy(), kernel=base)
    noisy = soa_hull(
        pts, order=order.copy(),
        kernel=NoisyKernel(p=0.0, votes=3, seed=7, base=base),
    )
    assert plain.facet_keys() == noisy.facet_keys()
    assert plain.counters.as_dict() == noisy.counters.as_dict()
    assert np.array_equal(plain.conflict_pool, noisy.conflict_pool)
    assert np.array_equal(plain.conflict_lens, noisy.conflict_lens)
    _assert_equivalent(noisy, _oracle(pts, order))


def test_soa_noisy_ladder_self_heals():
    """With real noise, the certificate-gated ladder over the SoA engine
    must land on a verified hull (possibly after escalation)."""
    pts = uniform_ball(90, 3, seed=31)
    nk = NoisyKernel(p=0.05, votes=3, seed=9, base="batch")
    res = robust_hull(pts, seed=0, noise=nk, engine="soa")
    assert res.certificate is not None
    ref = robust_hull(pts, seed=0)
    assert res.run.facet_keys() == ref.run.facet_keys()


# -- driver adapters ---------------------------------------------------------

@given(st.tuples(st.integers(0, 3_000), st.integers(12, 60), st.sampled_from([2, 3])))
@settings(max_examples=8, deadline=None)
def test_parallel_adapter_matches_object_driver(params):
    seed, n, d = params
    pts = uniform_ball(n, d, seed=seed + 41)
    order = np.random.default_rng(seed + 6).permutation(n)
    a = parallel_hull(pts, order=order.copy())
    b = parallel_hull(pts, order=order.copy(), engine="soa", kernel="batch")
    assert a.facet_keys() == b.facet_keys()
    assert a.created_keys() == b.created_keys()
    ca = {f.key(): f.conflicts for f in a.created}
    cb = {f.key(): f.conflicts for f in b.created}
    for k, want in ca.items():
        assert np.array_equal(cb[k], want)
    assert a.counters.visibility_tests == b.counters.visibility_tests
    assert a.counters.facets_created == b.counters.facets_created
    assert a.dependence_depth() == b.dependence_depth()
    assert len(a.events) == len(b.events)


@given(st.tuples(st.integers(0, 3_000), st.integers(12, 60), st.sampled_from([2, 3])))
@settings(max_examples=8, deadline=None)
def test_sequential_adapter_matches_object_driver(params):
    seed, n, d = params
    pts = uniform_cube(n, d, seed=seed + 51)
    order = np.random.default_rng(seed + 7).permutation(n)
    a = sequential_hull(pts, order=order.copy())
    b = sequential_hull(pts, order=order.copy(), engine="soa", kernel="batch")
    assert a.facet_keys() == b.facet_keys()
    assert a.created_keys() == b.created_keys()
    steps_a = {f.key(): a.creation_step[f.fid] for f in a.created}
    steps_b = {f.key(): b.creation_step[f.fid] for f in b.created}
    assert steps_a == steps_b


def test_engine_argument_is_validated():
    pts = uniform_ball(20, 2, seed=1)
    with pytest.raises(ValueError, match="unknown engine"):
        parallel_hull(pts, seed=0, engine="nope")
    with pytest.raises(ValueError, match="unknown engine"):
        sequential_hull(pts, seed=0, engine="nope")
    with pytest.raises(ValueError, match="multimap"):
        parallel_hull(pts, seed=0, engine="soa", multimap="cas")
