"""Experiment E7: the Section 6 corner configuration space for
degenerate 3D hulls -- Lemma 6.1 (active set == hull corners) and
Lemma 6.2 (4-support), certified exactly on engineered degenerate
inputs."""

import numpy as np
import pytest

from repro.configspace import check_k_support
from repro.configspace.spaces import CornerConfigSpace


def cube_points(midpoints=0, seed=0):
    """Unit-cube corners (scaled by 2 for integer midpoints) plus
    ``midpoints`` face/edge midpoints -- heavily coplanar."""
    base = np.array(
        [[x, y, z] for x in (0.0, 2) for y in (0.0, 2) for z in (0.0, 2)]
    )
    extras = np.array(
        [[1.0, 1, 0], [1, 0, 1], [0, 1, 1], [1, 1, 2], [1, 2, 1], [2, 1, 1],
         [1.0, 0, 0], [0, 1, 0], [0, 0, 1]]
    )
    return np.vstack([base, extras[:midpoints]])


def pyramid_with_square_base():
    """A 4-coplanar base: the canonical degenerate facet."""
    return np.array(
        [[0.0, 0, 0], [2, 0, 0], [2, 2, 0], [0, 2, 0], [1, 1, 2]]
    )


class TestConstants:
    def test_parameters(self):
        space = CornerConfigSpace(cube_points())
        assert space.degree == 3
        assert space.multiplicity == 6
        assert space.support_k == 4
        assert space.base_size == 4

    def test_requires_3d(self):
        with pytest.raises(ValueError):
            CornerConfigSpace(np.zeros((4, 2)))


class TestLemma61:
    """T(Y) contains exactly one configuration per corner of the hull."""

    @pytest.mark.parametrize("midpoints", [0, 3, 6, 9])
    def test_cube_with_midpoints(self, midpoints):
        pts = cube_points(midpoints)
        space = CornerConfigSpace(pts)
        Y = list(range(len(pts)))
        active = {c.key() for c in space.active_set(Y)}
        assert active == space.hull_corners(Y)

    def test_pyramid(self):
        pts = pyramid_with_square_base()
        space = CornerConfigSpace(pts)
        Y = list(range(5))
        active = {c.key() for c in space.active_set(Y)}
        geometric = space.hull_corners(Y)
        assert active == geometric
        # Square base contributes 4 corners; each of the 4 triangular
        # side faces contributes 3.
        assert len(active) == 4 + 4 * 3

    def test_cube_corner_count(self):
        pts = cube_points(0)
        space = CornerConfigSpace(pts)
        active = space.active_set(range(8))
        # 6 square faces x 4 corners each.
        assert len(active) == 24

    def test_edge_midpoints_are_not_corners(self):
        pts = cube_points(9)  # includes edge midpoints (1,0,0), (0,1,0), (0,0,1)
        space = CornerConfigSpace(pts)
        active = space.active_set(range(len(pts)))
        corner_points = {tag[0] for c in active for tag in [c.tag]}
        for edge_mid in (14, 15, 16):  # indices of the edge midpoints
            assert edge_mid not in corner_points

    def test_general_position_matches_facets(self):
        rng = np.random.default_rng(5)
        pts = rng.standard_normal((8, 3))
        space = CornerConfigSpace(pts)
        active = space.active_set(range(8))
        from repro.hull import sequential_hull

        hull = sequential_hull(pts, order=np.arange(8))
        # Triangular facets: 3 corners each.
        assert len(active) == 3 * len(hull.facets)

    def test_all_coplanar_raises(self):
        pts = np.array([[0.0, 0, 0], [1, 0, 0], [0, 1, 0], [1, 1, 0], [2, 1, 0]])
        space = CornerConfigSpace(pts)
        with pytest.raises(ValueError):
            space.hull_corners(range(5))


class TestLemma62:
    """4-support, verified exhaustively per (config, defining object)."""

    @pytest.mark.parametrize(
        "pts_fn,label",
        [
            (lambda: cube_points(0), "cube"),
            (lambda: cube_points(3), "cube+face-mids"),
            (pyramid_with_square_base, "pyramid"),
        ],
    )
    def test_four_support(self, pts_fn, label):
        pts = pts_fn()
        space = CornerConfigSpace(pts)
        report = check_k_support(space, range(len(pts)), k=4)
        assert report.ok, (label, report.failures)
        assert report.max_support_size() <= 4

    def test_general_position_needs_at_most_four(self):
        rng = np.random.default_rng(7)
        pts = rng.standard_normal((7, 3))
        space = CornerConfigSpace(pts)
        report = check_k_support(space, range(7), k=4)
        assert report.ok, report.failures


class TestConflictRules:
    def test_points_above_plane_conflict(self):
        pts = pyramid_with_square_base()
        space = CornerConfigSpace(pts)
        # Base corner config 0-1-2 on the apex side conflicts with the
        # apex (index 4).
        for side in (1, -1):
            cfg = space._config(0, 1, 2, side)
            assert cfg is not None
        sides = [space._config(0, 1, 2, s) for s in (1, -1)]
        assert any(4 in c.conflicts for c in sides)
        assert any(4 not in c.conflicts for c in sides)

    def test_collinear_beyond_conflicts(self):
        # Points on the line pm->pl beyond pl conflict; between, not.
        pts = np.array(
            [[0.0, 0, 0], [2, 0, 0], [0, 2, 0],  # pl-ish config points
             [3, 0, 0],   # beyond (2,0,0) on the pm->pl line
             [1, 0, 0],   # between
             [0, 0, 2]]
        )
        space = CornerConfigSpace(pts)
        # Corner at pm=0 with pl=1, pr=2 (both sides).
        for side in (1, -1):
            cfg = space._config(1, 0, 2, side)
            assert 3 in cfg.conflicts      # beyond pl: always a conflict
            assert 4 not in cfg.conflicts  # between pm and pl: never


class TestPropertyBased:
    """Random degenerate sub-instances of the integer grid: Lemma 6.1
    and 4-support must hold on every full-dimensional subset."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_grid_subsets(self, seed):
        rng = np.random.default_rng(seed)
        grid = np.array(
            [[x, y, z] for x in (0.0, 1, 2) for y in (0.0, 1, 2) for z in (0.0, 1, 2)]
        )
        idx = rng.choice(len(grid), size=8, replace=False)
        pts = grid[idx]
        space = CornerConfigSpace(pts)
        Y = list(range(8))
        try:
            geometric = space.hull_corners(Y)
        except ValueError:
            return  # subset not full-dimensional: out of scope
        active = {c.key() for c in space.active_set(Y)}
        assert active == geometric
        report = check_k_support(space, Y, k=4)
        assert report.ok, report.failures
