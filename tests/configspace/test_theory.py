"""Tests for the analytic bound calculators (Theorems 3.1 and 4.2)."""

import math

import pytest

from repro.configspace.theory import (
    chernoff_tail,
    clarkson_shor_conflict_bound,
    depth_bound_whp,
    depth_tail_bound,
    expected_path_length_bound,
    harmonic,
    min_sigma,
)


class TestHarmonic:
    def test_small_values(self):
        assert harmonic(0) == 0
        assert harmonic(1) == 1
        assert harmonic(2) == pytest.approx(1.5)
        assert harmonic(4) == pytest.approx(25 / 12)

    def test_asymptotic_form(self):
        n = 1000
        assert harmonic(n) == pytest.approx(math.log(n) + 0.5772156649, abs=1e-3)

    def test_large_n_expansion(self):
        n = 50_000_000
        approx = harmonic(n)
        assert approx == pytest.approx(math.log(n) + 0.5772156649, abs=1e-6)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            harmonic(-1)


class TestChernoff:
    def test_decreasing_in_a(self):
        vals = [chernoff_tail(2.0, a) for a in (6, 10, 20)]
        assert vals[0] > vals[1] > vals[2]

    def test_trivial_for_nonpositive_a(self):
        assert chernoff_tail(2.0, 0) == 1.0


class TestDepthTail:
    def test_matches_formula(self):
        # c * n^-(sigma - g) with g=2, k=2, c=2.
        sigma = min_sigma(2, 2) + 1
        p = depth_tail_bound(1000, sigma, g=2, k=2, c=2)
        assert p == pytest.approx(min(1.0, 2 * 1000.0 ** (-(sigma - 2))))

    def test_sigma_threshold_enforced(self):
        with pytest.raises(ValueError):
            depth_tail_bound(100, sigma=1.0, g=2, k=2, c=2)

    def test_probability_clamped(self):
        assert depth_tail_bound(2, min_sigma(1, 1) + 0.1, g=1, k=1, c=100) <= 1.0

    def test_whp_bound_is_log_scale(self):
        b1 = depth_bound_whp(1000, g=2, k=2, c=2)
        b2 = depth_bound_whp(1_000_000, g=2, k=2, c=2)
        # Doubling log n should roughly double the bound.
        assert b2 / b1 == pytest.approx(harmonic(1_000_000) / harmonic(1000))

    def test_expected_path_bound(self):
        assert expected_path_length_bound(100, 3) == pytest.approx(3 * harmonic(100))


class TestClarksonShor:
    def test_linear_active_sets_give_nlogn(self):
        # t_i = i (e.g. 2D/3D hulls): bound = n g^2 sum i/i^2 = n g^2 H_n.
        n, g = 256, 2
        bound = clarkson_shor_conflict_bound([float(i) for i in range(1, n + 1)], g)
        assert bound == pytest.approx(n * g * g * harmonic(n))

    def test_constant_active_sets_give_linear(self):
        n, g = 100, 2
        bound = clarkson_shor_conflict_bound([5.0] * n, g)
        assert bound == pytest.approx(n * g * g * 5.0 * sum(1 / (i * i) for i in range(1, n + 1)))
