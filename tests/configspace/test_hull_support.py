"""Experiment E5: Theorem 5.1 and Fact 5.2 -- the hull facet space has
2-support with base size d+1, with support sets that are always two
facets sharing a ridge."""

import numpy as np
import pytest

from repro.configspace import check_k_support
from repro.configspace.spaces import HullFacetSpace
from repro.geometry import on_sphere, uniform_ball, uniform_cube


class TestSpaceConstants:
    def test_table1_parameters(self):
        for d in (2, 3, 4):
            space = HullFacetSpace(uniform_ball(d + 3, d, seed=d))
            assert space.degree == d            # g = d
            assert space.multiplicity == 2      # c = 2 (up and down)
            assert space.support_k == 2         # k = 2
            assert space.base_size == d + 1     # n_b = d + 1


class TestActiveSets:
    def test_active_set_is_hull(self):
        pts = uniform_ball(9, 2, seed=1)
        space = HullFacetSpace(pts)
        active = space.active_set(range(9))
        from repro.hull import brute_force_facet_sets

        assert {c.defining for c in active} == brute_force_facet_sets(pts)

    def test_subset_active_sets(self):
        pts = uniform_ball(10, 2, seed=2)
        space = HullFacetSpace(pts)
        sub = [0, 2, 4, 6, 8]
        active = space.active_set(sub)
        from repro.hull import brute_force_facet_sets

        expect = brute_force_facet_sets(pts[sub])  # local indices into sub
        assert {c.defining for c in active} == {
            frozenset(sub[j] for j in f) for f in expect
        }

    def test_below_base_size_empty(self):
        pts = uniform_ball(8, 3, seed=3)
        space = HullFacetSpace(pts)
        assert space.active_set(range(3)) == set()

    def test_complementary_conflicts(self):
        """The paper: the two orientations of one defining set have
        complementary conflict sets (excluding the defining points)."""
        pts = uniform_ball(7, 2, seed=4)
        space = HullFacetSpace(pts)
        up = space._config((0, 1), 1)
        down = space._config((0, 1), -1)
        everything = frozenset(range(7)) - {0, 1}
        assert up.conflicts | down.conflicts == everything
        assert not (up.conflicts & down.conflicts)

    def test_degenerate_point_raises(self):
        pts = np.array([[0.0, 0], [2, 0], [1, 0], [0, 1]])
        space = HullFacetSpace(pts)
        with pytest.raises(ValueError):
            space.active_set(range(4))


@pytest.mark.parametrize(
    "gen,d,n,seed",
    [
        (uniform_ball, 2, 9, 10),
        (uniform_ball, 2, 11, 11),
        (uniform_ball, 3, 9, 12),
        (uniform_ball, 4, 8, 13),
        (on_sphere, 2, 10, 14),
        (on_sphere, 3, 8, 15),
        (uniform_cube, 3, 9, 16),
    ],
)
def test_theorem_5_1_two_support(gen, d, n, seed):
    """Exhaustive certification of 2-support on concrete instances."""
    pts = gen(n, d, seed=seed)
    space = HullFacetSpace(pts)
    report = check_k_support(space, range(n))
    assert report.ok, report.failures
    assert report.max_support_size() <= 2


def test_fact_5_2_support_shares_ridge():
    """Every constructive support pair consists of two facets sharing
    the ridge D(t) \\ {x}, with x visible from exactly one of them."""
    pts = uniform_ball(10, 2, seed=20)
    space = HullFacetSpace(pts)
    report = check_k_support(space, range(10))
    assert report.ok
    for (key, x), phi in report.witnesses.items():
        defining, _tag = key
        ridge = defining - {x}
        assert len(phi) == 2
        for p_def, _p_tag in phi:
            assert ridge <= p_def
        # x is in the union of the supports' conflicts (Definition 3.2
        # condition 2 already implies it; check the sharper Fact 5.2
        # claim that exactly one of the two sees x).
        confs = []
        for p_def, p_tag in phi:
            cfg = space._config(tuple(sorted(p_def)), p_tag)
            confs.append(x in cfg.conflicts)
        assert sorted(confs) == [False, True]


def test_support_exists_for_every_subset_size():
    """Definition 3.3 quantifies over all sufficiently large Y: sample
    nested subsets of one instance."""
    pts = uniform_ball(12, 2, seed=21)
    space = HullFacetSpace(pts)
    for size in range(space.base_size + 1, 12):
        report = check_k_support(space, range(size))
        assert report.ok, (size, report.failures)
