"""Tests for Algorithm 1 (the generic parallel incremental algorithm):
it must compute the correct active set for *every* configuration space,
with round count bounded by the dependence-graph depth."""

import numpy as np
import pytest

from repro.configspace import build_dependence_graph, generic_parallel_incremental
from repro.configspace.spaces import (
    CornerConfigSpace,
    DelaunayLiftedSpace,
    HalfplaneSpace,
    HullFacetSpace,
    HullRidgeSpace,
    UnitCircleArcSpace,
    clustered_unit_circles,
    tangent_halfplanes,
)
from repro.geometry import uniform_ball


def spaces_under_test():
    pts2 = uniform_ball(9, 2, seed=1)
    pts3 = uniform_ball(8, 3, seed=2)
    normals, offsets = tangent_halfplanes(9, seed=3)
    centers = clustered_unit_circles(8, seed=4)
    cube = np.array([[x, y, z] for x in (0.0, 2) for y in (0.0, 2) for z in (0.0, 2)])
    return [
        ("hull2d", HullFacetSpace(pts2), 9),
        ("hull3d", HullFacetSpace(pts3), 8),
        ("ridges2d", HullRidgeSpace(pts2), 9),
        ("halfplanes", HalfplaneSpace(normals, offsets), 9),
        ("circles", UnitCircleArcSpace(centers), 8),
        ("corners-cube", CornerConfigSpace(cube), 8),
        ("delaunay-lifted", DelaunayLiftedSpace(uniform_ball(8, 2, seed=5)), 8),
    ]


@pytest.mark.parametrize(
    "name,space,n", spaces_under_test(), ids=[s[0] for s in spaces_under_test()]
)
class TestEverySpace:
    def test_active_set_correct(self, name, space, n):
        run = generic_parallel_incremental(space, range(n))
        assert run.active == space.active_set(range(n)), name

    def test_rounds_at_most_definitional_depth(self, name, space, n):
        run = generic_parallel_incremental(space, range(n))
        graph = build_dependence_graph(space, list(range(n)), strict=False)
        # Algorithm 1 may discover shallower (non-canonical) support
        # sets, so rounds <= the canonical depth... plus the base round.
        assert run.rounds <= graph.depth() + 1, name

    def test_supports_within_k(self, name, space, n):
        run = generic_parallel_incremental(space, range(n))
        for key, sup in run.supports.items():
            assert 1 <= len(sup) <= space.support_k, (name, key)


class TestDeterminism:
    def test_same_order_same_run(self):
        pts = uniform_ball(9, 2, seed=6)
        space = HullFacetSpace(pts)
        a = generic_parallel_incremental(space, range(9))
        b = generic_parallel_incremental(space, range(9))
        assert a.added_round == b.added_round
        assert a.rounds == b.rounds

    def test_different_orders_same_active(self):
        pts = uniform_ball(9, 2, seed=7)
        space = HullFacetSpace(pts)
        ref = generic_parallel_incremental(space, range(9)).active
        rng = np.random.default_rng(0)
        for _ in range(3):
            order = rng.permutation(9)
            assert generic_parallel_incremental(space, list(order)).active == ref


class TestValidation:
    def test_too_few_objects(self):
        pts = uniform_ball(5, 2, seed=8)
        space = HullFacetSpace(pts)
        with pytest.raises(ValueError):
            generic_parallel_incremental(space, range(2))
