"""Experiment E10: the ridge-based hull formulation (Section 7 ¶1) --
constant multiplicity, activity == hull ridges, 2-support, and the
delete-own-support property the paper highlights."""

import numpy as np
import pytest

from repro.configspace import check_k_support
from repro.configspace.spaces import HullRidgeSpace
from repro.geometry import uniform_ball
from repro.geometry.simplex import facet_ridges
from repro.hull import sequential_hull


class TestConstants:
    def test_parameters(self):
        for d in (2, 3):
            space = HullRidgeSpace(uniform_ball(d + 4, d, seed=d))
            assert space.degree == d + 1
            assert space.multiplicity == (d + 1) * d // 2  # C(d+1, d-1)
            assert space.support_k == 2


class TestActiveSets:
    @pytest.mark.parametrize("d,n,seed", [(2, 9, 1), (3, 8, 2)])
    def test_active_configs_are_hull_ridges(self, d, n, seed):
        pts = uniform_ball(n, d, seed=seed)
        space = HullRidgeSpace(pts)
        active = space.active_set(range(n))
        hull = sequential_hull(pts, order=np.arange(n))
        # Expected: one configuration per hull ridge, defined by the
        # ridge plus the two apex points of its incident facets.
        ridge_to_facets: dict[frozenset, list] = {}
        for f in hull.facets:
            for r in facet_ridges(f.indices):
                ridge_to_facets.setdefault(r, []).append(frozenset(f.indices))
        expected = set()
        for r, facets in ridge_to_facets.items():
            apexes = frozenset().union(*facets) - r
            expected.add((r | apexes, r))
        assert {(c.defining, c.tag) for c in active} == expected

    def test_conflicts_union_of_facet_conflicts(self):
        pts = uniform_ball(9, 2, seed=3)
        space = HullRidgeSpace(pts)
        active = space.active_set(range(9))
        for c in active:
            # Active configurations of the full set conflict with nothing.
            assert not c.conflicts


@pytest.mark.parametrize("d,n,seed", [(2, 8, 4), (2, 10, 5), (3, 8, 6)])
def test_two_support(d, n, seed):
    pts = uniform_ball(n, d, seed=seed)
    space = HullRidgeSpace(pts)
    report = check_k_support(space, range(n))
    assert report.ok, report.failures
    assert report.max_support_size() <= 2


def test_adding_destroys_support():
    """The paper: this formulation 'has the property that adding a facet
    deletes all of its support set'.  The generic searcher may return an
    alternative witness, so assert the sharper claim directly: for every
    (pi, x) there exists a support set of size <= 2 whose members ALL
    conflict with x (and so are all destroyed by adding it)."""
    from itertools import combinations

    from repro.configspace import is_support_set

    pts = uniform_ball(9, 2, seed=7)
    space = HullRidgeSpace(pts)
    Y = frozenset(range(9))
    for config in space.active_set(Y):
        for x in sorted(config.defining):
            prev = space.active_set(Y - {x})
            destroyed = [c for c in prev if x in c.conflicts]
            found = any(
                is_support_set(config, x, phi)
                for size in (1, 2)
                for phi in combinations(destroyed, size)
            )
            assert found, (config, x)
