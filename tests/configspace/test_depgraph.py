"""Tests for the configuration dependence graph (Definition 4.1)."""

import numpy as np
import pytest

from repro.configspace import build_dependence_graph, graph_from_hull_run
from repro.configspace.depgraph import DependenceGraph
from repro.configspace.spaces import HullFacetSpace
from repro.geometry import uniform_ball
from repro.hull import parallel_hull


class TestDependenceGraphStructure:
    def test_depth_of_chain(self):
        g = DependenceGraph()
        g.order = ["a", "b", "c"]
        g.parents = {"b": ("a",), "c": ("b",)}
        assert g.depth() == 2
        assert g.levels() == {"a": 0, "b": 1, "c": 2}

    def test_depth_of_roots_only(self):
        g = DependenceGraph()
        g.order = ["a", "b"]
        assert g.depth() == 0

    def test_networkx_export(self):
        g = DependenceGraph()
        g.order = ["a", "b", "c"]
        g.parents = {"c": ("a", "b")}
        nxg = g.to_networkx()
        assert set(nxg.nodes) == {"a", "b", "c"}
        assert set(nxg.edges) == {("a", "c"), ("b", "c")}
        assert len(g) == 3


class TestDefinitionalConstruction:
    def test_hull_space_depth_small(self):
        pts = uniform_ball(10, 2, seed=5)
        space = HullFacetSpace(pts)
        graph = build_dependence_graph(space, list(range(10)))
        assert graph.depth() >= 1
        # Every non-root has at most k = 2 parents.
        for key, parents in graph.parents.items():
            assert 1 <= len(parents) <= 2

    def test_strict_failure_on_impossible_k(self):
        pts = uniform_ball(8, 2, seed=6)
        space = HullFacetSpace(pts)
        space.support_k = 0  # sabotage
        with pytest.raises(AssertionError):
            build_dependence_graph(space, list(range(8)))

    def test_added_at_increasing_along_edges(self):
        pts = uniform_ball(9, 2, seed=7)
        space = HullFacetSpace(pts)
        graph = build_dependence_graph(space, list(range(9)))
        for key, parents in graph.parents.items():
            for p in parents:
                assert graph.added_at[p] < graph.added_at[key]


class TestAgainstHullRun:
    """The definitional graph and the algorithmic support DAG must agree
    on depth: both realise Definition 4.1 for the facet space."""

    @pytest.mark.parametrize("n,seed", [(9, 1), (11, 2), (13, 3)])
    def test_depths_match(self, n, seed):
        pts = uniform_ball(n, 2, seed=seed)
        order = np.arange(n)
        space = HullFacetSpace(pts)
        definitional = build_dependence_graph(space, list(order))
        run = parallel_hull(pts, order=order)
        algorithmic = graph_from_hull_run(run)
        assert definitional.depth() == algorithmic.depth() == run.dependence_depth()

    def test_same_number_of_configurations(self):
        n, seed = 11, 9
        pts = uniform_ball(n, 2, seed=seed)
        order = np.arange(n)
        space = HullFacetSpace(pts)
        definitional = build_dependence_graph(space, list(order))
        run = parallel_hull(pts, order=order)
        # The definitional graph counts configurations that *become
        # active*; the run counts created facets.  They coincide for
        # hulls (every created facet was active when created).
        assert len(definitional) == len(run.created)
