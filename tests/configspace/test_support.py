"""Tests for support sets (Definition 3.2) and the k-support checker."""

import numpy as np
import pytest

from repro.configspace import Config, check_k_support, find_support_set, is_support_set
from repro.configspace.spaces import HullFacetSpace
from repro.geometry import uniform_ball


def cfg(defining, conflicts, tag=None):
    return Config(defining=frozenset(defining), tag=tag, conflicts=frozenset(conflicts))


class TestIsSupportSet:
    def test_definition_satisfied(self):
        pi = cfg({1, 2}, {5})
        t1 = cfg({1, 3}, {2, 5, 6}, tag="a")
        t2 = cfg({1, 4}, {2, 7}, tag="b")
        # D(pi)={1,2} subseteq D(phi)+{2}={1,3,4}+{2}; C(pi)+{2}={5,2}
        # subseteq C(phi)={2,5,6,7}.
        assert is_support_set(pi, 2, (t1, t2))

    def test_x_must_be_defining(self):
        pi = cfg({1, 2}, {5})
        t1 = cfg({1, 2}, {3, 5}, tag="a")
        assert not is_support_set(pi, 9, (t1,))

    def test_missing_conflict_coverage(self):
        pi = cfg({1, 2}, {5, 8})
        t1 = cfg({1, 3}, {2, 5}, tag="a")  # does not cover conflict 8
        assert not is_support_set(pi, 2, (t1,))

    def test_x_must_conflict_with_phi(self):
        pi = cfg({1, 2}, set())
        t1 = cfg({1, 3}, {9}, tag="a")  # 2 not in C(phi)
        assert not is_support_set(pi, 2, (t1,))

    def test_missing_defining_coverage(self):
        pi = cfg({1, 2, 6}, set())
        t1 = cfg({1, 3}, {2}, tag="a")  # 6 uncovered
        assert not is_support_set(pi, 2, (t1,))

    def test_empty_phi_never_supports(self):
        pi = cfg({1}, set())
        assert not is_support_set(pi, 1, ())


class TestFindSupportSet:
    def test_finds_minimal(self):
        pi = cfg({1, 2}, {5})
        good = cfg({1, 9}, {2, 5}, tag="g")
        noise = cfg({7, 8}, {42}, tag="n")
        phi = find_support_set([noise, good], pi, 2, k=2)
        assert phi == (good,)

    def test_returns_none_when_absent(self):
        pi = cfg({1, 2}, {5})
        noise = cfg({7, 8}, {42}, tag="n")
        assert find_support_set([noise], pi, 2, k=2) is None

    def test_respects_k(self):
        # Covering D(pi) \ {x} = {1, 3, 4} needs all three singleton
        # configurations, so no support of size <= 2 exists.
        pi = cfg({1, 2, 3, 4}, set())
        parts = [
            cfg({1}, {2}, tag="p1"),
            cfg({3}, {2}, tag="p3"),
            cfg({4}, {2}, tag="p4"),
        ]
        assert find_support_set(parts, pi, 2, k=2) is None
        assert find_support_set(parts, pi, 2, k=3) is not None


class TestCheckKSupport:
    def test_hull_2support_report(self):
        pts = uniform_ball(8, 2, seed=1)
        space = HullFacetSpace(pts)
        report = check_k_support(space, range(8))
        assert report.ok
        assert report.checked > 0
        assert report.max_support_size() <= 2
        # Every witness pair shares the configuration's ridge.
        for (key, x), phi in report.witnesses.items():
            defining, _tag = key
            ridge = defining - {x}
            for p_defining, _p_tag in phi:
                assert ridge <= p_defining

    def test_k_below_true_support_fails(self):
        pts = uniform_ball(8, 2, seed=2)
        space = HullFacetSpace(pts)
        report = check_k_support(space, range(8), k=0)
        assert not report.ok

    def test_witness_recording_optional(self):
        pts = uniform_ball(7, 2, seed=3)
        space = HullFacetSpace(pts)
        report = check_k_support(space, range(7), record_witnesses=False)
        assert report.ok and not report.witnesses
