"""Tests for the shared hull machinery (point preparation, bootstrap
simplex selection, facet factory)."""

import numpy as np
import pytest

from repro.geometry import integer_grid, uniform_ball
from repro.hull.common import (
    Counters,
    FacetFactory,
    HullSetupError,
    initial_simplex_ranks,
    prepare_points,
    promote_initial,
)


class TestPreparePoints:
    def test_random_order_is_permutation(self):
        pts = uniform_ball(30, 2, seed=0)
        out, order = prepare_points(pts, seed=1)
        assert sorted(order.tolist()) == list(range(30))
        assert np.array_equal(out, pts[order])

    def test_seed_determinism(self):
        pts = uniform_ball(30, 2, seed=0)
        _, o1 = prepare_points(pts, seed=5)
        _, o2 = prepare_points(pts, seed=5)
        assert np.array_equal(o1, o2)

    def test_explicit_order_respected(self):
        pts = uniform_ball(10, 2, seed=0)
        order = np.arange(10)[::-1].copy()
        out, o = prepare_points(pts, order=order)
        assert np.array_equal(out[0], pts[9])


class TestInitialSimplex:
    def test_general_position_takes_prefix(self):
        pts = uniform_ball(20, 3, seed=2)
        assert initial_simplex_ranks(pts) == [0, 1, 2, 3]

    def test_skips_dependent_points(self):
        pts = np.array([[0.0, 0], [1, 0], [2, 0], [0.5, 0], [1, 1]])
        assert initial_simplex_ranks(pts) == [0, 1, 4]

    def test_exact_on_integer_grid(self):
        pts = integer_grid(3, 2, shuffle=False)  # rows (0,0),(0,1),(0,2),...
        ranks = initial_simplex_ranks(pts)
        # (0,0), (0,1) then the first point off the x=0 line: (1,0).
        assert ranks == [0, 1, 3]

    def test_flat_input_raises(self):
        pts = np.array([[0.0, 0, 0], [1, 0, 0], [0, 1, 0], [1, 1, 0], [2, 3, 0]])
        with pytest.raises(HullSetupError):
            initial_simplex_ranks(pts)

    def test_promote_preserves_relative_order(self):
        pts = np.arange(12, dtype=float).reshape(6, 2)
        pts[:, 1] = [0, 0, 1, 0, 2, 5]  # make some structure
        order = np.arange(6)
        ranks = initial_simplex_ranks(pts)
        out, new_order = promote_initial(pts, order, ranks)
        rest = [i for i in range(6) if i not in ranks]
        assert new_order.tolist() == ranks + rest


class TestFacetFactory:
    def test_conflicts_exclude_defining_points(self):
        pts = np.array([[0.0, 0], [1, 0], [0, 1], [2, 2], [-5, -5]])
        factory = FacetFactory(pts, interior=np.array([0.3, 0.3]), counters=Counters())
        f = factory.make((0, 1), np.arange(5, dtype=np.int64))
        assert 0 not in f.conflicts and 1 not in f.conflicts

    def test_conflicts_sorted_ascending(self):
        pts = uniform_ball(30, 2, seed=3)
        interior = pts[:3].mean(axis=0)
        factory = FacetFactory(pts, interior=interior, counters=Counters())
        f = factory.make((0, 1), np.arange(30, dtype=np.int64))
        assert np.array_equal(f.conflicts, np.sort(f.conflicts))

    def test_fids_unique_and_increasing(self):
        pts = uniform_ball(10, 2, seed=4)
        factory = FacetFactory(pts, interior=pts.mean(axis=0), counters=Counters())
        fids = [factory.make((0, i), np.zeros(0, dtype=np.int64)).fid for i in range(1, 5)]
        assert fids == sorted(set(fids))

    def test_counters_track_tests(self):
        pts = uniform_ball(20, 2, seed=5)
        counters = Counters()
        factory = FacetFactory(pts, interior=pts[:3].mean(axis=0), counters=counters)
        factory.make((0, 1), np.arange(20, dtype=np.int64))
        assert counters.visibility_tests == 18  # 20 minus the 2 defining
        assert counters.facets_created == 1

    def test_merge_candidates(self):
        a = np.array([3, 5, 9], dtype=np.int64)
        b = np.array([5, 7, 11], dtype=np.int64)
        merged = FacetFactory.merge_candidates(a, b, above=5)
        assert merged.tolist() == [7, 9, 11]

    def test_merge_empty(self):
        e = np.zeros(0, dtype=np.int64)
        assert FacetFactory.merge_candidates(e, e, above=0).size == 0


class TestCounters:
    def test_as_dict_roundtrip(self):
        c = Counters(visibility_tests=5, facets_created=2)
        d = c.as_dict()
        assert d["visibility_tests"] == 5
        assert d["facets_created"] == 2
        assert set(d) == set(Counters().as_dict())
