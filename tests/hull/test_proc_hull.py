"""Differential suite for the supervised multiprocess hull executor.

The acceptance bar is stricter than facet-set identity: a
ProcessExecutor hull under 20-40% injected worker kills/stalls must be
*bit-identical* to the fault-free serial run -- same facet sets, same
event trace, same counters, same work/span DAG -- and leak no
shared-memory segments, because the supervised loop replays the exact
serial bookkeeping over results computed (possibly many times) by
workers that keep dying.
"""

import numpy as np
import pytest

from repro.geometry import uniform_ball, uniform_cube
from repro.hull import facet_sets_global, parallel_hull, validate_hull
from repro.runtime import RoundExecutor
from repro.runtime.chaos import chaos_hull_roundtrip
from repro.runtime.faults import FaultPlan
from repro.runtime.procexec import ProcessExecutor, active_segments


@pytest.fixture
def instance():
    pts = uniform_ball(100, 3, seed=11)
    order = np.random.default_rng(8).permutation(100)
    return pts, order


def _pexec(plan=None, n_workers=4, **kw):
    kw.setdefault("max_retries", 8)
    kw.setdefault("chunk_timeout", 10.0)
    kw.setdefault("hb_timeout", 2.0)
    kw.setdefault("hb_interval", 0.02)
    return ProcessExecutor(n_workers=n_workers, plan=plan, **kw)


def _assert_bit_identical(run, base):
    validate_hull(run.facets, run.points)
    assert facet_sets_global(run.facets, run.order) == facet_sets_global(
        base.facets, base.order
    )
    assert run.created_keys() == base.created_keys()
    assert [f.fid for f in run.created] == [f.fid for f in base.created]
    assert run.events == base.events
    assert run.counters.as_dict() == base.counters.as_dict()
    assert run.tracker.work == base.tracker.work
    assert run.tracker.span == base.tracker.span


class TestFaultFree:
    def test_bit_identical_to_serial(self, instance):
        pts, order = instance
        base = parallel_hull(pts, order=order.copy(), executor=RoundExecutor())
        run = parallel_hull(pts, order=order.copy(), executor=_pexec())
        _assert_bit_identical(run, base)
        s = run.exec_stats
        assert s.worker_deaths == s.retries == s.quarantined == 0
        assert s.escalations == []

    def test_no_segment_leak(self, instance):
        pts, order = instance
        before = active_segments()
        parallel_hull(pts, order=order.copy(), executor=_pexec())
        assert active_segments() == before

    def test_2d_cube(self):
        pts = uniform_cube(80, 2, seed=3)
        order = np.random.default_rng(4).permutation(80)
        base = parallel_hull(pts, order=order.copy(), executor=RoundExecutor())
        run = parallel_hull(pts, order=order.copy(), executor=_pexec(n_workers=2))
        _assert_bit_identical(run, base)


class TestInjectedFaults:
    @pytest.mark.parametrize("kill_rate,seed", [(0.2, 21), (0.4, 22)])
    def test_kills_bit_identical(self, instance, kill_rate, seed):
        pts, order = instance
        base = parallel_hull(pts, order=order.copy(), executor=RoundExecutor())
        plan = FaultPlan(seed=seed, kill_rate=kill_rate)
        run = parallel_hull(
            pts, order=order.copy(),
            executor=_pexec(plan, max_respawns=256),
        )
        _assert_bit_identical(run, base)
        assert run.exec_stats.worker_deaths > 0
        assert run.exec_stats.respawns > 0

    def test_stalls_bit_identical(self, instance):
        pts, order = instance
        base = parallel_hull(pts, order=order.copy(), executor=RoundExecutor())
        plan = FaultPlan(seed=31, stall_rate=0.25)
        run = parallel_hull(
            pts, order=order.copy(),
            executor=_pexec(plan, hb_timeout=0.3, max_respawns=256),
        )
        _assert_bit_identical(run, base)
        assert run.exec_stats.stall_kills > 0

    def test_mixed_storm_bit_identical(self, instance):
        pts, order = instance
        base = parallel_hull(pts, order=order.copy(), executor=RoundExecutor())
        plan = FaultPlan(seed=41, kill_rate=0.15, stall_rate=0.1,
                         drop_rate=0.1, dup_rate=0.2, delay_rate=0.2)
        run = parallel_hull(
            pts, order=order.copy(),
            executor=_pexec(plan, hb_timeout=0.5, chunk_timeout=2.0,
                            max_respawns=256),
        )
        _assert_bit_identical(run, base)
        s = run.exec_stats
        assert s.worker_deaths > 0
        assert s.retries > 0

    def test_certificate_identical_and_verified_under_kills(self, instance):
        # The acceptance bar names certificates explicitly: the
        # process-executor run under 30% kills must emit the exact
        # certificate of the fault-free serial run, and it must pass
        # the independent exact verifier.
        from repro.hull.certify import make_certificate, verify_certificate

        pts, order = instance
        base = parallel_hull(pts, order=order.copy(), executor=RoundExecutor())
        run = parallel_hull(
            pts, order=order.copy(),
            executor=_pexec(FaultPlan(seed=22, kill_rate=0.3),
                            max_respawns=256),
        )
        cert = make_certificate(run)
        verify_certificate(cert, pts)
        assert cert.to_dict() == make_certificate(base).to_dict()

    def test_no_segment_leak_under_kills(self, instance):
        pts, order = instance
        before = active_segments()
        parallel_hull(
            pts, order=order.copy(),
            executor=_pexec(FaultPlan(seed=21, kill_rate=0.3),
                            max_respawns=256),
        )
        assert active_segments() == before

    def test_fault_plan_kwarg_reaches_executor(self, instance):
        # fault_plan= on parallel_hull wires into a plan-less
        # ProcessExecutor, same as for RoundExecutor.
        pts, order = instance
        ex = _pexec(max_respawns=256)
        assert ex.plan is None
        plan = FaultPlan(seed=21, kill_rate=0.25)
        run = parallel_hull(pts, order=order.copy(), executor=ex,
                            fault_plan=plan)
        assert ex.plan is plan
        assert run.exec_stats.worker_deaths > 0


class TestDegradationLadder:
    def test_quarantine_escalates_to_thread_rung(self, instance):
        # A retry budget of zero turns the first lost chunk into
        # quarantine; the hull must still complete, bit-identically,
        # through the thread/serial rungs, and record the escalation.
        pts, order = instance
        base = parallel_hull(pts, order=order.copy(), executor=RoundExecutor())
        plan = FaultPlan(seed=51, kill_rate=0.35)
        run = parallel_hull(
            pts, order=order.copy(),
            executor=_pexec(plan, max_retries=0, max_respawns=256),
        )
        _assert_bit_identical(run, base)
        assert any(e.startswith("process->") for e in run.exec_stats.escalations)

    def test_broken_pool_escalates(self, instance):
        # Respawn budget 0: the first worker death breaks the pool; the
        # ladder must absorb it.
        pts, order = instance
        base = parallel_hull(pts, order=order.copy(), executor=RoundExecutor())
        plan = FaultPlan(seed=61, kill_rate=0.5)
        run = parallel_hull(
            pts, order=order.copy(),
            executor=_pexec(plan, max_respawns=0),
        )
        _assert_bit_identical(run, base)
        assert run.exec_stats.escalations

    def test_escalation_recorded_in_serialized_summary(self, instance):
        from repro.hull.serialize import run_summary

        pts, order = instance
        plan = FaultPlan(seed=51, kill_rate=0.35)
        run = parallel_hull(
            pts, order=order.copy(),
            executor=_pexec(plan, max_retries=0, max_respawns=256),
        )
        summary = run_summary(run)
        assert summary["exec"]["escalations"] == [
            str(e) for e in run.exec_stats.escalations
        ]
        sup = summary["exec"]["supervision"]
        assert sup["worker_deaths"] == run.exec_stats.worker_deaths
        assert sup["quarantined"] == run.exec_stats.quarantined


class TestRoundtripHelper:
    def test_procs_roundtrip_report(self):
        rep = chaos_hull_roundtrip(
            n=60, d=3, seed=9, kill_rate=0.25, executor_kind="procs",
            n_workers=3,
        )
        assert rep["ok"] and rep["same_facets"]
        assert rep["trace_identical"]
        assert rep["worker_deaths"] > 0

    def test_procs_roundtrip_clean(self):
        rep = chaos_hull_roundtrip(
            n=50, d=2, seed=13, executor_kind="procs", n_workers=2,
        )
        assert rep["ok"] and rep["trace_identical"]
        assert rep["worker_deaths"] == 0
