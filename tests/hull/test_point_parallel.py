"""Tests for the point-parallel baseline (experiment E15): correctness,
and the round-count comparison against Algorithm 3 that quantifies what
facet-level asynchrony buys."""

import numpy as np
import pytest

from repro.geometry import on_circle, on_sphere, uniform_ball
from repro.hull import parallel_hull, sequential_hull, validate_hull
from repro.hull.point_parallel import point_parallel_hull


class TestCorrectness:
    @pytest.mark.parametrize("d,n", [(2, 200), (3, 150), (4, 60)])
    def test_same_hull_as_sequential(self, d, n):
        pts = uniform_ball(n, d, seed=d * 100 + n)
        order = np.random.default_rng(5).permutation(n)
        pp = point_parallel_hull(pts, order=order.copy())
        validate_hull(pp.facets, pp.points)
        seq = sequential_hull(pts, order=order.copy())
        assert pp.facet_keys() == seq.facet_keys()

    def test_all_extreme(self):
        pts = on_sphere(150, 2, seed=9)
        pp = point_parallel_hull(pts, seed=1)
        assert len(pp.facets) == 150

    def test_deferred_lower_rank_points_survive(self):
        """Regression: a deferred point with smaller rank than a chosen
        one must stay in the new facets' conflict sets."""
        for seed in range(8):
            pts = on_circle(80, seed=seed)
            pp = point_parallel_hull(pts, seed=seed + 50)
            validate_hull(pp.facets, pp.points)

    def test_round_accounting(self):
        pts = uniform_ball(300, 2, seed=11)
        pp = point_parallel_hull(pts, seed=2)
        assert pp.rounds == len(pp.round_sizes) == len(pp.deferred)
        assert sum(pp.round_sizes) <= 300 - 3  # interior points retire silently
        assert all(s >= 0 for s in pp.round_sizes)


class TestComparisonWithAlgorithm3:
    @pytest.mark.parametrize("gen", [uniform_ball, on_sphere], ids=["ball", "sphere"])
    def test_algorithm3_depth_not_worse(self, gen):
        """On random orders, Algorithm 3's dependence depth is at most
        the point-parallel round count (asynchrony can only help --
        each point-parallel round is >= one dependence level)."""
        for n in (256, 1024):
            pts = gen(n, 2, seed=n)
            order = np.random.default_rng(1).permutation(n)
            pp = point_parallel_hull(pts, order=order.copy())
            par = parallel_hull(pts, order=order.copy())
            assert par.dependence_depth() <= pp.rounds

    def test_rounds_grow_logarithmically_on_random_order(self):
        """Even the baseline is O(log n)-ish under *random* orders (the
        observation practical codes rely on) -- the paper's contribution
        is proving the stronger facet-level bound."""
        rounds = []
        for n in (256, 1024, 4096):
            pts = uniform_ball(n, 2, seed=n)
            pp = point_parallel_hull(pts, seed=3)
            rounds.append(pp.rounds)
        assert rounds[2] / rounds[0] < 3.0  # log-ish, not sqrt/linear

    def test_deferrals_happen(self):
        """The baseline actually serialises conflicting points (it is
        not trivially one round)."""
        pts = on_sphere(512, 2, seed=5)
        pp = point_parallel_hull(pts, seed=4)
        assert sum(pp.deferred) > 0
        assert pp.rounds > 5
