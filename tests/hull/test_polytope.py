"""Tests for polytope post-processing (volume, adjacency, membership)."""

import numpy as np
import pytest
from scipy.spatial import ConvexHull as ScipyHull

from repro.geometry import uniform_ball
from repro.hull import Polytope, parallel_hull, sequential_hull


@pytest.fixture
def cube_poly():
    corners = np.array(
        [[x, y, z] for x in (0.0, 1) for y in (0.0, 1) for z in (0.0, 1)]
    )
    rng = np.random.default_rng(0)
    inner = rng.random((20, 3)) * 0.8 + 0.1
    pts = np.vstack([corners, inner])
    run = sequential_hull(pts, seed=1)
    return Polytope.from_run(run)


class TestVolume:
    def test_unit_cube(self, cube_poly):
        assert cube_poly.volume() == pytest.approx(1.0, rel=1e-9)

    def test_unit_cube_surface(self, cube_poly):
        assert cube_poly.surface_measure() == pytest.approx(6.0, rel=1e-9)

    def test_triangle_area_and_perimeter(self):
        pts = np.array([[0.0, 0], [4, 0], [0, 3], [1, 1]])
        run = sequential_hull(pts, order=np.arange(4))
        poly = Polytope.from_run(run)
        assert poly.volume() == pytest.approx(6.0)
        assert poly.surface_measure() == pytest.approx(12.0)

    @pytest.mark.parametrize("d", [2, 3])
    def test_matches_scipy_volume(self, d):
        pts = uniform_ball(100, d, seed=d)
        run = parallel_hull(pts, seed=2)
        poly = Polytope.from_run(run)
        sp = ScipyHull(pts)
        assert poly.volume() == pytest.approx(sp.volume, rel=1e-9)


class TestStructure:
    def test_vertices_sorted_unique(self, cube_poly):
        v = cube_poly.vertices()
        assert v == sorted(set(v))
        assert len(v) == 8

    def test_adjacency_regular(self, cube_poly):
        adj = cube_poly.adjacency()
        # Simplicial 3D: every facet has exactly 3 neighbours.
        assert all(len(nbrs) == 3 for nbrs in adj.values())
        # Symmetry.
        for fid, nbrs in adj.items():
            for m in nbrs:
                assert fid in adj[m]


class TestMembership:
    def test_interior_point(self, cube_poly):
        assert cube_poly.contains([0.5, 0.5, 0.5], strict=True)

    def test_boundary_point(self, cube_poly):
        assert cube_poly.contains([0.5, 0.5, 0.0])
        assert not cube_poly.contains([0.5, 0.5, 0.0], strict=True)

    def test_outside_point(self, cube_poly):
        assert not cube_poly.contains([1.5, 0.5, 0.5])
