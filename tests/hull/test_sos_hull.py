"""Degenerate inputs end to end: the SoS hull is canonical across all
execution disciplines, and the robust ladder handles the whole
adversarial corpus without ever joggling."""

import numpy as np
import pytest

from repro.geometry.degenerate import CORPUS, corpus_case, corpus_names
from repro.geometry.hyperplane import exact_mode
from repro.geometry.perturb import sos_mode
from repro.hull import (
    facet_sets_global,
    parallel_hull,
    robust_hull,
    sequential_hull,
    validate_hull,
)
from repro.runtime import RoundExecutor, SerialExecutor, ThreadExecutor
from repro.runtime.chaos import ChaosThreadExecutor
from repro.runtime.faults import FaultPlan

# Families exercised in the expensive cross-discipline sweep (a subset:
# SoS polynomial arithmetic on every tie makes the full corpus x four
# executors too slow for tier 1; the fuzzer covers the rest).
CANONICAL_FAMILIES = ["duplicates-2d", "all-coincident", "coplanar-3d", "grid-2d"]


class TestCanonicalAcrossDisciplines:
    @pytest.mark.parametrize("family", CANONICAL_FAMILIES)
    def test_same_facets_every_executor(self, family):
        pts = corpus_case(family, seed=0)
        n = len(pts)
        order = np.random.default_rng(1).permutation(n)
        with sos_mode():
            seq = sequential_hull(pts, order=order.copy())
            validate_hull(seq.facets, seq.points)
            ref = facet_sets_global(seq.facets, seq.order)
            for ex, mm in (
                (SerialExecutor(), "dict"),
                (RoundExecutor(), "dict"),
                (ThreadExecutor(2), "cas"),
                (ChaosThreadExecutor(2, plan=FaultPlan(seed=5, crash_rate=0.2)),
                 "cas"),
            ):
                run = parallel_hull(pts, order=order.copy(), executor=ex,
                                    multimap=mm)
                validate_hull(run.facets, run.points)
                assert facet_sets_global(run.facets, run.order) == ref, (
                    f"{family}: {type(ex).__name__} disagrees"
                )

    def test_vertices_bracket_the_true_hull(self):
        # The perturbed hull's vertex set *does* depend on insertion
        # order for degenerate inputs (whether a collinear boundary
        # point survives as a vertex follows the rank-indexed
        # perturbation direction).  Two things are order-invariant:
        # every strictly extreme point of the original cloud is a
        # vertex, and every vertex is on the true hull boundary.
        pts = corpus_case("grid-2d", seed=0)
        corners = {
            i for i, p in enumerate(pts)
            if set(p) <= {0.0, 3.0}
        }
        boundary = {
            i for i, p in enumerate(pts)
            if 0.0 in p or 3.0 in p
        }
        for seed in (0, 1, 2):
            with sos_mode():
                run = parallel_hull(pts, seed=seed)
            validate_hull(run.facets, run.points)
            verts = run.vertex_indices()
            assert corners <= verts
            assert verts <= boundary


class TestRobustLadderOnCorpus:
    @pytest.mark.parametrize("family", corpus_names())
    def test_terminates_and_records_path(self, family):
        fam = CORPUS[family]
        pts = corpus_case(family, seed=0)
        res = robust_hull(pts, seed=0)
        assert res.run.facets
        assert res.mode != "joggle", res.escalations
        assert res.joggled is None
        assert res.escalations[-1] == f"{res.mode}:ok"
        assert res.run.exec_stats.escalations == res.escalations
        assert res.certificate is not None
        if fam.full_dim:
            assert res.mode in ("float", "exact")
        else:
            # Rank-deficient: both real-coordinate rungs must fail, and
            # symbolic perturbation must succeed without joggling.
            assert res.mode == "sos"
            assert res.escalations[0].startswith("float:")
            assert res.escalations[1].startswith("exact:")


class TestNearCollinearRegression:
    """Ultra-flat full-rank clouds: facet orientation must come from
    the exact affine combination, not the rounded centroid (EXPERIMENTS
    honest note 7 -- before the fix the hulls below silently dropped
    vertices and failed validation on every rung)."""

    def test_exact_mode_hull_is_valid(self):
        pts = corpus_case("near-collinear-3d", seed=0)
        with exact_mode():
            run = parallel_hull(pts, seed=0)
        validate_hull(run.facets, run.points)

    def test_adaptive_hull_is_valid(self):
        for seed in range(3):
            pts = corpus_case("near-collinear-3d", seed=seed)
            res = robust_hull(pts, seed=seed)
            assert res.mode != "joggle", res.escalations
