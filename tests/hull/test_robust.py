"""The float -> exact -> joggle graceful-degradation ladder."""

import os

import numpy as np
import pytest

from repro.geometry import integer_grid, uniform_ball
from repro.geometry.hyperplane import Hyperplane, exact_mode
from repro.hull import HullSetupError, parallel_hull, robust_hull, validate_hull

# Tests below that assert a plane is *not* always-exact outside
# exact_mode() describe the default configuration; REPRO_FORCE_EXACT
# deliberately makes every plane exact process-wide.
float_path_only = pytest.mark.skipif(
    os.environ.get("REPRO_FORCE_EXACT", "0") not in ("", "0"),
    reason="asserts the float fast path, which REPRO_FORCE_EXACT disables",
)


class TestExactMode:
    @float_path_only
    def test_forces_always_exact_planes(self):
        pts = np.array([[0.0, 0.0, 1.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        ref = np.array([0.2, 0.2, 0.2])
        assert not Hyperplane.through(pts, ref).always_exact
        with exact_mode():
            plane = Hyperplane.through(pts, ref)
        assert plane.always_exact
        # Exact planes still answer correctly (and stay exact after the
        # context exits).
        assert plane.side(np.array([5.0, 5.0, 5.0])) == 1
        assert plane.side(ref) == -1

    @float_path_only
    def test_nesting_and_restore(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        ref = np.array([0.5, -1.0])
        with exact_mode():
            with exact_mode():
                assert Hyperplane.through(pts, ref).always_exact
            assert Hyperplane.through(pts, ref).always_exact
        assert not Hyperplane.through(pts, ref).always_exact

    def test_whole_hull_under_exact_mode(self):
        pts = uniform_ball(40, 2, seed=0)
        with exact_mode():
            run = parallel_hull(pts, seed=1)
        validate_hull(run.facets, run.points)
        assert all(f.plane.always_exact for f in run.facets)
        ref = parallel_hull(pts, seed=1)
        assert run.vertex_indices() == ref.vertex_indices()


class TestRobustHull:
    def test_generic_input_stays_on_float_rung(self):
        pts = uniform_ball(80, 3, seed=5)
        res = robust_hull(pts, seed=0)
        assert res.mode == "float"
        assert res.escalations == ["float:ok"]
        assert res.run.exec_stats.escalations == ["float:ok"]
        assert res.joggled is None
        assert res.vertex_indices() == parallel_hull(pts, seed=0).vertex_indices()

    def test_degenerate_input_stops_at_sos(self):
        # Coplanar cloud in 3D: not full-dimensional, so float AND exact
        # both raise HullSetupError; symbolic perturbation succeeds
        # without touching the input, so joggle is never reached.
        flat = np.zeros((25, 3))
        flat[:, :2] = uniform_ball(25, 2, seed=1)
        res = robust_hull(flat, seed=0)
        assert res.mode == "sos"
        assert res.escalations == [
            "float:HullSetupError",
            "exact:HullSetupError",
            "sos:ok",
        ]
        assert res.run.exec_stats.escalations == res.escalations
        assert res.joggled is None
        assert res.certificate is not None and res.certificate.sos
        assert res.run.facets

    def test_degenerate_input_falls_through_to_joggle_without_sos(self):
        flat = np.zeros((25, 3))
        flat[:, :2] = uniform_ball(25, 2, seed=1)
        res = robust_hull(flat, seed=0, allow_sos=False)
        assert res.mode == "joggle"
        assert res.escalations == [
            "float:HullSetupError",
            "exact:HullSetupError",
            "joggle:ok[attempts=1]",
        ]
        assert res.run.exec_stats.escalations == res.escalations
        assert res.joggled is not None
        assert res.joggled.attempt_log[-1][1] == "ok"
        assert res.certificate is not None and res.certificate.mode == "joggle"
        assert res.run.facets

    def test_allow_joggle_false_reraises(self):
        flat = np.zeros((25, 3))
        flat[:, :2] = uniform_ball(25, 2, seed=1)
        with pytest.raises(HullSetupError):
            robust_hull(flat, allow_joggle=False, allow_sos=False)

    def test_escalates_on_validation_failure(self, monkeypatch):
        # Force the float rung to produce an invalid hull: the ladder
        # must record the validation failure and climb to exact, where
        # (unpatched) validation succeeds.
        import repro.hull.robust as robust_mod
        from repro.hull.validate import HullValidationError

        real_validate = robust_mod.validate_hull
        calls = {"n": 0}

        def flaky_validate(facets, points, **kw):
            calls["n"] += 1
            if calls["n"] == 1:
                raise HullValidationError("synthetic float-rung corruption")
            return real_validate(facets, points, **kw)

        monkeypatch.setattr(robust_mod, "validate_hull", flaky_validate)
        pts = uniform_ball(40, 2, seed=2)
        res = robust_hull(pts, seed=0)
        assert res.mode == "exact"
        assert res.escalations == ["float:HullValidationError", "exact:ok"]
        assert all(f.plane.always_exact for f in res.run.facets)

    def test_integer_grid_handled(self):
        # Degenerate-but-full-dimensional input: exact predicates handle
        # it without joggling.
        pts = integer_grid(4, 2, seed=3)
        res = robust_hull(pts, seed=0)
        assert res.mode in ("float", "exact")
        assert res.run.facets

    def test_kwargs_forwarded(self):
        from repro.runtime import SerialExecutor

        pts = uniform_ball(30, 2, seed=4)
        res = robust_hull(pts, seed=0, executor=SerialExecutor())
        assert res.mode == "float"
