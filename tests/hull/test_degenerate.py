"""Exact-arithmetic behaviour on engineered degenerate inputs.

The main algorithms assume general position (Section 5); what we verify
here is that the exact predicate layer makes *ties deterministic*: on
integer grids the hull algorithms either produce the correct simplicial
hull of the extreme points or fail loudly -- never silently corrupt
output -- and the adaptive filter demonstrably routes these inputs
through the exact path.
"""

import os

import numpy as np
import pytest

from repro.geometry import integer_grid, uniform_ball
from repro.geometry.predicates import STATS
from repro.hull import parallel_hull, sequential_hull, validate_hull


class TestExactPathUsage:
    def test_grid_exercises_exact_predicates(self):
        pts = integer_grid(4, 2, seed=0)
        STATS.reset()
        sequential_hull(pts, seed=1)
        assert STATS.exact_calls > 0

    @pytest.mark.skipif(
        os.environ.get("REPRO_FORCE_EXACT", "0") not in ("", "0"),
        reason="asserts the float fast path, which REPRO_FORCE_EXACT disables",
    )
    def test_random_floats_avoid_exact_path(self):
        pts = uniform_ball(200, 2, seed=1)
        STATS.reset()
        sequential_hull(pts, seed=1)
        assert STATS.exact_calls == 0


class TestGridHulls2D:
    @pytest.mark.parametrize("side", [3, 4, 5])
    def test_grid_vertices_are_corners(self, side):
        # A full integer grid's extreme points are its 4 corners, but a
        # *simplicial* 2D hull cannot represent collinear boundary runs;
        # the algorithms keep only corner-spanning edges.  Containment
        # and vertex extremality must still hold.
        pts = integer_grid(side, 2, seed=side)
        res = sequential_hull(pts, seed=7)
        hi = side - 1
        corners = {
            tuple(p)
            for p in ([0, 0], [0, hi], [hi, 0], [hi, hi])
        }
        got = {tuple(res.points[i]) for i in res.vertex_ranks()}
        # Corner points must be vertices; every vertex must be on the
        # boundary square.
        assert corners <= got
        for x, y in got:
            assert x in (0, hi) or y in (0, hi)

    def test_no_point_strictly_outside(self):
        pts = integer_grid(4, 2, seed=9)
        res = sequential_hull(pts, seed=3)
        for f in res.facets:
            assert not f.plane.visible_mask(res.points).any()

    def test_parallel_agrees_with_sequential_on_grid(self):
        pts = integer_grid(4, 2, seed=2)
        order = np.random.default_rng(5).permutation(len(pts))
        seq = sequential_hull(pts, order=order.copy())
        par = parallel_hull(pts, order=order.copy())
        assert par.facet_keys() == seq.facet_keys()


class TestPerturbedGrid:
    def test_tiny_perturbation_restores_general_position(self):
        rng = np.random.default_rng(11)
        pts = integer_grid(4, 2, seed=4) + rng.uniform(-1e-9, 1e-9, size=(16, 2))
        res = sequential_hull(pts, seed=5)
        validate_hull(res.facets, res.points)
        # The 4 corners always survive; edge-interior boundary points
        # survive only when joggled outward, so the count lands between.
        assert 4 <= len(res.facets) <= 12


class TestCollinearInput:
    def test_collinear_interiors_excluded(self):
        pts = np.array(
            [[0.0, 0], [4, 0], [4, 4], [0, 4], [2, 0], [4, 2], [2, 4], [0, 2], [2, 2]]
        )
        res = sequential_hull(pts, order=np.arange(9))
        # Edge-interior points (2,0) etc. are not vertices of the
        # simplicial hull.
        verts = {tuple(res.points[i]) for i in res.vertex_ranks()}
        assert verts == {(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)}


class TestDuplicatePoints:
    """Exact duplicates are the harshest tie: a duplicate of a hull
    vertex lies exactly ON every incident facet plane, so it must be
    classified invisible (interior) everywhere, never corrupting the
    hull or being picked as a pivot."""

    def test_sequential_and_parallel_agree(self):
        from repro.geometry import uniform_ball

        pts = uniform_ball(30, 2, seed=1)
        dup = np.vstack([pts, pts[:10]])
        order = np.random.default_rng(3).permutation(len(dup))
        seq = sequential_hull(dup, order=order.copy())
        par = parallel_hull(dup, order=order.copy())
        assert seq.facet_keys() == par.facet_keys()
        # The duplicated copies never become extra hull vertices.
        base = sequential_hull(pts, seed=4)
        got = {tuple(seq.points[i]) for i in seq.vertex_ranks()}
        want = {tuple(base.points[i]) for i in base.vertex_ranks()}
        assert got == want

    def test_online_handles_duplicates(self):
        from repro.geometry import uniform_ball
        from repro.hull.online import OnlineHull

        pts = uniform_ball(25, 2, seed=5)
        h = OnlineHull(2)
        h.extend(np.vstack([pts, pts]))
        from repro.hull.validate import check_containment

        check_containment(h.facets, h.points)

    def test_3d_duplicates(self):
        from repro.geometry import uniform_ball

        pts = uniform_ball(20, 3, seed=6)
        dup = np.vstack([pts, pts[:6]])
        res = sequential_hull(dup, seed=7)
        for f in res.facets:
            assert not f.plane.visible_mask(res.points).any()
