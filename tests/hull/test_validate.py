"""Tests for the hull validators themselves (they must catch broken
hulls, not just bless good ones)."""

import os

import numpy as np
import pytest

from repro.geometry import uniform_ball
from repro.hull import sequential_hull
from repro.hull.validate import (
    HullValidationError,
    brute_force_extreme_ranks,
    brute_force_facet_sets,
    check_containment,
    check_counts,
    check_ridge_manifold,
    validate_hull,
)


@pytest.fixture
def good_run():
    pts = uniform_ball(40, 2, seed=1)
    return sequential_hull(pts, seed=2)


class TestPositive:
    def test_good_hull_passes(self, good_run):
        validate_hull(good_run.facets, good_run.points)

    def test_3d_counts(self):
        pts = uniform_ball(50, 3, seed=3)
        res = sequential_hull(pts, seed=4)
        check_counts(res.facets, 3)


class TestNegative:
    def test_missing_facet_breaks_manifold(self, good_run):
        broken = good_run.facets[1:]
        with pytest.raises(HullValidationError):
            check_ridge_manifold(broken)

    def test_outside_point_breaks_containment(self, good_run):
        pts = np.vstack([good_run.points, [[50.0, 50.0]]])
        with pytest.raises(HullValidationError):
            check_containment(good_run.facets, pts)

    def test_empty_hull_rejected(self, good_run):
        with pytest.raises(HullValidationError):
            validate_hull([], good_run.points)

    def test_wrong_2d_count(self, good_run):
        with pytest.raises(HullValidationError):
            check_counts(good_run.facets[:-1], 2)

    @pytest.mark.skipif(
        os.environ.get("REPRO_FORCE_EXACT", "0") not in ("", "0"),
        reason="mutates the float normal, which always-exact planes "
        "never consult (they re-derive the side from base_points)",
    )
    def test_flipped_orientation_breaks_containment(self, good_run):
        # Mutation: flip one facet's plane so its "visible" half-space
        # points inward.  Every strictly interior point then reads as
        # outside -- the validator must notice, not just re-derive the
        # stored orientation and bless it.
        plane = good_run.facets[0].plane
        plane.normal = -plane.normal
        plane.offset = -plane.offset
        with pytest.raises(HullValidationError):
            check_containment(good_run.facets, good_run.points)

    def test_duplicate_facet_breaks_manifold(self, good_run):
        # Mutation: duplicate a facet under a fresh id.  Each of its
        # ridges then has incidence 2 + 1, violating "every ridge is
        # shared by exactly two facets".
        from dataclasses import replace

        f = good_run.facets[0]
        dup = replace(f, fid=max(x.fid for x in good_run.facets) + 1)
        with pytest.raises(HullValidationError):
            check_ridge_manifold(good_run.facets + [dup])


class TestBruteForce:
    def test_square(self):
        pts = np.array([[0.0, 0], [2, 0], [2, 2], [0, 2], [1, 1]])
        facets = brute_force_facet_sets(pts)
        assert facets == {
            frozenset({0, 1}),
            frozenset({1, 2}),
            frozenset({2, 3}),
            frozenset({0, 3}),
        }
        assert brute_force_extreme_ranks(pts) == {0, 1, 2, 3}

    def test_tetrahedron(self):
        pts = np.vstack([np.zeros(3), np.eye(3), [[0.1, 0.1, 0.1]]])
        facets = brute_force_facet_sets(pts)
        assert len(facets) == 4
        assert brute_force_extreme_ranks(pts) == {0, 1, 2, 3}

    def test_degenerate_facets_skipped(self):
        # Four collinear points: no 2-subset on the line is a valid
        # simplicial facet against the others.
        pts = np.array([[0.0, 0], [1, 0], [2, 0], [3, 0], [1, 2]])
        facets = brute_force_facet_sets(pts)
        for f in facets:
            assert f != frozenset({0, 1})
