"""Tests for Algorithm 3 (parallel incremental hull): correctness under
every executor/multimap combination, trace invariants, and the support
structure."""

import numpy as np
import pytest
from scipy.spatial import ConvexHull as ScipyHull

from repro.geometry import on_sphere, uniform_ball
from repro.geometry.simplex import facet_ridges
from repro.hull import parallel_hull, sequential_hull, validate_hull
from repro.runtime import RoundExecutor, SerialExecutor, ThreadExecutor


class TestCorrectness:
    @pytest.mark.parametrize("d,n", [(2, 150), (3, 120), (4, 60)])
    def test_matches_scipy(self, d, n):
        pts = uniform_ball(n, d, seed=d + n)
        run = parallel_hull(pts, seed=3)
        validate_hull(run.facets, run.points)
        assert run.vertex_indices() == set(ScipyHull(pts).vertices.tolist())

    def test_all_extreme(self):
        pts = on_sphere(100, 2, seed=17)
        run = parallel_hull(pts, seed=1)
        assert len(run.facets) == 100

    def test_simplex_input(self):
        pts = np.vstack([np.zeros(3), np.eye(3)])
        run = parallel_hull(pts, order=np.arange(4))
        assert len(run.facets) == 4
        assert run.exec_stats.rounds == 1  # all ridges final immediately


class TestExecutors:
    @pytest.fixture
    def instance(self):
        pts = uniform_ball(200, 3, seed=77)
        order = np.random.default_rng(5).permutation(200)
        return pts, order

    def test_serial_matches_round(self, instance):
        pts, order = instance
        a = parallel_hull(pts, order=order.copy(), executor=RoundExecutor())
        b = parallel_hull(pts, order=order.copy(), executor=SerialExecutor())
        assert a.facet_keys() == b.facet_keys()
        assert a.created_keys() == b.created_keys()
        assert a.dependence_depth() == b.dependence_depth()

    def test_threads_match_round(self, instance):
        pts, order = instance
        a = parallel_hull(pts, order=order.copy(), executor=RoundExecutor())
        for mm in ("cas", "tas"):
            t = parallel_hull(
                pts, order=order.copy(), executor=ThreadExecutor(4), multimap=mm
            )
            validate_hull(t.facets, t.points)
            assert t.facet_keys() == a.facet_keys(), mm
            assert t.created_keys() == a.created_keys(), mm

    def test_shuffled_rounds_same_result(self, instance):
        pts, order = instance
        a = parallel_hull(pts, order=order.copy(), executor=RoundExecutor())
        for seed in (1, 2, 3):
            b = parallel_hull(pts, order=order.copy(), executor=RoundExecutor(seed=seed))
            assert b.facet_keys() == a.facet_keys()
            assert b.created_keys() == a.created_keys()

    def test_dict_multimap_rejected_under_threads(self, instance):
        pts, order = instance
        with pytest.raises(ValueError):
            parallel_hull(pts, order=order, executor=ThreadExecutor(2), multimap="dict")

    def test_unknown_multimap(self, instance):
        pts, order = instance
        with pytest.raises(ValueError):
            parallel_hull(pts, order=order, multimap="nope")


class TestSupportStructure:
    def test_every_created_nonbase_facet_has_support_pair(self):
        pts = uniform_ball(120, 2, seed=31)
        run = parallel_hull(pts, seed=9)
        base = {f.fid for f in run.created[: run.points.shape[1] + 1]}
        for f in run.created:
            if f.fid in base:
                assert f.fid not in run.support
            else:
                t1, t2 = run.support[f.fid]
                assert t1 < f.fid and t2 < f.fid

    def test_support_pair_shares_creation_ridge(self):
        pts = uniform_ball(80, 3, seed=32)
        run = parallel_hull(pts, seed=10)
        by_fid = {f.fid: f for f in run.created}
        for f in run.created:
            sup = run.support.get(f.fid)
            if sup is None:
                continue
            p = run.pivots[f.fid]
            ridge = frozenset(f.indices) - {p}
            t1, t2 = by_fid[sup[0]], by_fid[sup[1]]
            assert ridge <= frozenset(t1.indices)
            assert ridge <= frozenset(t2.indices)

    def test_pivot_is_in_replaced_facets_conflicts(self):
        pts = uniform_ball(80, 2, seed=33)
        run = parallel_hull(pts, seed=11)
        by_fid = {f.fid: f for f in run.created}
        for f in run.created:
            sup = run.support.get(f.fid)
            if sup is None:
                continue
            p = run.pivots[f.fid]
            t1 = by_fid[sup[0]]  # the replaced facet
            assert p == int(t1.conflicts[0])

    def test_new_facet_contains_its_pivot(self):
        pts = uniform_ball(80, 2, seed=34)
        run = parallel_hull(pts, seed=12)
        for fid, p in run.pivots.items():
            f = next(x for x in run.created if x.fid == fid)
            assert p in f.indices


class TestTraceInvariants:
    def test_each_ridge_processed_once_per_pair(self):
        pts = uniform_ball(100, 2, seed=41)
        run = parallel_hull(pts, seed=13)
        # Every create event consumes a (t1, ridge, t2) triple; the same
        # (ridge, pair) triple never recurs.
        seen = set()
        for e in run.events:
            key = (e.ridge, e.created, e.removed, e.removed_pair)
            assert key not in seen
            seen.add(key)

    def test_rounds_monotone_along_support_edges(self):
        pts = uniform_ball(150, 3, seed=42)
        run = parallel_hull(pts, seed=14)
        for fid, (t1, t2) in run.support.items():
            assert run.rounds[fid] > max(run.rounds[t1], run.rounds[t2]) - 1
            assert run.rounds[fid] >= max(run.rounds[t1], run.rounds[t2])

    def test_depth_le_rounds(self):
        pts = uniform_ball(150, 2, seed=43)
        run = parallel_hull(pts, seed=15)
        # Theorem 4.3: recursion (round) depth equals the dependence
        # graph depth up to the +1 seeding round.
        assert run.dependence_depth() <= run.exec_stats.rounds
        assert run.exec_stats.rounds <= run.dependence_depth() + 2

    def test_counters_balance(self):
        pts = uniform_ball(100, 2, seed=44)
        run = parallel_hull(pts, seed=16)
        dead = sum(1 for f in run.created if not f.alive)
        # Buried facets are counted twice only if both events hit them;
        # replaced + buried >= dead because a facet can be buried and
        # replaced by concurrent ridges.
        assert run.counters.facets_replaced + run.counters.facets_buried >= dead
        assert len(run.facets) + dead == len(run.created)

    def test_alive_facets_have_empty_conflicts(self):
        pts = uniform_ball(100, 3, seed=45)
        run = parallel_hull(pts, seed=17)
        for f in run.facets:
            assert f.conflicts.size == 0

    def test_final_events_cover_hull_ridges(self):
        pts = uniform_ball(60, 2, seed=46)
        run = parallel_hull(pts, seed=18)
        final_ridges = {e.ridge for e in run.events if e.kind == "final"}
        hull_ridges = {r for f in run.facets for r in facet_ridges(f.indices)}
        assert hull_ridges <= final_ridges


class TestDepthProfile:
    def test_profile_sums_to_created(self):
        pts = uniform_ball(150, 2, seed=51)
        run = parallel_hull(pts, seed=19)
        hist = run.depth_profile()
        assert sum(hist.values()) == len(run.created)
        assert max(hist) == run.dependence_depth()

    def test_base_facets_at_depth_zero(self):
        pts = uniform_ball(50, 2, seed=52)
        run = parallel_hull(pts, seed=20)
        hist = run.depth_profile()
        assert hist[0] >= pts.shape[1] + 1


class TestBaseSize:
    def test_base_size_below_minimum_rejected(self):
        pts = uniform_ball(20, 2, seed=61)
        with pytest.raises(Exception):
            parallel_hull(pts, seed=0, base_size=2)

    def test_larger_base_gives_same_hull(self):
        pts = uniform_ball(60, 2, seed=62)
        order = np.arange(60)
        a = parallel_hull(pts, order=order.copy())
        b = parallel_hull(pts, order=order.copy(), base_size=10)
        assert a.facet_keys() == b.facet_keys()


class TestSpaceAccounting:
    def test_space_proportional_to_work(self):
        """Section 5.2's space note: stored conflict entries are bounded
        by the visibility tests that produced them."""
        from repro.hull.parallel import space_accounting

        pts = uniform_ball(400, 2, seed=71)
        run = parallel_hull(pts, seed=72)
        acct = space_accounting(run)
        assert acct["total_conflict_entries"] <= acct["visibility_tests"]
        assert 0 < acct["entries_per_test"] <= 1.0
        assert acct["facets_created"] == len(run.created)


class TestBaseSizeWithExecutors:
    def test_large_base_under_threads(self):
        pts = uniform_ball(150, 2, seed=81)
        order = np.arange(150)
        a = parallel_hull(pts, order=order.copy(), base_size=12)
        b = parallel_hull(
            pts, order=order.copy(), base_size=12,
            executor=ThreadExecutor(2), multimap="tas",
        )
        assert a.facet_keys() == b.facet_keys()

    def test_base_size_equals_n(self):
        # Everything in the bootstrap: zero rounds of ProcessRidge work.
        pts = uniform_ball(40, 2, seed=82)
        run = parallel_hull(pts, order=np.arange(40), base_size=40)
        assert run.counters.facets_created == len(run.facets)
        assert run.dependence_depth() == 0


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        from repro.hull.serialize import (
            graph_from_summary,
            load_summary,
            run_summary,
            save_run,
        )

        pts = uniform_ball(80, 2, seed=91)
        run = parallel_hull(pts, seed=92)
        path = tmp_path / "run.json"
        save_run(run, path)
        summary = load_summary(path)
        assert summary["n"] == 80 and summary["d"] == 2
        assert summary["depth"] == run.dependence_depth()
        assert len(summary["created"]) == len(run.created)
        graph = graph_from_summary(summary)
        assert graph.depth() == run.dependence_depth()

    def test_schema_check(self, tmp_path):
        import json

        from repro.hull.serialize import load_summary

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other/9"}))
        with pytest.raises(ValueError):
            load_summary(bad)
