"""Higher-dimension coverage (d = 5, 6): the paper's bounds are for any
constant dimension; verify the machinery doesn't silently assume
d <= 4 anywhere."""

import numpy as np
import pytest
from scipy.spatial import ConvexHull as ScipyHull

from repro.geometry import uniform_ball
from repro.hull import parallel_hull, sequential_hull, validate_hull


@pytest.mark.parametrize("d,n", [(5, 32), (6, 24)])
class TestHighDimensions:
    def test_sequential(self, d, n):
        pts = uniform_ball(n, d, seed=d)
        res = sequential_hull(pts, seed=1)
        validate_hull(res.facets, res.points)
        assert res.vertex_indices() == set(ScipyHull(pts).vertices.tolist())

    def test_parallel_matches(self, d, n):
        pts = uniform_ball(n, d, seed=d + 10)
        order = np.random.default_rng(2).permutation(n)
        seq = sequential_hull(pts, order=order.copy())
        par = parallel_hull(pts, order=order.copy())
        assert par.created_keys() == seq.created_keys()
        assert par.facet_keys() == seq.facet_keys()

    def test_depth_still_shallow(self, d, n):
        pts = uniform_ball(n, d, seed=d + 20)
        run = parallel_hull(pts, seed=3)
        # Even in d=6, depth stays far below n for these sizes.
        assert run.dependence_depth() < n

    def test_each_facet_has_d_indices(self, d, n):
        pts = uniform_ball(n, d, seed=d + 30)
        run = parallel_hull(pts, seed=4)
        for f in run.facets:
            assert len(f.indices) == d
