"""End-to-end property-based tests: for arbitrary random instances, the
paper's structural invariants must hold.  These are the hypothesis
counterpart of the targeted unit tests -- broad, instance-agnostic
checks on the whole pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.configspace.theory import harmonic, min_sigma
from repro.geometry import uniform_ball
from repro.hull import (
    Polytope,
    parallel_hull,
    sequential_hull,
    validate_hull,
)

# Instances are derived from (seed, n, d) triples so hypothesis shrinks
# over a compact space while the geometry stays generic-position floats.
instances_2d = st.tuples(
    st.integers(0, 10_000), st.integers(8, 120)
)
instances_3d = st.tuples(
    st.integers(0, 10_000), st.integers(10, 80)
)


@given(instances_2d)
@settings(max_examples=40, deadline=None)
def test_parallel_always_valid_2d(params):
    seed, n = params
    pts = uniform_ball(n, 2, seed=seed)
    run = parallel_hull(pts, seed=seed + 1)
    validate_hull(run.facets, run.points)


@given(instances_3d)
@settings(max_examples=25, deadline=None)
def test_parallel_always_valid_3d(params):
    seed, n = params
    pts = uniform_ball(n, 3, seed=seed)
    run = parallel_hull(pts, seed=seed + 1)
    validate_hull(run.facets, run.points)


@given(instances_2d)
@settings(max_examples=40, deadline=None)
def test_parallel_equals_sequential(params):
    seed, n = params
    pts = uniform_ball(n, 2, seed=seed)
    order = np.random.default_rng(seed).permutation(n)
    seq = sequential_hull(pts, order=order.copy())
    par = parallel_hull(pts, order=order.copy())
    assert par.created_keys() == seq.created_keys()
    assert par.counters.visibility_tests <= seq.counters.visibility_tests


@given(instances_2d)
@settings(max_examples=40, deadline=None)
def test_depth_below_whp_bound(params):
    seed, n = params
    pts = uniform_ball(n, 2, seed=seed)
    run = parallel_hull(pts, seed=seed + 2)
    # A single instance exceeding sigma = g*k*e^2 would falsify the
    # theorem outright (the bound holds whp, and these n are tiny).
    assert run.dependence_depth() <= min_sigma(2, 2) * harmonic(n)


@given(instances_2d)
@settings(max_examples=30, deadline=None)
def test_hull_vertices_invariant_under_order(params):
    seed, n = params
    pts = uniform_ball(n, 2, seed=seed)
    a = parallel_hull(pts, seed=seed).vertex_indices()
    b = parallel_hull(pts, seed=seed + 77).vertex_indices()
    assert a == b


@given(instances_2d)
@settings(max_examples=30, deadline=None)
def test_volume_and_containment_consistent(params):
    seed, n = params
    pts = uniform_ball(n, 2, seed=seed)
    run = parallel_hull(pts, seed=seed + 3)
    poly = Polytope.from_run(run)
    # Hull of points in the unit disk: area within the disk's.
    assert 0 < poly.volume() <= np.pi + 1e-9
    # Every input point is contained (non-strictly).
    for p in run.points[:: max(1, n // 10)]:
        assert poly.contains(p)


@given(instances_2d)
@settings(max_examples=30, deadline=None)
def test_support_dag_is_well_formed(params):
    seed, n = params
    pts = uniform_ball(n, 2, seed=seed)
    run = parallel_hull(pts, seed=seed + 4)
    fids = {f.fid for f in run.created}
    for fid, (a, b) in run.support.items():
        assert fid in fids and a in fids and b in fids
        assert a < fid and b < fid
    # Pivot ranks strictly exceed those of the base hull points.
    for fid, p in run.pivots.items():
        assert p >= run.points.shape[1] + 1


@given(st.integers(0, 10_000), st.integers(6, 40))
@settings(max_examples=25, deadline=None)
def test_scipy_agreement(seed, n):
    from scipy.spatial import ConvexHull as ScipyHull

    pts = uniform_ball(n, 2, seed=seed)
    run = parallel_hull(pts, seed=seed + 5)
    assert run.vertex_indices() == set(ScipyHull(pts).vertices.tolist())
