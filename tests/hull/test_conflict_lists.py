"""Property tests for the SoA engine's flat conflict-list state.

White-box invariants checked at *every round boundary* of real runs:

- **segment consistency** -- every facet's ``(conf_start, conf_len)``
  window lies inside the pool, windows never overlap, and entries are
  strictly ascending (the merge keeps candidate blocks sorted and
  duplicate-free);
- **justification** -- every stored conflict is *earned*: the point is
  strictly visible from its facet under the exact predicate, is not a
  defining vertex, and (for round-created facets) exceeds the creating
  pivot's rank.  Note a point may legitimately sit in several live
  lists at once -- the bootstrap point alone lands in up to ``d+1``
  base-facet lists -- so no uniqueness is asserted;
- **pivot consistency** -- ``pivot[f]`` is the minimum (= first) entry
  of the window, or the +inf sentinel for empty windows;
- **termination** -- when the frontier drains, every live facet's
  conflict window is empty: all points are decided;
- **checkpointing** -- ``snapshot()``/``restore()`` round-trips the
  entire mutable state byte-for-byte, and a restored engine replays the
  remainder of the run bit-identically (chaos-recovery contract).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import uniform_ball, uniform_cube
from repro.geometry.kernels import gather_segments
from repro.hull.soa import _INF, SoAHullEngine


def _engine(n, d, seed, **kw):
    pts = uniform_ball(n, d, seed=seed)
    order = np.random.default_rng(seed + 1).permutation(n)
    return SoAHullEngine(pts, order=order, **kw)


def _check_segments(eng):
    """Structural consistency of the flat pool partition."""
    st_, ln = eng.store.conf_start, eng.store.conf_len
    size, end = eng.store.size, eng.pool.end
    assert np.all(ln[:size] >= 0)
    assert np.all(st_[:size] >= 0)
    assert np.all(st_[:size] + ln[:size] <= end)
    # Windows are append-only and written once per facet: sorted by
    # start, they must tile without overlap.
    by_start = np.argsort(st_[:size], kind="stable")
    ends = st_[:size][by_start] + ln[:size][by_start]
    starts = st_[:size][by_start]
    assert np.all(starts[1:] >= ends[:-1])
    buf = eng.pool.buf
    for fid in range(size):
        seg = buf[st_[fid]: st_[fid] + ln[fid]]
        if seg.size:
            assert np.all(np.diff(seg) > 0), f"facet {fid} segment not ascending"
            assert eng.store.pivot[fid] == seg[0]
        else:
            assert eng.store.pivot[fid] == _INF


def _check_justified(eng):
    """Every live conflict entry is strictly visible (exact), beyond the
    creating pivot, and never a defining vertex of its own facet."""
    buf = eng.pool.buf
    for fid in np.nonzero(eng.store.alive[: eng.store.size])[0]:
        fid = int(fid)
        s = int(eng.store.conf_start[fid])
        seg = buf[s: s + int(eng.store.conf_len[fid])]
        if not seg.size:
            continue
        facet = eng._facet_of(fid)
        defining = set(facet.indices)
        piv = int(eng.store.pivot_point[fid])
        plane = facet.plane
        for v in map(int, seg):
            assert v not in defining
            assert v > piv  # piv is -1 for base facets: trivially true
            assert plane._side_exact(eng.pts[v], v) > 0


def _fingerprint(eng):
    """Bit-level digest of a finished run's observable state."""
    run = eng.finish()
    return (
        run.facet_keys(),
        run.counters.as_dict(),
        run.conflict_pool.tobytes(),
        run.conflict_lens.tobytes(),
        run.tracker.work,
        run.tracker.span,
        len(eng.events),
    )


@given(st.tuples(st.integers(0, 2_000), st.integers(14, 48), st.sampled_from([2, 3])))
@settings(max_examples=8, deadline=None)
def test_invariants_hold_at_every_round(params):
    seed, n, d = params
    eng = _engine(n, d, seed)
    _check_segments(eng)
    _check_justified(eng)
    while eng.step_round():
        _check_segments(eng)
        _check_justified(eng)
    _check_segments(eng)
    # Termination: frontier drained => every live facet decided.
    live = eng.store.alive[: eng.store.size]
    assert np.all(eng.store.conf_len[: eng.store.size][live] == 0)
    assert np.all(eng.store.pivot[: eng.store.size][live] == _INF)


def test_bootstrap_conflicts_are_complete():
    """Construction-time completeness: every rank strictly outside the
    base simplex appears in at least one base facet's window."""
    pts = uniform_cube(60, 3, seed=5)
    order = np.random.default_rng(6).permutation(60)
    eng = SoAHullEngine(pts, order=order)
    covered = set(map(int, eng.pool.view()))
    for v in range(eng.base_size, eng.n):
        outside = any(
            eng._facet_of(fid).plane._side_exact(eng.pts[v], v) > 0
            for fid in range(eng.store.size)
        )
        assert (v in covered) == outside


@pytest.mark.parametrize("d", [2, 3])
def test_snapshot_restore_is_byte_exact(d):
    eng = _engine(40, d, seed=17)
    eng.step_round()
    snap = eng.snapshot()
    before = {k: (v.tobytes() if isinstance(v, np.ndarray) else v)
              for k, v in snap["store"].items()}
    pool_before = snap["pool"][0].tobytes()
    # Advance, then rewind: the restored state must re-snapshot to the
    # exact same bytes.
    for _ in range(3):
        if not eng.step_round():
            break
    eng.restore(snap)
    snap2 = eng.snapshot()
    after = {k: (v.tobytes() if isinstance(v, np.ndarray) else v)
             for k, v in snap2["store"].items()}
    assert before == after
    assert pool_before == snap2["pool"][0].tobytes()
    assert snap["pool"][1] == snap2["pool"][1]
    assert snap["counters"] == snap2["counters"]
    assert snap["round"] == snap2["round"]


@given(st.tuples(st.integers(0, 2_000), st.integers(16, 50), st.sampled_from([2, 3])))
@settings(max_examples=6, deadline=None)
def test_restored_engine_replays_bit_identically(params):
    """Chaos-recovery: checkpoint mid-run, run to completion, rewind,
    run again -- both completions are bit-identical, including the flat
    pool bytes and the work/span ledger."""
    seed, n, d = params
    ref = _engine(n, d, seed)
    while ref.step_round():
        pass
    want = _fingerprint(ref)

    eng = _engine(n, d, seed)
    eng.step_round()
    snap = eng.snapshot()
    while eng.step_round():
        pass
    assert _fingerprint(eng) == want
    eng.restore(snap)
    while eng.step_round():
        pass
    assert _fingerprint(eng) == want


def test_snapshot_at_every_round_boundary():
    """Take a checkpoint at *each* round boundary of one run; rewinding
    to every one of them must replay to the same final fingerprint (no
    round leaves hidden state outside the snapshot)."""
    n, d, seed = 44, 3, 23
    eng = _engine(n, d, seed)
    snaps = [eng.snapshot()]
    while eng.step_round():
        snaps.append(eng.snapshot())
    want = _fingerprint(eng)
    for snap in snaps:
        eng.restore(snap)
        while eng.step_round():
            pass
        assert _fingerprint(eng) == want


@given(
    st.lists(st.integers(0, 30), min_size=0, max_size=12),
)
@settings(max_examples=30, deadline=None)
def test_gather_segments_reference(lens):
    """The prefix-sum segment gather equals the obvious python loop."""
    lens = np.asarray(lens, dtype=np.int64)
    rng = np.random.default_rng(int(lens.sum()) + lens.size)
    starts = np.cumsum(np.concatenate([[0], lens[:-1] + rng.integers(0, 3, max(lens.size - 1, 0))]))[: lens.size]
    starts = starts.astype(np.int64)
    pos, owner = gather_segments(starts, lens)
    ref_pos, ref_owner = [], []
    for k, (s, ln) in enumerate(zip(starts, lens)):
        ref_pos.extend(range(int(s), int(s) + int(ln)))
        ref_owner.extend([k] * int(ln))
    assert np.array_equal(pos, np.asarray(ref_pos, dtype=np.int64))
    assert np.array_equal(owner, np.asarray(ref_owner, dtype=np.int64))
