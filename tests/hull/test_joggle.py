"""Tests for the joggled-hull wrapper on degenerate inputs."""

import numpy as np
import pytest

from repro.geometry import collinear_cluster, integer_grid, uniform_ball
from repro.hull import HullSetupError
from repro.hull.joggle import joggled_hull


class TestJoggle:
    def test_generic_input_unharmed(self):
        pts = uniform_ball(100, 2, seed=1)
        res = joggled_hull(pts, seed=2)
        assert res.attempts == 1
        # With a 1e-9-relative joggle, the vertex set matches the
        # unperturbed hull on generic inputs.
        from repro.hull import parallel_hull

        ref = parallel_hull(pts, seed=3).vertex_indices()
        assert res.vertex_indices() == ref

    def test_integer_grid(self):
        pts = integer_grid(5, 2, seed=4)
        res = joggled_hull(pts, seed=5)
        # Corner points of the grid must be among the joggled vertices.
        hi = 4.0
        corner_coords = {(0.0, 0.0), (0.0, hi), (hi, 0.0), (hi, hi)}
        got = {tuple(res.original[i]) for i in
               (int(res.run.order[r]) for f in res.run.facets for r in f.indices)}
        assert corner_coords <= got

    def test_degenerate_3d_grid(self):
        pts = integer_grid(3, 3, seed=6)
        res = joggled_hull(pts, seed=7)
        assert len(res.run.facets) >= 4

    def test_collinear_heavy_input(self):
        pts = collinear_cluster(60, 2, seed=8, frac=0.7)
        res = joggled_hull(pts, seed=9)
        assert res.run.facets

    def test_flat_input_retries_then_fails(self):
        # Exactly collinear cloud can never become full-dimensional at
        # reasonable amplitude?  It can -- joggling adds dimension, so it
        # should SUCCEED after a retry instead of failing.
        line = np.column_stack([np.linspace(0, 1, 30), np.zeros(30)])
        res = joggled_hull(line, seed=10)
        assert res.run.facets  # a thin sliver hull

    def test_duplicate_points(self):
        pts = np.array([[0.0, 0], [1, 0], [0, 1]] * 5)
        res = joggled_hull(pts, seed=11)
        assert len(res.run.facets) >= 3

    def test_max_attempts_exhausted(self):
        # Zero amplitude never un-degenerates the input (any nonzero
        # amplitude would: the exact predicates notice even sub-ulp
        # jitter on small coordinates), so the retry loop must exhaust.
        line = np.column_stack([np.linspace(0, 1, 10), np.zeros(10)])
        with pytest.raises(HullSetupError):
            joggled_hull(line, seed=12, rel_amplitude=0.0, max_attempts=2)
