"""Tests for the joggled-hull wrapper on degenerate inputs."""

import numpy as np
import pytest

from repro.geometry import collinear_cluster, integer_grid, uniform_ball
from repro.hull import HullSetupError, HullValidationError
from repro.hull.joggle import joggled_hull


class TestJoggle:
    def test_generic_input_unharmed(self):
        pts = uniform_ball(100, 2, seed=1)
        res = joggled_hull(pts, seed=2)
        assert res.attempts == 1
        # With a 1e-9-relative joggle, the vertex set matches the
        # unperturbed hull on generic inputs.
        from repro.hull import parallel_hull

        ref = parallel_hull(pts, seed=3).vertex_indices()
        assert res.vertex_indices() == ref

    def test_integer_grid(self):
        pts = integer_grid(5, 2, seed=4)
        res = joggled_hull(pts, seed=5)
        # Corner points of the grid must be among the joggled vertices.
        hi = 4.0
        corner_coords = {(0.0, 0.0), (0.0, hi), (hi, 0.0), (hi, hi)}
        got = {tuple(res.original[i]) for i in
               (int(res.run.order[r]) for f in res.run.facets for r in f.indices)}
        assert corner_coords <= got

    def test_degenerate_3d_grid(self):
        pts = integer_grid(3, 3, seed=6)
        res = joggled_hull(pts, seed=7)
        assert len(res.run.facets) >= 4

    def test_collinear_heavy_input(self):
        pts = collinear_cluster(60, 2, seed=8, frac=0.7)
        res = joggled_hull(pts, seed=9)
        assert res.run.facets

    def test_flat_input_retries_then_fails(self):
        # Exactly collinear cloud can never become full-dimensional at
        # reasonable amplitude?  It can -- joggling adds dimension, so it
        # should SUCCEED after a retry instead of failing.
        line = np.column_stack([np.linspace(0, 1, 30), np.zeros(30)])
        res = joggled_hull(line, seed=10)
        assert res.run.facets  # a thin sliver hull

    def test_duplicate_points(self):
        pts = np.array([[0.0, 0], [1, 0], [0, 1]] * 5)
        res = joggled_hull(pts, seed=11)
        assert len(res.run.facets) >= 3

    def test_max_attempts_exhausted(self):
        # Zero amplitude never un-degenerates the input (any nonzero
        # amplitude would: the exact predicates notice even sub-ulp
        # jitter on small coordinates), so the retry loop must exhaust.
        line = np.column_stack([np.linspace(0, 1, 10), np.zeros(10)])
        with pytest.raises(HullSetupError):
            joggled_hull(line, seed=12, rel_amplitude=0.0, max_attempts=2)


class TestAmplitudeEscalation:
    def test_validation_failure_escalates_amplitude(self, monkeypatch):
        # First amplitude "passes" setup but fails containment; the loop
        # must retry at 100x amplitude instead of giving up, and the
        # provenance log must record both attempts.
        import repro.hull.joggle as joggle_mod

        real_check = joggle_mod._check_containment
        calls = {"n": 0}

        def flaky_check(run, points, slack):
            calls["n"] += 1
            if calls["n"] == 1:
                raise HullValidationError("synthetic protrusion at first amplitude")
            return real_check(run, points, slack)

        monkeypatch.setattr(joggle_mod, "_check_containment", flaky_check)
        pts = uniform_ball(50, 2, seed=13)
        res = joggled_hull(pts, seed=14, rel_amplitude=1e-9)
        assert res.attempts == 2
        assert [outcome for _, outcome in res.attempt_log] == [
            "HullValidationError", "ok",
        ]
        amp_first, amp_second = (a for a, _ in res.attempt_log)
        assert amp_second == pytest.approx(100.0 * amp_first)
        assert res.amplitude == pytest.approx(amp_second)
        assert res.run.facets

    def test_persistent_validation_failure_raises_validation_error(self, monkeypatch):
        # When containment never passes, the terminal error must say
        # *validation*, not setup -- the input was full-dimensional.
        import repro.hull.joggle as joggle_mod

        def always_fail(run, points, slack):
            raise HullValidationError("synthetic: never contained")

        monkeypatch.setattr(joggle_mod, "_check_containment", always_fail)
        pts = uniform_ball(30, 2, seed=15)
        with pytest.raises(HullValidationError, match="containment"):
            joggled_hull(pts, seed=16, max_attempts=2)

    def test_attempt_log_on_clean_run(self):
        res = joggled_hull(uniform_ball(40, 2, seed=17), seed=18)
        assert res.attempt_log == [(res.amplitude, "ok")]

    def test_setup_retries_recorded_in_log(self):
        # A collinear cloud needs at least one amplitude that actually
        # un-flattens it; every failed attempt appears in the log.
        line = np.column_stack([np.linspace(0, 1, 20), np.zeros(20)])
        res = joggled_hull(line, seed=19)
        assert res.attempt_log[-1][1] == "ok"
        assert all(o == "HullSetupError" for _, o in res.attempt_log[:-1])
