"""Cyclic-polytope workloads (moment curve): the regime that exercises
the n^{floor(d/2)} term of Theorem 5.4's work bound -- and the
regression suite for the predicate-envelope bug it exposed (the float
cofactor normal's own error must be inside the filter envelope)."""

import numpy as np
import pytest
from scipy.spatial import ConvexHull as ScipyHull

from repro.geometry import moment_curve, two_clusters
from repro.hull import (
    facet_sets_global,
    parallel_hull,
    sequential_hull,
    validate_hull,
)


class TestCyclicPolytopes:
    @pytest.mark.parametrize("d,n", [(3, 60), (4, 40), (4, 80)])
    def test_matches_scipy_exactly(self, d, n):
        """Regression: ill-conditioned t^d coordinates must not corrupt
        visibility decisions (this failed facet-for-facet before the
        envelope fix)."""
        pts = moment_curve(n, d, seed=n + d)
        seq = sequential_hull(pts, seed=1)
        validate_hull(seq.facets, seq.points)
        assert facet_sets_global(seq.facets, seq.order) == {
            frozenset(s) for s in ScipyHull(pts).simplices
        }

    @pytest.mark.parametrize("d,n", [(4, 60)])
    def test_parallel_agrees(self, d, n):
        pts = moment_curve(n, d, seed=7)
        order = np.random.default_rng(2).permutation(n)
        seq = sequential_hull(pts, order=order.copy())
        par = parallel_hull(pts, order=order.copy())
        assert par.created_keys() == seq.created_keys()
        validate_hull(par.facets, par.points)

    def test_all_points_extreme(self):
        # Every moment-curve point is a vertex of the cyclic polytope.
        pts = moment_curve(50, 4, seed=3)
        seq = sequential_hull(pts, seed=4)
        assert seq.vertex_indices() == set(range(50))

    def test_quadratic_facet_growth_d4(self):
        """Theorem 5.4's first term: facet count grows ~quadratically in
        d=4 (upper bound theorem shape)."""
        counts = []
        for n in (20, 40, 80):
            pts = moment_curve(n, 4, seed=n)
            counts.append(len(sequential_hull(pts, seed=5).facets))
        # Doubling n should roughly quadruple facets (ratio in [3, 5.5]).
        assert 3.0 < counts[1] / counts[0] < 5.5
        assert 3.0 < counts[2] / counts[1] < 5.5

    def test_linear_facet_growth_d3(self):
        counts = []
        for n in (40, 80, 160):
            pts = moment_curve(n, 3, seed=n)
            counts.append(len(sequential_hull(pts, seed=6).facets))
        assert 1.7 < counts[1] / counts[0] < 2.3
        assert 1.7 < counts[2] / counts[1] < 2.3

    def test_depth_still_logarithmic(self):
        """Even at Theta(n^2) facets, the dependence depth stays small."""
        pts = moment_curve(200, 4, seed=9)
        run = parallel_hull(pts, seed=10)
        assert run.dependence_depth() < 120


class TestTwoClusters:
    def test_valid_hull(self):
        pts = two_clusters(200, 3, seed=1)
        run = parallel_hull(pts, seed=2)
        validate_hull(run.facets, run.points)

    def test_matches_scipy(self):
        pts = two_clusters(150, 2, seed=3)
        run = parallel_hull(pts, seed=4)
        assert run.vertex_indices() == set(ScipyHull(pts).vertices.tolist())


class TestIllConditionedPlanes:
    def test_near_collinear_facet_decides_exactly(self):
        """A simplex with a tiny exact normal must route queries through
        rational arithmetic rather than trust the float normal."""
        from repro.geometry.hyperplane import Hyperplane

        base = np.array([[0.0, 0.0], [1.0, 1e-14]])
        plane = Hyperplane.through(base, below=[0.5, -1.0])
        # Points just above/below the nearly-flat line.
        assert plane.side([0.5, 1e-13]) == 1
        assert plane.side([0.5, -1e-13]) == -1
        assert plane.side([0.5, 0.5e-14]) == 0

    def test_always_exact_mode_triggers(self):
        from repro.geometry.hyperplane import Hyperplane

        base = np.array([[0.0, 0.0], [1.0, 1e-14]])
        # Reference within the envelope of this ill-conditioned plane
        # (the envelope here is ~6e-14, so a 3e-14 margin is ambiguous).
        plane = Hyperplane.through(base, below=[0.5, -3e-14])
        assert plane.always_exact
        mask = plane.visible_mask(np.array([[0.5, 1e-13], [0.5, -1e-13]]))
        assert mask.tolist() == [True, False]
