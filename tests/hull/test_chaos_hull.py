"""End-to-end fault injection on Algorithm 3.

The ISSUE acceptance bar: a RoundExecutor hull with 20% injected
ProcessRidge aborts must resume from its per-round checkpoints and
produce a facet set *identical* to the fault-free run on the same
insertion order.
"""

import numpy as np
import pytest

from repro.geometry import uniform_ball
from repro.hull import facet_sets_global, parallel_hull, validate_hull
from repro.runtime import RoundExecutor, SerialExecutor, ThreadExecutor
from repro.runtime.chaos import ChaosThreadExecutor, chaos_hull_roundtrip
from repro.runtime.faults import FaultPlan


@pytest.fixture
def instance():
    pts = uniform_ball(150, 3, seed=42)
    order = np.random.default_rng(6).permutation(150)
    return pts, order


class TestCheckpointResume:
    def test_20pct_aborts_identical_facets(self, instance):
        pts, order = instance
        base = parallel_hull(pts, order=order.copy(), executor=RoundExecutor())
        plan = FaultPlan(seed=1, crash_rate=0.2)
        run = parallel_hull(
            pts, order=order.copy(), executor=RoundExecutor(), fault_plan=plan
        )
        validate_hull(run.facets, run.points)
        assert facet_sets_global(run.facets, run.order) == facet_sets_global(
            base.facets, base.order
        )
        # The chaos actually happened: rounds rolled back and re-ran.
        assert run.exec_stats.rollbacks > 0
        assert run.exec_stats.tasks_aborted == run.exec_stats.rollbacks
        assert run.exec_stats.checkpoints >= run.exec_stats.rounds
        assert run.exec_stats.round_attempts > run.exec_stats.rounds

    def test_created_multiset_also_identical(self, instance):
        # Stronger than the facet set: rollback + fid rewind replays the
        # exact same creation history (same fids would be too strong for
        # delays, so assert the created-facet key multiset).
        pts, order = instance
        base = parallel_hull(pts, order=order.copy(), executor=RoundExecutor())
        run = parallel_hull(
            pts, order=order.copy(), executor=RoundExecutor(),
            fault_plan=FaultPlan(seed=2, crash_rate=0.3),
        )
        assert run.created_keys() == base.created_keys()

    def test_delay_faults_defer_but_converge(self, instance):
        pts, order = instance
        base = parallel_hull(pts, order=order.copy(), executor=RoundExecutor())
        plan = FaultPlan(seed=3, delay_rate=0.25)
        run = parallel_hull(
            pts, order=order.copy(), executor=RoundExecutor(), fault_plan=plan
        )
        assert facet_sets_global(run.facets, run.order) == facet_sets_global(
            base.facets, base.order
        )
        assert run.exec_stats.tasks_delayed > 0
        assert run.exec_stats.rollbacks == 0

    def test_mixed_crash_and_delay(self, instance):
        pts, order = instance
        base = parallel_hull(pts, order=order.copy(), executor=RoundExecutor())
        run = parallel_hull(
            pts, order=order.copy(), executor=RoundExecutor(),
            fault_plan=FaultPlan(seed=4, crash_rate=0.2, delay_rate=0.15),
        )
        validate_hull(run.facets, run.points)
        assert facet_sets_global(run.facets, run.order) == facet_sets_global(
            base.facets, base.order
        )

    def test_no_faults_means_no_overhead_counters(self, instance):
        pts, order = instance
        run = parallel_hull(
            pts, order=order.copy(), executor=RoundExecutor(),
            fault_plan=FaultPlan.none(),
        )
        s = run.exec_stats
        assert s.rollbacks == s.tasks_aborted == s.tasks_delayed == 0
        assert s.checkpoints == s.rounds  # one checkpoint per round

    def test_work_counters_uncorrupted_by_rollback(self, instance):
        # A rolled-back round's work must be uncounted: counters and the
        # work-span DAG of the chaos run match the fault-free run.
        pts, order = instance
        base = parallel_hull(pts, order=order.copy(), executor=RoundExecutor())
        run = parallel_hull(
            pts, order=order.copy(), executor=RoundExecutor(),
            fault_plan=FaultPlan(seed=1, crash_rate=0.2),
        )
        assert run.counters.as_dict() == base.counters.as_dict()
        assert run.tracker.work == base.tracker.work
        assert run.tracker.span == base.tracker.span

    def test_fault_plan_rejected_on_non_round_executors(self, instance):
        pts, order = instance
        plan = FaultPlan(seed=0, crash_rate=0.1)
        with pytest.raises(ValueError, match="ChaosThreadExecutor"):
            parallel_hull(pts, order=order.copy(), executor=SerialExecutor(),
                          fault_plan=plan)
        with pytest.raises(ValueError, match="ChaosThreadExecutor"):
            parallel_hull(pts, order=order.copy(), executor=ThreadExecutor(2),
                          multimap="cas", fault_plan=plan)


class TestThreadChaosHull:
    def test_worker_deaths_identical_facets(self, instance):
        pts, order = instance
        base = parallel_hull(pts, order=order.copy(), executor=RoundExecutor())
        plan = FaultPlan(seed=5, crash_rate=0.2)
        run = parallel_hull(
            pts, order=order.copy(),
            executor=ChaosThreadExecutor(3, plan=plan), multimap="cas",
        )
        validate_hull(run.facets, run.points)
        assert facet_sets_global(run.facets, run.order) == facet_sets_global(
            base.facets, base.order
        )
        assert run.exec_stats.worker_deaths > 0


class TestRoundtripHelper:
    @pytest.mark.parametrize("executor_kind", ["rounds", "threads"])
    def test_roundtrip_report(self, executor_kind):
        rep = chaos_hull_roundtrip(
            n=90, d=2, seed=7, crash_rate=0.25, executor_kind=executor_kind
        )
        assert rep["ok"] and rep["same_facets"]
        assert rep["faults_fired"]["crash"] > 0

    def test_unknown_executor_kind(self):
        with pytest.raises(ValueError):
            chaos_hull_roundtrip(executor_kind="quantum")
