"""Tests for the online (streaming) hull builder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import uniform_ball
from repro.hull import HullSetupError, facet_sets_global, sequential_hull, validate_hull
from repro.hull.online import OnlineHull


class TestBootstrap:
    def test_buffers_until_full_dimensional(self):
        h = OnlineHull(2)
        assert h.add([0, 0]) == "buffered"
        assert h.add([1, 0]) == "buffered"
        assert not h.is_full_dimensional
        assert h.add([0, 1]) == "extreme"
        assert h.is_full_dimensional
        assert len(h.facets) == 3

    def test_collinear_prefix_keeps_buffering(self):
        h = OnlineHull(2)
        for x in range(4):
            assert h.add([float(x), 0.0]) == "buffered"
        assert h.add([0.0, 1.0]) == "extreme"
        # Buffered collinear points are flushed through insertion.
        assert h.is_full_dimensional
        validate_hull(h.facets, h.points)

    def test_dimension_validation(self):
        with pytest.raises(HullSetupError):
            OnlineHull(1)
        h = OnlineHull(3)
        with pytest.raises(HullSetupError):
            h.add([1.0, 2.0])
        with pytest.raises(HullSetupError):
            h.add([1.0, np.nan, 0.0])

    def test_contains_requires_bootstrap(self):
        h = OnlineHull(2)
        h.add([0, 0])
        with pytest.raises(HullSetupError):
            h.contains([0, 0])


class TestMaintenance:
    @pytest.mark.parametrize("d,n", [(2, 150), (3, 100), (4, 50)])
    def test_matches_batch_hull(self, d, n):
        pts = uniform_ball(n, d, seed=d * 7 + n)
        h = OnlineHull(d)
        statuses = h.extend(pts)
        validate_hull(h.facets, h.points)
        batch = sequential_hull(pts, seed=1)
        assert facet_sets_global(h.facets, np.arange(n)) == facet_sets_global(
            batch.facets, batch.order
        )
        assert statuses.count("interior") == h.interior_points

    def test_insertion_order_irrelevant(self):
        pts = uniform_ball(60, 2, seed=9)
        ref = None
        for seed in range(3):
            order = np.random.default_rng(seed).permutation(60)
            h = OnlineHull(2)
            h.extend(pts[order])
            verts = {tuple(h.points[i]) for i in h.vertex_indices()}
            if ref is None:
                ref = verts
            assert verts == ref

    def test_interior_point_is_noop(self):
        h = OnlineHull(2)
        h.extend([[0, 0], [4, 0], [0, 4]])
        before = {f.fid for f in h.facets}
        assert h.add([1.0, 1.0]) == "interior"
        assert {f.fid for f in h.facets} == before

    def test_contains_tracks_growth(self):
        h = OnlineHull(2)
        h.extend([[0, 0], [1, 0], [0, 1]])
        assert not h.contains([2.0, 2.0])
        h.add([5.0, 5.0])
        assert h.contains([2.0, 2.0], strict=True)

    def test_counters(self):
        pts = uniform_ball(100, 2, seed=11)
        h = OnlineHull(2)
        h.extend(pts)
        assert h.inserted == 100
        assert 0 < h.interior_points < 100


@given(st.integers(0, 5000), st.integers(8, 60))
@settings(max_examples=25, deadline=None)
def test_online_equals_batch_property(seed, n):
    pts = uniform_ball(n, 2, seed=seed)
    h = OnlineHull(2)
    h.extend(pts)
    batch = sequential_hull(pts, seed=seed + 1)
    assert facet_sets_global(h.facets, np.arange(n)) == facet_sets_global(
        batch.facets, batch.order
    )
