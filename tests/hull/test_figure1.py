"""Experiment E4: the paper's Figure 1 / Section 5.3 worked example,
reproduced event-for-event.

Starting from the hull u-v-w-x-y-z-t with a, b, c pending in insertion
order, the paper's parallel schedule is:

* round 1: v-c, w-b, x-a, a-z created in parallel (replacing v-w, w-x,
  x-y, y-z);
* round 2: b-a replaces x-a, c-z replaces a-z;
* round 3: the corner w-b-a is buried by c; v-c and c-z finalise.

The final hull is u-v-c-z-t.
"""

import numpy as np
import pytest

from repro.geometry import figure1_points
from repro.hull import parallel_hull, sequential_hull


@pytest.fixture(scope="module")
def run():
    pts, _ = figure1_points()
    return parallel_hull(pts, order=np.arange(10), base_size=7)


@pytest.fixture(scope="module")
def labels():
    _, labels = figure1_points()
    return labels


def edge_name(run, labels, fid):
    f = next(x for x in run.created if x.fid == fid)
    return frozenset(labels[i] for i in f.indices)


def creates_in_round(run, labels, rnd):
    return {
        (edge_name(run, labels, e.created), edge_name(run, labels, e.removed), labels[e.pivot])
        for e in run.events
        if e.kind == "create" and e.round == rnd
    }


class TestFigure1:
    def test_three_rounds(self, run):
        assert run.exec_stats.rounds == 3

    def test_round1_parallel_creates(self, run, labels):
        expected = {
            (frozenset("vc"), frozenset("vw"), "c"),
            (frozenset("wb"), frozenset("wx"), "b"),
            (frozenset("xa"), frozenset("xy"), "a"),
            (frozenset("az"), frozenset("yz"), "a"),
        }
        assert creates_in_round(run, labels, 0) == expected

    def test_round2_creates(self, run, labels):
        expected = {
            (frozenset("ba"), frozenset("xa"), "b"),
            (frozenset("cz"), frozenset("az"), "c"),
        }
        assert creates_in_round(run, labels, 1) == expected

    def test_round3_no_creates(self, run, labels):
        assert creates_in_round(run, labels, 2) == set()

    def test_round3_buries_wb_ba_corner(self, run, labels):
        # The paper: "For w-b-a, both of the edges w-b and b-a see c as
        # their conflict pivot ... which directly buries w-b and b-a."
        bury_pairs = {
            frozenset(
                (edge_name(run, labels, e.removed_pair[0]),
                 edge_name(run, labels, e.removed_pair[1]))
            )
            for e in run.events
            if e.kind == "bury" and e.round == 2
        }
        assert frozenset((frozenset("wb"), frozenset("ba"))) in bury_pairs

    def test_round3_finalises_vcz_corner(self, run, labels):
        final_ridges = {
            frozenset(labels[i] for i in e.ridge)
            for e in run.events
            if e.kind == "final" and e.round == 2
        }
        assert frozenset("c") in final_ridges  # the corner v-c-z

    def test_final_hull_is_uvczt(self, run, labels):
        edges = {edge_name(run, labels, f.fid) for f in run.facets}
        assert edges == {
            frozenset("uv"),
            frozenset("vc"),
            frozenset("cz"),
            frozenset("zt"),
            frozenset("ut"),
        }

    def test_dependence_depth_two(self, run):
        # v-c etc. at depth 1; b-a and c-z at depth 2.
        assert run.dependence_depth() == 2

    def test_same_final_hull_as_sequential(self, run):
        pts, _ = figure1_points()
        seq = sequential_hull(pts, order=np.arange(10))
        assert run.facet_keys() == seq.facet_keys()

    def test_same_created_with_matching_base(self):
        # "Same facets created" requires the same bootstrap: sequential
        # grows from a 3-point simplex, so compare against the parallel
        # run at the default base size (d+1 = 3), not the 7-point one
        # used for the walkthrough.
        pts, _ = figure1_points()
        seq = sequential_hull(pts, order=np.arange(10))
        par = parallel_hull(pts, order=np.arange(10))
        assert par.created_keys() == seq.created_keys()
        assert par.facet_keys() == seq.facet_keys()

    def test_pivot_visibility_pattern(self, run, labels):
        """The visibility structure the figure depends on: a sees x-y and
        y-z; b sees w-x (not v-w); c sees everything between v and z but
        not u-v or z-t."""
        conf = {
            edge_name(run, labels, f.fid): {labels[int(v)] for v in f.conflicts}
            for f in run.created[:7]
        }
        assert conf[frozenset("uv")] == set()
        assert conf[frozenset("ut")] == set()
        assert conf[frozenset("zt")] == set()
        assert conf[frozenset("vw")] == {"c"}
        assert "b" in conf[frozenset("wx")] and "a" not in conf[frozenset("wx")]
        assert "a" in conf[frozenset("xy")]
        assert min(conf[frozenset("yz")], key=labels.index) == "a"
