"""Experiment E2: Algorithm 3 does exactly Algorithm 2's computation.

The paper (Section 5.2): the parallel variant "creates the exact same
set of facets along the way and runs the exact same set of visibility
tests, but in a relaxed order" -- with the caveat that buried ridges
let it *skip* some tests.  Verified here facet-for-facet and
count-for-count under shared insertion orders.
"""

import numpy as np
import pytest

from repro.analysis import compare_work
from repro.geometry import gaussian, on_sphere, uniform_ball, uniform_cube
from repro.hull import parallel_hull, sequential_hull

WORKLOADS = [
    (uniform_ball, 2, 200),
    (uniform_ball, 3, 150),
    (uniform_ball, 4, 80),
    (on_sphere, 2, 120),
    (on_sphere, 3, 120),
    (uniform_cube, 3, 150),
    (gaussian, 2, 300),
]


@pytest.mark.parametrize("gen,d,n", WORKLOADS)
def test_same_facets_created(gen, d, n):
    pts = gen(n, d, seed=d * 1000 + n)
    order = np.random.default_rng(99).permutation(n)
    seq = sequential_hull(pts, order=order.copy())
    par = parallel_hull(pts, order=order.copy())
    assert par.facet_keys() == seq.facet_keys()
    assert par.created_keys() == seq.created_keys()


@pytest.mark.parametrize("gen,d,n", WORKLOADS)
def test_visibility_tests_never_exceed_sequential(gen, d, n):
    pts = gen(n, d, seed=d * 2000 + n)
    cmpn = compare_work(pts, seed=7)
    assert cmpn.par.counters.visibility_tests <= cmpn.seq.counters.visibility_tests
    # And not wildly fewer: the computation is the same, reshuffled.
    assert cmpn.test_ratio > 0.5


def test_same_facet_count_many_seeds():
    pts = uniform_ball(100, 2, seed=0)
    for seed in range(10):
        cmpn = compare_work(pts, seed=seed)
        assert cmpn.same_facets
        assert cmpn.same_created
        assert len(cmpn.par.created) == len(cmpn.seq.created)


def test_conflict_sets_identical_per_facet():
    """Stronger than facet equality: each created facet carries the same
    conflict set in both algorithms."""
    pts = uniform_ball(120, 2, seed=5)
    order = np.random.default_rng(3).permutation(120)
    seq = sequential_hull(pts, order=order.copy())
    par = parallel_hull(pts, order=order.copy())
    seq_conf = {f.key(): f.conflicts.tolist() for f in seq.created}
    par_conf = {f.key(): f.conflicts.tolist() for f in par.created}
    assert seq_conf == par_conf


def test_work_ratio_close_to_one_on_sphere():
    """On all-extreme inputs almost nothing is buried, so the parallel
    test count should be nearly identical to the sequential one."""
    pts = on_sphere(300, 2, seed=8)
    cmpn = compare_work(pts, seed=11)
    assert 0.9 <= cmpn.test_ratio <= 1.0
