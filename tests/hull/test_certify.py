"""Hull certificates: produced by construction, verified by an
independent exact checker, and -- the part that matters -- *rejected*
when corrupted in any of the four adversarial ways."""

import json

import numpy as np
import pytest

from repro.geometry import uniform_ball
from repro.geometry.degenerate import corpus_case
from repro.hull import (
    facet_sets_global,
    parallel_hull,
    robust_hull,
)
from repro.hull.certify import (
    CORRUPTION_MODES,
    CertificateError,
    HullCertificate,
    corrupt_certificate,
    make_certificate,
    verify_certificate,
)


@pytest.fixture(params=[2, 3], ids=["d2", "d3"])
def cert_and_points(request):
    d = request.param
    pts = uniform_ball(40, d, seed=d)
    run = parallel_hull(pts, seed=1)
    return make_certificate(run, "float"), pts, run


class TestVerify:
    def test_good_certificate_accepted(self, cert_and_points):
        cert, pts, _ = cert_and_points
        verify_certificate(cert, pts)

    def test_facets_are_original_indices(self, cert_and_points):
        cert, pts, run = cert_and_points
        assert cert.facet_sets_global() == facet_sets_global(run.facets, run.order)

    def test_json_roundtrip(self, cert_and_points):
        cert, pts, _ = cert_and_points
        blob = json.dumps(cert.to_dict())
        back = HullCertificate.from_dict(json.loads(blob))
        verify_certificate(back, pts)
        assert back.facet_sets_global() == cert.facet_sets_global()

    def test_wrong_points_rejected(self, cert_and_points):
        # An affine map of the cloud would still verify (hulls are
        # affine-invariant); reversing the point order is not affine.
        cert, pts, _ = cert_and_points
        other = pts[::-1].copy()
        with pytest.raises(CertificateError):
            verify_certificate(cert, other)


class TestCorruptions:
    @pytest.mark.parametrize("mode", CORRUPTION_MODES)
    def test_corruption_rejected(self, cert_and_points, mode):
        cert, pts, _ = cert_and_points
        corrupted = corrupt_certificate(cert, mode, seed=0)
        with pytest.raises(CertificateError):
            verify_certificate(corrupted, pts)

    def test_unknown_mode_rejected(self, cert_and_points):
        cert, _, _ = cert_and_points
        with pytest.raises(ValueError):
            corrupt_certificate(cert, "make-it-worse")


class TestSosCertificates:
    def test_coplanar_sos_certificate(self):
        pts = corpus_case("coplanar-3d", seed=0)
        res = robust_hull(pts, seed=0)
        assert res.mode == "sos"
        cert = res.certificate
        assert cert.sos
        verify_certificate(cert, pts)

    @pytest.mark.parametrize("mode", CORRUPTION_MODES)
    def test_sos_corruption_rejected(self, mode):
        pts = corpus_case("coplanar-3d", seed=0)
        res = robust_hull(pts, seed=0)
        corrupted = corrupt_certificate(res.certificate, mode, seed=1)
        with pytest.raises(CertificateError):
            verify_certificate(corrupted, pts)

    def test_duplicate_points_sos_certificate(self):
        base = uniform_ball(8, 2, seed=2)
        pts = np.vstack([base, base[:4]])
        from repro.geometry.perturb import sos_mode

        with sos_mode():
            run = parallel_hull(pts, seed=0)
        cert = make_certificate(run, "sos")
        assert cert.sos
        verify_certificate(cert, pts)


class TestRobustIntegration:
    def test_every_rung_certifies(self):
        pts = uniform_ball(40, 2, seed=9)
        res = robust_hull(pts, seed=0)
        assert res.certificate is not None
        assert res.certificate.mode == res.mode
        verify_certificate(res.certificate, pts)

    def test_certify_false_skips(self):
        pts = uniform_ball(40, 2, seed=9)
        res = robust_hull(pts, seed=0, certify=False)
        assert res.certificate is None
