"""Noisy-oracle hulls: p=0 bit-identity, the certificate-gated
self-healing ladder, escalation-path normalization, and the validator's
discriminating power on the degenerate corpus."""

import numpy as np
import pytest

from repro.analysis.noisybench import _validator_corrupted, _validator_noisy
from repro.geometry import uniform_ball
from repro.geometry.noisy import ADAPTIVE, NoisyKernel
from repro.hull import parallel_hull, robust_hull, sequential_hull
from repro.hull.point_parallel import point_parallel_hull
from repro.hull.serialize import run_summary
from repro.runtime.procexec import ProcessExecutor


def _global_keys(run) -> set:
    """Facet keys in global-index space (rank space depends on the
    insertion order, which different ladder rungs may not share)."""
    order = np.asarray(run.order)
    return {tuple(sorted(int(order[r]) for r in f.indices)) for f in run.facets}


class TestBitIdentityAtPZero:
    """A p=0 NoisyKernel must be a bit-identical no-op wrapper: same
    facets, same fids, same counters, same work/span DAG."""

    @pytest.mark.parametrize("base", ["scalar", "batch"])
    @pytest.mark.parametrize(
        "driver", [sequential_hull, parallel_hull, point_parallel_hull]
    )
    def test_identical_runs(self, base, driver):
        pts = uniform_ball(70, 3, seed=2)
        order = np.random.default_rng(3).permutation(70)
        ref = driver(pts, order=order.copy(), kernel=base)
        nk = NoisyKernel(p=0.0, votes=3, seed=9, base=base)
        run = driver(pts, order=order.copy(), kernel=nk)
        assert run.facet_keys() == ref.facet_keys()
        if hasattr(ref, "created"):  # point-parallel keeps no creation log
            assert [f.fid for f in run.created] == [f.fid for f in ref.created]
        assert run.counters.as_dict() == ref.counters.as_dict()
        assert nk.decisions == 0  # noise layer never even sampled

    @pytest.mark.parametrize("base", ["scalar", "batch"])
    def test_work_span_dag_identical(self, base):
        pts = uniform_ball(60, 3, seed=4)
        ref = parallel_hull(pts, seed=1, kernel=base)
        run = parallel_hull(
            pts, seed=1, kernel=NoisyKernel(p=0.0, seed=5, base=base)
        )
        assert run.tracker.work == ref.tracker.work
        assert run.tracker.span == ref.tracker.span
        assert len(run.tracker) == len(ref.tracker)

    def test_snapshot_still_records_noisy_provenance(self):
        # Even a p=0 run is labeled: the archive must show which oracle
        # model produced it.
        run = parallel_hull(
            uniform_ball(40, 3, seed=0), seed=1,
            kernel=NoisyKernel(p=0.0, seed=5, base="batch"),
        )
        snap = run.exec_stats.kernel_stats
        assert snap["kernel"] == "noisy[batch]"
        assert snap["noise_p"] == 0.0


class TestNoisyRuns:
    def test_noise_actually_corrupts_at_high_p(self):
        # At p=0.1, votes=1 a 120-point run must not silently match the
        # exact hull (that would mean flips are not being applied).
        pts = uniform_ball(120, 3, seed=7)
        ref = parallel_hull(pts, seed=1)
        nk = NoisyKernel(p=0.1, votes=1, seed=3)
        try:
            run = parallel_hull(ref.points, order=np.arange(120), kernel=nk)
        except Exception:
            return  # lying oracle broke an invariant outright: corrupted
        assert run.facet_keys() != ref.facet_keys()
        assert nk.flips > 0

    def test_votes_repair_mild_noise(self):
        # p=0.001 with adaptive voting: per-decision error is driven far
        # below 1/decisions, so the hull comes out exact.
        pts = uniform_ball(80, 3, seed=8)
        ref = parallel_hull(pts, seed=1)
        nk = NoisyKernel(p=0.001, votes=ADAPTIVE, seed=2)
        run = parallel_hull(ref.points, order=np.arange(80), kernel=nk)
        assert run.facet_keys() == ref.facet_keys()
        assert nk.decisions > 0
        assert nk.vote_overhead() >= nk.lead_needed()

    def test_process_executor_rejected(self):
        pts = uniform_ball(40, 3, seed=0)
        with ProcessExecutor(n_workers=1) as ex:
            with pytest.raises(ValueError, match="ProcessExecutor"):
                parallel_hull(pts, seed=1, kernel=NoisyKernel(p=0.01), executor=ex)


class TestLadder:
    def test_ladder_lands_on_exact_hull(self):
        pts = uniform_ball(120, 3, seed=5)
        exact = robust_hull(pts, seed=2)
        nk = NoisyKernel(p=0.05, votes=1, seed=4)
        res = robust_hull(pts, seed=2, noise=nk)
        assert _global_keys(res.run) == _global_keys(exact.run)
        assert res.certificate is not None
        assert res.escalations[-1].endswith(":ok")
        # The surviving rung's kernel (with its vote counters) is kept.
        if res.mode.startswith("noisy["):
            assert res.noise is not None
            assert res.noise.decisions > 0
            assert res.mode == res.noise.rung_label()

    def test_escalation_escalates_votes(self):
        # Find a (seed, p) where votes=1 fails so the path has >= 2
        # rungs; the level sequence must be k -> 2k+1 -> adaptive.
        pts = uniform_ball(150, 3, seed=6)
        for nseed in range(10):
            nk = NoisyKernel(p=0.1, votes=1, seed=nseed)
            res = robust_hull(pts, seed=2, noise=nk)
            if len(res.escalations) > 1:
                break
        else:
            pytest.fail("p=0.1 votes=1 never failed across 10 noise seeds")
        labels = [e.split(":")[0].split("#")[0] for e in res.escalations]
        allowed = [
            "noisy[p=0.1,votes=1]", "noisy[p=0.1,votes=3]",
            "noisy[p=0.1,votes=adaptive]", "float", "exact", "sos", "joggle",
        ]
        # Path climbs the ladder monotonically.
        ranks = [allowed.index(lab) for lab in labels]
        assert ranks == sorted(ranks)

    def test_record_normalizes_repeat_attempts(self, monkeypatch):
        # Satellite: one rung:outcome entry per attempt, repeats get an
        # attempt counter instead of overwriting or duplicating labels.
        import repro.hull.robust as robust_mod

        real = robust_mod.parallel_hull

        def flaky(points, **kw):
            if isinstance(kw.get("kernel"), NoisyKernel):
                raise ValueError("injected")
            return real(points, **kw)

        monkeypatch.setattr(robust_mod, "parallel_hull", flaky)
        pts = uniform_ball(40, 3, seed=1)
        nk = NoisyKernel(p=0.01, votes=ADAPTIVE, seed=0)  # single noisy level
        res = robust_hull(pts, seed=0, noise=nk, noise_retries=3)
        assert res.mode == "float"
        assert res.escalations == [
            "noisy[p=0.01,votes=adaptive]:ValueError",
            "noisy[p=0.01,votes=adaptive]#2:ValueError",
            "noisy[p=0.01,votes=adaptive]#3:ValueError",
            "float:ok",
        ]

    def test_retries_use_fresh_epochs(self, monkeypatch):
        import repro.hull.robust as robust_mod

        seen: list[int] = []
        real = robust_mod.parallel_hull

        def spy(points, **kw):
            nk = kw.get("kernel")
            if isinstance(nk, NoisyKernel):
                seen.append(nk.epoch)
                raise ValueError("injected")
            return real(points, **kw)

        monkeypatch.setattr(robust_mod, "parallel_hull", spy)
        nk = NoisyKernel(p=0.01, votes=1, seed=0, epoch=5)
        robust_hull(uniform_ball(30, 3, seed=1), seed=0, noise=nk,
                    noise_retries=2)
        # 3 levels x 2 retries, every attempt at a distinct fresh epoch.
        assert seen == [5, 6, 7, 8, 9, 10]

    def test_exec_stats_escalations_merged_not_overwritten(self, monkeypatch):
        # Satellite: PR 7's executor-ladder provenance (process->thread
        # degradation) must survive the robust ladder's merge.
        import repro.hull.robust as robust_mod

        real = robust_mod.parallel_hull
        preseed = ["process:worker_death", "thread:ok"]

        def preseeded(points, **kw):
            run = real(points, **kw)
            run.exec_stats.escalations = list(preseed)
            return run

        monkeypatch.setattr(robust_mod, "parallel_hull", preseeded)
        pts = uniform_ball(40, 3, seed=1)
        res = robust_hull(pts, seed=0)
        assert res.escalations == ["float:ok"]
        assert res.run.exec_stats.escalations == preseed + ["float:ok"]
        # Same merge discipline on the noisy rung.
        res = robust_hull(
            pts, seed=0, noise=NoisyKernel(p=0.0, votes=1, seed=0)
        )
        assert res.run.exec_stats.escalations == preseed + res.escalations

    def test_noise_retries_validated(self):
        with pytest.raises(ValueError):
            robust_hull(
                uniform_ball(20, 2, seed=0), noise=NoisyKernel(p=0.01),
                noise_retries=0,
            )


class TestValidatorPower:
    """Satellite: the independent certificate checker must discriminate
    -- reject every corrupted certificate, and never accept a noisy hull
    that differs from the exact reference (p >= 0.05, votes=1, the full
    degenerate corpus)."""

    def test_rejects_all_corrupted_certificates(self):
        out = _validator_corrupted(range(1))
        assert out["checked"] >= 48  # 12 families x 4 corruption modes
        assert out["rejected"] == out["checked"]
        assert out["false_accepts"] == []

    def test_no_false_accepts_on_noisy_corpus_runs(self):
        out = _validator_noisy((0.05,), range(1))
        # Wrong hulls at p=0.05/votes=1 must be caught: every family run
        # either crashed (no certificate), was rejected, or the hull it
        # certified is exactly the noise-free reference.
        assert out["false_accepts"] == []
        assert out["checked"] + out["crashed_runs"] > 0
        assert out["rejected"] + out["crashed_runs"] > 0  # power, not vacuity


class TestSerializedNoise:
    def test_summary_surfaces_noise_block(self):
        pts = uniform_ball(50, 3, seed=3)
        run = parallel_hull(pts, seed=1, kernel=NoisyKernel(p=0.01, votes=3, seed=2))
        summary = run_summary(run)
        assert summary["kernel"]["kernel"] == "noisy[scalar]"
        noise = summary["noise"]
        assert noise["noise_p"] == 0.01
        assert noise["noise_votes"] == 3
        assert noise["noisy_decisions"] > 0
        assert noise["noisy_votes_cast"] == 3 * noise["noisy_decisions"]

    def test_summary_noise_none_on_clean_runs(self):
        run = parallel_hull(uniform_ball(30, 3, seed=3), seed=1)
        assert run_summary(run)["noise"] is None
