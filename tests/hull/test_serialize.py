"""Round-trip tests for the run-summary and certificate serializers.

A reproduction artefact is only useful if it survives the disk: a run
flattened with :func:`repro.hull.serialize.save_run` must load back
with every paper-relevant quantity intact, and a serialized certificate
must still *verify* after a JSON round trip -- while corrupted payloads
are rejected loudly, never silently deserialized.
"""

import json

import pytest

from repro.geometry import uniform_ball
from repro.hull import parallel_hull, sequential_hull
from repro.hull.certify import (
    CertificateError,
    HullCertificate,
    corrupt_certificate,
    make_certificate,
    verify_certificate,
)
from repro.hull.serialize import (
    graph_from_summary,
    load_summary,
    run_summary,
    save_run,
)


@pytest.mark.parametrize("d,kernel", [(2, "scalar"), (2, "batch"), (3, "batch")])
def test_run_summary_roundtrip(tmp_path, d, kernel):
    pts = uniform_ball(90, d, seed=d)
    run = parallel_hull(pts, seed=7, kernel=kernel)
    path = tmp_path / "run.json"
    save_run(run, path)
    loaded = load_summary(path)

    assert loaded["n"] == 90 and loaded["d"] == d
    assert loaded["counters"] == run.counters.as_dict()
    assert loaded["depth"] == run.dependence_depth()
    assert loaded["work"] == run.tracker.work
    assert loaded["span"] == run.tracker.span
    assert {frozenset(f) for f in loaded["hull_facets"]} == {
        frozenset(f.indices) for f in run.facets
    }
    # Kernel provenance survives the trip.
    assert loaded["kernel"]["kernel"] == kernel
    if kernel == "batch":
        assert loaded["kernel"]["batched_signs"] > 0

    # The dependence graph rebuilt from disk reproduces the depth.
    graph = graph_from_summary(loaded)
    assert len(graph.order) == len(run.created)


def test_run_summary_scalar_default_kernel_field():
    pts = uniform_ball(40, 2, seed=1)
    seq = sequential_hull(pts, seed=3)
    # Sequential results carry no exec_stats.kernel_stats; the summary
    # still reports an explicit engine instead of omitting the field.
    summary = run_summary(parallel_hull(pts, seed=3))
    assert summary["kernel"]["kernel"] == "scalar"
    assert seq.facet_keys()  # the sequential run participated, too


def test_load_summary_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "repro.hull.run/999", "n": 1}))
    with pytest.raises(ValueError, match="unrecognised run summary schema"):
        load_summary(path)
    path.write_text(json.dumps({"n": 1}))
    with pytest.raises(ValueError, match="unrecognised run summary schema"):
        load_summary(path)


@pytest.mark.parametrize("d,kernel", [(2, "scalar"), (3, "batch")])
def test_certificate_roundtrip_reverifies(d, kernel):
    pts = uniform_ball(60, d, seed=d + 10)
    run = parallel_hull(pts, seed=5, kernel=kernel)
    cert = make_certificate(run)
    payload = json.dumps(cert.to_dict())
    back = HullCertificate.from_dict(json.loads(payload))
    verify_certificate(back, pts)
    assert back.facets == cert.facets
    assert back.vis_signs == cert.vis_signs


def test_certificate_rejects_wrong_schema():
    pts = uniform_ball(30, 2, seed=2)
    cert = make_certificate(parallel_hull(pts, seed=1))
    data = cert.to_dict()
    data["schema"] = "not-a-certificate"
    with pytest.raises(CertificateError, match="unknown certificate schema"):
        HullCertificate.from_dict(data)


@pytest.mark.parametrize(
    "mode", ["drop-facet", "flip-orientation", "duplicate-ridge", "tamper-vertex"]
)
def test_corrupted_certificate_fails_verification(mode):
    pts = uniform_ball(50, 2, seed=4)
    cert = make_certificate(parallel_hull(pts, seed=9, kernel="batch"))
    verify_certificate(cert, pts)  # sanity: the honest one passes
    bad = corrupt_certificate(cert, mode, seed=3)
    # The tampered payload still parses (schema intact) ...
    parsed = HullCertificate.from_dict(json.loads(json.dumps(bad.to_dict())))
    # ... but cannot verify.
    with pytest.raises(CertificateError):
        verify_certificate(parsed, pts)


def test_tampered_payload_values_rejected():
    """Bit-level tampering below the schema layer: mangled points/facets
    must fail verification, not crash or pass."""
    pts = uniform_ball(40, 3, seed=6)
    cert = make_certificate(parallel_hull(pts, seed=2))
    data = json.loads(json.dumps(cert.to_dict()))
    data["facets"] = data["facets"][:-1]  # drop one facet: open manifold
    with pytest.raises(CertificateError):
        verify_certificate(HullCertificate.from_dict(data), pts)

    hull_vertices = {i for f in cert.facets for i in f}
    outsider = next(i for i in range(pts.shape[0]) if i not in hull_vertices)
    moved = pts.copy()
    moved[outsider] *= 100.0  # now strictly outside every claimed facet
    with pytest.raises(CertificateError):
        verify_certificate(cert, moved)  # certificate of different points
