"""Tests for Algorithm 2 (sequential randomized incremental hull)."""

import numpy as np
import pytest
from scipy.spatial import ConvexHull as ScipyHull

from repro.geometry import on_sphere, uniform_ball, uniform_cube
from repro.hull import (
    HullSetupError,
    brute_force_facet_sets,
    facet_sets_global,
    sequential_hull,
    validate_hull,
)


class TestBasic:
    def test_triangle(self):
        pts = np.array([[0.0, 0], [1, 0], [0, 1]])
        res = sequential_hull(pts, order=np.arange(3))
        assert len(res.facets) == 3
        validate_hull(res.facets, res.points)

    def test_square_with_center(self):
        pts = np.array([[0.0, 0], [1, 0], [1, 1], [0, 1], [0.5, 0.5]])
        res = sequential_hull(pts, order=np.arange(5))
        assert res.vertex_indices() == {0, 1, 2, 3}
        assert len(res.facets) == 4

    def test_tetrahedron_with_inner_point(self):
        pts = np.array(
            [[0.0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1], [0.1, 0.1, 0.1]]
        )
        res = sequential_hull(pts, order=np.arange(5))
        assert res.vertex_indices() == {0, 1, 2, 3}
        assert len(res.facets) == 4

    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_simplex_only(self, d):
        pts = np.vstack([np.zeros(d), np.eye(d)])
        res = sequential_hull(pts, order=np.arange(d + 1))
        assert len(res.facets) == d + 1
        validate_hull(res.facets, res.points)


class TestAgainstScipy:
    @pytest.mark.parametrize("d,n", [(2, 200), (3, 150), (4, 80)])
    def test_vertices_match_qhull(self, d, n):
        pts = uniform_ball(n, d, seed=d * 31 + n)
        res = sequential_hull(pts, seed=5)
        assert res.vertex_indices() == set(ScipyHull(pts).vertices.tolist())

    def test_sphere_all_extreme(self):
        pts = on_sphere(120, 3, seed=9)
        res = sequential_hull(pts, seed=2)
        assert res.vertex_indices() == set(range(120))
        validate_hull(res.facets, res.points)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("d,n,seed", [(2, 10, 0), (2, 12, 1), (3, 9, 2), (4, 8, 3)])
    def test_facets_match_exhaustive(self, d, n, seed):
        pts = uniform_ball(n, d, seed=seed)
        res = sequential_hull(pts, seed=seed + 50)
        got = facet_sets_global(res.facets, res.order)
        assert got == brute_force_facet_sets(pts)


class TestOrderIndependence:
    def test_same_hull_any_order(self):
        pts = uniform_cube(60, 3, seed=13)
        reference = None
        for seed in range(5):
            res = sequential_hull(pts, seed=seed)
            validate_hull(res.facets, res.points)
            sets = facet_sets_global(res.facets, res.order)
            if reference is None:
                reference = sets
            assert sets == reference

    def test_explicit_order_is_deterministic(self):
        pts = uniform_ball(50, 2, seed=3)
        order = np.random.default_rng(0).permutation(50)
        a = sequential_hull(pts, order=order.copy())
        b = sequential_hull(pts, order=order.copy())
        assert a.facet_keys() == b.facet_keys()
        assert a.counters.visibility_tests == b.counters.visibility_tests
        assert [f.indices for f in a.created] == [f.indices for f in b.created]


class TestInstrumentation:
    def test_created_superset_of_alive(self):
        pts = uniform_ball(80, 2, seed=21)
        res = sequential_hull(pts, seed=4)
        created_ids = {f.fid for f in res.created}
        assert {f.fid for f in res.facets} <= created_ids
        assert res.counters.facets_created == len(res.created)

    def test_creation_steps_monotone(self):
        pts = uniform_ball(60, 3, seed=22)
        res = sequential_hull(pts, seed=5)
        for f in res.created:
            assert res.creation_step[f.fid] <= res.points.shape[0]

    def test_dead_facets_marked(self):
        pts = uniform_ball(60, 2, seed=23)
        res = sequential_hull(pts, seed=6)
        alive = {f.fid for f in res.facets}
        for f in res.created:
            assert f.alive == (f.fid in alive)

    def test_work_counts_positive(self):
        pts = uniform_ball(100, 2, seed=24)
        res = sequential_hull(pts, seed=7)
        assert res.counters.visibility_tests > 100


class TestInputValidation:
    def test_too_few_points(self):
        with pytest.raises(HullSetupError):
            sequential_hull(np.zeros((2, 2)))

    def test_wrong_ndim(self):
        with pytest.raises(HullSetupError):
            sequential_hull(np.zeros(5))

    def test_non_finite(self):
        pts = np.array([[0.0, 0], [1, 0], [0, np.inf]])
        with pytest.raises(HullSetupError):
            sequential_hull(pts)

    def test_bad_order(self):
        pts = np.array([[0.0, 0], [1, 0], [0, 1]])
        with pytest.raises(HullSetupError):
            sequential_hull(pts, order=np.array([0, 0, 1]))

    def test_not_full_dimensional(self):
        pts = np.array([[0.0, 0], [1, 1], [2, 2], [3, 3]])
        with pytest.raises(HullSetupError):
            sequential_hull(pts, order=np.arange(4))

    def test_1d_rejected(self):
        with pytest.raises(HullSetupError):
            sequential_hull(np.arange(6, dtype=float).reshape(6, 1))


class TestDegenerateBootstrap:
    def test_collinear_prefix_is_skipped(self):
        # First three points collinear: the initial simplex must pull in
        # a later point instead of failing.  Point 1 sits on the interior
        # of a hull edge; the simplicial representation may keep it as a
        # vertex of two collinear edges (depending on bootstrap) but the
        # true extreme points {0, 2, 3} must be present and 4 must not.
        pts = np.array([[0.0, 0], [1, 0], [2, 0], [1, 1], [0.5, 0.2]])
        res = sequential_hull(pts, order=np.arange(5))
        from repro.hull.validate import check_containment

        check_containment(res.facets, res.points)
        assert {0, 2, 3} <= res.vertex_indices() <= {0, 1, 2, 3}
