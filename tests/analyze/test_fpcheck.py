"""The five RPRFP rules on seeded fixture programs, plus the real-tree
cleanliness and ratchet-baseline guarantees.

Each bad fixture must trigger *exactly* its rule; each clean twin must
pass.  Fixtures carry the same ``# repro: fp-bound:`` grammar as the
real kernels, so they analyse exactly the way ``src/repro`` does.  The
centerpiece is the PR 3 regression: the old plain eps*Hadamard
determinant envelope, re-committed verbatim, must be rejected
statically (RPRFP001) -- the bug fuzzing found dynamically is now a
compile-time error.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analyze import analyze_fpcheck, baseline_payload

REPO = Path(__file__).resolve().parents[2]


def _run(src: str, name: str = "fixture.py"):
    return analyze_fpcheck([], sources={name: src})


def _rules(result):
    return [f.rule_id for f in result.findings]


# -- RPRFP001: committed envelope under the derived bound -----------------

# The PR 3 regression, distilled: the determinant filter's committed
# constant was a plain eps * Hadamard bound (16*ME*CM here) with no
# room for the elimination constants and the 2^(n-1) pivot growth the
# LAPACK model (108*ME*CM) carries.  Statically rejected.
PR3_REGRESSION = '''
import numpy as np

def det_filter(m):
    # repro: fp-bound: assume n in 3..3
    # repro: fp-bound: in m ~ ME
    # repro: fp-bound: call det ~ DET err 108*ME*CM
    det = float(np.linalg.det(m))
    # repro: fp-bound: claim det <= 16*ME*CM
    return det
'''

PR3_REGRESSION_CLEAN = PR3_REGRESSION.replace("16*ME*CM", "1728*ME*CM")

# Straight-line arithmetic variant: the claim must dominate the
# derivation from the transfer rules themselves.
UNDER_CLAIMED_SUM = '''
def residual(a, b):
    # repro: fp-bound: in a ~ A
    # repro: fp-bound: in b ~ B
    s = a + b
    # repro: fp-bound: claim s <= 0.1*A + 0.1*B
    return s
'''

UNDER_CLAIMED_SUM_CLEAN = UNDER_CLAIMED_SUM.replace("0.1*A + 0.1*B",
                                                    "0.5*A + 0.5*B")


class TestEnvelopeUnderDerived:
    def test_pr3_regression_flagged(self):
        r = _run(PR3_REGRESSION)
        assert _rules(r) == ["RPRFP001"]
        (f,) = r.findings
        assert "det" in f.message

    def test_pr3_fixed_constant_clean(self):
        assert _rules(_run(PR3_REGRESSION_CLEAN)) == []

    def test_under_claimed_arithmetic(self):
        assert _rules(_run(UNDER_CLAIMED_SUM)) == ["RPRFP001"]
        assert _rules(_run(UNDER_CLAIMED_SUM_CLEAN)) == []

    def test_claim_recorded_both_ways(self):
        bad = _run(UNDER_CLAIMED_SUM)
        good = _run(UNDER_CLAIMED_SUM_CLEAN)
        assert [c.ok for c in bad.claims] == [False]
        assert [c.ok for c in good.claims] == [True]

    def test_fact_closes_the_gap(self):
        # Without the fact the derived NRM monomial has no budget in
        # the committed 6*H bound; the fact NRM <= 6*H (the cofactor
        # Hadamard inequality) makes the same claim pass.
        base = '''
def scalenorm(n):
    # repro: fp-bound: in n ~ NRM
    x = n + n
    # repro: fp-bound: claim x <= 24*H
    return x
'''
        assert _rules(_run(base)) == ["RPRFP001"]
        with_fact = base.replace(
            "    # repro: fp-bound: in n ~ NRM",
            "    # repro: fp-bound: in n ~ NRM\n"
            "    # repro: fp-bound: fact NRM <= 6*H",
        )
        assert _rules(_run(with_fact)) == []


# -- RPRFP002: unfiltered float comparison --------------------------------

UNFILTERED = '''
def decide(margins):
    # repro: fp-bound: in margins ~ M err 3*M
    return margins > 0.0
'''

GUARDED_STATEMENT = '''
def decide(margins, env):
    # repro: fp-bound: in margins ~ M err 3*M
    # repro: fp-bound: guard env
    return margins > env
'''

GUARDED_BRANCH = '''
def decide(margin, env):
    # repro: fp-bound: in margin ~ M err 3*M
    # repro: fp-bound: guard env
    if abs(margin) > env:
        if margin > 0.0:
            return 1
        return -1
    return 0
'''


class TestUnfilteredComparison:
    def test_bare_comparison_flagged(self):
        r = _run(UNFILTERED)
        assert _rules(r) == ["RPRFP002"]

    def test_guard_in_statement_clean(self):
        assert _rules(_run(GUARDED_STATEMENT)) == []

    def test_comparison_inside_guarded_branch_clean(self):
        # The scalar-ladder shape: the inner sign test mentions no
        # envelope name, but the enclosing branch condition does -- the
        # comparison is dominated by the filter.
        assert _rules(_run(GUARDED_BRANCH)) == []

    def test_errorless_data_not_flagged(self):
        # Exact inputs (no err declaration) carry no rounding error;
        # comparing them trusts nothing.
        src = UNFILTERED.replace(" err 3*M", "")
        assert _rules(_run(src)) == []


# -- RPRFP003: non-conservative envelope arithmetic -----------------------

SUBTRACTIVE_ENVELOPE = '''
def envelope(a, b):
    # repro: fp-bound: in a ~ A
    # repro: fp-bound: in b ~ B
    # repro: fp-bound: envelope env
    env = a - b
    return env
'''

ADDITIVE_ENVELOPE = SUBTRACTIVE_ENVELOPE.replace("a - b", "a + b")


class TestNonConservativeEnvelope:
    def test_subtraction_flagged(self):
        assert _rules(_run(SUBTRACTIVE_ENVELOPE)) == ["RPRFP003"]

    def test_addition_clean(self):
        assert _rules(_run(ADDITIVE_ENVELOPE)) == []

    def test_division_flagged(self):
        assert _rules(_run(SUBTRACTIVE_ENVELOPE.replace("a - b", "a / b"))) \
            == ["RPRFP003"]

    def test_index_arithmetic_exempt(self):
        # n - 1 on a pinned dimension is exact integer arithmetic, not
        # float envelope data: no finding even inside an envelope RHS.
        src = '''
def envelope(a, n):
    # repro: fp-bound: assume n in 2..3
    # repro: fp-bound: in a ~ A
    # repro: fp-bound: envelope env
    env = a * 2.0 ** (n - 1)
    return env
'''
        assert _rules(_run(src)) == []

    def test_non_envelope_name_exempt(self):
        src = SUBTRACTIVE_ENVELOPE.replace("envelope env", "envelope other")
        assert _rules(_run(src)) == []


# -- RPRFP004: filter-knob misuse -----------------------------------------

SHRUNK_ENVELOPE = '''
def envelope(e):
    # repro: fp-bound: in e ~ E
    # repro: fp-bound: envelope env
    env = e * 0.5
    return env
'''

LATE_ADJUST = '''
def decide(margin, env):
    # repro: fp-bound: in margin ~ M err 2*M
    # repro: fp-bound: guard env
    # repro: fp-bound: envelope env
    ok = margin > env
    env = env * 2.0
    return ok, env
'''


class TestFilterKnobMisuse:
    def test_fractional_scale_flagged(self):
        assert _rules(_run(SHRUNK_ENVELOPE)) == ["RPRFP004"]

    def test_inflating_scale_clean(self):
        assert _rules(_run(SHRUNK_ENVELOPE.replace("0.5", "2.0"))) == []

    def test_filter_scale_knob_below_one(self):
        src = '''
def configure(filter_scale):
    # repro: fp-bound: guard env
    filter_scale(0.25)
'''
        assert _rules(_run(src)) == ["RPRFP004"]

    def test_adjust_after_comparison_flagged(self):
        assert _rules(_run(LATE_ADJUST)) == ["RPRFP004"]

    def test_adjust_before_comparison_clean(self):
        src = '''
def decide(margin, env):
    # repro: fp-bound: in margin ~ M err 2*M
    # repro: fp-bound: guard env
    # repro: fp-bound: envelope env
    env = env * 2.0
    ok = margin > env
    return ok, env
'''
        assert _rules(_run(src)) == []


# -- RPRFP999: annotation / parse errors ----------------------------------


class TestAnnotationErrors:
    def test_malformed_clause(self):
        src = "def f():\n    # repro: fp-bound: claim <= nonsense\n    pass\n"
        r = _run(src)
        assert _rules(r) == ["RPRFP999"]

    def test_module_level_clause(self):
        r = _run("# repro: fp-bound: guard env\nx = 1\n")
        assert _rules(r) == ["RPRFP999"]

    def test_unparseable_file(self):
        r = _run("def f(:\n")
        assert _rules(r) == ["RPRFP999"]

    def test_bad_poly_in_clause(self):
        src = "def f():\n    # repro: fp-bound: fact NRM <= 6*\n    pass\n"
        assert _rules(_run(src)) == ["RPRFP999"]


# -- suppression ----------------------------------------------------------


class TestSuppression:
    def test_noqa_moves_finding_to_suppressed(self):
        src = UNFILTERED.replace(
            "return margins > 0.0",
            "return margins > 0.0  # repro: noqa: RPRFP002",
        )
        r = _run(src)
        assert r.findings == []
        assert [f.rule_id for f in r.suppressed] == ["RPRFP002"]
        assert len(r.suppressions()) == 1


# -- interprocedural summaries --------------------------------------------

CALLER_USES_SUMMARY = '''
def producer(pts):
    # repro: fp-bound: assume d in 2..3
    # repro: fp-bound: in pts ~ S
    # repro: fp-bound: out normals ~ NRM err 6*H
    normals = pts
    return normals

def consumer(pts, q):
    # repro: fp-bound: assume d in 2..3
    # repro: fp-bound: in q ~ Q
    normals = producer(pts)
    m = normals @ q
    # repro: fp-bound: claim m <= 16*d*(H + NRM)*Q
    return m
'''


class TestInterprocedural:
    def test_out_summary_flows_to_caller(self):
        r = _run(CALLER_USES_SUMMARY)
        assert _rules(r) == []
        by_fn = {(c.qualname.rsplit(".", 1)[-1], c.pin): c.ok
                 for c in r.claims}
        assert by_fn[("consumer", ("d", 2))] is True
        assert by_fn[("consumer", ("d", 3))] is True

    def test_under_committed_caller_flagged(self):
        src = CALLER_USES_SUMMARY.replace("16*d*(H + NRM)*Q", "0.1*NRM*Q")
        r = _run(src)
        assert _rules(r) == ["RPRFP001", "RPRFP001"]  # one per pin


# -- the real tree --------------------------------------------------------


class TestRealTree:
    def test_src_repro_is_clean(self):
        r = analyze_fpcheck([str(REPO / "src" / "repro")])
        assert r.findings == []
        assert r.suppressed == []

    def test_all_five_boundaries_annotated_and_claimed(self):
        r = analyze_fpcheck([str(REPO / "src" / "repro")])
        claimed = {c.qualname for c in r.claims}
        for qual in [
            "repro.geometry.kernels.batch_planes",
            "repro.geometry.kernels.orient_batch",
            "repro.geometry.kernels.visible_flat",
            "repro.geometry.linalg.det_with_error_bound",
            "repro.geometry.hyperplane.Hyperplane.through",
            "repro.geometry.hyperplane.Hyperplane.side",
            "repro.hull.soa.SoAHullEngine._facets_flat",
        ]:
            assert qual in claimed, qual
        assert all(c.ok for c in r.claims)
        assert len(r.claims) >= 16

    def test_committed_baseline_matches_clean_tree(self):
        baseline = json.loads(
            (REPO / "fpcheck-baseline.json").read_text())
        r = analyze_fpcheck([str(REPO / "src" / "repro")])
        assert baseline == baseline_payload(
            r, suppression_key="rprfp_suppressions")
        assert baseline["findings"] == []
        assert baseline["rprfp_suppressions"] == 0
