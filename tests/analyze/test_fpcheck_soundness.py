"""The dynamic closure of `repro fpcheck`: committed >= derived >= observed.

The static analyzer proves ``committed dominates derived`` symbolically;
what it *trusts* is the annotation surface (the ``in``/``bind``/``out``
magnitude atoms and the transfer rules).  This differential closes the
loop numerically: for every envelope claim on the four kernel
boundaries we evaluate

* **committed** -- the claim polynomial (the envelope the code ships),
* **derived**   -- the analyzer's first-order bound, and
* **observed**  -- the true forward error, measured by shadow-executing
  the same arithmetic in exact :class:`~fractions.Fraction` rationals,

at the measured per-input atom values, and assert the three-way chain
``committed >= derived >= observed`` over random inputs (three scales)
and every family of the degenerate corpus.  A transfer rule that
under-counts a rounding, or an annotation atom that does not actually
bound its array, breaks the chain here even though the static check
passes.
"""

from __future__ import annotations

from fractions import Fraction
from pathlib import Path

import numpy as np
import pytest

from repro.analyze import analyze_fpcheck
from repro.analyze.fperror import EPS, poly_eval
from repro.geometry.degenerate import corpus_case, corpus_names
from repro.geometry.kernels import batch_planes, orient_batch
from repro.geometry.linalg import det_exact, det_with_error_bound

REPO = Path(__file__).resolve().parents[2]

#: slack for second-order terms (the derived bound is first order in u)
#: and for the float evaluation of the atom polynomials themselves.
SLACK = 1.0 + 2.0 ** -40

_RESULT = analyze_fpcheck([str(REPO / "src" / "repro")])
CLAIMS = {(c.qualname, c.name, c.pin): c for c in _RESULT.claims}


def _claim(qual_tail: str, name: str, d: int):
    c = CLAIMS.get((f"repro.geometry.{qual_tail}", name, ("d", d))) \
        or CLAIMS.get((f"repro.geometry.{qual_tail}", name, ("n", d)))
    assert c is not None, (qual_tail, name, d)
    assert c.ok and c.derived is not None
    return c


def _frac_rows(a: np.ndarray) -> list[list[Fraction]]:
    return [[Fraction(x) for x in row] for row in a.tolist()]


def _exact_plane(simplex: np.ndarray):
    """Exact (normal, offset) with batch_planes' sign convention."""
    f = _frac_rows(simplex)
    d = len(f[0])
    e = [[f[i + 1][j] - f[0][j] for j in range(d)] for i in range(d - 1)]
    if d == 2:
        normal = [-e[0][1], e[0][0]]
    else:
        normal = [
            e[0][1] * e[1][2] - e[0][2] * e[1][1],
            e[0][2] * e[1][0] - e[0][0] * e[1][2],
            e[0][0] * e[1][1] - e[0][1] * e[1][0],
        ]
    offset = sum(n * x for n, x in zip(normal, f[0]))
    return normal, offset


def _plane_atoms(simplices, normals, offsets, err_base):
    """The per-plane measured atom values the annotation declares."""
    edges = simplices[:, 1:, :] - simplices[:, :1, :]
    row_norms = np.sqrt((edges * edges).sum(axis=2))
    out = []
    for fi in range(simplices.shape[0]):
        rn = row_norms[fi]
        out.append({
            "S": float(np.abs(simplices[fi]).max(initial=0.0)),
            "B": float(err_base[fi]),
            "R0": float(rn[0]),
            "R1": float(rn[-1]),
            "H": float(np.prod(rn)),
            "NRM": float(np.abs(normals[fi]).sum()),
            "OFF": float(abs(offsets[fi])),
        })
    return out


def _blocks():
    """(label, simplices (F,d,d), queries (Q,d)) test blocks: random at
    three scales per dimension, plus every degenerate family."""
    blocks = []
    rng = np.random.default_rng(0)
    for d in (2, 3):
        for scale in (1.0, 1e8, 1e-8):
            sims = rng.standard_normal((4, d, d)) * scale
            qs = rng.standard_normal((5, d)) * scale
            blocks.append((f"random-d{d}-s{scale:g}", sims, qs))
    for name in corpus_names():
        pts = np.asarray(corpus_case(name, seed=0), dtype=np.float64)
        d = pts.shape[1]
        if d not in (2, 3) or pts.shape[0] < d + 2:
            continue
        nf = min(4, pts.shape[0] - d)
        sims = np.stack([pts[i:i + d] for i in range(nf)])
        qs = pts[-min(4, pts.shape[0]):]
        blocks.append((f"degenerate-{name}", sims, qs))
    return blocks


BLOCKS = _blocks()


def _ids():
    return [b[0] for b in BLOCKS]


def _chain(committed: float, derived: float, observed: float, where: str):
    assert committed * SLACK >= derived, \
        f"{where}: committed {committed!r} < derived {derived!r}"
    assert derived * SLACK >= observed, \
        f"{where}: derived {derived!r} < observed {observed!r}"


class TestBatchPlanes:
    @pytest.mark.parametrize("label,sims,qs", BLOCKS, ids=_ids())
    def test_normals_and_offsets_three_way(self, label, sims, qs):
        d = sims.shape[1]
        normals, offsets, e_scale, e_base = batch_planes(sims)
        atoms = _plane_atoms(sims, normals, offsets, e_base)
        c_n = _claim("kernels.batch_planes", "normals", d)
        c_o = _claim("kernels.batch_planes", "offsets", d)
        for fi in range(sims.shape[0]):
            n_ex, off_ex = _exact_plane(sims[fi])
            obs_n = max(abs(Fraction(x) - e)
                        for x, e in zip(normals[fi].tolist(), n_ex))
            obs_o = abs(Fraction(float(offsets[fi])) - off_ex)
            _chain(poly_eval(c_n.committed, atoms[fi]) * EPS,
                   poly_eval(c_n.derived, atoms[fi]) * EPS,
                   float(obs_n), f"{label} normals[{fi}]")
            _chain(poly_eval(c_o.committed, atoms[fi]) * EPS,
                   poly_eval(c_o.derived, atoms[fi]) * EPS,
                   float(obs_o), f"{label} offsets[{fi}]")


class TestMarginSweeps:
    @pytest.mark.parametrize("label,sims,qs", BLOCKS, ids=_ids())
    def test_orient_batch_margins_three_way(self, label, sims, qs):
        d = sims.shape[1]
        normals, offsets, e_scale, e_base = batch_planes(sims)
        atoms = _plane_atoms(sims, normals, offsets, e_base)
        # The same sweep expression as the kernel, operand for operand.
        margins = np.einsum("fd,qd->fq", normals, qs) - offsets[:, None]
        c = _claim("kernels.orient_batch", "margins", d)
        for fi in range(sims.shape[0]):
            n_ex, off_ex = _exact_plane(sims[fi])
            for qi in range(qs.shape[0]):
                a = dict(atoms[fi])
                a["Q"] = float(np.abs(qs[qi]).max(initial=0.0))
                exact = sum(n * Fraction(x)
                            for n, x in zip(n_ex, qs[qi].tolist())) - off_ex
                obs = abs(Fraction(float(margins[fi, qi])) - exact)
                _chain(poly_eval(c.committed, a) * EPS,
                       poly_eval(c.derived, a) * EPS,
                       float(obs), f"{label} margins[{fi},{qi}]")

    @pytest.mark.parametrize("label,sims,qs", BLOCKS, ids=_ids())
    def test_orient_batch_signs_match_exact(self, label, sims, qs):
        # End-to-end: the envelope the chain certifies is the one the
        # kernel filters with, so every returned sign must equal the
        # exact rational sign.
        signs = orient_batch(sims, qs)
        for fi in range(sims.shape[0]):
            n_ex, off_ex = _exact_plane(sims[fi])
            for qi in range(qs.shape[0]):
                exact = sum(n * Fraction(x)
                            for n, x in zip(n_ex, qs[qi].tolist())) - off_ex
                want = (exact > 0) - (exact < 0)
                assert signs[fi, qi] == want, (label, fi, qi)

    @pytest.mark.parametrize("label,sims,qs", BLOCKS, ids=_ids())
    def test_visible_flat_margins_three_way(self, label, sims, qs):
        d = sims.shape[1]
        normals, offsets, e_scale, e_base = batch_planes(sims)
        atoms = _plane_atoms(sims, normals, offsets, e_base)
        nf, nq = sims.shape[0], qs.shape[0]
        owner = np.repeat(np.arange(nf), nq)
        ranks = np.tile(np.arange(nq), nf)
        # visible_flat's gathered sweep, operand for operand.
        gn = normals[owner]
        go = offsets[owner]
        margins = np.einsum("md,md->m", qs[ranks], gn) - go
        c = _claim("kernels.visible_flat", "margins", d)
        for m in range(margins.shape[0]):
            fi, qi = int(owner[m]), int(ranks[m])
            n_ex, off_ex = _exact_plane(sims[fi])
            a = dict(atoms[fi])
            a["Q"] = float(np.abs(qs[qi]).max(initial=0.0))
            exact = sum(n * Fraction(x)
                        for n, x in zip(n_ex, qs[qi].tolist())) - off_ex
            obs = abs(Fraction(float(margins[m])) - exact)
            _chain(poly_eval(c.committed, a) * EPS,
                   poly_eval(c.derived, a) * EPS,
                   float(obs), f"{label} flat[{m}]")


def _det_matrices():
    mats = []
    rng = np.random.default_rng(1)
    for n in (2, 3):
        for scale in (1.0, 1e8, 1e-8):
            for _ in range(3):
                mats.append((f"random-n{n}-s{scale:g}",
                             rng.standard_normal((n, n)) * scale))
    # PR 3's counterexample: two near-parallel small rows mixed with a
    # large one -- the case the old eps*Hadamard envelope under-covered.
    mats.append(("pr3-pivot-growth",
                 np.array([[1.0, 0.0, 0.0],
                           [2.0, 5985.0, 1805.0],
                           [1.5, 0.0, 0.0]])))
    # Exactly singular and near-singular.
    mats.append(("singular", np.array([[1.0, 2.0], [2.0, 4.0]])))
    base = rng.standard_normal((3, 3))
    base[2] = base[0] + base[1] * (1 + 1e-14)
    mats.append(("near-singular", base))
    for name in corpus_names():
        pts = np.asarray(corpus_case(name, seed=0), dtype=np.float64)
        d = pts.shape[1]
        if d in (2, 3) and pts.shape[0] >= d:
            mats.append((f"degenerate-{name}", pts[:d].copy()))
    return mats


DET_MATS = _det_matrices()


class TestDetWithErrorBound:
    @pytest.mark.parametrize("label,m", DET_MATS,
                             ids=[x[0] for x in DET_MATS])
    def test_three_way(self, label, m):
        n = m.shape[0]
        det, env = det_with_error_bound(m)
        obs = abs(Fraction(det) - det_exact(m.tolist()))
        row_norms = np.sqrt((m * m).sum(axis=1))
        keep = np.argsort(row_norms)[1:]
        if n == 2:
            a, b, c_, d_ = m[0, 0], m[0, 1], m[1, 0], m[1, 1]
            atoms = {"AD": float(abs(a * d_)), "BC": float(abs(b * c_)),
                     "ME": float(np.abs(m).max()), "CM": 1.0, "DET": abs(det)}
        else:
            atoms = {"ME": float(np.abs(m).max()),
                     "CM": float(np.prod(row_norms[keep])),
                     "DET": abs(det)}
        c = _claim("linalg.det_with_error_bound", "det", n)
        committed = poly_eval(c.committed, atoms) * EPS
        derived = poly_eval(c.derived, atoms) * EPS
        _chain(committed, derived, float(obs), f"{label} det")
        # The envelope the function actually returns carries the same
        # committed constant plus the subnormal floor: it must cover the
        # observed error too (the end-to-end filter guarantee).
        assert env * SLACK >= float(obs), (label, env, float(obs))
