"""Program indexing: classes, attribute types, dispatch, lambdas."""

from __future__ import annotations

from repro.analyze.callgraph import build_program

STRUCTURE = '''
class AtomicCell:
    pass

class Mutex:
    pass

class _Slot:
    def __init__(self):
        self.flag = AtomicCell()
        self.data = None

class Table:
    def __init__(self, n, hash_fn=None):
        self._mutex = Mutex()
        self._cells = [AtomicCell() for _ in range(n)]
        self._slots = [_Slot() for _ in range(n)]
        self._hash = hash_fn or (lambda k: 0)
        self.capacity = n

    def get(self, i):
        return self._cells[i].load()

class SubTable(Table):
    def get(self, i):
        return None
'''


def _program(src: str = STRUCTURE):
    return build_program([], sources={"prog.py": src})


class TestIndexing:
    def test_classes_and_methods_registered(self):
        p = _program()
        names = {c.name for c in p.classes.values()}
        assert {"AtomicCell", "Mutex", "_Slot", "Table", "SubTable"} <= names
        table = p.classes_named("Table")[0]
        assert set(table.methods) == {"__init__", "get"}

    def test_attr_types_cls_and_elem(self):
        p = _program()
        table = p.classes_named("Table")[0]
        assert ("cls", "prog.Mutex") in table.attr_types["_mutex"]
        assert ("elem", "prog.AtomicCell") in table.attr_types["_cells"]
        assert ("elem", "prog._Slot") in table.attr_types["_slots"]

    def test_mutex_and_atomic_attr_flags(self):
        p = _program()
        table = p.classes_named("Table")[0]
        assert table.mutex_attrs == {"_mutex"}
        assert "_cells" in table.atomic_attrs
        assert {"_cells", "_slots"} <= table.shared_container_attrs
        assert table.owns_mutex()

    def test_shared_element_detection(self):
        p = _program()
        slot = p.classes_named("_Slot")[0]
        assert slot.is_referenced  # reachable via Table._slots
        assert "flag" in slot.atomic_attrs
        assert slot.is_shared_element()
        # nothing mutates `data` outside __init__ in this program
        assert slot.plain_shared_fields() == set()

    def test_lambda_attribute_registered_as_function(self):
        p = _program()
        table = p.classes_named("Table")[0]
        hash_trefs = table.attr_types["_hash"]
        lam = [t for t in hash_trefs if t[0] == "func"]
        assert lam and lam[0][1] in p.functions

    def test_dispatch_includes_subclass_overrides(self):
        p = _program()
        table = p.classes_named("Table")[0]
        targets = {f.qualname for f in p.resolve_method(table, "get")}
        assert targets == {"prog.Table.get", "prog.SubTable.get"}

    def test_mro_lookup_falls_back_to_base(self):
        p = _program()
        sub = p.classes_named("SubTable")[0]
        init = p.mro_lookup(sub, "__init__")
        assert init is not None and init.qualname == "prog.Table.__init__"

    def test_module_functions_excludes_methods(self):
        p = build_program([], sources={"m.py": (
            "def get():\n    return 1\n\n"
            "class C:\n    def get(self):\n        return 2\n"
        )})
        funcs = p.module_functions_named("get")
        assert [f.qualname for f in funcs] == ["m.get"]

    def test_step_generator_flag(self):
        p = build_program([], sources={"m.py": (
            "class C:\n"
            "    def steps(self, i):\n"
            "        yield ('cas', i)\n"
            "    def plain_gen(self):\n"
            "        yield 1\n"
        )})
        steps = p.functions["m.C.steps"]
        plain = p.functions["m.C.plain_gen"]
        assert steps.is_step_gen and steps.is_generator
        assert plain.is_generator and not plain.is_step_gen

    def test_syntax_error_becomes_pseudo_violation(self):
        p = build_program([], sources={"bad.py": "def f(:\n"})
        assert len(p.errors) == 1
        assert p.errors[0].rule_id == "RPR999"
