"""The ``repro effects`` CLI surface: clean-tree run, output formats,
SARIF schema validity, JSON round-trip, and the ratchet baseline."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analyze import findings_from_json
from repro.cli import main

REPO = Path(__file__).resolve().parents[2]
SRC = str(REPO / "src" / "repro")
BASELINE = REPO / "analyze-baseline.json"

BAD_FIXTURE = """
class Mutex:
    pass

class Tracker:
    def __init__(self):
        self._mutex = Mutex()
        self._count = 0

    def bump(self):
        with self._mutex:
            self._count += 1

    def sneaky_bump(self):
        self._count += 1
"""


def _bad_path(tmp_path) -> str:
    p = tmp_path / "bad_fixture.py"
    p.write_text(BAD_FIXTURE)
    return str(p)


class TestCleanTree:
    def test_effects_clean_on_src(self, capsys):
        main(["effects", SRC, "--baseline", str(BASELINE)])
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_committed_baseline_is_clean(self):
        payload = json.loads(BASELINE.read_text())
        assert payload["findings"] == []
        assert payload["rpreff_suppressions"] == 0

    def test_list_rules(self, capsys):
        main(["effects", "--list-rules"])
        out = capsys.readouterr().out
        for rid in ("RPREFF001", "RPREFF002", "RPREFF003", "RPREFF004"):
            assert rid in out

    def test_missing_path_is_an_error(self):
        with pytest.raises(SystemExit, match="no such path"):
            main(["effects", "definitely/not/a/path"])


class TestFindingsExit:
    def test_findings_exit_nonzero(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["effects", _bad_path(tmp_path),
                  "--baseline", str(tmp_path / "absent.json")])
        assert "RPREFF003" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["effects", _bad_path(tmp_path), "--format", "json",
                  "--baseline", str(tmp_path / "absent.json")])
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule_id"] == "RPREFF003"


class TestJsonRoundTrip:
    def test_json_out_round_trips(self, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        bad = _bad_path(tmp_path)
        with pytest.raises(SystemExit):
            main(["effects", bad, "--json-out", str(out_file),
                  "--baseline", str(tmp_path / "absent.json")])
        payload = json.loads(out_file.read_text())
        findings = findings_from_json(payload)
        assert [f.rule_id for f in findings] == ["RPREFF003"]
        # a second run over the same input reproduces the same findings
        with pytest.raises(SystemExit):
            main(["effects", bad, "--json-out", str(out_file),
                  "--baseline", str(tmp_path / "absent.json")])
        assert findings_from_json(json.loads(out_file.read_text())) == findings


class TestSarif:
    def test_sarif_validates_against_2_1_0_schema(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        sarif_file = tmp_path / "report.sarif"
        with pytest.raises(SystemExit):
            main(["effects", _bad_path(tmp_path), "--sarif", str(sarif_file),
                  "--baseline", str(tmp_path / "absent.json")])
        doc = json.loads(sarif_file.read_text())
        schema = json.loads(
            (Path(__file__).parent / "sarif_min_schema.json").read_text()
        )
        jsonschema.validate(doc, schema)
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        assert results[0]["ruleId"] == "RPREFF003"
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1

    def test_clean_tree_sarif_has_no_results(self, tmp_path, capsys):
        sarif_file = tmp_path / "clean.sarif"
        main(["effects", SRC, "--sarif", str(sarif_file),
              "--baseline", str(BASELINE)])
        doc = json.loads(sarif_file.read_text())
        assert doc["runs"][0]["results"] == []
        rule_ids = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert "RPREFF001" in rule_ids


class TestBaselineRatchet:
    def test_update_then_pass(self, tmp_path, capsys):
        bad = _bad_path(tmp_path)
        baseline = tmp_path / "baseline.json"
        main(["effects", bad, "--baseline", str(baseline),
              "--update-baseline"])
        assert baseline.exists()
        # with the finding baselined, the same run passes
        main(["effects", bad, "--baseline", str(baseline)])

    def test_new_finding_fails_against_baseline(self, tmp_path, capsys):
        bad = _bad_path(tmp_path)
        baseline = tmp_path / "baseline.json"
        main(["effects", bad, "--baseline", str(baseline),
              "--update-baseline"])
        worse = tmp_path / "bad_fixture.py"
        worse.write_text(BAD_FIXTURE + (
            "\n    def another_sneak(self):\n        self._count += 1\n"
        ))
        with pytest.raises(SystemExit):
            main(["effects", str(worse), "--baseline", str(baseline)])
        assert "not in baseline" in capsys.readouterr().out

    def test_suppression_growth_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad_fixture.py"
        bad.write_text(BAD_FIXTURE)
        baseline = tmp_path / "baseline.json"
        main(["effects", str(bad), "--baseline", str(baseline),
              "--update-baseline"])
        bad.write_text(BAD_FIXTURE.replace(
            "    def sneaky_bump(self):\n        self._count += 1",
            "    def sneaky_bump(self):\n"
            "        self._count += 1  # repro: noqa: RPREFF003",
        ))
        with pytest.raises(SystemExit):
            main(["effects", str(bad), "--baseline", str(baseline)])
        assert "suppression count grew" in capsys.readouterr().out
