"""The ``repro effects`` / ``repro hotpath`` CLI surfaces: clean-tree
runs, output formats, SARIF schema validity (shared emitter, also
exercised through ``repro lint --sarif``), JSON round-trip, and the
ratchet baselines."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analyze import findings_from_json
from repro.cli import main

REPO = Path(__file__).resolve().parents[2]
SRC = str(REPO / "src" / "repro")
BASELINE = REPO / "analyze-baseline.json"
HOT_BASELINE = REPO / "hotpath-baseline.json"

BAD_FIXTURE = """
class Mutex:
    pass

class Tracker:
    def __init__(self):
        self._mutex = Mutex()
        self._count = 0

    def bump(self):
        with self._mutex:
            self._count += 1

    def sneaky_bump(self):
        self._count += 1
"""


def _bad_path(tmp_path) -> str:
    p = tmp_path / "bad_fixture.py"
    p.write_text(BAD_FIXTURE)
    return str(p)


class TestCleanTree:
    def test_effects_clean_on_src(self, capsys):
        main(["effects", SRC, "--baseline", str(BASELINE)])
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_committed_baseline_is_clean(self):
        payload = json.loads(BASELINE.read_text())
        assert payload["findings"] == []
        assert payload["rpreff_suppressions"] == 0

    def test_list_rules(self, capsys):
        main(["effects", "--list-rules"])
        out = capsys.readouterr().out
        for rid in ("RPREFF001", "RPREFF002", "RPREFF003", "RPREFF004"):
            assert rid in out

    def test_missing_path_is_an_error(self):
        with pytest.raises(SystemExit, match="no such path"):
            main(["effects", "definitely/not/a/path"])


class TestFindingsExit:
    def test_findings_exit_nonzero(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["effects", _bad_path(tmp_path),
                  "--baseline", str(tmp_path / "absent.json")])
        assert "RPREFF003" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["effects", _bad_path(tmp_path), "--format", "json",
                  "--baseline", str(tmp_path / "absent.json")])
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule_id"] == "RPREFF003"


class TestJsonRoundTrip:
    def test_json_out_round_trips(self, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        bad = _bad_path(tmp_path)
        with pytest.raises(SystemExit):
            main(["effects", bad, "--json-out", str(out_file),
                  "--baseline", str(tmp_path / "absent.json")])
        payload = json.loads(out_file.read_text())
        findings = findings_from_json(payload)
        assert [f.rule_id for f in findings] == ["RPREFF003"]
        # a second run over the same input reproduces the same findings
        with pytest.raises(SystemExit):
            main(["effects", bad, "--json-out", str(out_file),
                  "--baseline", str(tmp_path / "absent.json")])
        assert findings_from_json(json.loads(out_file.read_text())) == findings


class TestSarif:
    def test_sarif_validates_against_2_1_0_schema(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        sarif_file = tmp_path / "report.sarif"
        with pytest.raises(SystemExit):
            main(["effects", _bad_path(tmp_path), "--sarif", str(sarif_file),
                  "--baseline", str(tmp_path / "absent.json")])
        doc = json.loads(sarif_file.read_text())
        schema = json.loads(
            (Path(__file__).parent / "sarif_min_schema.json").read_text()
        )
        jsonschema.validate(doc, schema)
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        assert results[0]["ruleId"] == "RPREFF003"
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1

    def test_clean_tree_sarif_has_no_results(self, tmp_path, capsys):
        sarif_file = tmp_path / "clean.sarif"
        main(["effects", SRC, "--sarif", str(sarif_file),
              "--baseline", str(BASELINE)])
        doc = json.loads(sarif_file.read_text())
        assert doc["runs"][0]["results"] == []
        rule_ids = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert "RPREFF001" in rule_ids


class TestBaselineRatchet:
    def test_update_then_pass(self, tmp_path, capsys):
        bad = _bad_path(tmp_path)
        baseline = tmp_path / "baseline.json"
        main(["effects", bad, "--baseline", str(baseline),
              "--update-baseline"])
        assert baseline.exists()
        # with the finding baselined, the same run passes
        main(["effects", bad, "--baseline", str(baseline)])

    def test_new_finding_fails_against_baseline(self, tmp_path, capsys):
        bad = _bad_path(tmp_path)
        baseline = tmp_path / "baseline.json"
        main(["effects", bad, "--baseline", str(baseline),
              "--update-baseline"])
        worse = tmp_path / "bad_fixture.py"
        worse.write_text(BAD_FIXTURE + (
            "\n    def another_sneak(self):\n        self._count += 1\n"
        ))
        with pytest.raises(SystemExit):
            main(["effects", str(worse), "--baseline", str(baseline)])
        assert "not in baseline" in capsys.readouterr().out

    def test_suppression_growth_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad_fixture.py"
        bad.write_text(BAD_FIXTURE)
        baseline = tmp_path / "baseline.json"
        main(["effects", str(bad), "--baseline", str(baseline),
              "--update-baseline"])
        bad.write_text(BAD_FIXTURE.replace(
            "    def sneaky_bump(self):\n        self._count += 1",
            "    def sneaky_bump(self):\n"
            "        self._count += 1  # repro: noqa: RPREFF003",
        ))
        with pytest.raises(SystemExit):
            main(["effects", str(bad), "--baseline", str(baseline)])
        assert "suppression count grew" in capsys.readouterr().out


HOT_FIXTURE = """
def sweep(facets):
    # repro: hot-entry
    total = 0
    for facet in facets:
        total += 1
    return total
"""


def _hot_path(tmp_path) -> str:
    p = tmp_path / "hot_fixture.py"
    p.write_text(HOT_FIXTURE)
    return str(p)


class TestHotpathCli:
    def test_tree_passes_against_committed_baseline(self, capsys):
        main(["hotpath", SRC, "--baseline", str(HOT_BASELINE)])
        out = capsys.readouterr().out
        assert "repro hotpath:" in out

    def test_committed_baseline_ratcheted_down_by_soa_migration(self):
        """The ratchet paid off: the per-facet driver loops that were on
        the books (44 findings pre-SoA) are *gone from the baseline* --
        the object drivers are exempt as differential oracles, the
        performance path is ``hull/soa.py``, and the baseline shrank
        strictly (now only the shared factory + app/baseline worklist
        remains).  The SoA engine itself must stay finding-free."""
        payload = json.loads(HOT_BASELINE.read_text())
        paths = {d["path"] for d in payload["findings"]}
        # Strict decrease from the pre-migration baseline of 44.
        assert len(payload["findings"]) < 44
        assert len(payload["findings"]) <= 16
        # Migrated driver loops no longer appear (exempt as oracles,
        # not suppressed line by line).
        for driver in ("hull/sequential.py", "hull/parallel.py",
                       "hull/point_parallel.py", "hull/online.py"):
            assert not any(p.endswith(driver) for p in paths), driver
        # The vectorized engine carries no findings of its own.
        assert not any(p.endswith("hull/soa.py") for p in paths)
        # The remaining worklist is still named, not hidden.
        assert any(p.endswith("hull/common.py") for p in paths)
        rules = {d["rule_id"] for d in payload["findings"]}
        assert {"RPRHOT001", "RPRHOT003"} <= rules
        assert payload["rprhot_suppressions"] <= 19

    def test_soa_engine_is_finding_free(self, capsys, tmp_path):
        """Run the analyzer over hull/soa.py alone with *no* baseline:
        the hot engine must produce zero findings, not baselined ones."""
        main(["hotpath", str(REPO / "src" / "repro" / "hull" / "soa.py"),
              "--baseline", str(tmp_path / "absent.json")])
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_list_rules(self, capsys):
        main(["hotpath", "--list-rules"])
        out = capsys.readouterr().out
        for rid in ("RPRHOT001", "RPRHOT002", "RPRHOT003",
                    "RPRHOT004", "RPRHOT005", "RPRHOT006"):
            assert rid in out

    def test_findings_exit_nonzero_without_baseline(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["hotpath", _hot_path(tmp_path),
                  "--baseline", str(tmp_path / "absent.json")])
        assert "RPRHOT001" in capsys.readouterr().out

    def test_update_then_pass_then_regress(self, tmp_path, capsys):
        hot = _hot_path(tmp_path)
        baseline = tmp_path / "hot-baseline.json"
        main(["hotpath", hot, "--baseline", str(baseline),
              "--update-baseline"])
        main(["hotpath", hot, "--baseline", str(baseline)])
        worse = tmp_path / "hot_fixture.py"
        worse.write_text(HOT_FIXTURE + (
            "\ndef sweep2(planes):\n"
            "    # repro: hot-entry\n"
            "    for plane in planes:\n"
            "        pass\n"
        ))
        with pytest.raises(SystemExit):
            main(["hotpath", str(worse), "--baseline", str(baseline)])
        assert "not in baseline" in capsys.readouterr().out

    def test_sarif_validates_against_2_1_0_schema(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        sarif_file = tmp_path / "hot.sarif"
        with pytest.raises(SystemExit):
            main(["hotpath", _hot_path(tmp_path), "--sarif", str(sarif_file),
                  "--baseline", str(tmp_path / "absent.json")])
        doc = json.loads(sarif_file.read_text())
        schema = json.loads(
            (Path(__file__).parent / "sarif_min_schema.json").read_text()
        )
        jsonschema.validate(doc, schema)
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-hotpath"
        assert doc["runs"][0]["results"][0]["ruleId"] == "RPRHOT001"

    def test_json_format_carries_provenance(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["hotpath", _hot_path(tmp_path), "--format", "json",
                  "--baseline", str(tmp_path / "absent.json")])
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule_id"] == "RPRHOT001"
        assert payload["entries"]  # the hot-entry fixture is listed
        assert payload["hot_functions"] >= 1


class TestLintSarif:
    def test_lint_sarif_shares_the_emitter(self, tmp_path):
        """``repro lint --sarif`` goes through the same
        ``findings_to_sarif`` as effects/hotpath: same schema subset,
        its own tool name and rule table."""
        jsonschema = pytest.importorskip("jsonschema")
        sarif_file = tmp_path / "lint.sarif"
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        main(["lint", str(clean), "--sarif", str(sarif_file)])
        doc = json.loads(sarif_file.read_text())
        schema = json.loads(
            (Path(__file__).parent / "sarif_min_schema.json").read_text()
        )
        jsonschema.validate(doc, schema)
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert any(r["id"].startswith("RPR") for r in driver["rules"])
        assert doc["runs"][0]["results"] == []

    def test_lint_violations_land_in_sarif(self, tmp_path):
        sarif_file = tmp_path / "lint.sarif"
        bad = tmp_path / "bad.py"
        bad.write_text("import threading\nthreading.Thread(target=print)\n")
        try:
            main(["lint", str(bad), "--sarif", str(sarif_file)])
        except SystemExit:
            pass
        doc = json.loads(sarif_file.read_text())
        results = doc["runs"][0]["results"]
        if results:  # rule set may exempt paths; emitter shape still holds
            loc = results[0]["locations"][0]["physicalLocation"]
            assert loc["region"]["startLine"] >= 1


FP_FIXTURE = """
def decide(margins):
    # repro: fp-bound: in margins ~ M err 3*M
    return margins > 0.0
"""


def _fp_path(tmp_path) -> str:
    p = tmp_path / "fp_fixture.py"
    p.write_text(FP_FIXTURE)
    return str(p)


FP_BASELINE = REPO / "fpcheck-baseline.json"


class TestFpcheckCli:
    def test_tree_passes_against_committed_baseline(self, capsys):
        main(["fpcheck", SRC, "--baseline", str(FP_BASELINE)])
        out = capsys.readouterr().out
        assert "repro fpcheck:" in out
        assert "0 finding(s)" in out
        assert "0 claim failure(s)" in out

    def test_committed_baseline_is_clean(self):
        payload = json.loads(FP_BASELINE.read_text())
        assert payload["findings"] == []
        assert payload["rprfp_suppressions"] == 0

    def test_list_rules(self, capsys):
        main(["fpcheck", "--list-rules"])
        out = capsys.readouterr().out
        for rid in ("RPRFP001", "RPRFP002", "RPRFP003",
                    "RPRFP004", "RPRFP999"):
            assert rid in out

    def test_findings_exit_nonzero_without_baseline(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["fpcheck", _fp_path(tmp_path),
                  "--baseline", str(tmp_path / "absent.json")])
        assert "RPRFP002" in capsys.readouterr().out

    def test_update_then_pass_then_regress(self, tmp_path, capsys):
        fp = _fp_path(tmp_path)
        baseline = tmp_path / "fp-baseline.json"
        main(["fpcheck", fp, "--baseline", str(baseline),
              "--update-baseline"])
        main(["fpcheck", fp, "--baseline", str(baseline)])
        worse = tmp_path / "fp_fixture.py"
        worse.write_text(FP_FIXTURE + (
            "\ndef decide2(other):\n"
            "    # repro: fp-bound: in other ~ M err 3*M\n"
            "    return other > 0.0\n"
        ))
        with pytest.raises(SystemExit):
            main(["fpcheck", str(worse), "--baseline", str(baseline)])
        assert "not in baseline" in capsys.readouterr().out

    def test_ratchet_strict_decrease_helper(self, tmp_path):
        """The shared strict-decrease helper that all three analyzers
        ratchet with: growing a (rule, path) budget or the suppression
        count is a problem; shrinking or holding steady is not."""
        from repro.analyze import assert_strict_decrease

        old = {"version": 1,
               "findings": [{"rule_id": "RPRFP002", "path": "a.py",
                             "line": 3, "col": 1, "message": "m"}],
               "rprfp_suppressions": 1}
        same = json.loads(json.dumps(old))
        assert assert_strict_decrease(old, same, "rprfp_suppressions") == []
        shrunk = {"version": 1, "findings": [], "rprfp_suppressions": 0}
        assert assert_strict_decrease(old, shrunk, "rprfp_suppressions") == []
        grown = {"version": 1,
                 "findings": old["findings"] * 2,
                 "rprfp_suppressions": 1}
        assert assert_strict_decrease(old, grown, "rprfp_suppressions")
        more_noqa = {"version": 1, "findings": old["findings"],
                     "rprfp_suppressions": 2}
        assert assert_strict_decrease(old, more_noqa, "rprfp_suppressions")

    def test_sarif_emitted_via_shared_emitter(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        sarif_file = tmp_path / "fp.sarif"
        with pytest.raises(SystemExit):
            main(["fpcheck", _fp_path(tmp_path), "--sarif", str(sarif_file),
                  "--baseline", str(tmp_path / "absent.json")])
        doc = json.loads(sarif_file.read_text())
        schema = json.loads(
            (Path(__file__).parent / "sarif_min_schema.json").read_text()
        )
        jsonschema.validate(doc, schema)
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-fpcheck"
        assert doc["runs"][0]["results"][0]["ruleId"] == "RPRFP002"

    def test_json_format_carries_claims(self, tmp_path, capsys):
        main(["fpcheck", SRC, "--format", "json",
              "--baseline", str(FP_BASELINE)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["claims"] and all(c["ok"] for c in payload["claims"])
        assert payload["baseline_problems"] == []
