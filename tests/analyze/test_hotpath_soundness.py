"""The static/dynamic shape-soundness differential (experiment E21).

The hot-path analyzer reasons about kernel traffic through symbolic
shape annotations (``simplices=(F,d,d):float64`` ...); the runtime
recorder *observes* the concrete ``(shape, dtype)`` of every array that
crosses an instrumented kernel boundary during a real batch hull run.
Soundness (relative to the exercised code) means: every observed fact
is admitted by the static abstraction, with the symbolic dims bound
*jointly consistently* within each event -- ``F`` and ``d`` must take
one value across ``simplices``/``normals``/``offsets`` of the same
call.  A recorded fact the abstraction rejects would mean the
annotations in ``geometry/kernels.py``/``hull/common.py`` have rotted
against the code they describe, which is exactly when the analyzer's
verdicts stop being trustworthy.

(The reverse is not claimed: the abstraction deliberately admits more
than any finite run observes -- that is what makes it an abstraction.)
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.analyze import (
    ShapeRecorder,
    analyze_hotpaths,
    check_recorded_events,
    recording,
)
from repro.geometry import uniform_ball, uniform_cube
from repro.geometry.kernels import BatchKernel, orient_batch
from repro.hull import parallel_hull, soa_hull
from repro.hull.point_parallel import point_parallel_hull

REPO = Path(__file__).resolve().parents[2]
SRC = str(REPO / "src" / "repro")


@pytest.fixture(scope="module")
def static_result():
    return analyze_hotpaths([SRC])


def _record(run_fn) -> ShapeRecorder:
    rec = ShapeRecorder()
    with recording(rec):
        run_fn()
    return rec


class TestShapeSoundnessDifferential:
    @pytest.mark.parametrize("dim,n,seed", [(2, 120, 3), (3, 90, 4)])
    def test_batch_hull_traffic_is_admitted(self, dim, n, seed, static_result):
        pts = uniform_ball(n, dim, seed=seed)
        rec = _record(lambda: parallel_hull(pts, seed=seed, kernel="batch"))
        assert rec.events, "hull run hit no instrumented boundary (hooks broken?)"
        problems = check_recorded_events(static_result, rec)
        assert not problems, problems

    def test_point_parallel_batch_traffic_is_admitted(self, static_result):
        pts = uniform_cube(100, 2, seed=11)
        rec = _record(lambda: point_parallel_hull(pts, kernel="batch"))
        assert rec.events, "hull run hit no instrumented boundary (hooks broken?)"
        problems = check_recorded_events(static_result, rec)
        assert not problems, problems

    def test_raw_kernel_sweep_traffic_is_admitted(self, static_result):
        rng = np.random.default_rng(7)
        simplices = rng.standard_normal((5, 3, 3))
        queries = rng.standard_normal((9, 3))
        rec = _record(lambda: orient_batch(simplices, queries))
        quals = {q for q, _ in rec.events}
        assert "repro.geometry.kernels.orient_batch" in quals
        assert not check_recorded_events(static_result, rec)

    def test_soa_engine_traffic_is_admitted(self, static_result):
        """The round-vectorized SoA engine's boundaries
        (``step_round``, ``visible_flat``, ``gather_segments``) record
        events the static abstraction admits."""
        pts = uniform_ball(140, 3, seed=9)
        rec = _record(lambda: soa_hull(pts, seed=9))
        quals = {q for q, _ in rec.events}
        assert "repro.hull.soa.SoAHullEngine.step_round" in quals
        problems = check_recorded_events(static_result, rec)
        assert not problems, problems

    def test_recorder_covers_every_annotated_boundary(self, static_result):
        """Every shape-annotated boundary fires somewhere in the suite's
        workload (hull drivers hit ``visible_blocks`` + the conflict-set
        helpers; the SoA engine hits the flat-sweep kernels; the
        standalone ``orient_batch`` kernel pulls in ``batch_planes``)
        -- the differential is not vacuous."""
        pts = uniform_ball(150, 3, seed=5)
        rng = np.random.default_rng(7)

        def workload():
            parallel_hull(pts, seed=5, kernel="batch")
            soa_hull(pts, seed=5)
            orient_batch(rng.standard_normal((5, 3, 3)),
                         rng.standard_normal((9, 3)))

        rec = _record(workload)
        quals = {q for q, _ in rec.events}
        annotated = {
            q for q, ann in static_result.annotations.items() if ann.shapes
        }
        assert annotated, "no shape-annotated boundaries in the tree?"
        assert annotated <= quals, sorted(annotated - quals)
        assert not check_recorded_events(static_result, rec)

    def test_joint_binding_actually_constrains(self, static_result):
        """Sanity of the check itself: a deliberately inconsistent event
        (F disagrees between simplices and normals) must be rejected."""
        ann = static_result.annotations["repro.geometry.kernels.batch_planes"]
        from repro.analyze.shapes import check_event

        bad = {
            "simplices": ((4, 3, 3), "float64"),
            "normals": ((5, 3), "float64"),
        }
        assert check_event(ann, bad), "inconsistent F went unnoticed"

    def test_scalar_run_records_nothing_outside_recording(self):
        rec = ShapeRecorder()
        pts = uniform_ball(60, 2, seed=1)
        parallel_hull(pts, seed=1, kernel="batch")  # no recording block
        assert rec.events == []
