"""The static/dynamic soundness differential (experiment E20).

The dynamic race checker *observes* shared-memory accesses while
replaying schedules; the static effect analyzer *predicts* the set of
source locations that can perform one.  Soundness (relative to the
exercised code) means: every dynamically observed site in ``src/repro``
is a member of the static shared-effect set.  A dynamic site the
analyzer cannot explain would mean a hole in the effect lattice's
classification tables -- exactly the rot this test exists to catch
when someone adds a new primitive to ``runtime/atomics.py`` without
teaching ``repro.analyze.effects`` about it.

(The reverse inclusion does not hold and is not claimed: the static
set deliberately over-approximates -- e.g. ``snapshot``/``restore``
sites that no scheduled operation executes.)
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analyze import analyze_paths
from repro.runtime.racecheck import RaceChecker, check_multimap, multimap_scenario

REPO = Path(__file__).resolve().parents[2]
SRC = str(REPO / "src" / "repro")


@pytest.fixture(scope="module")
def static_site_keys():
    result = analyze_paths([SRC])
    assert not result.findings, [f.format() for f in result.findings]
    keys = set()
    for s in result.sites():
        parts = s.path.split("/")
        suffix = "/".join(parts[parts.index("repro"):])
        keys.add((suffix, s.line))
    return keys


def _dynamic_keys(sites):
    """Observed sites inside src/repro, as (repro/... suffix, line)."""
    keys = set()
    for d in sites:
        path = d["path"].replace("\\", "/")
        if "/src/repro/" not in path:
            continue  # fixture/test code is outside the static scope
        suffix = "repro/" + path.split("/src/repro/")[-1]
        keys.add((suffix, d["line"]))
    return keys


class TestSoundnessDifferential:
    @pytest.mark.parametrize("impl", ["cas", "tas"])
    def test_dynamic_sites_subset_of_static(self, impl, static_site_keys):
        summary = check_multimap(impl, capacity=4, prefix_len=6)
        assert summary.ok, summary.describe()
        dynamic = _dynamic_keys(summary.sites)
        assert dynamic, "sweep observed no in-tree sites (tracing broken?)"
        missing = dynamic - static_site_keys
        assert not missing, (
            "dynamically observed accesses the static analyzer cannot "
            f"explain: {sorted(missing)}"
        )

    def test_three_op_sweep_adds_no_unexplained_sites(self, static_site_keys):
        summary = check_multimap("tas", capacity=8, prefix_len=4, n_ops=3)
        missing = _dynamic_keys(summary.sites) - static_site_keys
        assert not missing, sorted(missing)

    def test_single_replay_report_sites_are_subset_too(self, static_site_keys):
        from repro.runtime.multimap import TASMultimap

        m = TASMultimap(4, hash_fn=lambda k: 0)
        report = RaceChecker().run(multimap_scenario(m), ("p", "q") * 6)
        missing = _dynamic_keys(report.sites()) - static_site_keys
        assert not missing, sorted(missing)

    def test_static_set_is_strictly_larger(self, static_site_keys):
        """The over-approximation is real: snapshot/restore sites are
        static-only because no scheduled op runs them."""
        summary = check_multimap("tas", capacity=4, prefix_len=4)
        dynamic = _dynamic_keys(summary.sites)
        assert dynamic < static_site_keys
