"""The six RPRHOT rules on seeded fixture programs.

Each bad fixture must trigger *exactly* its rule; each clean twin must
pass.  Fixtures opt into the hot region with ``# repro: hot-entry`` or
a shape annotation -- the same comment grammar the real tree uses --
so they analyse exactly the way ``src/repro`` does.
"""

from __future__ import annotations

from repro.analyze import analyze_hotpaths


def _run(src: str, name: str = "fixture.py"):
    return analyze_hotpaths([], sources={name: src})


def _rules(result):
    return [f.rule_id for f in result.findings]


PER_ELEMENT_LEXICON = '''
def sweep(facets):
    # repro: hot-entry
    total = 0
    for facet in facets:
        total += 1
    return total
'''

PER_ELEMENT_LEXICON_CLEAN = '''
def sweep(rows):
    # repro: hot-entry
    total = 0
    for r in rows:
        total += 1
    return total
'''

PER_ELEMENT_INFERRED = '''
def scan(xs):
    # repro: shape: xs=(N,):float64
    acc = 0.0
    for x in xs:
        acc += x
    return acc
'''

SCALAR_PREDICATE = '''
def drive(rows, plane):
    # repro: hot-entry
    i = 0
    while i < len(rows):
        plane.side(rows, i)
        i += 1
'''

SCALAR_PREDICATE_CLEAN = '''
def drive(rows, plane):
    # repro: hot-entry
    signs = plane.margins_batch(rows)
    return signs
'''

ALLOC_NP_IN_LOOP = '''
def grow(n):
    # repro: hot-entry
    i = 0
    while i < n:
        chunk = np.zeros(4)
        i += 1
    return chunk
'''

LIST_GROW_IN_LOOP = '''
def gather(n):
    # repro: hot-entry
    cand_rows = []
    i = 0
    while i < n:
        cand_rows.append(i)
        i += 1
    return cand_rows
'''

ALLOC_HOISTED_CLEAN = '''
def grow(n):
    # repro: hot-entry
    chunk = np.zeros(n)
    i = 0
    while i < n:
        chunk[i] = i
        i += 1
    return chunk
'''

OBJECT_DTYPE = '''
def exactify(vals):
    # repro: hot-entry
    exact = np.array(vals, dtype=object)
    return exact
'''

OBJECT_DTYPE_CLEAN = '''
def exactify(vals):
    # repro: hot-entry
    dense = np.array(vals, dtype=np.float64)
    return dense
'''

SHAPE_MISMATCH = '''
def combine(a, b):
    # repro: shape: a=(3, 4):float64, b=(5, 4):float64
    return a + b
'''

SHAPE_MISMATCH_EINSUM = '''
def project(a, v):
    # repro: shape: a=(3, 4):float64, v=(5,):float64
    return np.einsum("ij,j->i", a, v)
'''

SHAPE_CLEAN = '''
def combine(a, b):
    # repro: shape: a=(F, d):float64, b=(F, d):float64
    return a + b
'''

SHAPE_CLEAN_BROADCAST = '''
def scale(a, w):
    # repro: shape: a=(F, d):float64, w=(F, 1):float64
    return a * w
'''

UNACCOUNTED_SWEEP = '''
def sweep_all(kern, pts):
    # repro: hot-entry
    return kern.visible_blocks(pts)
'''

ACCOUNTED_SWEEP_CLEAN = '''
def sweep_all(kern, pts, tracker):
    # repro: hot-entry
    out = kern.visible_blocks(pts)
    tracker.add_batched_sweep(len(out))
    return out
'''

PROVENANCE_CHAIN = '''
def entry(data):
    # repro: hot-entry
    return helper(data)

def helper(data):
    return leaf(data)

def leaf(facets):
    for facet in facets:
        pass
'''

COLD_CODE = '''
def not_hot(facets):
    for facet in facets:
        pass
    plane = Hyperplane()
    while facets:
        plane.side(facets)
'''


class TestBadFixtures:
    def test_lexicon_loop_is_rprhot001(self):
        r = _run(PER_ELEMENT_LEXICON)
        assert _rules(r) == ["RPRHOT001"]
        (f,) = r.findings
        assert "facets" in f.message and "hot-lexicon" in f.message

    def test_inferred_array_loop_is_rprhot001(self):
        r = _run(PER_ELEMENT_INFERRED)
        assert _rules(r) == ["RPRHOT001"]
        (f,) = r.findings
        # the lexicon never matches `xs`; only the shape annotation can
        assert "inferred array" in f.message and "float64" in f.message

    def test_scalar_predicate_in_loop_is_rprhot002(self):
        r = _run(SCALAR_PREDICATE)
        assert _rules(r) == ["RPRHOT002"]
        (f,) = r.findings
        assert "side" in f.message and "amortize" in f.message

    def test_np_alloc_in_loop_is_rprhot003(self):
        r = _run(ALLOC_NP_IN_LOOP)
        assert _rules(r) == ["RPRHOT003"]
        (f,) = r.findings
        assert "np.zeros" in f.message

    def test_hot_list_growth_is_rprhot003(self):
        r = _run(LIST_GROW_IN_LOOP)
        assert _rules(r) == ["RPRHOT003"]
        (f,) = r.findings
        assert "cand_rows.append" in f.message

    def test_object_dtype_is_rprhot004(self):
        r = _run(OBJECT_DTYPE)
        assert _rules(r) == ["RPRHOT004"]
        (f,) = r.findings
        assert "object-dtype" in f.message

    def test_broadcast_mismatch_is_rprhot005(self):
        r = _run(SHAPE_MISMATCH)
        assert _rules(r) == ["RPRHOT005"]

    def test_einsum_mismatch_is_rprhot005(self):
        r = _run(SHAPE_MISMATCH_EINSUM)
        assert _rules(r) == ["RPRHOT005"]

    def test_unaccounted_sweep_is_rprhot006(self):
        r = _run(UNACCOUNTED_SWEEP)
        assert _rules(r) == ["RPRHOT006"]
        (f,) = r.findings
        assert "visible_blocks" in f.message

    def test_syntax_error_is_rprhot999(self):
        r = analyze_hotpaths([], sources={"bad.py": "def f(:\n"})
        assert _rules(r) == ["RPRHOT999"]


class TestCleanTwins:
    def test_non_hot_data_loop_passes(self):
        assert _rules(_run(PER_ELEMENT_LEXICON_CLEAN)) == []

    def test_batched_predicate_passes(self):
        assert _rules(_run(SCALAR_PREDICATE_CLEAN)) == []

    def test_hoisted_allocation_passes(self):
        assert _rules(_run(ALLOC_HOISTED_CLEAN)) == []

    def test_float64_array_passes(self):
        assert _rules(_run(OBJECT_DTYPE_CLEAN)) == []

    def test_symbolic_dims_agree(self):
        assert _rules(_run(SHAPE_CLEAN)) == []

    def test_broadcast_against_one_is_fine(self):
        assert _rules(_run(SHAPE_CLEAN_BROADCAST)) == []

    def test_accounted_sweep_passes(self):
        assert _rules(_run(ACCOUNTED_SWEEP_CLEAN)) == []


class TestHotRegion:
    def test_provenance_chain_names_every_hop(self):
        r = _run(PROVENANCE_CHAIN)
        assert _rules(r) == ["RPRHOT001"]
        (f,) = r.findings
        assert "entry -> helper -> leaf" in f.message
        assert set(r.hot) >= {"fixture.entry", "fixture.helper", "fixture.leaf"}

    def test_cold_code_is_never_checked(self):
        # same smells, but unreachable from any entry: zero findings
        r = _run(COLD_CODE)
        assert _rules(r) == []
        assert r.entries == {}

    def test_kernel_param_is_an_entry(self):
        r = _run("def f(kernel):\n    return kernel\n")
        assert r.entries == {"fixture.f": "has a kernel= parameter"}

    def test_batchkernel_construction_is_an_entry(self):
        r = _run("def f(pts):\n    return BatchKernel(pts)\n")
        assert r.entries == {"fixture.f": "constructs BatchKernel"}

    def test_kernel_batch_literal_is_an_entry(self):
        r = _run("def f(pts):\n    return hull(pts, kernel='batch')\n")
        assert r.entries == {"fixture.f": "calls with kernel='batch'"}

    def test_exempt_files_propagate_hotness_but_never_report(self):
        r = _run(PER_ELEMENT_LEXICON, name="geometry/hyperplane.py")
        assert _rules(r) == []
        assert "geometry.hyperplane.sweep" in r.hot


class TestSuppression:
    def test_same_line_noqa_moves_finding_to_suppressed(self):
        src = PER_ELEMENT_LEXICON.replace(
            "for facet in facets:",
            "for facet in facets:  # repro: noqa: RPRHOT001",
        )
        assert src != PER_ELEMENT_LEXICON
        r = _run(src)
        assert _rules(r) == []
        assert [f.rule_id for f in r.suppressed] == ["RPRHOT001"]

    def test_wrong_code_does_not_suppress(self):
        src = PER_ELEMENT_LEXICON.replace(
            "for facet in facets:",
            "for facet in facets:  # repro: noqa: RPRHOT002",
        )
        r = _run(src)
        assert _rules(r) == ["RPRHOT001"]

    def test_suppression_count_feeds_the_ratchet(self):
        src = PER_ELEMENT_LEXICON.replace(
            "for facet in facets:",
            "for facet in facets:  # repro: noqa: RPRHOT001",
        )
        r = _run(src)
        assert len(r.suppressions()) == 1
