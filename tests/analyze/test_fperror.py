"""Unit tests for the relative-rounding-error domain (`fperror`):
polynomial algebra, the domination check with fact rewriting, the
Higham-style transfer rules, and the fp-bound clause grammar."""

from __future__ import annotations

import ast

import pytest

from repro.analyze import fperror as fe


def P(text: str) -> fe.Poly:
    return fe.parse_poly(text)


# -- polynomial algebra ---------------------------------------------------


class TestPoly:
    def test_parse_simple(self):
        assert P("6*H") == {((("H", 1),)): 6.0}
        assert P("1") == {(): 1.0}
        assert P("H") == {((("H", 1),)): 1.0}

    def test_parse_powers(self):
        assert P("d^2") == P("d**2") == P("d*d")

    def test_parse_product_expansion(self):
        # 16 d (d^2 H + NRM + 1)(B + Q) expands correctly: evaluate both
        # the parsed polynomial and the literal formula at sample values.
        p = P("16*d*(d*d*H + NRM + 1)*(B + Q)")
        vals = {"d": 3.0, "H": 2.5, "NRM": 7.0, "B": 1.5, "Q": 4.0}
        want = 16 * 3.0 * (9 * 2.5 + 7.0 + 1) * (1.5 + 4.0)
        assert fe.poly_eval(p, vals) == pytest.approx(want)

    def test_eval_missing_atom_raises(self):
        with pytest.raises(KeyError):
            fe.poly_eval(P("H*Q"), {"H": 1.0})

    def test_format_round_trip(self):
        p = P("0.5*NRM*Q + 18*B*H + 3*B")
        assert fe.parse_poly(fe.poly_format(p)) == p

    def test_sub_atom_matches_eval(self):
        p = P("16*d*(d*d*H + NRM + 1)*(B + Q)")
        pinned = fe.poly_sub_atom(p, "d", 3.0)
        assert "d" not in fe.poly_atoms(pinned)
        vals = {"H": 2.0, "NRM": 5.0, "B": 1.0, "Q": 3.0}
        assert fe.poly_eval(pinned, vals) == pytest.approx(
            fe.poly_eval(p, {**vals, "d": 3.0}))

    @pytest.mark.parametrize("bad", ["", "2*", "a +* b", "-3*H", "H + -1"])
    def test_parse_rejects(self, bad):
        with pytest.raises(fe.FpAnnotationError):
            fe.parse_poly(bad)


# -- domination -----------------------------------------------------------


class TestDominates:
    def test_constant(self):
        assert fe.dominates(P("4*AD + 4*BC"), P("AD + BC"))
        assert not fe.dominates(P("4*AD"), P("5*AD"))

    def test_missing_monomial_fails(self):
        assert not fe.dominates(P("10*H"), P("H + Q"))

    def test_fact_rewriting(self):
        # NRM is not in the committed bound; the fact NRM <= 6*H lets
        # the derived 0.5*NRM be charged against the 6*H budget.
        facts = [(next(iter(P("NRM"))), P("6*H"))]
        assert fe.dominates(P("6*H"), P("0.5*NRM"), facts)
        assert not fe.dominates(P("2*H"), P("0.5*NRM"), facts)

    def test_real_tree_shape(self):
        # The orient_batch @d=3 domination, verbatim from the analyzer.
        committed = P("432*B*H + 48*B*NRM + 432*H*Q + 48*NRM*Q + 48*B + 48*Q")
        derived = P("18*B*H + 18*B*NRM + 18*H*Q + 6*NRM*Q + 0.5*OFF")
        facts = [(next(iter(P("OFF"))), P("3*NRM*B"))]
        assert fe.dominates(committed, derived, facts)
        # Without the OFF fact the 0.5*OFF monomial has no cover.
        assert not fe.dominates(committed, derived)


# -- transfer rules -------------------------------------------------------


def X(mag: str, err: str | None = None) -> fe.FpVal:
    return fe.fp_exactval(P(mag), P(err) if err else None)


class TestTransfer:
    def test_add(self):
        r = fe.fp_add(X("A"), X("B"))
        assert r.mag == P("A + B")
        assert r.err == P("0.5*A + 0.5*B")

    def test_add_propagates(self):
        r = fe.fp_add(X("A", "2*A"), X("B"))
        assert r.err == P("2*A + 0.5*A + 0.5*B")

    def test_mul(self):
        r = fe.fp_mul(X("A", "A"), X("B"))
        assert r.mag == P("A*B")
        assert r.err == P("A*B + 0.5*A*B")

    def test_dot(self):
        r = fe.fp_dot(X("A", "2*A"), X("B"), fe.poly_const(3.0))
        assert r.mag == P("3*A*B")
        # propagated 3*(2A*B) plus final 0.5*9*A*B
        assert r.err == P("6*A*B + 4.5*A*B")

    def test_sum(self):
        r = fe.fp_sum(X("A", "A"), fe.poly_atom("d"))
        assert r.mag == P("d*A")
        assert r.err == P("d*A + 0.5*d*d*A")

    def test_cross(self):
        r = fe.fp_cross(X("A"), X("B"))
        assert r.mag == P("2*A*B")
        assert r.err == P("2*A*B")

    def test_sqrt(self):
        r = fe.fp_sqrt(X("A", "A"))
        assert r.err == P("A + 0.5*A")

    def test_bind_cancellation_rescue(self):
        # edges = b - a costs 0.5|a|+0.5|b| at face value; re-scoping to
        # the measured edge magnitude E keeps the inherited error but
        # re-charges the final rounding against E only.
        diff = fe.fp_add(X("A", "A"), X("B"))
        assert diff.last == P("0.5*A + 0.5*B")
        bound = fe.fp_bind(diff, fe.poly_atom("E"))
        assert bound.mag == P("E")
        assert bound.prop == P("A")  # inherited operand error kept
        assert bound.last == P("0.5*E")

    def test_bind_untracked(self):
        bound = fe.fp_bind(fe.TOP, fe.poly_atom("E"))
        assert bound.is_tracked
        assert bound.mag == P("E") and bound.err == P("0.5*E")

    def test_kind_lifting(self):
        assert fe.fp_add(fe.TOP, X("A")).kind == "top"
        assert fe.fp_add(fe.NONFP, fe.NONFP).kind == "other"
        # mixing float data with index data loses the bound
        assert fe.fp_add(fe.NONFP, X("A")).kind == "top"

    def test_join(self):
        r = fe.fp_join(X("A", "A"), X("B"), fe.NONFP)
        assert r.mag == P("A + B")
        assert r.err == P("A")  # exact values contribute no error
        assert fe.fp_join(X("A"), fe.TOP).kind == "top"
        assert fe.fp_join(fe.NONFP).kind == "other"

    def test_eps_is_binary64(self):
        assert fe.EPS == 2.0 ** -52


# -- clause grammar -------------------------------------------------------


ANNOTATED = '''
def kernel(pts, q):
    # repro: fp-bound: assume d in 2..3
    # repro: fp-bound: in pts ~ S
    # repro: fp-bound: bind e0 ~ R0, e1 ~ R1
    # repro: fp-bound: fact R0*R1 <= H @d=3
    # repro: fp-bound: fact NRM <= 6*H
    # repro: fp-bound: call det ~ DET err 108*ME*CM @d=3
    # repro: fp-bound: guard env certain
    # repro: fp-bound: envelope env scale
    # repro: fp-bound: out normals ~ NRM err 6*H
    margins = pts @ q
    # repro: fp-bound: claim margins <= 16*d*H
    return margins
'''


def _parse(src: str):
    return fe.parse_fp_annotations(src, ast.parse(src))


class TestGrammar:
    def test_full_annotation(self):
        anns, errors = _parse(ANNOTATED)
        assert errors == []
        (ann,) = anns.values()
        a = ann.assume()
        assert (a.name, a.lo, a.hi) == ("d", 2, 3)
        assert ann.guard_names() == {"env", "certain"}
        assert ann.envelope_names() == {"env", "scale"}
        binds = ann.selected("bind", None)
        assert [(c.name, c.atom) for c in binds] == [("e0", "R0"), ("e1", "R1")]

    def test_selector_pinning(self):
        anns, _ = _parse(ANNOTATED)
        (ann,) = anns.values()
        assert len(ann.facts(("d", 3))) == 2
        assert len(ann.facts(("d", 2))) == 1  # the @d=3 fact drops out
        calls2 = ann.selected("call", ("d", 2))
        assert calls2 == []
        (call3,) = ann.selected("call", ("d", 3))
        assert (call3.name, call3.atom) == ("det", "DET")
        assert call3.err == P("108*ME*CM")

    def test_claim_clause(self):
        anns, _ = _parse(ANNOTATED)
        (ann,) = anns.values()
        (claim,) = ann.selected("claim", ("d", 2))
        assert claim.name == "margins"
        assert claim.err == P("16*d*H")

    def test_innermost_owner(self):
        src = (
            "def outer():\n"
            "    def inner():\n"
            "        # repro: fp-bound: guard env\n"
            "        pass\n"
        )
        anns, errors = _parse(src)
        assert errors == []
        assert list(anns) == [2]  # attached to inner's def line

    def test_module_level_comment_is_error(self):
        anns, errors = _parse("# repro: fp-bound: guard env\nx = 1\n")
        assert anns == {}
        assert len(errors) == 1 and "outside any function" in errors[0][1]

    @pytest.mark.parametrize("body", [
        "claim <= 3*H",              # missing name
        "fact 2*NRM <= H",           # non-unit fact coefficient
        "assume d in 9..2",          # empty range
        "guard",                     # empty name list
        "in pts",                    # missing ~ ATOM
        "wibble x y",                # unknown clause head
    ])
    def test_malformed_clause_collects_error(self, body):
        src = f"def f():\n    # repro: fp-bound: {body}\n    pass\n"
        _, errors = _parse(src)
        assert len(errors) == 1

    def test_dotted_names(self):
        src = (
            "def side(self, q):\n"
            "    # repro: fp-bound: in self.normal ~ NRM err 6*H\n"
            "    pass\n"
        )
        anns, errors = _parse(src)
        assert errors == []
        (ann,) = anns.values()
        (decl,) = ann.selected("in", None)
        assert decl.name == "self.normal" and decl.err == P("6*H")
