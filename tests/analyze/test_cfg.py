"""CFG construction and the small dataflow engines."""

from __future__ import annotations

import ast

from repro.analyze.cfg import build_cfg, max_flow, reaches_before_yield


def _cfg(src: str, mutex_of=lambda e: None):
    func = ast.parse(src).body[0]
    return build_cfg(func, mutex_of=mutex_of)


def _reachable(cfg):
    seen, work = set(), [0]
    while work:
        nid = work.pop()
        if nid in seen:
            continue
        seen.add(nid)
        work.extend(cfg.nodes[nid].succs)
    return seen


class TestShape:
    def test_linear(self):
        cfg = _cfg("def f():\n    a = 1\n    b = 2\n")
        assert len(cfg.nodes) == 4  # entry, exit, two stmts
        assert cfg.exit.nid in _reachable(cfg)

    def test_yield_nodes_are_marked(self):
        cfg = _cfg("def f():\n    yield ('a', 1)\n    x = 1\n    yield ('b', 2)\n")
        assert [n.line for n in cfg.yields()] == [2, 4]

    def test_if_joins_both_branches(self):
        cfg = _cfg(
            "def f(c):\n"
            "    if c:\n"
            "        a = 1\n"
            "    else:\n"
            "        b = 2\n"
            "    d = 3\n"
        )
        # the statement after the if has both branch nodes as preds
        join = [n for n in cfg.nodes if n.line == 6][0]
        preds = {n.nid for n in cfg.nodes if join.nid in n.succs}
        assert len(preds) == 2

    def test_if_without_else_falls_through(self):
        cfg = _cfg("def f(c):\n    if c:\n        a = 1\n    d = 3\n")
        join = [n for n in cfg.nodes if n.line == 4][0]
        preds = {n.nid for n in cfg.nodes if join.nid in n.succs}
        assert len(preds) == 2  # test node + body node

    def test_while_has_back_edge_and_exit_edge(self):
        cfg = _cfg("def f():\n    while True:\n        a = 1\n")
        header = [n for n in cfg.nodes if n.line == 2][0]
        body = [n for n in cfg.nodes if n.line == 3][0]
        assert header.nid in body.succs  # wrap-around
        assert cfg.exit.nid in _reachable(cfg)  # static exit edge exists

    def test_break_exits_loop(self):
        cfg = _cfg(
            "def f():\n"
            "    while True:\n"
            "        break\n"
            "    tail = 1\n"
        )
        brk = [n for n in cfg.nodes if n.line == 3][0]
        tail = [n for n in cfg.nodes if n.line == 4][0]
        assert tail.nid in brk.succs

    def test_return_routes_to_exit(self):
        cfg = _cfg("def f():\n    return 1\n    dead = 2\n")
        ret = [n for n in cfg.nodes if n.line == 2][0]
        assert cfg.exit.nid in ret.succs
        dead = [n for n in cfg.nodes if n.line == 3][0]
        assert dead.nid not in _reachable(cfg)

    def test_try_body_edges_into_handler(self):
        cfg = _cfg(
            "def f():\n"
            "    try:\n"
            "        a = 1\n"
            "        b = 2\n"
            "    except ValueError:\n"
            "        h = 3\n"
        )
        handler = [n for n in cfg.nodes if n.line == 6][0]
        body_lines = {3, 4}
        preds = {cfg.nodes[p].line for p in range(len(cfg.nodes))
                 if handler.nid in cfg.nodes[p].succs}
        assert body_lines <= preds

    def test_with_extends_held_set(self):
        def mutex_of(expr):
            if isinstance(expr, ast.Attribute):
                return f"self.{expr.attr}"
            return None

        cfg = _cfg(
            "def f(self):\n"
            "    with self._mutex:\n"
            "        a = 1\n"
            "    b = 2\n",
            mutex_of=mutex_of,
        )
        inner = [n for n in cfg.nodes if n.line == 3][0]
        outer = [n for n in cfg.nodes if n.line == 4][0]
        assert inner.held == frozenset({"self._mutex"})
        assert outer.held == frozenset()


class TestDataflow:
    def test_max_flow_saturates(self):
        cfg = _cfg("def f():\n    a = 1\n    b = 2\n    c = 3\n")

        def transfer(node, n):
            return min(2, n + (1 if node.kind == "stmt" else 0))

        state = max_flow(cfg, transfer, start=0, top=2)
        assert state[cfg.exit.nid] == 2  # 3 stmts saturate at 2

    def test_max_flow_joins_with_max(self):
        cfg = _cfg(
            "def f(c):\n"
            "    if c:\n"
            "        a = 1\n"
            "        b = 2\n"
            "    d = 3\n"
        )
        # charge only lines 3/4; the join at line 5 must take the
        # heavier (then-branch) path
        def transfer(node, n):
            return min(2, n + (1 if node.line in (3, 4) else 0))

        state = max_flow(cfg, transfer, start=0, top=2)
        join = [n for n in cfg.nodes if n.line == 5][0]
        assert state[join.nid] == 2

    def test_loop_wraparound_accumulates(self):
        cfg = _cfg("def f():\n    while True:\n        a = 1\n")

        def transfer(node, n):
            return min(2, n + (1 if node.line == 3 else 0))

        state = max_flow(cfg, transfer, start=0, top=2)
        body = [n for n in cfg.nodes if n.line == 3][0]
        # second iteration sees the first iteration's count
        assert state[body.nid] == 2

    def test_reaches_before_yield_stops_at_next_yield(self):
        cfg = _cfg(
            "def f():\n"
            "    yield ('a', 1)\n"
            "    yield ('b', 2)\n"
            "    x = 1\n"
        )
        first, second = cfg.yields()
        effectful = lambda node: node.line == 4  # noqa: E731
        assert not reaches_before_yield(cfg, first, effectful)
        assert reaches_before_yield(cfg, second, effectful)

    def test_reaches_before_yield_any_path_suffices(self):
        cfg = _cfg(
            "def f(c):\n"
            "    yield ('a', 1)\n"
            "    if c:\n"
            "        x = 1\n"
            "    yield ('b', 2)\n"
        )
        first = cfg.yields()[0]
        effectful = lambda node: node.line == 4  # noqa: E731
        assert reaches_before_yield(cfg, first, effectful)
