"""Property tests for the NumPy shape abstraction.

Hypothesis generates random programs from the modelled fragment
(broadcast arithmetic, comparisons, stack/concatenate, matmul, einsum,
constructors, transpose) with fully *concrete* input shapes, and the
oracle is NumPy itself: whatever ``infer_expr``/``infer_body`` derive
must concretize to the shape and dtype the real execution produces.
On this fragment the abstraction has no excuse for imprecision --
every transfer function is exact when its inputs are concrete -- so
the tests assert equality, not mere admission.  A second property
pins the RPRHOT005 trigger: for concrete operand shapes, a "definite
broadcast mismatch" is recorded *iff* NumPy raises.
"""

from __future__ import annotations

import ast

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze.shapes import (
    ShapeEnv,
    array_of,
    infer_body,
    infer_expr,
    parse_einsum,
)

DTYPES = ("bool", "int64", "float64")
NUMERIC = ("int64", "float64")


def _make(shape, dtype, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    if dtype == "bool":
        return rng.integers(0, 2, size=shape).astype(bool)
    if dtype == "int64":
        return rng.integers(-5, 6, size=shape).astype(np.int64)
    return rng.standard_normal(shape).astype(np.float64)


def _infer_fn(src: str, arrays: dict) -> ShapeEnv:
    fn = ast.parse(src).body[0]
    env = ShapeEnv()
    for name, arr in arrays.items():
        env.set(name, array_of(arr.shape, str(arr.dtype)))
    infer_body(fn, env)
    return env


def _run_fn(src: str, arrays: dict):
    ns = {"np": np}
    exec(src, ns)
    return ns["f"](**arrays)


def _assert_concretizes(val, actual) -> None:
    """The inferred abstraction must *equal* the concrete outcome."""
    if np.ndim(actual) == 0:
        assert val.kind in ("scalar", "array"), val.format()
        if val.is_array:
            assert val.dims in ((), None), val.format()
        assert val.dtype == str(np.asarray(actual).dtype), (
            f"{val.format()} vs scalar {np.asarray(actual).dtype}"
        )
        return
    assert val.is_array, f"{val.format()} for array of shape {actual.shape}"
    assert val.dims == actual.shape, f"{val.format()} vs {actual.shape}"
    assert val.dtype == str(actual.dtype), f"{val.format()} vs {actual.dtype}"


shapes = st.lists(st.integers(1, 4), min_size=1, max_size=3).map(tuple)


@st.composite
def broadcast_pairs(draw):
    """(shape_a, shape_b) that NumPy can broadcast."""
    a = draw(shapes)
    rank_b = draw(st.integers(1, len(a)))
    b = tuple(draw(st.sampled_from([d, 1])) for d in a[len(a) - rank_b:])
    return a, b


class TestBroadcastArithmetic:
    @given(broadcast_pairs(), st.sampled_from(NUMERIC),
           st.sampled_from(NUMERIC), st.sampled_from("+-*/"))
    @settings(max_examples=80, deadline=None)
    def test_binop_concretizes(self, pair, dt_a, dt_b, op):
        sa, sb = pair
        arrays = {"a": _make(sa, dt_a, 1), "b": _make(sb, dt_b, 2)}
        if op == "/":
            arrays["b"] = np.where(arrays["b"] == 0, 1, arrays["b"]).astype(dt_b)
        src = f"def f(a, b):\n    out = a {op} b\n    return out\n"
        env = _infer_fn(src, arrays)
        _assert_concretizes(env.get("out"), _run_fn(src, arrays))
        assert env.mismatches == []

    @given(broadcast_pairs(), st.sampled_from(DTYPES), st.sampled_from(DTYPES))
    @settings(max_examples=60, deadline=None)
    def test_comparison_is_bool(self, pair, dt_a, dt_b):
        sa, sb = pair
        arrays = {"a": _make(sa, dt_a, 3), "b": _make(sb, dt_b, 4)}
        src = "def f(a, b):\n    out = a < b\n    return out\n"
        env = _infer_fn(src, arrays)
        _assert_concretizes(env.get("out"), _run_fn(src, arrays))

    @given(shapes, st.sampled_from(NUMERIC))
    @settings(max_examples=40, deadline=None)
    def test_scalar_broadcast(self, shape, dt):
        arrays = {"a": _make(shape, dt, 5)}
        src = "def f(a):\n    out = a * 2.5\n    return out\n"
        env = _infer_fn(src, arrays)
        _assert_concretizes(env.get("out"), _run_fn(src, arrays))


class TestMismatchDifferential:
    @given(st.integers(2, 5), st.integers(2, 5), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_definite_mismatch_iff_numpy_raises(self, da, db, dc):
        """For concrete dims, RPRHOT005's trigger must agree with the
        real broadcasting rule -- no false positives, no misses."""
        arrays = {
            "a": _make((da, dc), "float64", 6),
            "b": _make((db, dc), "float64", 7),
        }
        src = "def f(a, b):\n    out = a + b\n    return out\n"
        env = _infer_fn(src, arrays)
        try:
            _run_fn(src, arrays)
            raises = False
        except ValueError:
            raises = True
        assert bool(env.mismatches) == raises


class TestStackConcat:
    @given(shapes, st.sampled_from(DTYPES), st.integers(2, 4))
    @settings(max_examples=40, deadline=None)
    def test_stack_concretizes(self, shape, dt, k):
        arrays = {"a": _make(shape, dt, 8)}
        elts = ", ".join(["a"] * k)
        src = f"def f(a):\n    out = np.stack([{elts}])\n    return out\n"
        env = _infer_fn(src, arrays)
        _assert_concretizes(env.get("out"), _run_fn(src, arrays))

    @given(shapes, st.sampled_from(DTYPES))
    @settings(max_examples=40, deadline=None)
    def test_stack_axis_concretizes(self, shape, dt):
        arrays = {"a": _make(shape, dt, 9)}
        src = "def f(a):\n    out = np.stack([a, a], axis=1)\n    return out\n"
        env = _infer_fn(src, arrays)
        _assert_concretizes(env.get("out"), _run_fn(src, arrays))

    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4),
           st.sampled_from(NUMERIC), st.sampled_from(NUMERIC))
    @settings(max_examples=40, deadline=None)
    def test_concatenate_concretizes(self, m1, m2, n, dt_a, dt_b):
        arrays = {
            "a": _make((m1, n), dt_a, 10),
            "b": _make((m2, n), dt_b, 11),
        }
        src = "def f(a, b):\n    out = np.concatenate([a, b], axis=0)\n    return out\n"
        env = _infer_fn(src, arrays)
        _assert_concretizes(env.get("out"), _run_fn(src, arrays))


class TestMatmulEinsum:
    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4),
           st.sampled_from(NUMERIC), st.sampled_from(NUMERIC))
    @settings(max_examples=40, deadline=None)
    def test_matmul_concretizes(self, m, k, n, dt_a, dt_b):
        arrays = {"a": _make((m, k), dt_a, 12), "b": _make((k, n), dt_b, 13)}
        src = "def f(a, b):\n    out = a @ b\n    return out\n"
        env = _infer_fn(src, arrays)
        _assert_concretizes(env.get("out"), _run_fn(src, arrays))
        assert env.mismatches == []

    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4),
           st.sampled_from(NUMERIC),
           st.sampled_from(["ij,jk->ik", "ij,ij->ij", "ij,ij->i",
                            "ij->ji", "ij->i", "ij->"]))
    @settings(max_examples=60, deadline=None)
    def test_einsum_concretizes(self, m, k, n, dt, spec):
        ops = spec.split("->")[0].split(",")
        bind = {"i": m, "j": k, "k": n}
        arrays = {}
        names = []
        for idx, term in enumerate(ops):
            name = "ab"[idx]
            names.append(name)
            arrays[name] = _make(tuple(bind[c] for c in term), dt, 14 + idx)
        call = f"np.einsum('{spec}', {', '.join(names)})"
        params = ", ".join(names)
        src = f"def f({params}):\n    out = {call}\n    return out\n"
        env = _infer_fn(src, arrays)
        _assert_concretizes(env.get("out"), _run_fn(src, arrays))
        assert env.mismatches == []

    def test_einsum_letter_conflict_is_definite(self):
        out, problems = parse_einsum(
            "ij,jk->ik", [array_of((3, 4), "float64"), array_of((5, 6), "float64")]
        )
        assert problems and "bound to both" in problems[0]


class TestConstructorsAndViews:
    @given(st.lists(st.integers(1, 4), min_size=1, max_size=3),
           st.sampled_from(["zeros", "ones"]),
           st.sampled_from([None, "bool", "int64", "float64"]))
    @settings(max_examples=40, deadline=None)
    def test_constructors_concretize(self, dims, ctor, dt):
        dt_arg = f", dtype=np.{dt}" if dt else ""
        src = (f"def f():\n    out = np.{ctor}(({', '.join(map(str, dims))},)"
               f"{dt_arg})\n    return out\n")
        env = _infer_fn(src, {})
        _assert_concretizes(env.get("out"), _run_fn(src, {}))

    @given(st.integers(1, 10))
    @settings(max_examples=20, deadline=None)
    def test_arange_concretizes(self, n):
        src = f"def f():\n    out = np.arange({n})\n    return out\n"
        env = _infer_fn(src, {})
        _assert_concretizes(env.get("out"), _run_fn(src, {}))

    @given(shapes, st.sampled_from(DTYPES))
    @settings(max_examples=30, deadline=None)
    def test_transpose_concretizes(self, shape, dt):
        arrays = {"a": _make(shape, dt, 20)}
        src = "def f(a):\n    out = a.T\n    return out\n"
        env = _infer_fn(src, arrays)
        _assert_concretizes(env.get("out"), _run_fn(src, arrays))

    @given(shapes, st.sampled_from(NUMERIC), st.sampled_from(DTYPES))
    @settings(max_examples=30, deadline=None)
    def test_astype_concretizes(self, shape, dt_in, dt_out):
        arrays = {"a": _make(shape, dt_in, 21)}
        src = f"def f(a):\n    out = a.astype(np.{dt_out})\n    return out\n"
        env = _infer_fn(src, arrays)
        _assert_concretizes(env.get("out"), _run_fn(src, arrays))


@st.composite
def straight_line_programs(draw):
    """A random chain of modelled ops over concrete 2-d inputs.  The
    generator executes each candidate step with NumPy as it goes, so
    only valid programs (and their true shapes) are emitted."""
    m = draw(st.integers(1, 4))
    n = draw(st.integers(1, 4))
    arrays = {
        "a": _make((m, n), "float64", draw(st.integers(0, 100))),
        "b": _make((m, n), "int64", draw(st.integers(0, 100))),
    }
    live = dict(arrays)
    lines = []
    n_steps = draw(st.integers(1, 4))
    for i in range(n_steps):
        t = f"t{i}"
        kind = draw(st.sampled_from(
            ["add", "mul", "transpose", "stack", "matmul", "compare"]
        ))
        names = sorted(live)
        x = draw(st.sampled_from(names))
        if kind in ("add", "mul", "compare"):
            same = [k for k in names if live[k].shape == live[x].shape]
            y = draw(st.sampled_from(same))
            op = {"add": "+", "mul": "*", "compare": "<"}[kind]
            if kind != "compare" and live[x].dtype == bool and live[y].dtype == bool:
                kind = "compare"
                op = "<"
            lines.append(f"    {t} = {x} {op} {y}")
            live[t] = eval(f"live[x] {op} live[y]", {}, {"live": live, "x": x, "y": y})
        elif kind == "transpose":
            lines.append(f"    {t} = {x}.T")
            live[t] = live[x].T
        elif kind == "stack":
            lines.append(f"    {t} = np.stack([{x}, {x}])")
            live[t] = np.stack([live[x], live[x]])
        elif kind == "matmul":
            pool = [
                (p, q) for p in names for q in names
                if live[p].ndim == 2 and live[q].ndim == 2
                and live[p].shape[1] == live[q].shape[0]
                and live[p].dtype != bool and live[q].dtype != bool
            ]
            if not pool:
                lines.append(f"    {t} = {x}.T")
                live[t] = live[x].T
            else:
                p, q = draw(st.sampled_from(pool))
                lines.append(f"    {t} = {p} @ {q}")
                live[t] = live[p] @ live[q]
    final = f"t{n_steps - 1}"
    src = "def f(a, b):\n" + "\n".join(lines) + f"\n    return {final}\n"
    return src, arrays, final


class TestRandomPrograms:
    @given(straight_line_programs())
    @settings(max_examples=60, deadline=None)
    def test_whole_program_concretizes(self, prog):
        src, arrays, final = prog
        env = _infer_fn(src, arrays)
        _assert_concretizes(env.get(final), _run_fn(src, arrays))
        assert env.mismatches == []
