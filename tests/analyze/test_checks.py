"""The four RPREFF rules on seeded fixture programs.

Each bad fixture must trigger *exactly* its rule; each clean twin must
pass.  The fixtures declare bare ``AtomicCell``/``AtomicFlag``/
``Mutex`` stand-in classes -- the analyzer matches the concurrency
primitives by bare class name precisely so fixture programs analyse
the same way as the real tree.
"""

from __future__ import annotations

from repro.analyze import analyze_paths

HEADER = '''
class AtomicCell:
    pass

class AtomicFlag:
    pass

class Mutex:
    pass
'''


def _run(src: str, name: str = "fixture.py"):
    return analyze_paths([], sources={name: HEADER + src})


def _rules(result):
    return [f.rule_id for f in result.findings]


DOUBLE_ATOMIC = '''
class Table:
    def __init__(self, n):
        self._cells = [AtomicCell() for _ in range(n)]

    def step_gen(self, i):
        yield ("cas", i)
        ok = self._cells[i].compare_and_swap(None, 1)
        val = self._cells[i].load()
        return ok, val
'''

DOUBLE_ATOMIC_CLEAN = '''
class Table:
    def __init__(self, n):
        self._cells = [AtomicCell() for _ in range(n)]

    def step_gen(self, i):
        yield ("cas", i)
        ok = self._cells[i].compare_and_swap(None, 1)
        yield ("read", i)
        val = self._cells[i].load()
        return ok, val
'''

TWO_HOP_RAW = '''
class _Slot:
    def __init__(self):
        self.taken = AtomicFlag()
        self.data = None

class Table:
    def __init__(self, n):
        self._slots = [_Slot() for _ in range(n)]

    def step_gen(self, i):
        yield ("tas", i)
        self._publish(self._slots[i])

    def _publish(self, slot):
        self._smash(slot)

    def _smash(self, slot):
        slot.data = 1
'''

ANNOUNCED_WRITE_CLEAN = '''
class _Slot:
    def __init__(self):
        self.taken = AtomicFlag()
        self.data = None

class Table:
    def __init__(self, n):
        self._slots = [_Slot() for _ in range(n)]

    def step_gen(self, i, v):
        yield ("tas", i)
        ok = self._slots[i].taken.test_and_set()
        yield ("write", i)
        self._slots[i].data = v
        return ok
'''

EMPTY_LOCKSET = '''
class Tracker:
    def __init__(self):
        self._mutex = Mutex()
        self._count = 0

    def bump(self):
        with self._mutex:
            self._count += 1

    def sneaky_bump(self):
        self._count += 1
'''

LOCKSET_CLEAN_VIA_HELPER = '''
class Tracker:
    def __init__(self):
        self._mutex = Mutex()
        self._count = 0

    def bump(self):
        with self._mutex:
            self._bump_locked()

    def bump_twice(self):
        with self._mutex:
            self._bump_locked()
            self._bump_locked()

    def _bump_locked(self):
        self._count += 1
'''

LOCKSET_READS_EXEMPT = '''
class Tracker:
    def __init__(self):
        self._mutex = Mutex()
        self._count = 0

    def bump(self):
        with self._mutex:
            self._count += 1

    def peek(self):
        return self._count
'''

DEAD_YIELD = '''
class Table:
    def __init__(self, n):
        self._cells = [AtomicCell() for _ in range(n)]

    def step_gen(self, i):
        yield ("a", i)
        yield ("b", i)
        return self._cells[i].load()
'''

RAW_REBIND = '''
class Table:
    def __init__(self, n):
        self._cells = [AtomicCell() for _ in range(n)]

    def step_gen(self, i):
        yield ("swap", i)
        self._cells[i] = AtomicCell()
'''

DYNAMIC_DISPATCH = '''
class Table:
    def __init__(self, n):
        self._cells = [AtomicCell() for _ in range(n)]

    def step_gen(self, i, name):
        yield ("dyn", i)
        getattr(self._cells[i], name)()
'''


class TestBadFixtures:
    def test_double_atomic_in_one_segment_is_rpreff001(self):
        r = _run(DOUBLE_ATOMIC)
        assert _rules(r) == ["RPREFF001"]
        (f,) = r.findings
        assert "load" in f.message and "step_gen" in f.message

    def test_raw_write_behind_two_call_hops_is_rpreff002(self):
        r = _run(TWO_HOP_RAW)
        assert _rules(r) == ["RPREFF002"]
        (f,) = r.findings
        # provenance chain names every hop
        assert "step_gen -> _publish -> _smash" in f.message

    def test_empty_lockset_write_is_rpreff003(self):
        r = _run(EMPTY_LOCKSET)
        assert _rules(r) == ["RPREFF003"]
        (f,) = r.findings
        assert "_mutex" in f.message and "sneaky_bump" in f.func

    def test_dead_yield_is_rpreff004(self):
        r = _run(DEAD_YIELD)
        assert _rules(r) == ["RPREFF004"]
        (f,) = r.findings
        assert f.line == HEADER.count("\n") + 7  # the first yield

    def test_raw_rebind_of_atomic_container_slot(self):
        r = _run(RAW_REBIND)
        assert _rules(r) == ["RPREFF002"]

    def test_dynamic_dispatch_goes_to_lattice_top(self):
        r = _run(DYNAMIC_DISPATCH)
        assert "RPREFF002" in _rules(r)

    def test_syntax_error_is_rpreff999(self):
        r = analyze_paths([], sources={"bad.py": "def f(:\n"})
        assert _rules(r) == ["RPREFF999"]


class TestCleanTwins:
    def test_one_access_per_segment_passes(self):
        assert _rules(_run(DOUBLE_ATOMIC_CLEAN)) == []

    def test_announced_write_idiom_passes(self):
        assert _rules(_run(ANNOUNCED_WRITE_CLEAN)) == []

    def test_locked_helper_entry_lockset_passes(self):
        assert _rules(_run(LOCKSET_CLEAN_VIA_HELPER)) == []

    def test_quiescent_reads_are_exempt(self):
        assert _rules(_run(LOCKSET_READS_EXEMPT)) == []


class TestSuppression:
    def test_noqa_moves_finding_to_suppressed(self):
        src = EMPTY_LOCKSET.replace(
            "        self._count += 1\n\n    def sneaky_bump(self):\n"
            "        self._count += 1",
            "        self._count += 1\n\n    def sneaky_bump(self):\n"
            "        self._count += 1  # repro: noqa: RPREFF003",
        )
        assert src != EMPTY_LOCKSET
        r = _run(src)
        assert _rules(r) == []
        assert [f.rule_id for f in r.suppressed] == ["RPREFF003"]

    def test_wrong_code_does_not_suppress(self):
        src = EMPTY_LOCKSET.replace(
            "    def sneaky_bump(self):\n        self._count += 1",
            "    def sneaky_bump(self):\n"
            "        self._count += 1  # repro: noqa: RPREFF001",
        )
        r = _run(src)
        assert _rules(r) == ["RPREFF003"]


class TestInterprocedural:
    def test_param_types_propagate_through_hops(self):
        r = _run(TWO_HOP_RAW)
        smash = r.program.functions["fixture.Table._smash"]
        assert ("cls", "fixture._Slot") in smash.param_types["slot"]

    def test_mutated_fields_discovered_via_params(self):
        r = _run(TWO_HOP_RAW)
        slot = r.program.classes_named("_Slot")[0]
        assert "data" in slot.plain_shared_fields()

    def test_summary_counts_saturate(self):
        r = _run(DOUBLE_ATOMIC)
        s = r.analysis.summary_of("fixture.Table.step_gen")
        assert s.count == 2 and s.level.is_shared

    def test_shared_sites_cover_the_fixture(self):
        r = _run(DOUBLE_ATOMIC_CLEAN)
        lines = {s.line for s in r.sites()}
        assert len(lines) == 2  # the CAS and the load
