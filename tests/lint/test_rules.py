"""The ``repro lint`` rule suite.

Each rule gets at least one fixture snippet planting exactly the
violation it guards against, asserted by rule id *and* location, plus a
clean twin proving the rule doesn't fire on the sanctioned idiom.
Fixtures are written to tmp_path so the checker runs end-to-end
(collection, parsing, suppression) rather than on pre-built ASTs.
"""

import textwrap
from pathlib import Path

import pytest

from repro.lint import ALL_RULES, lint_paths, run_lint
from repro.lint.core import collect_files, parse_file

RULE_IDS = [r.id for r in ALL_RULES]


def lint_snippet(tmp_path: Path, source: str, name: str = "snippet.py", **kwargs):
    """Write ``source`` under tmp_path and lint just that file."""
    f = tmp_path / name
    f.parent.mkdir(parents=True, exist_ok=True)
    f.write_text(textwrap.dedent(source))
    return run_lint([f], ALL_RULES, **kwargs)


class TestRegistry:
    def test_rule_ids_unique_and_ordered(self):
        assert RULE_IDS == sorted(set(RULE_IDS))
        assert RULE_IDS == ["RPR001", "RPR002", "RPR003", "RPR004", "RPR005"]

    def test_every_rule_has_summary(self):
        assert all(r.summary for r in ALL_RULES)


class TestRPR001AtomicInternals:
    def test_plants_and_catches_internal_access(self, tmp_path):
        vs = lint_snippet(tmp_path, """\
            def steal(cell):
                if cell._lock.acquire(False):
                    cell._value = 42
        """)
        ids = [(v.rule_id, v.line) for v in vs]
        assert ("RPR001", 2) in ids  # ._lock
        assert ("RPR001", 3) in ids  # ._value

    def test_catches_flag_internal(self, tmp_path):
        vs = lint_snippet(tmp_path, "def f(flag):\n    return flag._set\n")
        assert [(v.rule_id, v.line) for v in vs] == [("RPR001", 2)]

    def test_atomics_module_is_exempt(self, tmp_path):
        vs = lint_snippet(
            tmp_path,
            "class AtomicCell:\n    def load(self):\n        return self._value\n",
            name="repro/runtime/atomics.py",
        )
        assert vs == []

    def test_interface_calls_are_clean(self, tmp_path):
        vs = lint_snippet(tmp_path, """\
            def use(cell, flag):
                cell.store(1)
                return cell.load(), flag.test_and_set()
        """)
        assert vs == []


class TestRPR002RawThreading:
    def test_plants_and_catches_import(self, tmp_path):
        vs = lint_snippet(tmp_path, "import threading\nlock = threading.Lock()\n",
                          name="repro/hull/helper.py")
        assert [(v.rule_id, v.line) for v in vs] == [("RPR002", 1)]

    def test_catches_from_import(self, tmp_path):
        vs = lint_snippet(tmp_path, "from threading import Thread\n")
        assert [v.rule_id for v in vs] == ["RPR002"]

    def test_allowlisted_runtime_modules_are_exempt(self, tmp_path):
        from repro.lint.rules_atomics import THREADING_ALLOWLIST

        assert "runtime/chaos.py" in THREADING_ALLOWLIST
        for mod in THREADING_ALLOWLIST:
            vs = lint_snippet(tmp_path, "import threading\n",
                              name=f"repro/{mod}")
            assert vs == [], mod

    def test_unlisted_runtime_module_is_flagged(self, tmp_path):
        # The allowlist is exhaustive: a *new* runtime module importing
        # threading must either go through the sanctioned primitives or
        # be added to THREADING_ALLOWLIST deliberately.
        vs = lint_snippet(tmp_path, "import threading\n",
                          name="repro/runtime/newmodule.py")
        assert [v.rule_id for v in vs] == ["RPR002"]

    def test_allowlist_matches_reality(self):
        # Every module that actually imports threading is allowlisted.
        from repro.lint.rules_atomics import THREADING_ALLOWLIST

        src = Path(__file__).resolve().parents[2] / "src"
        offenders = []
        for f in collect_files([src]):
            lf = parse_file(f)
            if "import threading" in lf.source and not any(
                lf.posix.endswith(m) for m in THREADING_ALLOWLIST
            ):
                offenders.append(lf.posix)
        assert offenders == []

    def test_catches_raw_multiprocessing_import(self, tmp_path):
        vs = lint_snippet(tmp_path, "import multiprocessing\n",
                          name="repro/hull/helper.py")
        assert [(v.rule_id, v.line) for v in vs] == [("RPR002", 1)]
        assert "procexec" in vs[0].message

    def test_catches_multiprocessing_submodule_from_import(self, tmp_path):
        vs = lint_snippet(
            tmp_path, "from multiprocessing import shared_memory\n")
        assert [v.rule_id for v in vs] == ["RPR002"]

    def test_procexec_may_import_multiprocessing(self, tmp_path):
        from repro.lint.rules_atomics import MULTIPROCESSING_ALLOWLIST

        assert MULTIPROCESSING_ALLOWLIST == ("runtime/procexec.py",)
        vs = lint_snippet(
            tmp_path,
            "from multiprocessing import get_context, shared_memory\n",
            name="repro/runtime/procexec.py",
        )
        assert vs == []

    def test_threading_allowlist_does_not_cover_multiprocessing(self, tmp_path):
        # chaos.py may import threading but NOT multiprocessing: the two
        # allowlists are independent, so a threading-allowlisted module
        # spawning raw processes is still flagged.
        vs = lint_snippet(tmp_path, "import multiprocessing\n",
                          name="repro/runtime/chaos.py")
        assert [v.rule_id for v in vs] == ["RPR002"]

    def test_multiprocessing_allowlist_matches_reality(self):
        # Exactly the allowlisted module imports multiprocessing; no
        # other src module owns processes or segments raw.
        from repro.lint.rules_atomics import MULTIPROCESSING_ALLOWLIST

        src = Path(__file__).resolve().parents[2] / "src"
        importers = []
        for f in collect_files([src]):
            lf = parse_file(f)
            if ("import multiprocessing" in lf.source
                    or "from multiprocessing" in lf.source):
                importers.append(lf.posix)
        assert sorted(importers) == sorted(
            p for p in importers
            if any(p.endswith(m) for m in MULTIPROCESSING_ALLOWLIST)
        )
        assert len(importers) == len(MULTIPROCESSING_ALLOWLIST)


STEP_GEN_TEMPLATE = """\
class Table:
    def op_steps(self, key):
        i = 0
        while True:
            yield ("cas", i)
            if self._cells[i].compare_and_swap(None, key):
                return True
            {extra}
            i += 1
"""


class TestRPR003YieldDiscipline:
    def test_plants_and_catches_unyielded_access(self, tmp_path):
        # The second access has no yield of its own.
        vs = lint_snippet(tmp_path, STEP_GEN_TEMPLATE.format(
            extra="stored = self._cells[i].load()"))
        assert [(v.rule_id, v.line) for v in vs] == [("RPR003", 8)]
        assert "op_steps" in vs[0].message

    def test_disciplined_generator_is_clean(self, tmp_path):
        vs = lint_snippet(tmp_path, STEP_GEN_TEMPLATE.format(
            extra='yield ("read", i)\n            stored = self._cells[i].load()'))
        assert vs == []

    def test_access_before_any_yield(self, tmp_path):
        vs = lint_snippet(tmp_path, """\
            class Table:
                def op_steps(self, key):
                    self._slots[0].data = key   # write before first yield
                    yield ("done", 0)
        """)
        assert [(v.rule_id, v.line) for v in vs] == [("RPR003", 3)]

    def test_loop_wraparound_detected(self, tmp_path):
        # The yield arms only the first access of the first iteration:
        # on wrap-around the loop body starts unarmed.
        vs = lint_snippet(tmp_path, """\
            class Table:
                def op_steps(self, key):
                    yield ("start", 0)
                    i = 0
                    while True:
                        x = self._cells[i]
                        i += 1
        """)
        assert [(v.rule_id, v.line) for v in vs] == [("RPR003", 6)]

    def test_plain_generators_not_step_generators(self, tmp_path):
        # Yields ints, not ("tag", ...) tuples: the convention doesn't
        # apply, so unyielded accesses are fine.
        vs = lint_snippet(tmp_path, """\
            class Table:
                def numbers(self):
                    for i in range(3):
                        yield i
                        x = self._cells[i]
        """)
        assert vs == []

    def test_multimap_shipped_generators_are_clean(self):
        import repro.runtime.multimap as mm

        vs = run_lint([Path(mm.__file__)], ALL_RULES)
        assert vs == []


class TestRPR004RawPredicate:
    def test_plants_and_catches_det_sign_test(self, tmp_path):
        vs = lint_snippet(tmp_path, """\
            import numpy as np

            def visible(m):
                return np.linalg.det(m) > 0
        """)
        assert [(v.rule_id, v.line) for v in vs] == [("RPR004", 4)]

    def test_catches_det_variable_equality(self, tmp_path):
        vs = lint_snippet(tmp_path, """\
            def degenerate(rows):
                det = rows[0][0] * rows[1][1] - rows[0][1] * rows[1][0]
                return det == 0
        """)
        assert [(v.rule_id, v.line) for v in vs] == [("RPR004", 3)]

    def test_geometry_dir_is_exempt(self, tmp_path):
        vs = lint_snippet(
            tmp_path,
            "import numpy as np\n\ndef s(m):\n    return np.linalg.det(m) > 0\n",
            name="repro/geometry/predicates.py",
        )
        assert vs == []

    def test_predicate_results_are_clean(self, tmp_path):
        # orient() returns an exact integer sign; comparing it is the
        # sanctioned idiom.
        vs = lint_snippet(tmp_path, """\
            from repro.geometry import orient

            def left_turn(simplex, q):
                return orient(simplex, q) > 0
        """)
        assert vs == []


class TestRPR005UnseededRandom:
    def test_plants_and_catches_global_random(self, tmp_path):
        vs = lint_snippet(tmp_path, """\
            import random

            def shuffle(xs):
                random.shuffle(xs)
        """)
        assert [(v.rule_id, v.line) for v in vs] == [("RPR005", 4)]

    def test_catches_unseeded_default_rng(self, tmp_path):
        vs = lint_snippet(tmp_path, """\
            import numpy as np

            rng1 = np.random.default_rng()
            rng2 = np.random.default_rng(None)
            rng3 = np.random.default_rng(seed=None)
        """)
        assert [(v.rule_id, v.line) for v in vs] == [
            ("RPR005", 3), ("RPR005", 4), ("RPR005", 5)]

    def test_catches_legacy_np_random(self, tmp_path):
        vs = lint_snippet(tmp_path,
                          "import numpy as np\nx = np.random.rand(3)\n")
        assert [v.rule_id for v in vs] == ["RPR005"]

    def test_seeded_generators_are_clean(self, tmp_path):
        vs = lint_snippet(tmp_path, """\
            import random
            import numpy as np

            def draw(seed):
                rng = np.random.default_rng(seed)
                r = random.Random(0)
                return rng.integers(10), r.randint(0, 9)
        """)
        assert vs == []


class TestSuppression:
    def test_bare_noqa_suppresses_all(self, tmp_path):
        vs = lint_snippet(
            tmp_path, "import threading  # repro: noqa\n")
        assert vs == []

    def test_coded_noqa_suppresses_only_that_rule(self, tmp_path):
        vs = lint_snippet(
            tmp_path,
            "import threading  # repro: noqa: RPR002\n"
            "import random\nrandom.random()  # repro: noqa: RPR002\n")
        # RPR002 silenced on line 1; the RPR005 on line 3 survives its
        # mismatched suppression code.
        assert [v.rule_id for v in vs] == ["RPR005"]


class TestRunner:
    def test_collect_skips_pycache(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
        (tmp_path / "real.py").write_text("x = 1\n")
        assert [p.name for p in collect_files([tmp_path])] == ["real.py"]

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(:\n")
        parsed = parse_file(bad)
        assert parsed.rule_id == "RPR999"

    def test_select_and_ignore(self, tmp_path):
        src = "import threading\nimport random\nrandom.random()\n"
        only_threading = lint_snippet(tmp_path, src, select=frozenset({"RPR002"}))
        assert [v.rule_id for v in only_threading] == ["RPR002"]
        no_threading = lint_snippet(tmp_path, src, ignore=frozenset({"RPR002"}))
        assert [v.rule_id for v in no_threading] == ["RPR005"]

    def test_whole_tree_is_clean(self):
        """The acceptance criterion: ``repro lint`` exits 0 on the
        shipped tree (src + tools)."""
        assert lint_paths() == []


class TestNoqaAudit:
    """The in-tree suppression inventory, pinned -- one uniform sweep
    across every analyzer family.

    Every ``# repro: noqa`` in ``src/`` is audited: the two RPR004s are
    exact-predicate sign tests where the linted idiom (float comparison
    against zero) is itself the specification; the RPRHOT set is the
    exact-filter fallback loops in ``kernels.py`` (the scalar ladder
    *is* the fallback, by design), the benchmark harness in
    ``kernelbench.py`` (measurement scaffold, not hot path), and the
    lying oracle's per-decision hash draws in ``noisy.py``.  The
    effects (RPREFF) and fp-filter (RPRFP) analyzers run suppression-
    free.  A new suppression anywhere must update the pin *and* justify
    itself in review -- this is the textual half of the ratchet whose
    machine halves live in ``analyze-baseline.json`` /
    ``hotpath-baseline.json`` / ``fpcheck-baseline.json``.
    """

    REPO = Path(__file__).resolve().parents[2]

    #: analyzer-family prefix -> pinned per-file suppression counts.
    #: ``RPR`` means the plain lint rules (RPRnnn, excluding the
    #: analyzer families below); blanket no-code noqas count toward
    #: every family and are therefore pinned to zero implicitly.
    FAMILIES = ("RPREFF", "RPRHOT", "RPRFP")
    PINNED = {
        "RPR": {"halfspaces.py": 1, "certify.py": 1},
        "RPREFF": {},
        "RPRHOT": {
            "kernels.py": 7,
            "kernelbench.py": 10,
            "noisy.py": 2,
        },
        "RPRFP": {},
    }

    def _tree_suppressions(self):
        from repro.lint.core import iter_suppressions, load_files

        files, _ = load_files([self.REPO / "src"])
        return iter_suppressions(files)

    def _covers(self, c, prefix: str) -> bool:
        if c.codes is None:
            return True  # a blanket noqa covers every family
        if prefix == "RPR":
            return any(
                code.startswith("RPR")
                and not any(code.startswith(f) for f in self.FAMILIES)
                for code in c.codes
            )
        return any(code.startswith(prefix) for code in c.codes)

    @pytest.mark.parametrize("prefix", ["RPR", "RPREFF", "RPRHOT", "RPRFP"])
    def test_suppression_inventory_is_pinned(self, prefix):
        from collections import Counter

        got = Counter(
            Path(c.path).name
            for c in self._tree_suppressions()
            if self._covers(c, prefix)
        )
        assert dict(got) == self.PINNED[prefix], prefix

    def test_analyzer_trees_run_suppression_free(self):
        """The two clean analyzers really are clean, not silenced:
        their tree runs carry zero suppressed findings."""
        from repro.analyze import analyze_fpcheck, analyze_paths

        fp = analyze_fpcheck([str(self.REPO / "src" / "repro")])
        assert fp.suppressed == [] and fp.suppressions() == []
        eff = analyze_paths([str(self.REPO / "src" / "repro")])
        assert eff.suppressed == []

    def test_no_unused_suppressions_in_tree(self):
        from repro.lint.core import unused_suppressions

        assert unused_suppressions([self.REPO / "src"], ALL_RULES) == []

    def test_docstring_mentions_are_not_suppressions(self):
        from repro.lint.core import suppressed_lines

        src = (
            '"""Silence a finding with ``# repro: noqa: RPR004``."""\n'
            "x = 1\n"
            "y = 2  # repro: noqa: RPR004\n"
        )
        assert suppressed_lines(src) == {3: frozenset({"RPR004"})}

    def test_stale_suppression_is_detected(self, tmp_path):
        from repro.lint.core import unused_suppressions

        f = tmp_path / "stale.py"
        f.write_text("x = 1  # repro: noqa: RPR004\n")
        (stale,) = unused_suppressions([tmp_path], ALL_RULES)
        assert stale.line == 1 and stale.covers("RPR004")
