"""Experiment E8 (space side): the half-plane intersection
configuration space -- activity == polygon vertices, 2-support."""

import numpy as np
import pytest

from repro.configspace import build_dependence_graph, check_k_support
from repro.configspace.spaces import HalfplaneSpace, tangent_halfplanes


class TestConstruction:
    def test_generator_contains_origin(self):
        normals, offsets = tangent_halfplanes(20, seed=1)
        assert (offsets > 0).all()
        assert np.allclose(np.linalg.norm(normals, axis=1), 1.0)

    def test_rejects_origin_excluded(self):
        with pytest.raises(ValueError):
            HalfplaneSpace(np.array([[1.0, 0]]), np.array([-1.0]))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            HalfplaneSpace(np.ones((3, 3)), np.ones(3))

    def test_parallel_lines_no_configuration(self):
        normals = np.array([[1.0, 0], [1.0, 0], [0, 1.0]])
        offsets = np.array([1.0, 2.0, 1.0])
        space = HalfplaneSpace(normals, offsets)
        assert space._config(frozenset({0, 1})) is None
        assert space._config(frozenset({0, 2})) is not None


class TestActiveSets:
    def test_square(self):
        # x <= 1, -x <= 1, y <= 1, -y <= 1: the unit square, 4 vertices.
        normals = np.array([[1.0, 0], [-1, 0], [0, 1], [0, -1]])
        offsets = np.ones(4)
        space = HalfplaneSpace(normals, offsets)
        active = space.active_set(range(4))
        assert {c.defining for c in active} == {
            frozenset({0, 2}), frozenset({0, 3}), frozenset({1, 2}), frozenset({1, 3})
        }

    def test_redundant_halfplane_inactive(self):
        normals = np.array([[1.0, 0], [-1, 0], [0, 1], [0, -1], [1.0, 0]])
        offsets = np.array([1.0, 1, 1, 1, 5.0])  # last is slack everywhere
        space = HalfplaneSpace(normals, offsets)
        active = space.active_set(range(5))
        assert all(4 not in c.defining for c in active)

    def test_vertex_count_matches_polygon(self):
        normals, offsets = tangent_halfplanes(15, seed=2)
        space = HalfplaneSpace(normals, offsets)
        active = space.active_set(range(15))
        # Tangent half-planes to a circle are all non-redundant whp.
        assert len(active) == 15

    def test_exact_vertex(self):
        normals = np.array([[1.0, 0], [0, 1.0], [-1, 0], [0, -1]])
        offsets = np.array([2.0, 3.0, 1.0, 1.0])
        space = HalfplaneSpace(normals, offsets)
        v = space.vertex(0, 1)
        assert (float(v[0]), float(v[1])) == (2.0, 3.0)


@pytest.mark.parametrize("n,seed", [(8, 3), (10, 4), (12, 5)])
def test_two_support(n, seed):
    normals, offsets = tangent_halfplanes(n, seed=seed)
    space = HalfplaneSpace(normals, offsets)
    report = check_k_support(space, range(n))
    assert report.ok, report.failures
    assert report.max_support_size() <= 2


def test_dependence_graph_builds():
    normals, offsets = tangent_halfplanes(10, seed=6)
    space = HalfplaneSpace(normals, offsets)
    graph = build_dependence_graph(space, list(range(10)))
    assert graph.depth() >= 1
    for _key, parents in graph.parents.items():
        assert len(parents) <= 2


class TestPropertyBased:
    """Hypothesis sweep: 2-support holds on arbitrary tangent-half-plane
    instances (small n; the checker is brute force)."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(st.integers(0, 5000), st.integers(5, 9))
    @settings(max_examples=20, deadline=None)
    def test_two_support_random_instances(self, seed, n):
        normals, offsets = tangent_halfplanes(n, seed=seed)
        space = HalfplaneSpace(normals, offsets)
        report = check_k_support(space, range(n))
        assert report.ok, report.failures
