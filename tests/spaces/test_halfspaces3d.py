"""Experiment E8 at d=3: the half-space configuration space with the
paper's direction (edge-ray) boundary configurations."""

import numpy as np
import pytest

from repro.apps import halfspace_intersection_3d
from repro.configspace import check_k_support
from repro.configspace.spaces.halfspaces3d import (
    HalfspaceSpace3D,
    tangent_halfspaces_3d,
)


class TestConstruction:
    def test_parameters(self):
        normals, offsets = tangent_halfspaces_3d(6, seed=1)
        sp = HalfspaceSpace3D(normals, offsets)
        assert sp.degree == 3 and sp.support_k == 2

    def test_input_validation(self):
        with pytest.raises(ValueError):
            HalfspaceSpace3D(np.ones((4, 2)), np.ones(4))
        with pytest.raises(ValueError):
            HalfspaceSpace3D(np.ones((4, 3)), -np.ones(4))

    def test_parallel_planes_no_ray(self):
        normals = np.array([[1.0, 0, 0], [1.0, 0, 0], [0, 1.0, 0]])
        offsets = np.array([1.0, 2.0, 1.0])
        sp = HalfspaceSpace3D(normals, offsets)
        assert sp._ray_config(0, 1, 1) is None
        assert sp._ray_config(0, 2, 1) is not None


class TestActiveSets:
    def test_unit_cube(self):
        # x,y,z each in [-1, 1]: the cube -- 8 vertices, bounded so no rays.
        normals = np.array(
            [[1.0, 0, 0], [-1, 0, 0], [0, 1.0, 0], [0, -1, 0], [0, 0, 1.0], [0, 0, -1]]
        )
        offsets = np.ones(6)
        sp = HalfspaceSpace3D(normals, offsets)
        active = sp.active_set(range(6))
        vertices = [c for c in active if c.tag == "vertex"]
        rays = [c for c in active if c.tag != "vertex"]
        assert len(vertices) == 8
        assert rays == []

    def test_open_wedge_has_rays(self):
        # Only two half-spaces: the wedge is unbounded; both edge rays
        # of their shared line are active.
        normals = np.array([[1.0, 0, 0], [0, 1.0, 0], [0, 0, 1.0]])
        offsets = np.ones(3)
        sp = HalfspaceSpace3D(normals, offsets)
        active = sp.active_set([0, 1])
        assert {c.tag for c in active} == {("ray", 1), ("ray", -1)}

    def test_vertices_match_dual_hull_app(self):
        normals, offsets = tangent_halfspaces_3d(20, seed=2)
        sp = HalfspaceSpace3D(normals, offsets)
        active_vertices = {
            c.defining for c in sp.active_set(range(20)) if c.tag == "vertex"
        }
        res = halfspace_intersection_3d(normals, offsets, seed=3)
        assert active_vertices == {frozenset(t) for t in res.vertex_triples}

    def test_bounded_intersection_no_active_rays(self):
        normals, offsets = tangent_halfspaces_3d(20, seed=4)
        sp = HalfspaceSpace3D(normals, offsets)
        rays = [c for c in sp.active_set(range(20)) if c.tag != "vertex"]
        assert rays == []


@pytest.mark.parametrize("n,seed", [(7, 1), (8, 2), (9, 4)])
def test_two_support_with_rays(n, seed):
    """The paper's d-dimensional boundary prescription, checked at d=3:
    with edge-ray configurations the space certifies 2-support."""
    normals, offsets = tangent_halfspaces_3d(n, seed=seed)
    sp = HalfspaceSpace3D(normals, offsets)
    report = check_k_support(sp, range(n))
    assert report.ok, report.failures
    assert report.max_support_size() <= 2
