"""Experiment E14 (space side): the Delaunay configuration spaces --
the naive in-circle space FAILS 2-support at the boundary (a documented
negative result), the lifted space inherits 2-support from Theorem 5.1.
"""

import numpy as np
import pytest
from scipy.spatial import Delaunay as ScipyDelaunay

from repro.configspace import check_k_support
from repro.configspace.spaces import (
    DelaunayLiftedSpace,
    NaiveDelaunaySpace,
    lift_to_paraboloid,
)
from repro.geometry import uniform_ball


class TestLifting:
    def test_lift_coordinates(self):
        pts = np.array([[1.0, 2.0], [-1.0, 0.5]])
        lifted = lift_to_paraboloid(pts)
        assert np.allclose(lifted[:, 2], [5.0, 1.25])

    def test_lifted_space_requires_2d_input(self):
        with pytest.raises(ValueError):
            DelaunayLiftedSpace(np.zeros((5, 3)))


class TestNaiveSpace:
    def test_active_set_is_delaunay(self):
        pts = uniform_ball(9, 2, seed=1)
        space = NaiveDelaunaySpace(pts)
        active = {c.defining for c in space.active_set(range(9))}
        scipy_tris = {frozenset(s) for s in ScipyDelaunay(pts).simplices}
        assert active == scipy_tris

    def test_collinear_rejected(self):
        pts = np.array([[0.0, 0], [1, 0], [2, 0], [0, 1]])
        space = NaiveDelaunaySpace(pts)
        with pytest.raises(ValueError):
            space.active_set(range(4))

    def test_naive_space_lacks_2_support(self):
        """The documented negative result: boundary steps break
        2-support for the bare in-circle space."""
        failures = 0
        for seed in (5, 6, 7):
            pts = uniform_ball(8, 2, seed=seed)
            report = check_k_support(NaiveDelaunaySpace(pts), range(8))
            failures += len(report.failures)
        assert failures > 0

    def test_failures_are_boundary_cases(self):
        """Every 2-support failure of the naive space involves a hull
        edge of Y \\ {x} (the regime the lifted space fixes)."""
        from repro.hull import brute_force_facet_sets

        pts = uniform_ball(8, 2, seed=5)
        space = NaiveDelaunaySpace(pts)
        report = check_k_support(space, range(8))
        for (key, x) in report.failures:
            defining, _tag = key
            edge = defining - {x}
            remaining = [i for i in range(8) if i != x]
            hull_edges = brute_force_facet_sets(pts[remaining])
            hull_edges_global = {
                frozenset(remaining[i] for i in e) for e in hull_edges
            }
            assert edge in hull_edges_global


class TestLiftedSpace:
    @pytest.mark.parametrize("n,seed", [(8, 1), (9, 2), (10, 3)])
    def test_two_support(self, n, seed):
        pts = uniform_ball(n, 2, seed=seed)
        report = check_k_support(DelaunayLiftedSpace(pts), range(n))
        assert report.ok, report.failures

    def test_triangles_match_scipy(self):
        pts = uniform_ball(12, 2, seed=4)
        space = DelaunayLiftedSpace(pts)
        tris = space.delaunay_triangles(range(12))
        scipy_tris = {frozenset(s) for s in ScipyDelaunay(pts).simplices}
        assert tris == scipy_tris

    def test_triangles_match_naive_active_set(self):
        pts = uniform_ball(10, 2, seed=5)
        lifted = DelaunayLiftedSpace(pts).delaunay_triangles(range(10))
        naive = {c.defining for c in NaiveDelaunaySpace(pts).active_set(range(10))}
        assert lifted == naive

    def test_subset_triangulation(self):
        pts = uniform_ball(12, 2, seed=6)
        space = DelaunayLiftedSpace(pts)
        sub = [0, 2, 4, 6, 8, 10]
        tris = space.delaunay_triangles(sub)
        scipy_tris = {
            frozenset(sub[i] for i in s) for s in ScipyDelaunay(pts[sub]).simplices
        }
        assert tris == scipy_tris
