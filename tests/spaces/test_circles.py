"""Experiment E9 (space side): the unit-circle arc configuration space
-- arcs on the boundary, bounded multiplicity, 2-support."""

import numpy as np
import pytest

from repro.configspace import check_k_support
from repro.configspace.spaces import UnitCircleArcSpace, clustered_unit_circles


class TestConstruction:
    def test_generator_disks_share_origin(self):
        centers = clustered_unit_circles(20, seed=1)
        assert (np.linalg.norm(centers, axis=1) < 1.0).all()

    def test_duplicate_centers_rejected(self):
        centers = np.array([[0.1, 0.2], [0.1, 0.2], [0.5, 0]])
        with pytest.raises(ValueError):
            UnitCircleArcSpace(centers)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            UnitCircleArcSpace(np.zeros((3, 3)))


class TestActiveSets:
    def test_two_circles_two_arcs(self):
        centers = np.array([[0.0, 0.0], [0.8, 0.0]])
        space = UnitCircleArcSpace(centers)
        active = space.active_set(range(2))
        assert len(active) == 2
        owners = {c.tag[0] for c in active}
        assert owners == {0, 1}
        for c in active:
            assert c.defining == frozenset({0, 1})

    def test_far_apart_no_arcs(self):
        centers = np.array([[0.0, 0.0], [5.0, 0.0]])
        space = UnitCircleArcSpace(centers)
        assert space.active_set(range(2)) == set()

    def test_single_circle_no_arcs(self):
        centers = np.array([[0.0, 0.0], [0.5, 0.0]])
        space = UnitCircleArcSpace(centers)
        assert space.active_set([0]) == set()

    def test_contained_circle_contributes_no_cut(self):
        # Three clustered circles: the boundary arc owners are exactly
        # the circles whose boundary touches the intersection.
        centers = clustered_unit_circles(3, seed=2)
        space = UnitCircleArcSpace(centers)
        active = space.active_set(range(3))
        assert active
        for c in active:
            assert len(c.defining) in (2, 3)

    @pytest.mark.parametrize("n,seed", [(5, 3), (8, 4), (12, 5)])
    def test_boundary_is_closed_cycle(self, n, seed):
        """Walking arcs by their cut circles must traverse one closed
        cycle covering every active arc."""
        centers = clustered_unit_circles(n, seed=seed)
        space = UnitCircleArcSpace(centers)
        active = list(space.active_set(range(n)))
        if not active:
            pytest.skip("empty boundary for this seed")
        # Each arc ends where exactly one other arc begins: the arc on
        # the cutting circle.
        starts = {(c.tag[0], c.tag[1]) for c in active}  # (owner, cut_start)
        ends = {(c.tag[2], c.tag[0]) for c in active}    # next arc's (owner, cut_start)
        assert starts == ends

    def test_multiplicity_within_bound(self):
        for seed in range(8):
            centers = clustered_unit_circles(10, seed=seed)
            space = UnitCircleArcSpace(centers)
            active = space.active_set(range(10))
            by_defining: dict = {}
            for c in active:
                by_defining.setdefault(c.defining, set()).add(c.tag)
            assert all(len(tags) <= space.multiplicity for tags in by_defining.values())


@pytest.mark.parametrize("n,seed", [(6, 1), (7, 2), (8, 3), (9, 4)])
def test_two_support(n, seed):
    centers = clustered_unit_circles(n, seed=seed)
    space = UnitCircleArcSpace(centers)
    report = check_k_support(space, range(n))
    assert report.ok, report.failures
    assert report.max_support_size() <= 2


class TestPropertyBased:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(st.integers(0, 5000), st.integers(4, 8))
    @settings(max_examples=15, deadline=None)
    def test_two_support_random_instances(self, seed, n):
        centers = clustered_unit_circles(n, seed=seed)
        space = UnitCircleArcSpace(centers)
        report = check_k_support(space, range(n))
        assert report.ok, report.failures

    @given(st.integers(0, 5000), st.integers(4, 10))
    @settings(max_examples=20, deadline=None)
    def test_incremental_matches_brute_force(self, seed, n):
        from repro.apps import incremental_disk_intersection

        centers = clustered_unit_circles(n, seed=seed)
        res = incremental_disk_intersection(centers, seed=seed + 1)
        space = UnitCircleArcSpace(centers)
        got = {(a.owner, a.cut_start, a.cut_end) for a in res.boundary()}
        want = {c.tag for c in space.active_set(range(n))}
        assert got == want
