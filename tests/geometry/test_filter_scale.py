"""The filter_scale contract: widening the batched error envelope is
*semantically invisible*.

Any ``scale >= 1`` may only move entries from the float-certain path to
the exact fallback -- the fallback decides the same question exactly,
so every sign, mask, and hull stays bit-identical; only the fallback
*counter* may grow, and it grows monotonically in the scale.  A scale
below 1 would shrink the envelope under its soundness proof (the bound
``repro fpcheck`` certifies statically, rule RPRFP004) and is rejected
outright.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import uniform_ball
from repro.geometry.kernels import (
    KERNEL_STATS,
    batch_planes,
    filter_scale,
    orient_batch,
)
from repro.hull.soa import SoAHullEngine

SCALES = [1.0, 4.0, 64.0, 1e4, 1e8, 1e12]


def _graded_block(d: int, seed: int = 0):
    """Simplices plus queries whose margins span many decades, so each
    widening of the envelope converts a fresh batch of entries from
    float-certain to exact-fallback."""
    rng = np.random.default_rng(seed)
    sims = rng.standard_normal((5, d, d))
    normals, offsets, _, _ = batch_planes(sims)
    qs = [rng.standard_normal(d) for _ in range(3)]
    for k in range(1, 15):
        f = k % sims.shape[0]
        n = normals[f]
        nn = float(np.sqrt(n @ n))
        if nn == 0.0:
            continue
        # A point at (signed) distance ~1e-k/3 off plane f.
        base = sims[f, 0]
        t = (-1.0) ** k * 10.0 ** (-(k / 3.0))
        qs.append(base + t * n / nn + rng.standard_normal(d) * 1e-18)
    return sims, np.stack(qs)


def _signs_and_fallbacks(sims, qs, scale):
    before = KERNEL_STATS.fallbacks
    with filter_scale(scale):
        signs = orient_batch(sims, qs)
    return signs, KERNEL_STATS.fallbacks - before


class TestFilterScale:
    def test_scale_below_one_rejected(self):
        with pytest.raises(ValueError):
            with filter_scale(0.5):
                pass  # pragma: no cover - must raise before entering

    @pytest.mark.parametrize("d", [2, 3])
    def test_signs_invariant_fallbacks_monotone(self, d):
        sims, qs = _graded_block(d, seed=d)
        ref_signs, fallbacks = None, []
        for scale in SCALES:
            signs, fb = _signs_and_fallbacks(sims, qs, scale)
            if ref_signs is None:
                ref_signs = signs
            else:
                # Envelope-only widening: every decision identical.
                assert np.array_equal(signs, ref_signs), scale
            fallbacks.append(fb)
        assert fallbacks == sorted(fallbacks), fallbacks
        # The graded queries guarantee the widening actually bites.
        assert fallbacks[-1] > fallbacks[0]
        assert fallbacks[-1] <= ref_signs.size

    @pytest.mark.parametrize("d", [2, 3])
    def test_hull_bit_identical_under_scale(self, d):
        pts = uniform_ball(70, d, seed=17)
        order = np.random.default_rng(5).permutation(70)
        runs = []
        fallbacks = []
        for scale in [1.0, 1e6]:
            before = KERNEL_STATS.fallbacks
            with filter_scale(scale):
                eng = SoAHullEngine(pts, order=order.copy())
                while eng.step_round():
                    pass
                runs.append(eng.finish())
            fallbacks.append(KERNEL_STATS.fallbacks - before)
        assert runs[0].facet_keys() == runs[1].facet_keys()
        assert fallbacks[1] >= fallbacks[0]
