"""Simulation of Simplicity: the symbolic perturbation layer."""

import numpy as np
import pytest

from repro.geometry import STATS, orient_exact
from repro.geometry.perturb import (
    merge_coplanar_facets,
    orient_sos,
    orient_sos_combo,
    sos_active,
    sos_exponent,
    sos_mode,
)


class TestExponents:
    def test_distinct_powers_of_two(self):
        # Every (index, coord) pair gets a distinct power of two, so no
        # subset of perturbation monomials can cancel.
        seen = set()
        for i in range(6):
            for j in range(3):
                e = sos_exponent(i, j, 3)
                assert e == 1 << (i * 3 + j)
                assert e not in seen
                seen.add(e)

    def test_lower_rank_larger_perturbation(self):
        # epsilon^small dominates epsilon^large as eps -> 0+: rank 0
        # moves "more" than rank 1, which is what makes the tie-break
        # deterministic in insertion order.
        assert sos_exponent(0, 0, 2) < sos_exponent(1, 0, 2)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            sos_exponent(-1, 0, 2)
        with pytest.raises(ValueError):
            sos_exponent(0, 2, 2)


class TestOrientSos:
    def test_matches_exact_when_nondegenerate(self):
        simplex = np.array([[0.0, 0.0], [1.0, 0.0]])
        q = np.array([0.5, 1.0])
        assert orient_sos(simplex, (0, 1), q, 2) == orient_exact(simplex, q)

    def test_collinear_breaks_nonzero(self):
        simplex = np.array([[0.0, 0.0], [1.0, 0.0]])
        q = np.array([2.0, 0.0])
        assert orient_exact(simplex, q) == 0
        s = orient_sos(simplex, (0, 1), q, 2)
        assert s in (-1, 1)

    def test_deterministic(self):
        simplex = np.array([[0.0, 0.0], [1.0, 0.0]])
        q = np.array([2.0, 0.0])
        first = orient_sos(simplex, (0, 1), q, 2)
        assert all(
            orient_sos(simplex, (0, 1), q, 2) == first for _ in range(5)
        )

    def test_row_swap_flips_sign(self):
        simplex = np.array([[0.0, 0.0], [1.0, 0.0]])
        q = np.array([2.0, 0.0])
        s = orient_sos(simplex, (0, 1), q, 2)
        swapped = orient_sos(simplex[::-1].copy(), (1, 0), q, 2)
        assert swapped == -s

    def test_coincident_points_resolved_by_rank(self):
        # All-equal points: float geometry is a single point, yet every
        # sign is resolved -- purely by the symbolic part.
        p = np.array([1.5, -2.5])
        s = orient_sos(np.array([p, p]), (0, 1), p, 2)
        assert s in (-1, 1)

    def test_repeated_index_rejected(self):
        simplex = np.array([[0.0, 0.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            orient_sos(simplex, (0, 1), simplex[0], 0)

    def test_counts_sos_calls(self):
        STATS.reset()
        simplex = np.array([[0.0, 0.0], [1.0, 0.0]])
        orient_sos(simplex, (0, 1), np.array([2.0, 0.0]), 2)
        assert STATS.sos_calls >= 1


class TestOrientSosCombo:
    def test_on_plane_combo_resolved(self):
        # Centroid of three collinear points lies exactly on the line
        # through the first two; the combination's epsilon terms decide.
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [4.0, 0.0]])
        s = orient_sos_combo(pts[:2], (0, 1), pts, (0, 1, 2))
        assert s in (-1, 1)

    def test_matches_exact_when_off_plane(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [1.0, 3.0]])
        s = orient_sos_combo(pts[:2], (0, 1), pts, (0, 1, 2))
        centroid = pts.mean(axis=0)
        assert s == orient_exact(pts[:2], centroid)

    def test_requires_outside_index(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0]])
        with pytest.raises(ValueError):
            orient_sos_combo(pts, (0, 1), pts, (0, 1))


class TestSosMode:
    def test_inactive_by_default(self):
        assert not sos_active()

    def test_nesting_and_restore(self):
        with sos_mode():
            assert sos_active()
            with sos_mode():
                assert sos_active()
            assert sos_active()
        assert not sos_active()


class TestMergeCoplanarFacets:
    def test_cube_merges_to_six_squares(self):
        from repro.hull import parallel_hull, validate_hull

        corners = np.array(
            [[float(x), float(y), float(z)]
             for x in (0, 1) for y in (0, 1) for z in (0, 1)]
        )
        with sos_mode():
            run = parallel_hull(corners, seed=0)
        validate_hull(run.facets, run.points)
        assert len(run.facets) == 12  # simplicial: each square split
        merged = [m for m in merge_coplanar_facets(run.facets, run.points)
                  if not m.degenerate]
        assert len(merged) == 6
        for m in merged:
            assert len(m.vertices) == 4

    def test_generic_hull_unchanged(self):
        from repro.geometry import uniform_ball
        from repro.hull import parallel_hull

        pts = uniform_ball(30, 3, seed=7)
        run = parallel_hull(pts, seed=1)
        merged = merge_coplanar_facets(run.facets, run.points)
        assert len(merged) == len(run.facets)
