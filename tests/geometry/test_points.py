"""Tests for the workload generators: shape, determinism, and the
geometric properties each regime is supposed to have."""

import numpy as np
import pytest

from repro.geometry import points as gen


class TestDeterminism:
    @pytest.mark.parametrize(
        "fn,args",
        [
            (gen.uniform_ball, (50, 3)),
            (gen.uniform_cube, (50, 3)),
            (gen.on_sphere, (50, 3)),
            (gen.gaussian, (50, 3)),
            (gen.collinear_cluster, (50, 3)),
            (gen.anisotropic, (50, 3)),
        ],
    )
    def test_same_seed_same_points(self, fn, args):
        assert np.array_equal(fn(*args, seed=7), fn(*args, seed=7))
        assert not np.array_equal(fn(*args, seed=7), fn(*args, seed=8))

    def test_on_circle_and_paraboloid(self):
        assert np.array_equal(gen.on_circle(20, seed=3), gen.on_circle(20, seed=3))
        assert np.array_equal(gen.on_paraboloid(20, seed=3), gen.on_paraboloid(20, seed=3))


class TestGeometry:
    def test_ball_points_inside_unit_ball(self):
        pts = gen.uniform_ball(500, 4, seed=1)
        assert pts.shape == (500, 4)
        assert (np.linalg.norm(pts, axis=1) <= 1.0 + 1e-12).all()

    def test_sphere_points_on_unit_sphere(self):
        pts = gen.on_sphere(500, 3, seed=2)
        assert np.allclose(np.linalg.norm(pts, axis=1), 1.0)

    def test_cube_points_in_box(self):
        pts = gen.uniform_cube(500, 5, seed=3)
        assert (np.abs(pts) <= 1.0).all()

    def test_paraboloid_lift_is_exact(self):
        pts = gen.on_paraboloid(100, seed=4)
        assert np.allclose(pts[:, 2], pts[:, 0] ** 2 + pts[:, 1] ** 2)

    def test_circle_jitter_stays_inside(self):
        pts = gen.on_circle(200, seed=5, jitter=0.3)
        r = np.linalg.norm(pts, axis=1)
        assert (r <= 1.0 + 1e-12).all() and (r >= 0.7 - 1e-12).all()

    def test_integer_grid_contents(self):
        pts = gen.integer_grid(3, 2, shuffle=False)
        assert pts.shape == (9, 2)
        assert {tuple(p) for p in pts} == {(float(i), float(j)) for i in range(3) for j in range(3)}

    def test_integer_grid_shuffle_preserves_set(self):
        a = gen.integer_grid(3, 3, seed=1, shuffle=True)
        b = gen.integer_grid(3, 3, shuffle=False)
        assert {tuple(p) for p in a} == {tuple(p) for p in b}

    def test_collinear_cluster_has_collinear_run(self):
        pts = gen.collinear_cluster(40, 2, seed=6, frac=0.5)
        assert pts.shape == (40, 2)

    def test_coplanar_3d_shape(self):
        pts = gen.coplanar_3d(30, seed=7)
        assert pts.shape == (30, 3)

    def test_anisotropic_is_stretched(self):
        pts = gen.anisotropic(500, 2, seed=8, ratio=100.0)
        assert pts[:, 0].std() > 20 * pts[:, 1].std()


class TestFigure1:
    def test_labels_align(self):
        pts, labels = gen.figure1_points()
        assert pts.shape == (10, 2)
        assert labels == ["u", "v", "w", "x", "y", "z", "t", "a", "b", "c"]

    def test_initial_seven_in_convex_position(self):
        from repro.baselines import monotone_chain

        pts, _ = gen.figure1_points()
        assert sorted(monotone_chain(pts[:7])) == list(range(7))

    def test_abc_inside_initial_hull_union_region(self):
        # a, b, c extend the hull below; u stays a vertex of the final hull.
        from repro.baselines import monotone_chain

        pts, labels = gen.figure1_points()
        final = {labels[i] for i in monotone_chain(pts)}
        assert final == {"u", "v", "c", "z", "t"}
