"""Unit tests for the noisy predicate oracle (geometry.noisy)."""

import numpy as np
import pytest

from repro.geometry.noisy import ADAPTIVE, NoisyKernel, parse_votes


class TestConstruction:
    def test_p_range_validated(self):
        NoisyKernel(p=0.0)
        NoisyKernel(p=0.499)
        with pytest.raises(ValueError):
            NoisyKernel(p=0.5)  # majority vote carries no signal at 1/2
        with pytest.raises(ValueError):
            NoisyKernel(p=-0.01)

    def test_votes_validated(self):
        NoisyKernel(p=0.1, votes=1)
        NoisyKernel(p=0.1, votes=7)
        NoisyKernel(p=0.1, votes=ADAPTIVE)
        with pytest.raises(ValueError):
            NoisyKernel(p=0.1, votes=0)
        with pytest.raises(ValueError):
            NoisyKernel(p=0.1, votes=2)  # even: majority can tie
        with pytest.raises(ValueError):
            NoisyKernel(p=0.1, votes="several")

    def test_base_validated(self):
        NoisyKernel(p=0.1, base="scalar")
        NoisyKernel(p=0.1, base="batch")
        with pytest.raises(ValueError):
            NoisyKernel(p=0.1, base="gpu")

    def test_confidence_and_max_votes_validated(self):
        with pytest.raises(ValueError):
            NoisyKernel(p=0.1, confidence=0.0)
        with pytest.raises(ValueError):
            NoisyKernel(p=0.1, confidence=0.7)
        with pytest.raises(ValueError):
            NoisyKernel(p=0.1, max_votes=0)
        # Even caps are rounded up to odd so the capped vote cannot tie.
        assert NoisyKernel(p=0.1, max_votes=10).max_votes == 11

    def test_parse_votes(self):
        assert parse_votes("3") == 3
        assert parse_votes(5) == 5
        assert parse_votes("adaptive") == ADAPTIVE
        assert parse_votes(" Adaptive ") == ADAPTIVE
        with pytest.raises(ValueError):
            parse_votes("three")


class TestFlipModel:
    def test_deterministic_per_seed(self):
        a = NoisyKernel(p=0.3, seed=9)
        b = NoisyKernel(p=0.3, seed=9)
        sites = [f"f:{i}:{j}" for i in range(20) for j in range(5)]
        assert [a.flip_fires(s, 0) for s in sites] == [
            b.flip_fires(s, 0) for s in sites
        ]

    def test_flip_rate_near_p(self):
        nk = NoisyKernel(p=0.1, seed=4)
        fires = sum(nk.flip_fires(f"s{i}", 0) for i in range(2000))
        assert 140 <= fires <= 260  # Binomial(2000, 0.1), ~4.5 sigma

    def test_seed_and_epoch_change_flips(self):
        sites = [f"s{i}" for i in range(200)]
        base = [NoisyKernel(p=0.3, seed=1).flip_fires(s, 0) for s in sites]
        other_seed = [NoisyKernel(p=0.3, seed=2).flip_fires(s, 0) for s in sites]
        other_epoch = [
            NoisyKernel(p=0.3, seed=1, epoch=1).flip_fires(s, 0) for s in sites
        ]
        assert base != other_seed
        assert base != other_epoch

    def test_p_zero_never_lies(self):
        nk = NoisyKernel(p=0.0)
        assert not any(nk.flip_fires(f"s{i}", j) for i in range(50) for j in range(3))
        assert nk.decide("s", True) is True
        assert nk.decide("s", False) is False
        assert nk.decisions == 0  # the p=0 fast path is counter-free


class TestMajorityVote:
    def test_votes_reduce_error(self):
        # Residual error must fall sharply with k: Pr[majority wrong]
        # at p=0.2 is 0.2 (k=1), ~0.104 (k=3), ~0.058 (k=5).
        truth_sites = [f"q{i}" for i in range(3000)]

        def residual(votes: int) -> float:
            nk = NoisyKernel(p=0.2, votes=votes, seed=11)
            wrong = sum(nk.decide(s, True) is False for s in truth_sites)
            return wrong / len(truth_sites)

        e1, e3, e5 = residual(1), residual(3), residual(5)
        assert 0.17 < e1 < 0.23
        assert 0.08 < e3 < 0.13
        assert 0.03 < e5 < 0.08
        assert e5 < e3 < e1

    def test_vote_counters(self):
        nk = NoisyKernel(p=0.2, votes=3, seed=1)
        for i in range(100):
            nk.decide(f"s{i}", bool(i % 2))
        assert nk.decisions == 100
        assert nk.votes_cast == 300
        assert nk.vote_overhead() == 3.0
        assert 0 < nk.flips < 120  # ~0.2 * 300
        snap = nk.snapshot()
        assert snap["noisy_decisions"] == 100
        assert snap["noise_votes"] == 3

    def test_repetitions_draw_independent_errors(self):
        # With votes=3 at p=0.45 the three observations of one decision
        # must not be copies: if they replayed one coin, every decision
        # would be unanimous and the residual error would stay ~0.45
        # instead of dropping toward ~0.42; more tellingly, vote-level
        # flips would be a multiple of 3 per decision.  Count decisions
        # whose flip increment was not 0 or 3.
        nk = NoisyKernel(p=0.45, votes=3, seed=2)
        mixed = 0
        last = 0
        for i in range(400):
            nk.decide(f"s{i}", True)
            inc = nk.flips - last
            last = nk.flips
            if inc not in (0, 3):
                mixed += 1
        assert mixed > 200  # ~3/4 of decisions mix lies and truths


class TestAdaptive:
    def test_lead_formula(self):
        # (p/(1-p))^L <= confidence: p=0.05 -> ratio ~0.0526, L=3 at 1e-3.
        assert NoisyKernel(p=0.05, confidence=1e-3).lead_needed() == 3
        assert NoisyKernel(p=0.1, confidence=1e-3).lead_needed() == 4
        assert NoisyKernel(p=0.0).lead_needed() == 1

    def test_easy_decisions_stay_cheap(self):
        # At tiny p almost every adaptive decision stops after L votes.
        nk = NoisyKernel(p=0.001, votes=ADAPTIVE, seed=3)
        for i in range(200):
            nk.decide(f"s{i}", True)
        lead = nk.lead_needed()
        assert nk.vote_overhead() < lead + 0.5

    def test_cap_respected(self):
        nk = NoisyKernel(p=0.45, votes=ADAPTIVE, seed=3, max_votes=7)
        for i in range(300):
            nk.decide(f"s{i}", True)
        assert nk.snapshot()["noisy_peak_votes"] <= 7

    def test_adaptive_beats_fixed_error_at_same_p(self):
        sites = [f"s{i}" for i in range(2000)]
        fixed = NoisyKernel(p=0.2, votes=1, seed=5)
        adaptive = NoisyKernel(p=0.2, votes=ADAPTIVE, seed=5)
        fixed_wrong = sum(fixed.decide(s, True) is False for s in sites)
        adaptive_wrong = sum(adaptive.decide(s, True) is False for s in sites)
        assert adaptive_wrong < fixed_wrong / 5


class TestLadderPlumbing:
    def test_spawn_preserves_model(self):
        nk = NoisyKernel(p=0.05, votes=3, seed=8, base="batch",
                         confidence=1e-4, max_votes=21)
        child = nk.spawn(votes=7, epoch=4)
        assert (child.p, child.seed, child.base) == (0.05, 8, "batch")
        assert (child.votes, child.epoch) == (7, 4)
        assert (child.confidence, child.max_votes) == (1e-4, 21)
        assert child.decisions == 0  # fresh counters

    def test_rung_label_excludes_epoch(self):
        nk = NoisyKernel(p=0.05, votes=3, seed=8)
        assert nk.rung_label() == "noisy[p=0.05,votes=3]"
        assert nk.spawn(epoch=9).rung_label() == nk.rung_label()
        assert NoisyKernel(p=0.1, votes=ADAPTIVE).rung_label() == (
            "noisy[p=0.1,votes=adaptive]"
        )

    def test_escalation_levels(self):
        assert NoisyKernel(p=0.1, votes=1).escalation_levels() == [1, 3, ADAPTIVE]
        assert NoisyKernel(p=0.1, votes=3).escalation_levels() == [3, 7, ADAPTIVE]
        assert NoisyKernel(p=0.1, votes=ADAPTIVE).escalation_levels() == [ADAPTIVE]


class TestNoisyMasks:
    def _block(self):
        idx = [(0, 1, 2), (1, 2, 3)]
        cands = [np.array([4, 5, 6], dtype=np.int64),
                 np.array([4, 7], dtype=np.int64)]
        masks = [np.array([True, False, True]), np.array([False, False])]
        return idx, cands, masks

    def test_p_zero_returns_inputs_unchanged(self):
        idx, cands, masks = self._block()
        out = NoisyKernel(p=0.0).noisy_masks(idx, cands, masks)
        assert out[0] is masks[0] and out[1] is masks[1]

    def test_inputs_never_mutated(self):
        # The sign cache may hold the input arrays: noise must copy.
        idx, cands, masks = self._block()
        originals = [m.copy() for m in masks]
        NoisyKernel(p=0.49, seed=1).noisy_masks(idx, cands, masks)
        for m, o in zip(masks, originals):
            assert np.array_equal(m, o)

    def test_deterministic_and_site_keyed(self):
        idx, cands, masks = self._block()
        a = NoisyKernel(p=0.3, seed=2).noisy_masks(idx, cands, masks)
        b = NoisyKernel(p=0.3, seed=2).noisy_masks(idx, cands, masks)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)
        # Same (facet, rank) site, different seed -> different block
        # somewhere across a few hundred coins.
        big_cands = [np.arange(10, 400, dtype=np.int64)]
        big_masks = [np.ones(390, dtype=bool)]
        c = NoisyKernel(p=0.3, seed=2).noisy_masks([idx[0]], big_cands, big_masks)
        d = NoisyKernel(p=0.3, seed=3).noisy_masks([idx[0]], big_cands, big_masks)
        assert not np.array_equal(c[0], d[0])

    def test_empty_blocks_pass_through(self):
        idx = [(0, 1, 2)]
        cands = [np.zeros(0, dtype=np.int64)]
        masks = [np.zeros(0, dtype=bool)]
        out = NoisyKernel(p=0.4, seed=1).noisy_masks(idx, cands, masks)
        assert out[0].size == 0
