"""Tests for oriented hyperplanes and batch visibility."""

import numpy as np
import pytest

from repro.geometry.hyperplane import Hyperplane
from repro.geometry.predicates import orient_exact


class TestThrough:
    def test_orientation_against_reference(self):
        plane = Hyperplane.through(np.array([[0.0, 0], [1, 0]]), below=[0.5, -1.0])
        assert plane.side([0.5, -1.0]) == -1
        assert plane.side([0.5, 1.0]) == 1

    def test_reference_on_plane_raises(self):
        with pytest.raises(ValueError):
            Hyperplane.through(np.array([[0.0, 0], [1, 0]]), below=[0.5, 0.0])

    def test_3d(self):
        pts = np.array([[0.0, 0, 0], [1, 0, 0], [0, 1, 0]])
        plane = Hyperplane.through(pts, below=[0, 0, -1.0])
        assert plane.side([0.3, 0.3, 0.5]) == 1
        assert plane.side([0.3, 0.3, -0.5]) == -1
        assert plane.side([0.3, 0.3, 0.0]) == 0

    def test_high_dim(self):
        pts = np.eye(5)
        plane = Hyperplane.through(pts, below=np.zeros(5))
        assert plane.side(np.full(5, 1.0)) == 1
        # (0.5, 0.5, 0, 0, 0) sums to exactly 1: on the hyperplane.
        # (np.full(0.2) would NOT be: float 0.2 is not 1/5.)
        assert plane.side(np.array([0.5, 0.5, 0.0, 0.0, 0.0])) == 0


class TestSide:
    def test_defining_points_are_on_plane(self, rng):
        for _ in range(50):
            pts = rng.standard_normal((3, 3))
            plane = Hyperplane.through(pts, below=pts.mean(axis=0) + rng.standard_normal(3))
            for p in pts:
                assert plane.side(p) == 0

    def test_scalar_matches_exact(self, rng):
        for _ in range(100):
            pts = rng.standard_normal((2, 2)) * 10
            below = rng.standard_normal(2) * 10
            if orient_exact(pts, below) == 0:
                continue
            plane = Hyperplane.through(pts, below=below)
            q = rng.standard_normal(2) * 10
            probe = pts[0] + plane.normal
            ref = orient_exact(pts, q)
            probe_ref = orient_exact(pts, probe)
            expected = ref if probe_ref > 0 else -ref
            assert plane.side(q) == expected


class TestVisibleMask:
    def test_empty_batch(self):
        plane = Hyperplane.through(np.array([[0.0, 0], [1, 0]]), below=[0.5, -1.0])
        assert plane.visible_mask(np.zeros((0, 2))).shape == (0,)

    def test_mask_matches_scalar(self, rng):
        pts = rng.standard_normal((2, 2))
        plane = Hyperplane.through(pts, below=[0, -10.0])
        batch = rng.standard_normal((200, 2)) * 3
        mask = plane.visible_mask(batch)
        for q, m in zip(batch, mask):
            assert m == (plane.side(q) > 0)

    def test_on_plane_points_not_visible(self):
        plane = Hyperplane.through(np.array([[0.0, 0], [2, 0]]), below=[1, -1.0])
        batch = np.array([[0.5, 0.0], [1.5, 0.0], [7.0, 0.0], [1.0, 1e-3]])
        mask = plane.visible_mask(batch)
        assert mask.tolist() == [False, False, False, True]

    def test_degenerate_margins_resolved_exactly(self):
        # Integer-coordinate plane with many exactly-on-plane points.
        plane = Hyperplane.through(
            np.array([[0.0, 0, 0], [4, 0, 0], [0, 4, 0]]), below=[1, 1, -1.0]
        )
        batch = np.array(
            [[1.0, 1, 0], [2, 2, 0], [1, 1, 1e-20], [1, 1, -1e-20], [3, 3, 5]]
        )
        mask = plane.visible_mask(batch)
        assert mask.tolist() == [False, False, True, False, True]
