"""Tests for the Facet/Ridge value types."""

import numpy as np

from repro.geometry.hyperplane import Hyperplane
from repro.geometry.simplex import Facet, facet_ridges


def _facet(fid, indices, conflicts=()):
    d = len(indices)
    pts = np.eye(d) + 0.01 * np.arange(d)[:, None]
    plane = Hyperplane.through(pts, below=np.zeros(d))
    return Facet(
        fid=fid,
        indices=tuple(sorted(indices)),
        plane=plane,
        conflicts=np.array(sorted(conflicts), dtype=np.int64),
    )


class TestRidges:
    def test_2d_facet_has_two_vertex_ridges(self):
        assert set(facet_ridges((3, 7))) == {frozenset({3}), frozenset({7})}

    def test_3d_facet_has_three_edge_ridges(self):
        ridges = set(facet_ridges((1, 2, 5)))
        assert ridges == {frozenset({1, 2}), frozenset({1, 5}), frozenset({2, 5})}

    def test_count_equals_dimension(self):
        for d in range(2, 7):
            assert len(list(facet_ridges(tuple(range(d))))) == d


class TestFacet:
    def test_identity_by_fid(self):
        a = _facet(1, (0, 1))
        b = _facet(1, (2, 3))
        c = _facet(2, (0, 1))
        assert a == b  # same fid
        assert a != c
        assert hash(a) == hash(b)

    def test_pivot_is_min_conflict(self):
        f = _facet(0, (0, 1), conflicts=(9, 4, 7))
        assert f.pivot == 4

    def test_empty_conflicts_pivot_sentinel(self):
        f = _facet(0, (0, 1))
        assert f.pivot == -1

    def test_key_is_geometric(self):
        a = _facet(1, (0, 1))
        b = _facet(2, (0, 1))
        assert a.key() == b.key()

    def test_alive_default(self):
        assert _facet(0, (0, 1)).alive
