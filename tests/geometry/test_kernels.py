"""Unit tests for the batched predicate kernels.

The differential suite (``tests/differential/``) pins kernel-vs-scalar
agreement across executors and the degenerate corpus; these tests cover
the kernel machinery itself: the filter knob, the counters, the sign
cache, and the FacetFactory batch path.
"""

import numpy as np
import pytest

from repro.geometry import uniform_ball
from repro.geometry.hyperplane import exact_mode
from repro.geometry.kernels import (
    KERNEL_STATS,
    BatchKernel,
    KernelStats,
    SignCache,
    batch_planes,
    filter_scale,
    orient_batch,
)
from repro.geometry.predicates import orient
from repro.hull.common import Counters, FacetFactory
from repro.runtime.workspan import WorkSpanTracker


def _random_block(d, n_simplices, n_queries, seed):
    rng = np.random.default_rng(seed)
    simplices = rng.standard_normal((n_simplices, d, d))
    queries = rng.standard_normal((n_queries, d))
    return simplices, queries


@pytest.mark.parametrize("d", [2, 3, 4])
def test_orient_batch_matches_scalar(d):
    simplices, queries = _random_block(d, 12, 30, seed=100 + d)
    got = orient_batch(simplices, queries)
    for f in range(simplices.shape[0]):
        for q in range(queries.shape[0]):
            assert got[f, q] == orient(simplices[f], queries[q]), (d, f, q)


@pytest.mark.parametrize("d", [2, 3])
def test_orient_batch_exact_ties(d):
    """Queries lying exactly on the plane must come back 0 (decided by
    the exact fallback, not float luck)."""
    simplices, _ = _random_block(d, 6, 1, seed=7 + d)
    # Each simplex's own vertices lie on its plane.
    queries = simplices[:, 0, :].copy()
    got = orient_batch(simplices, queries)
    for f in range(simplices.shape[0]):
        assert got[f, f] == 0
    assert KERNEL_STATS.fallbacks > 0


def test_batch_planes_rejects_bad_shape():
    with pytest.raises(ValueError, match="F, d, d"):
        batch_planes(np.zeros((3, 2)))
    with pytest.raises(ValueError, match="F, d, d"):
        batch_planes(np.zeros((3, 2, 4)))


def test_filter_scale_rejects_below_one():
    with pytest.raises(ValueError, match="must be >= 1"):
        with filter_scale(0.5):
            pass
    with pytest.raises(ValueError, match="must be >= 1"):
        with filter_scale(float("nan")):
            pass


def test_filter_scale_widens_fallbacks_not_signs():
    d = 3
    simplices, queries = _random_block(d, 10, 40, seed=42)
    base = orient_batch(simplices, queries)
    base_falls = KERNEL_STATS.fallbacks
    with filter_scale(1e12):
        wide = orient_batch(simplices, queries)
    assert np.array_equal(base, wide)
    assert KERNEL_STATS.fallbacks - base_falls > base_falls


def test_filter_scale_restored_after_block():
    simplices, queries = _random_block(2, 4, 8, seed=1)
    with filter_scale(1e12):
        pass
    before = KERNEL_STATS.fallbacks
    orient_batch(simplices, queries)
    # Generic position + unit scale: no fallbacks expected.
    assert KERNEL_STATS.fallbacks == before


def test_kernel_stats_counts_and_reset():
    st = KernelStats()
    st.count_sweep(signs=10, fallbacks=3)
    st.count_sweep(signs=5, fallbacks=0)
    st.count_cache(hits=2, misses=8)
    assert st.batched_sweeps == 2
    assert st.batched_signs == 15
    assert st.fallbacks == 3
    assert st.fallback_rate() == 3 / 15
    snap = st.snapshot()
    assert snap == {
        "batched_sweeps": 2,
        "batched_signs": 15,
        "fallbacks": 3,
        "cache_hits": 2,
        "cache_misses": 8,
    }
    st.reset()
    assert st.snapshot() == {k: 0 for k in snap}


def test_sign_cache_partial_intersection():
    cache = SignCache()
    idx = (3, 7)
    cands = np.array([1, 4, 6, 9], dtype=np.int64)
    vis = np.array([True, False, True, False])
    cache.store(idx, cands, vis)
    query = np.array([0, 4, 6, 10], dtype=np.int64)
    known, got = cache.lookup(idx, query)
    assert known.tolist() == [False, True, True, False]
    assert got[1] == False and got[2] == True  # noqa: E712
    assert cache.hits.value == 2
    assert cache.misses.value == 2
    # Unknown facet: everything misses.
    known2, _ = cache.lookup((0, 1), query)
    assert not known2.any()
    assert cache.snapshot()["entries"] == 1


def _factory(pts, kernel):
    d = pts.shape[1]
    interior = pts[: d + 1].mean(axis=0)
    return FacetFactory(pts, interior, Counters(), kernel=kernel)


@pytest.mark.parametrize("d", [2, 3])
def test_make_batch_matches_scalar_factory(d):
    pts = uniform_ball(80, d, seed=d)
    fs = _factory(pts, "scalar")
    fb = _factory(pts, "batch")
    cands = np.arange(pts.shape[0], dtype=np.int64)
    specs = [
        (tuple(range(k, k + d)), cands.copy())
        for k in range(0, 20, 2)
    ]
    scalar_facets = fs.make_batch(specs)
    batch_facets = fb.make_batch(specs)
    for a, b in zip(scalar_facets, batch_facets):
        assert a.fid == b.fid
        assert a.indices == b.indices
        assert np.array_equal(a.conflicts, b.conflicts)
    assert fs.counters.visibility_tests == fb.counters.visibility_tests
    assert fs.counters.facets_created == fb.counters.facets_created


def test_make_batch_empty_candidates():
    pts = uniform_ball(10, 2, seed=3)
    fb = _factory(pts, "batch")
    facets = fb.make_batch([((0, 1), np.zeros(0, dtype=np.int64))])
    assert facets[0].conflicts.size == 0


def test_factory_cache_hits_on_recreation():
    """Re-making a facet with the same defining indices (the chaos
    rollback scenario) answers its visibility from the cache."""
    pts = uniform_ball(60, 2, seed=9)
    fb = _factory(pts, "batch")
    cands = np.arange(60, dtype=np.int64)
    first = fb.make((4, 5), cands.copy())
    assert fb.batch_kernel.cache.hits.value == 0
    second = fb.make((4, 5), cands.copy())
    assert fb.batch_kernel.cache.hits.value == first.conflicts.size + (
        58 - first.conflicts.size
    )
    assert np.array_equal(first.conflicts, second.conflicts)
    snap = fb.kernel_snapshot()
    assert snap["kernel"] == "batch"
    assert snap["cache_hits"] > 0


def test_always_exact_planes_route_to_scalar_ladder():
    """Under forced-exact planes the float normal is untrustworthy; the
    batch kernel must delegate whole blocks to the exact path and still
    agree with the scalar factory."""
    pts = uniform_ball(40, 2, seed=11)
    with exact_mode():
        fs = _factory(pts, "scalar")
        fb = _factory(pts, "batch")
        cands = np.arange(40, dtype=np.int64)
        a = fs.make((0, 1), cands.copy())
        b = fb.make((0, 1), cands.copy())
    assert np.array_equal(a.conflicts, b.conflicts)
    snap = fb.batch_kernel.snapshot()
    assert snap["fallbacks"] == snap["batched_signs"] > 0


def test_factory_rejects_unknown_kernel():
    pts = uniform_ball(10, 2, seed=0)
    with pytest.raises(ValueError, match="unknown kernel"):
        _factory(pts, "gpu")


def test_add_batched_sweep_scalar_equivalent_work():
    """One sweep over blocks [5, 9, 2] costs the same work as the three
    scalar tasks it replaces, and O(log widest) span."""
    scalar = WorkSpanTracker()
    for b in (5, 9, 2):
        scalar.add_task(cost=b, span_cost=4)  # span credit irrelevant to work
    batched = WorkSpanTracker()
    tid = batched.add_batched_sweep([5, 9, 2])
    assert batched.work == scalar.work == 16
    assert batched._tasks[tid].span_cost == int(np.log2(9 + 2))
    # Degenerate sweeps still cost at least one unit.
    empty = WorkSpanTracker()
    empty.add_batched_sweep([])
    assert empty.work == 1


def test_batch_kernel_without_cache():
    pts = uniform_ball(30, 2, seed=2)
    kern = BatchKernel(pts, cache=False)
    assert kern.cache is None
    assert kern.snapshot()["cache_entries"] == 0
