"""Unit and property tests for the small-matrix linear algebra kernel."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.linalg import (
    cofactor_normal,
    cofactor_normal_exact,
    det_exact,
    det_with_error_bound,
    sign_exact,
    solve_exact,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def square(n, elems=finite_floats):
    return st.lists(st.lists(elems, min_size=n, max_size=n), min_size=n, max_size=n)


class TestDetExact:
    def test_identity(self):
        assert det_exact([[1, 0], [0, 1]]) == 1
        assert det_exact([[1, 0, 0], [0, 1, 0], [0, 0, 1]]) == 1

    def test_empty_matrix_is_one(self):
        assert det_exact([]) == 1

    def test_known_2x2(self):
        assert det_exact([[1, 2], [3, 4]]) == -2

    def test_known_3x3(self):
        assert det_exact([[2, 0, 1], [1, 3, 2], [1, 1, 4]]) == 18

    def test_singular(self):
        assert det_exact([[1, 2], [2, 4]]) == 0

    def test_zero_pivot_requires_swap(self):
        # a[0][0] == 0 forces the row-swap branch of Bareiss.
        assert det_exact([[0, 1], [1, 0]]) == -1
        assert det_exact([[0, 1, 2], [1, 0, 3], [4, 5, 0]]) == 22

    def test_fractions_are_exact(self):
        rows = [[Fraction(1, 3), Fraction(1, 7)], [Fraction(2, 5), Fraction(3, 11)]]
        expect = Fraction(1, 3) * Fraction(3, 11) - Fraction(1, 7) * Fraction(2, 5)
        assert det_exact(rows) == expect

    def test_floats_converted_exactly(self):
        # 0.1 is not 1/10 in binary; the exact determinant must reflect
        # the *float* value, not the decimal literal.
        d = det_exact([[0.1, 0.0], [0.0, 1.0]])
        assert d == Fraction(0.1)
        assert d != Fraction(1, 10)

    @given(square(3, st.integers(min_value=-50, max_value=50)))
    @settings(max_examples=100, deadline=None)
    def test_matches_numpy_on_integers(self, rows):
        exact = det_exact(rows)
        approx = np.linalg.det(np.array(rows, dtype=np.float64))
        assert abs(float(exact) - approx) < 1e-6 * max(1.0, abs(float(exact)))

    @given(square(3, st.integers(min_value=-9, max_value=9)))
    @settings(max_examples=60, deadline=None)
    def test_row_swap_flips_sign(self, rows):
        d1 = det_exact(rows)
        swapped = [rows[1], rows[0], rows[2]]
        assert det_exact(swapped) == -d1

    @given(square(4, st.integers(min_value=-5, max_value=5)))
    @settings(max_examples=40, deadline=None)
    def test_transpose_invariance(self, rows):
        m = np.array(rows)
        assert det_exact(rows) == det_exact(m.T.tolist())


class TestDetWithErrorBound:
    def test_sizes_0_to_4(self):
        for n in range(5):
            m = np.eye(n)
            det, err = det_with_error_bound(m)
            assert det == pytest.approx(1.0)
            assert err >= 0.0

    @given(square(3))
    @settings(max_examples=100, deadline=None)
    def test_bound_contains_truth(self, rows):
        det, err = det_with_error_bound(np.array(rows))
        exact = float(det_exact(rows))
        assert abs(det - exact) <= err + 1e-12 * abs(exact)

    def test_near_singular_is_flagged_uncertain(self):
        # Rows differing by ~1 ulp: float det is noise, bound must cover 0.
        a = np.array([[1.0, 1.0], [1.0, 1.0 + 1e-16]])
        det, err = det_with_error_bound(a)
        assert abs(det) <= err


class TestSignExact:
    def test_signs(self):
        assert sign_exact([[2, 0], [0, 3]]) == 1
        assert sign_exact([[0, 1], [1, 0]]) == -1
        assert sign_exact([[1, 1], [1, 1]]) == 0


class TestCofactorNormal:
    def test_2d_rotation(self):
        n = cofactor_normal(np.array([[0.0, 0.0], [1.0, 0.0]]))
        # Perpendicular to the x-axis edge.
        assert n @ np.array([1.0, 0.0]) == pytest.approx(0.0)

    def test_3d_matches_cross_product(self):
        pts = np.array([[0.0, 0, 0], [1, 0, 0], [0, 1, 0]])
        n = cofactor_normal(pts)
        assert np.allclose(np.abs(n), [0, 0, 1])

    @given(square(4))
    @settings(max_examples=50, deadline=None)
    def test_orthogonal_to_all_edges_4d(self, rows):
        pts = np.array(rows)
        n = cofactor_normal(pts)
        scale = np.abs(pts).max() + 1.0
        for i in range(1, 4):
            assert abs(n @ (pts[i] - pts[0])) <= 1e-6 * scale**4

    def test_exact_agrees_with_float(self):
        pts = [[0, 0, 0], [2, 1, 0], [1, 3, 1]]
        nf = cofactor_normal(np.array(pts, dtype=float))
        ne = [float(x) for x in cofactor_normal_exact(pts)]
        assert np.allclose(nf, ne)

    def test_wrong_shape_raises(self):
        with pytest.raises(ValueError):
            cofactor_normal(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            cofactor_normal_exact([[0, 0, 0], [1, 1, 1]])


class TestSolveExact:
    def test_simple_system(self):
        x = solve_exact([[2, 0], [0, 4]], [4, 8])
        assert x == [Fraction(2), Fraction(2)]

    def test_requires_pivoting(self):
        x = solve_exact([[0, 1], [1, 0]], [5, 7])
        assert x == [Fraction(7), Fraction(5)]

    def test_singular_raises(self):
        with pytest.raises(ZeroDivisionError):
            solve_exact([[1, 2], [2, 4]], [1, 1])

    @given(
        st.lists(st.integers(-20, 20), min_size=4, max_size=4),
        st.lists(st.integers(-20, 20), min_size=2, max_size=2),
    )
    @settings(max_examples=60, deadline=None)
    def test_solution_satisfies_system(self, flat, rhs):
        rows = [flat[:2], flat[2:]]
        if det_exact(rows) == 0:
            return
        x = solve_exact(rows, rhs)
        for row, b in zip(rows, rhs):
            assert sum(Fraction(r) * xi for r, xi in zip(row, x)) == b
