"""The adversarial degenerate corpus: every family must be exactly as
degenerate as it claims (integer ties are exact in float64, near-ties
are genuinely nonzero), seeded, and correctly labelled."""

from fractions import Fraction

import numpy as np
import pytest

from repro.geometry.degenerate import CORPUS, corpus_case, corpus_names


def exact_affine_rank(pts: np.ndarray) -> int:
    """Rank of the affine span, computed in rational arithmetic."""
    rows = [
        [Fraction(float(x)) - Fraction(float(b)) for x, b in zip(p, pts[0])]
        for p in pts[1:]
    ]
    rank = 0
    n_rows = len(rows)
    n_cols = len(rows[0])
    for col in range(n_cols):
        pivot = next((i for i in range(rank, n_rows) if rows[i][col] != 0), None)
        if pivot is None:
            continue
        rows[rank], rows[pivot] = rows[pivot], rows[rank]
        inv = 1 / rows[rank][col]
        for i in range(rank + 1, n_rows):
            f = rows[i][col] * inv
            if f:
                for j in range(col, n_cols):
                    rows[i][j] -= f * rows[rank][j]
        rank += 1
    return rank


class TestRegistry:
    def test_names_and_lookup(self):
        names = corpus_names()
        assert len(names) == len(set(names)) == len(CORPUS)
        for name in names:
            assert CORPUS[name].name == name

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            corpus_case("klein-bottle")

    @pytest.mark.parametrize("name", corpus_names())
    def test_shape_and_finiteness(self, name):
        fam = CORPUS[name]
        pts = corpus_case(name, seed=0)
        assert pts.shape[1] == fam.d
        assert pts.shape[0] >= fam.d + 1
        assert np.isfinite(pts).all()

    @pytest.mark.parametrize("name", corpus_names())
    def test_seed_determinism(self, name):
        a = corpus_case(name, seed=5)
        b = corpus_case(name, seed=5)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("name", corpus_names())
    def test_full_dim_flag_is_truthful(self, name):
        fam = CORPUS[name]
        for seed in (0, 1):
            rank = exact_affine_rank(corpus_case(name, seed=seed))
            if fam.full_dim:
                assert rank == fam.d, f"{name} claims full-dim, rank {rank}"
            else:
                assert rank < fam.d, f"{name} claims rank-deficient, rank {rank}"


class TestExactDegeneracy:
    def test_duplicates_are_exact(self):
        for name in ("duplicates-2d", "duplicates-3d"):
            pts = corpus_case(name, seed=0)
            uniq = np.unique(pts, axis=0)
            assert len(uniq) < len(pts)

    def test_all_coincident(self):
        pts = corpus_case("all-coincident", seed=3)
        assert (pts == pts[0]).all()

    def test_collinear_is_exactly_rank_one(self):
        for seed in range(4):
            assert exact_affine_rank(corpus_case("collinear-3d", seed=seed)) == 1

    def test_near_collinear_is_full_rank_but_flat(self):
        pts = corpus_case("near-collinear-3d", seed=0)
        assert exact_affine_rank(pts) == 3
        # ... yet flat enough that the smallest singular value of the
        # edge matrix is at rounding scale.
        sv = np.linalg.svd(pts - pts[0], compute_uv=False)
        assert sv[-1] < 1e-12 * sv[0]

    def test_cocircular_is_exact(self):
        pts = corpus_case("cocircular", seed=0)
        on_ring = [p for p in pts if (p != 0.0).any()]
        assert len(on_ring) == 12
        for p in on_ring:
            assert Fraction(float(p[0])) ** 2 + Fraction(float(p[1])) ** 2 == 25

    def test_cospherical_is_exact(self):
        pts = corpus_case("cospherical", seed=0)
        assert len(pts) == 30
        assert len(np.unique(pts, axis=0)) == 30
        for p in pts:
            assert sum(Fraction(float(x)) ** 2 for x in p) == 9

    def test_near_ties_are_nonzero(self):
        # The jitter must be real (else the family degenerates into the
        # plain grid and tests nothing new).
        for name, grid_name in (("near-ties-2d", "grid-2d"),
                                ("near-ties-3d", "grid-3d")):
            jittered = np.sort(corpus_case(name, seed=0), axis=0)
            grid = np.sort(corpus_case(grid_name, seed=0), axis=0)
            assert not np.array_equal(jittered, grid)
            assert np.abs(jittered - grid).max() < 1e-11
