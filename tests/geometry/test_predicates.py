"""Tests for the adaptive-exact orientation and in-circle predicates."""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.predicates import STATS, in_circle, orient, orient_exact

coord = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)


def point(d):
    return st.lists(coord, min_size=d, max_size=d).map(np.array)


class TestOrient2D:
    def test_left_turn(self):
        assert orient(np.array([[0.0, 0], [1, 0]]), [0.5, 1.0]) == 1

    def test_right_turn(self):
        assert orient(np.array([[0.0, 0], [1, 0]]), [0.5, -1.0]) == -1

    def test_collinear_exact_zero(self):
        # Points chosen so naive float evaluation is noisy but the exact
        # answer is zero.
        a, b = 0.1, 0.3
        assert orient(np.array([[a, a], [b, b]]), [0.2, 0.2]) == 0

    def test_near_degenerate_decided_exactly(self):
        # q a hair above the line y = x: must be +1, not 0 or -1.
        base = np.array([[0.0, 0.0], [1e8, 1e8]])
        q = [0.5e8, 0.5e8 * (1 + 2e-16)]
        assert orient(base, q) == orient_exact(base, q)

    @given(point(2), point(2), point(2))
    @settings(max_examples=150, deadline=None)
    def test_antisymmetry(self, a, b, c):
        assert orient(np.array([a, b]), c) == -orient(np.array([b, a]), c)

    @given(point(2), point(2), point(2), point(2))
    @settings(max_examples=100, deadline=None)
    def test_translation_invariance(self, a, b, c, t):
        s1 = orient(np.array([a, b]), c)
        s2 = orient(np.array([a + t, b + t]), c + t)
        # Exact predicates on translated floats can differ only through
        # rounding of the inputs themselves; re-check exactly.
        assert s1 == orient_exact(np.array([a, b]), c)
        assert s2 == orient_exact(np.array([a + t, b + t]), c + t)

    @given(point(2), point(2), point(2))
    @settings(max_examples=150, deadline=None)
    def test_cyclic_permutation_invariance(self, a, b, c):
        # orient(a, b; c) is the signed area: invariant under cyclic
        # rotation of (a, b, c).
        assert orient(np.array([a, b]), c) == orient(np.array([b, c]), a)


class TestOrient3D:
    def test_above_below_plane(self):
        simplex = np.array([[0.0, 0, 0], [1, 0, 0], [0, 1, 0]])
        up = orient(simplex, [0.2, 0.2, 1.0])
        down = orient(simplex, [0.2, 0.2, -1.0])
        assert up == -down != 0

    def test_coplanar_is_zero(self):
        simplex = np.array([[0.0, 0, 0], [1, 0, 0], [0, 1, 0]])
        assert orient(simplex, [0.3, 0.4, 0.0]) == 0

    @given(point(3), point(3), point(3), point(3))
    @settings(max_examples=100, deadline=None)
    def test_swap_antisymmetry(self, a, b, c, q):
        s1 = orient(np.array([a, b, c]), q)
        s2 = orient(np.array([b, a, c]), q)
        assert s1 == -s2

    def test_matches_exact_on_random(self, rng):
        for _ in range(200):
            pts = rng.standard_normal((3, 3))
            q = rng.standard_normal(3)
            assert orient(pts, q) == orient_exact(pts, q)


class TestHigherDim:
    def test_4d_simplex(self):
        simplex = np.eye(4)
        below = orient(simplex, np.zeros(4))       # sum of coords < 1
        above = orient(simplex, np.full(4, 10.0))  # sum of coords > 1
        assert below == -above != 0
        # The centroid of the simplex's points lies exactly on the
        # hyperplane sum(x) == 1.
        assert orient(simplex, np.full(4, 0.25)) == 0

    def test_4d_degenerate(self):
        simplex = np.eye(4)
        on_plane = np.array([0.5, 0.5, 0.0, 0.0])
        assert orient(simplex, on_plane) == 0


class TestExactFallback:
    def test_exact_path_fires_on_degeneracy(self):
        STATS.reset()
        orient(np.array([[0.0, 0], [1, 1]]), [2.0, 2.0])
        assert STATS.exact_calls >= 1

    @pytest.mark.skipif(
        os.environ.get("REPRO_FORCE_EXACT", "0") not in ("", "0"),
        reason="asserts the float fast path, which REPRO_FORCE_EXACT disables",
    )
    def test_fast_path_on_generic_input(self):
        STATS.reset()
        orient(np.array([[0.0, 0], [1, 0]]), [0.5, 5.0])
        assert STATS.exact_calls == 0
        assert STATS.float_calls == 1


class TestInCircle:
    def test_inside_unit_circle(self):
        a, b, c = [1, 0], [0, 1], [-1, 0]
        assert in_circle(a, b, c, [0.0, 0.0]) == 1

    def test_outside(self):
        a, b, c = [1, 0], [0, 1], [-1, 0]
        assert in_circle(a, b, c, [2.0, 0.0]) == -1

    def test_cocircular_zero(self):
        a, b, c = [1, 0], [0, 1], [-1, 0]
        assert in_circle(a, b, c, [0.0, -1.0]) == 0

    def test_orientation_flips_sign(self):
        a, b, c, q = [1, 0], [0, 1], [-1, 0], [0.0, 0.0]
        assert in_circle(a, b, c, q) == -in_circle(a, c, b, q)

    @given(point(2))
    @settings(max_examples=100, deadline=None)
    def test_consistent_with_radius(self, q):
        a, b, c = [3, 0], [0, 3], [-3, 0]  # circle of radius 3 at origin
        r2 = float(q @ q)
        s = in_circle(a, b, c, q)
        if r2 < 9 - 1e-9:
            assert s == 1
        elif r2 > 9 + 1e-9:
            assert s == -1
