"""Repository hygiene: compiled artifacts must never be tracked.

PR 4 accidentally committed 179 ``.pyc`` files; this pins the cleanup.
The same guard runs in CI (the ``effects`` job), where a regression
would block the merge even if this test is skipped locally.
"""

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _git_tracked() -> list[str]:
    out = subprocess.run(
        ["git", "ls-files"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    )
    return out.stdout.splitlines()


needs_git = pytest.mark.skipif(
    shutil.which("git") is None or not (REPO_ROOT / ".git").exists(),
    reason="not a git checkout",
)


@needs_git
def test_no_tracked_bytecode_or_caches():
    bad = [
        f for f in _git_tracked()
        if f.endswith((".pyc", ".pyo"))
        or "__pycache__" in f
        or f.startswith((".pytest_cache/", ".hypothesis/", ".benchmarks/"))
        or f == ".coverage"
    ]
    assert bad == [], f"compiled/cache artifacts tracked in git: {bad[:10]}"


@needs_git
def test_gitignore_covers_bytecode():
    text = (REPO_ROOT / ".gitignore").read_text()
    for pattern in ("__pycache__/", "*.py[cod]", ".pytest_cache/", ".coverage"):
        assert pattern in text, f".gitignore missing {pattern!r}"
