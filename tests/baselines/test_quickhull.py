"""Tests for d-dimensional quickhull (experiment E12)."""

import numpy as np
import pytest
from scipy.spatial import ConvexHull as ScipyHull

from repro.baselines import quickhull
from repro.geometry import gaussian, on_sphere, uniform_ball
from repro.hull import facet_sets_global, sequential_hull, validate_hull


class TestCorrectness:
    @pytest.mark.parametrize("d,n", [(2, 150), (3, 120), (4, 60), (5, 30)])
    def test_matches_scipy_vertices(self, d, n):
        pts = uniform_ball(n, d, seed=d * 7 + n)
        res = quickhull(pts)
        validate_hull(res.facets, res.points)
        assert res.vertex_indices() == set(ScipyHull(pts).vertices.tolist())

    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_same_facets_as_incremental(self, d):
        pts = on_sphere(80, d, seed=d)
        qh = quickhull(pts)
        seq = sequential_hull(pts, seed=1)
        assert facet_sets_global(qh.facets, qh.order) == facet_sets_global(
            seq.facets, seq.order
        )

    def test_simplex(self):
        pts = np.vstack([np.zeros(3), np.eye(3)])
        res = quickhull(pts)
        assert len(res.facets) == 4

    def test_gaussian_cloud(self):
        pts = gaussian(300, 2, seed=4)
        res = quickhull(pts)
        validate_hull(res.facets, res.points)


class TestAccounting:
    def test_counts_tests(self):
        pts = uniform_ball(100, 2, seed=5)
        res = quickhull(pts)
        assert res.counters.visibility_tests > 0
        assert res.counters.facets_created >= len(res.facets)

    def test_alive_facets_cover_all_points(self):
        pts = uniform_ball(200, 3, seed=6)
        res = quickhull(pts)
        for f in res.facets:
            assert not f.plane.visible_mask(res.points).any()
