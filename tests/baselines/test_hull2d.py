"""Tests for the 2D baseline hull algorithms (experiment E12)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import chan, divide_and_conquer, gift_wrapping, monotone_chain
from repro.geometry import gaussian, on_circle, uniform_ball

ALGOS = [monotone_chain, gift_wrapping, divide_and_conquer, chan]
IDS = ["monotone_chain", "gift_wrapping", "divide_and_conquer", "chan"]


@pytest.mark.parametrize("algo", ALGOS, ids=IDS)
class TestEveryAlgorithm:
    def test_square(self, algo):
        pts = np.array([[0.0, 0], [2, 0], [2, 2], [0, 2], [1, 1]])
        assert set(algo(pts)) == {0, 1, 2, 3}

    def test_tiny_inputs(self, algo):
        assert set(algo(np.array([[0.0, 0], [1, 1]]))) == {0, 1}

    def test_all_on_circle(self, algo):
        pts = on_circle(24, seed=1)
        assert set(algo(pts)) == set(range(24))

    def test_matches_reference(self, algo):
        pts = uniform_ball(150, 2, seed=2)
        assert set(algo(pts)) == set(monotone_chain(pts))

    def test_output_is_convex_cycle(self, algo):
        from repro.geometry.predicates import orient

        pts = gaussian(100, 2, seed=3)
        hull = algo(pts)
        m = len(hull)
        turns = {
            orient(pts[[hull[i], hull[(i + 1) % m]]], pts[hull[(i + 2) % m]])
            for i in range(m)
        }
        assert turns == {1} or turns == {-1}  # consistently convex


class TestCrossValidation:
    @given(st.integers(0, 10_000), st.integers(5, 60))
    @settings(max_examples=60, deadline=None)
    def test_all_algorithms_agree(self, seed, n):
        pts = uniform_ball(n, 2, seed=seed)
        ref = set(monotone_chain(pts))
        for algo in (gift_wrapping, divide_and_conquer, chan):
            assert set(algo(pts)) == ref

    def test_against_scipy(self):
        from scipy.spatial import ConvexHull as ScipyHull

        for seed in range(5):
            pts = uniform_ball(200, 2, seed=seed)
            assert set(monotone_chain(pts)) == set(ScipyHull(pts).vertices.tolist())


class TestCollinearHandling:
    def test_collinear_boundary_points_dropped(self):
        pts = np.array([[0.0, 0], [1, 0], [2, 0], [2, 2], [0, 2]])
        for algo, name in zip(ALGOS, IDS):
            assert set(algo(pts)) == {0, 2, 3, 4}, name

    def test_grid(self):
        from repro.geometry import integer_grid

        pts = integer_grid(4, 2, shuffle=False)
        for algo, name in zip(ALGOS, IDS):
            got = {tuple(pts[i]) for i in algo(pts)}
            assert got == {(0.0, 0.0), (3.0, 0.0), (0.0, 3.0), (3.0, 3.0)}, name


class TestDivideAndConquer:
    def test_leaf_size_variations(self):
        pts = uniform_ball(120, 2, seed=9)
        ref = set(monotone_chain(pts))
        for leaf in (3, 8, 40, 200):
            assert set(divide_and_conquer(pts, leaf_size=leaf)) == ref
