"""Experiment E9 (algorithm side): incremental unit-disk intersection
with dependence tracking."""

import numpy as np
import pytest

from repro.apps import incremental_disk_intersection
from repro.configspace.spaces import UnitCircleArcSpace, clustered_unit_circles


class TestCorrectness:
    @pytest.mark.parametrize("n,seed", [(5, 1), (10, 2), (20, 3), (40, 4)])
    def test_boundary_matches_brute_force_space(self, n, seed):
        centers = clustered_unit_circles(n, seed=seed)
        res = incremental_disk_intersection(centers, seed=seed + 100)
        space = UnitCircleArcSpace(centers)
        brute = {c.tag for c in space.active_set(range(n))}
        got = {(a.owner, a.cut_start, a.cut_end) for a in res.boundary()}
        assert got == brute

    def test_order_invariance(self):
        centers = clustered_unit_circles(25, seed=5)
        results = [
            {(a.owner, a.cut_start, a.cut_end)
             for a in incremental_disk_intersection(centers, seed=s).boundary()}
            for s in range(5)
        ]
        assert all(r == results[0] for r in results)

    def test_empty_intersection_detected(self):
        centers = np.array([[0.0, 0.0], [0.5, 0.0], [10.0, 0.0]])
        res = incremental_disk_intersection(centers, order=np.arange(3))
        assert res.empty

    def test_contains_origin(self):
        centers = clustered_unit_circles(15, seed=6)
        res = incremental_disk_intersection(centers, seed=7)
        assert res.contains([0.0, 0.0])
        assert not res.contains([5.0, 5.0])

    def test_boundary_arcs_inside_all_disks(self):
        centers = clustered_unit_circles(12, seed=7)
        res = incremental_disk_intersection(centers, seed=8)
        for arc in res.boundary():
            mid = arc.start + arc.length / 2
            p = centers[arc.owner] + np.array([np.cos(mid), np.sin(mid)])
            dists = np.linalg.norm(centers - p[None, :], axis=1)
            assert (dists <= 1.0 + 1e-7).all()

    def test_arc_endpoints_on_cutting_circles(self):
        centers = clustered_unit_circles(10, seed=8)
        res = incremental_disk_intersection(centers, seed=9)
        for arc in res.boundary():
            for theta, cutter in ((arc.start, arc.cut_start),
                                  (arc.start + arc.length, arc.cut_end)):
                p = centers[arc.owner] + np.array([np.cos(theta), np.sin(theta)])
                assert np.linalg.norm(p - centers[cutter]) == pytest.approx(1.0, abs=1e-7)


class TestDependenceStructure:
    def test_depth_small(self):
        centers = clustered_unit_circles(128, seed=9)
        res = incremental_disk_intersection(centers, seed=10)
        assert 1 <= res.dependence_depth() <= 50

    def test_trimmed_arcs_have_singleton_support(self):
        """Paper: an arc trimmed by a new circle is supported by the one
        arc being cut; fresh arcs on the new circle by up to two."""
        centers = clustered_unit_circles(20, seed=10)
        res = incremental_disk_intersection(centers, seed=11)
        by_aid = {a.aid: a for a in res.arcs}
        inserted_at = res.graph.added_at
        for aid, parents in res.graph.parents.items():
            arc = by_aid[aid]
            assert 1 <= len(parents) <= 2
            for p in parents:
                assert p < aid  # parents precede children
            if len(parents) == 1:
                # Trim: same owner as its parent.
                assert by_aid[parents[0]].owner == arc.owner

    def test_graph_covers_all_arcs_after_base(self):
        centers = clustered_unit_circles(15, seed=11)
        res = incremental_disk_intersection(centers, seed=12)
        base = [aid for aid in res.graph.order if aid not in res.graph.parents]
        # Only the two bootstrap arcs lack parents... plus fresh arcs
        # whose cut hosts vanished are conceivable; keep a small bound.
        assert len(base) <= 4
