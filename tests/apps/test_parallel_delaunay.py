"""Tests for parallel incremental Delaunay (Algorithm 3's machinery on
triangles): the paper's equivalence and depth claims transferred to its
sister problem."""

import numpy as np
import pytest
from scipy.spatial import Delaunay as ScipyDelaunay

from repro.apps import delaunay
from repro.apps.bowyer_watson import bowyer_watson
from repro.apps.parallel_delaunay import parallel_delaunay
from repro.configspace.theory import harmonic
from repro.geometry import gaussian, uniform_ball
from repro.hull.common import HullSetupError


class TestCorrectness:
    @pytest.mark.parametrize("n,seed", [(20, 1), (80, 2), (250, 3)])
    def test_matches_scipy(self, n, seed):
        pts = uniform_ball(n, 2, seed=seed)
        pd = parallel_delaunay(pts, seed=seed + 5)
        assert pd.triangles == {frozenset(s) for s in ScipyDelaunay(pts).simplices}

    def test_matches_lifted_hull(self):
        pts = gaussian(120, 2, seed=4)
        assert parallel_delaunay(pts, seed=1).triangles == delaunay(pts, seed=2).triangles

    def test_collinear_rejected(self):
        with pytest.raises(HullSetupError):
            parallel_delaunay(np.array([[0.0, 0], [1, 0], [2, 0]]), order=np.arange(3))


class TestEquivalenceWithSequential:
    """The Theorem 5.4 story, for Delaunay: same triangles created, same
    in-circle tests, relaxed order."""

    @pytest.mark.parametrize("n,seed", [(50, 1), (150, 2), (400, 3)])
    def test_same_created_and_same_tests(self, n, seed):
        pts = uniform_ball(n, 2, seed=seed)
        order = np.random.default_rng(seed + 9).permutation(n)
        pd = parallel_delaunay(pts, order=order.copy())
        bw = bowyer_watson(pts, order=order.copy())
        pd_created = sorted(tuple(sorted(t.verts)) for t in pd.created)
        bw_created = sorted(tuple(sorted(t.verts)) for t in bw.created)
        assert pd_created == bw_created
        assert pd.in_circle_tests == bw.in_circle_tests
        assert pd.triangles == bw.triangles

    def test_identical_conflict_sets(self):
        pts = uniform_ball(100, 2, seed=6)
        order = np.random.default_rng(7).permutation(100)
        pd = parallel_delaunay(pts, order=order.copy())
        bw = bowyer_watson(pts, order=order.copy())
        pd_conf = {tuple(sorted(t.verts)): t.conflicts.tolist() for t in pd.created}
        bw_conf = {tuple(sorted(t.verts)): t.conflicts.tolist() for t in bw.created}
        assert pd_conf == bw_conf


class TestDepth:
    def test_rounds_track_depth(self):
        pts = uniform_ball(300, 2, seed=8)
        pd = parallel_delaunay(pts, seed=9)
        assert pd.dependence_depth() <= pd.rounds <= pd.dependence_depth() + 2

    def test_sigma_bounded(self):
        sigmas = []
        for n in (64, 256, 1024):
            pts = uniform_ball(n, 2, seed=n)
            pd = parallel_delaunay(pts, seed=10)
            sigmas.append(pd.dependence_depth() / harmonic(n))
        assert max(sigmas) < 12
        assert max(sigmas) / min(sigmas) < 2.0

    def test_supports_are_pairs(self):
        pts = uniform_ball(90, 2, seed=11)
        pd = parallel_delaunay(pts, seed=12)
        for tid, parents in pd.graph.parents.items():
            assert len(parents) == 2
            assert all(p < tid for p in parents)
