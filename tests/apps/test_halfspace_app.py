"""Experiment E8 (algorithm side): half-plane intersection by duality
and by the direct incremental algorithm."""

import numpy as np
import pytest

from repro.apps import halfplane_intersection, incremental_halfplanes
from repro.configspace.spaces import HalfplaneSpace, tangent_halfplanes


class TestDualityMethod:
    @pytest.mark.parametrize("n,seed", [(10, 1), (30, 2), (100, 3)])
    def test_vertices_match_brute_force(self, n, seed):
        normals, offsets = tangent_halfplanes(n, seed=seed)
        res = halfplane_intersection(normals, offsets, seed=seed)
        space = HalfplaneSpace(normals, offsets)
        brute = {
            c.defining for c in space.active_set(range(n)) if len(c.defining) == 2
        }
        assert {frozenset(p) for p in res.vertex_pairs} == brute

    def test_vertices_satisfy_all_constraints(self):
        normals, offsets = tangent_halfplanes(40, seed=4)
        res = halfplane_intersection(normals, offsets, seed=1)
        for v in res.vertices:
            assert (normals @ v <= offsets + 1e-9).all()

    def test_polygon_is_ccw_or_cw_consistent(self):
        normals, offsets = tangent_halfplanes(25, seed=5)
        res = halfplane_intersection(normals, offsets, seed=2)
        v = res.vertices
        e1 = np.roll(v, -1, axis=0) - v
        e2 = np.roll(v, -2, axis=0) - v
        cross = e1[:, 0] * e2[:, 1] - e1[:, 1] * e2[:, 0]
        assert (cross > 0).all() or (cross < 0).all()

    def test_contains(self):
        normals, offsets = tangent_halfplanes(20, seed=6)
        res = halfplane_intersection(normals, offsets, seed=3)
        assert res.contains([0.0, 0.0])
        assert not res.contains([100.0, 100.0])

    def test_depth_available(self):
        normals, offsets = tangent_halfplanes(64, seed=7)
        res = halfplane_intersection(normals, offsets, seed=4)
        assert 1 <= res.dependence_depth() <= 40

    def test_input_validation(self):
        with pytest.raises(ValueError):
            halfplane_intersection(np.ones((3, 2)), np.array([-1.0, 1, 1]))
        with pytest.raises(ValueError):
            halfplane_intersection(np.ones((3, 3)), np.ones(3))


class TestDirectIncremental:
    @pytest.mark.parametrize("n,seed", [(10, 11), (30, 12), (100, 13)])
    def test_agrees_with_duality(self, n, seed):
        normals, offsets = tangent_halfplanes(n, seed=seed)
        dual = halfplane_intersection(normals, offsets, seed=seed)
        direct = incremental_halfplanes(normals, offsets, seed=seed)
        assert {frozenset(p) for p in direct.vertex_pairs} == {
            frozenset(p) for p in dual.vertex_pairs
        }

    def test_order_invariance_of_result(self):
        normals, offsets = tangent_halfplanes(40, seed=14)
        results = [
            {frozenset(p) for p in incremental_halfplanes(normals, offsets, seed=s).vertex_pairs}
            for s in range(4)
        ]
        assert all(r == results[0] for r in results)

    def test_depth_tracked_and_small(self):
        normals, offsets = tangent_halfplanes(128, seed=15)
        res = incremental_halfplanes(normals, offsets, seed=5)
        assert 1 <= res.dependence_depth() <= 50

    def test_support_parents_are_pairs(self):
        normals, offsets = tangent_halfplanes(30, seed=16)
        res = incremental_halfplanes(normals, offsets, seed=6)
        for key, parents in res.graph.parents.items():
            assert len(parents) == 2

    def test_cut_counts_recorded(self):
        normals, offsets = tangent_halfplanes(50, seed=17)
        res = incremental_halfplanes(normals, offsets, seed=7)
        assert len(res.cut_counts) == 50
        assert all(c >= 0 for c in res.cut_counts)

    def test_redundant_halfplane_cuts_nothing(self):
        normals = np.array([[1.0, 0], [-1, 0], [0, 1], [0, -1], [0.707106, 0.707106]])
        offsets = np.array([1.0, 1, 1, 1, 10.0])
        res = incremental_halfplanes(normals, offsets, order=np.arange(5))
        assert res.cut_counts[-1] == 0
        assert all(4 not in p for p in res.vertex_pairs)


class TestHalfspace3D:
    @pytest.fixture
    def system(self):
        from repro.apps import halfspace_intersection_3d

        rng = np.random.default_rng(31)
        normals = rng.standard_normal((40, 3))
        normals /= np.linalg.norm(normals, axis=1, keepdims=True)
        return halfspace_intersection_3d, normals, np.ones(40)

    def test_vertices_feasible(self, system):
        fn, normals, offsets = system
        res = fn(normals, offsets, seed=1)
        for v in res.vertices:
            assert res.contains(v, tol=1e-7)

    def test_vertices_are_tight_triples(self, system):
        fn, normals, offsets = system
        res = fn(normals, offsets, seed=2)
        for tri, v in zip(res.vertex_triples, res.vertices):
            for i in tri:
                assert abs(float(normals[i] @ v) - offsets[i]) < 1e-7

    def test_origin_inside(self, system):
        fn, normals, offsets = system
        res = fn(normals, offsets, seed=3)
        assert res.contains(np.zeros(3))

    def test_depth_logarithmic_scale(self, system):
        fn, normals, offsets = system
        res = fn(normals, offsets, seed=4)
        assert 1 <= res.dependence_depth() <= 40

    def test_euler_formula(self, system):
        """Vertices of a simple 3D polytope: V = 2F - 4 where F counts
        the non-redundant half-spaces (dual to simplicial 3D hulls)."""
        fn, normals, offsets = system
        res = fn(normals, offsets, seed=5)
        used = {i for tri in res.vertex_triples for i in tri}
        assert len(res.vertex_triples) == 2 * len(used) - 4

    def test_input_validation(self, system):
        fn, _n, _o = system
        with pytest.raises(ValueError):
            fn(np.ones((4, 2)), np.ones(4))
        with pytest.raises(ValueError):
            fn(np.ones((4, 3)), -np.ones(4))
