"""Tests for direct incremental Delaunay (Bowyer--Watson): correctness
against scipy and the lifted-hull path, plus the [17]-style dependence
structure (2-support, O(log n) depth)."""

import numpy as np
import pytest
from scipy.spatial import Delaunay as ScipyDelaunay

from repro.apps import delaunay
from repro.apps.bowyer_watson import GHOST, bowyer_watson
from repro.configspace.theory import harmonic
from repro.geometry import gaussian, uniform_ball
from repro.hull.common import HullSetupError


class TestCorrectness:
    @pytest.mark.parametrize("n,seed", [(20, 1), (60, 2), (200, 3)])
    def test_matches_scipy(self, n, seed):
        pts = uniform_ball(n, 2, seed=seed)
        bw = bowyer_watson(pts, seed=seed + 7)
        assert bw.triangles == {frozenset(s) for s in ScipyDelaunay(pts).simplices}

    @pytest.mark.parametrize("n,seed", [(50, 4), (150, 5)])
    def test_matches_lifted_hull(self, n, seed):
        pts = gaussian(n, 2, seed=seed)
        bw = bowyer_watson(pts, seed=1)
        lifted = delaunay(pts, seed=2)
        assert bw.triangles == lifted.triangles

    def test_insertion_order_irrelevant(self):
        pts = uniform_ball(60, 2, seed=6)
        ref = bowyer_watson(pts, seed=0).triangles
        for seed in range(1, 4):
            assert bowyer_watson(pts, seed=seed).triangles == ref

    def test_minimal_input(self):
        pts = np.array([[0.0, 0], [1, 0], [0, 1]])
        bw = bowyer_watson(pts, order=np.arange(3))
        assert bw.triangles == {frozenset({0, 1, 2})}

    def test_collinear_rejected(self):
        pts = np.array([[0.0, 0], [1, 0], [2, 0], [3, 0]])
        with pytest.raises(HullSetupError):
            bowyer_watson(pts, order=np.arange(4))

    def test_too_few_points(self):
        with pytest.raises(HullSetupError):
            bowyer_watson(np.zeros((2, 2)))


class TestDependenceStructure:
    def test_supports_are_pairs(self):
        pts = uniform_ball(80, 2, seed=7)
        bw = bowyer_watson(pts, seed=8)
        for tid, parents in bw.graph.parents.items():
            assert len(parents) == 2
            assert all(p < tid for p in parents)

    def test_support_triangles_share_creation_edge(self):
        pts = uniform_ball(60, 2, seed=9)
        bw = bowyer_watson(pts, seed=10)
        by_tid = {t.tid: t for t in bw.created}
        for tid, (t_in_id, t_out_id) in bw.graph.parents.items():
            child = by_tid[tid]
            t_in, t_out = by_tid[t_in_id], by_tid[t_out_id]
            shared = (
                set(child.verts) & set(t_in.verts) & set(t_out.verts)
            )
            assert len(shared) >= 2  # the creation edge

    def test_depth_logarithmic_scale(self):
        depths = []
        for n in (64, 256, 1024):
            pts = uniform_ball(n, 2, seed=n)
            bw = bowyer_watson(pts, seed=11)
            depths.append(bw.dependence_depth() / harmonic(n))
        # sigma = depth / H_n stays bounded, like the hull's.
        assert max(depths) / min(depths) < 2.0
        assert max(depths) < 12

    def test_work_nlogn_shape(self):
        tests = []
        for n in (128, 512):
            pts = uniform_ball(n, 2, seed=n + 1)
            bw = bowyer_watson(pts, seed=12)
            tests.append(bw.in_circle_tests / (n * np.log(n)))
        assert max(tests) / min(tests) < 2.0


class TestGhostStructure:
    def test_ghost_triangles_trace_the_hull(self):
        from repro.baselines import monotone_chain

        pts = uniform_ball(50, 2, seed=13)
        bw = bowyer_watson(pts, seed=14)
        alive_ghost_edges = set()
        for t in bw.created:
            if t.alive and t.is_ghost:
                u, v, _ = t.verts
                alive_ghost_edges.add(
                    frozenset((int(bw.order[u]), int(bw.order[v])))
                )
        hull = monotone_chain(pts)
        hull_edges = {
            frozenset((hull[i], hull[(i + 1) % len(hull)])) for i in range(len(hull))
        }
        assert alive_ghost_edges == hull_edges

    def test_ghost_constant(self):
        assert GHOST == -1
