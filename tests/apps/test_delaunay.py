"""Experiment E14: Delaunay triangulation via the lifted parallel hull."""

import numpy as np
import pytest
from scipy.spatial import Delaunay as ScipyDelaunay

from repro.apps import delaunay
from repro.geometry import uniform_ball, uniform_cube


class TestCorrectness:
    @pytest.mark.parametrize("n,seed", [(30, 1), (100, 2), (250, 3)])
    def test_matches_scipy(self, n, seed):
        pts = uniform_ball(n, 2, seed=seed)
        res = delaunay(pts, seed=seed + 7)
        scipy_tris = {frozenset(s) for s in ScipyDelaunay(pts).simplices}
        assert res.triangles == scipy_tris

    def test_sequential_backend_agrees(self):
        pts = uniform_cube(80, 2, seed=4)
        a = delaunay(pts, seed=1, backend="parallel")
        b = delaunay(pts, seed=1, backend="sequential")
        assert a.triangles == b.triangles

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            delaunay(uniform_ball(10, 2, seed=0), backend="gpu")

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            delaunay(uniform_ball(10, 3, seed=0))

    def test_triangle_count_euler(self):
        """For n points with h on the hull: T = 2n - h - 2."""
        pts = uniform_ball(120, 2, seed=5)
        res = delaunay(pts, seed=2)
        from repro.baselines import monotone_chain

        h = len(monotone_chain(pts))
        assert res.n_triangles == 2 * 120 - h - 2


class TestStructure:
    def test_edges_shared_by_at_most_two_triangles(self):
        pts = uniform_ball(60, 2, seed=6)
        res = delaunay(pts, seed=3)
        edge_count: dict = {}
        for t in res.triangles:
            tl = sorted(t)
            for e in ((tl[0], tl[1]), (tl[0], tl[2]), (tl[1], tl[2])):
                edge_count[e] = edge_count.get(e, 0) + 1
        assert set(edge_count.values()) <= {1, 2}

    def test_empty_circumcircle_property(self):
        from repro.geometry.predicates import in_circle, orient_exact

        pts = uniform_ball(40, 2, seed=7)
        res = delaunay(pts, seed=4)
        for t in list(res.triangles)[:20]:
            i, j, k = sorted(t)
            a, b, c = pts[i], pts[j], pts[k]
            sign = orient_exact(np.array([a, b]), c)
            for q in range(40):
                if q in t:
                    continue
                assert in_circle(a, b, c, pts[q]) * sign <= 0

    def test_depth_recorded(self):
        pts = uniform_ball(150, 2, seed=8)
        res = delaunay(pts, seed=5)
        depth = res.dependence_depth()
        assert 1 <= depth <= 60

    def test_sequential_backend_has_no_depth(self):
        pts = uniform_ball(30, 2, seed=9)
        res = delaunay(pts, seed=6, backend="sequential")
        with pytest.raises(TypeError):
            res.dependence_depth()

    def test_edge_set(self):
        pts = uniform_ball(25, 2, seed=10)
        res = delaunay(pts, seed=7)
        edges = res.edge_set()
        assert all(len(e) == 2 for e in edges)
        tri_edges = {
            frozenset(e)
            for t in res.triangles
            for e in [list(t)[:2], list(t)[1:], [list(t)[0], list(t)[2]]]
        }
        assert edges == tri_edges
