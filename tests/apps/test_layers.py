"""Tests for convex layers (onion peeling)."""

import numpy as np
import pytest

from repro.apps.layers import convex_layers
from repro.baselines import monotone_chain
from repro.geometry import on_circle, uniform_ball


class TestStructure:
    def test_layers_partition_points(self):
        pts = uniform_ball(120, 2, seed=1)
        res = convex_layers(pts, seed=2)
        all_indices = [i for layer in res.layers for i in layer] + res.core
        assert sorted(all_indices) == list(range(120))

    def test_first_layer_is_the_hull(self):
        pts = uniform_ball(80, 2, seed=3)
        res = convex_layers(pts, seed=4)
        assert set(res.layers[0]) == set(monotone_chain(pts))

    def test_layers_nest(self):
        """Each layer's points lie inside the previous layer's hull."""
        pts = uniform_ball(150, 2, seed=5)
        res = convex_layers(pts, seed=6)
        for outer, inner in zip(res.layers, res.layers[1:]):
            hull_pts = pts[outer]
            for i in inner:
                # Inside the outer hull <=> the point is not a vertex of
                # hull(outer + point); its index in the stacked array is
                # len(outer).
                combined = np.vstack([hull_pts, pts[i][None, :]])
                assert len(outer) not in set(monotone_chain(combined))

    def test_depth_of(self):
        pts = uniform_ball(60, 2, seed=7)
        res = convex_layers(pts, seed=8)
        depth = res.depth_of()
        assert depth.shape == (60,)
        for k, layer in enumerate(res.layers):
            assert (depth[layer] == k).all()

    def test_3d_layers(self):
        pts = uniform_ball(100, 3, seed=9)
        res = convex_layers(pts, seed=10)
        assert res.n_layers >= 2
        total = sum(len(l) for l in res.layers) + len(res.core)
        assert total == 100

    def test_all_on_one_circle_single_layer(self):
        pts = on_circle(40, seed=11)
        res = convex_layers(pts, seed=12)
        assert res.n_layers == 1
        assert len(res.layers[0]) == 40
        assert res.core == []

    def test_backends_agree(self):
        pts = uniform_ball(90, 2, seed=13)
        a = convex_layers(pts, seed=14, backend="parallel")
        b = convex_layers(pts, seed=14, backend="sequential")
        assert a.layers == b.layers

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            convex_layers(uniform_ball(10, 2, seed=0), backend="magic")
