"""Tests for GJK collision detection, cross-validated against an LP
feasibility oracle (a point common to both hulls exists iff the bodies
intersect)."""

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.apps.collision import SupportBody, gjk_distance, gjk_intersects
from repro.geometry import uniform_ball
from repro.hull import Polytope, parallel_hull


def lp_intersects(va: np.ndarray, vb: np.ndarray) -> bool:
    """Oracle: exists x = conv(va) point == conv(vb) point?  Solve for
    barycentric weights (la, lb) with equality constraints."""
    na, nb = len(va), len(vb)
    d = va.shape[1]
    # Variables: la (na), lb (nb).
    a_eq = []
    b_eq = []
    for j in range(d):
        row = np.concatenate([va[:, j], -vb[:, j]])
        a_eq.append(row)
        b_eq.append(0.0)
    a_eq.append(np.concatenate([np.ones(na), np.zeros(nb)]))
    b_eq.append(1.0)
    a_eq.append(np.concatenate([np.zeros(na), np.ones(nb)]))
    b_eq.append(1.0)
    res = linprog(
        c=np.zeros(na + nb),
        A_eq=np.array(a_eq),
        b_eq=np.array(b_eq),
        bounds=[(0, None)] * (na + nb),
        method="highs",
    )
    return res.status == 0


class TestKnownCases:
    def test_overlapping_squares(self):
        a = SupportBody.from_points([[0, 0], [2, 0], [2, 2], [0, 2]])
        b = SupportBody.from_points([[1, 1], [3, 1], [3, 3], [1, 3]])
        assert gjk_intersects(a, b)

    def test_disjoint_squares(self):
        a = SupportBody.from_points([[0, 0], [1, 0], [1, 1], [0, 1]])
        b = SupportBody.from_points([[3, 0], [4, 0], [4, 1], [3, 1]])
        assert not gjk_intersects(a, b)
        assert gjk_distance(a, b) == pytest.approx(2.0, abs=1e-6)

    def test_touching_squares(self):
        a = SupportBody.from_points([[0, 0], [1, 0], [1, 1], [0, 1]])
        b = SupportBody.from_points([[1, 0], [2, 0], [2, 1], [1, 1]])
        assert gjk_distance(a, b) == pytest.approx(0.0, abs=1e-7)

    def test_nested_bodies(self):
        outer = SupportBody.from_points([[0, 0], [10, 0], [10, 10], [0, 10]])
        inner = SupportBody.from_points([[4, 4], [5, 4], [5, 5], [4, 5]])
        assert gjk_intersects(outer, inner)

    def test_3d_tetrahedra(self):
        a = SupportBody.from_points(np.vstack([np.zeros(3), np.eye(3)]))
        b = SupportBody.from_points(np.vstack([np.zeros(3), np.eye(3)]) + 5.0)
        assert not gjk_intersects(a, b)
        c = SupportBody.from_points(np.vstack([np.zeros(3), np.eye(3)]) + 0.1)
        assert gjk_intersects(a, c)

    def test_dimension_mismatch(self):
        a = SupportBody.from_points([[0, 0], [1, 1], [0, 1]])
        b = SupportBody.from_points(np.vstack([np.zeros(3), np.eye(3)]))
        with pytest.raises(ValueError):
            gjk_intersects(a, b)


class TestAgainstLPOracle:
    @pytest.mark.parametrize("d", [2, 3])
    def test_random_pairs(self, d):
        rng = np.random.default_rng(d)
        agree = 0
        for trial in range(30):
            va = uniform_ball(12, d, seed=trial) + rng.uniform(-1.5, 1.5, size=d)
            vb = uniform_ball(12, d, seed=trial + 100) + rng.uniform(-1.5, 1.5, size=d)
            got = gjk_intersects(SupportBody.from_points(va),
                                 SupportBody.from_points(vb), tol=1e-7)
            want = lp_intersects(va, vb)
            assert got == want, (d, trial)
            agree += 1
        assert agree == 30

    def test_distance_symmetry(self):
        for trial in range(10):
            va = uniform_ball(10, 2, seed=trial) + np.array([3.0, 0.0])
            vb = uniform_ball(10, 2, seed=trial + 50)
            a, b = SupportBody.from_points(va), SupportBody.from_points(vb)
            assert gjk_distance(a, b) == pytest.approx(gjk_distance(b, a), abs=1e-7)


class TestFromPolytope:
    def test_hull_to_body(self):
        pts = uniform_ball(50, 2, seed=1)
        run = parallel_hull(pts, seed=2)
        body = SupportBody.from_polytope(Polytope.from_run(run))
        far = SupportBody.from_points(pts + 10.0)
        assert not gjk_intersects(body, far)
        assert gjk_intersects(body, SupportBody.from_points(pts))


class TestDegenerateBodies:
    def test_point_vs_point(self):
        a = SupportBody.from_points([[0.0, 0.0]])
        b = SupportBody.from_points([[3.0, 4.0]])
        assert gjk_distance(a, b) == pytest.approx(5.0, abs=1e-9)
        assert not gjk_intersects(a, b)
        assert gjk_intersects(a, SupportBody.from_points([[0.0, 0.0]]))

    def test_segment_vs_point(self):
        seg = SupportBody.from_points([[0.0, 0.0], [2.0, 0.0]])
        p_on = SupportBody.from_points([[1.0, 0.0]])
        p_off = SupportBody.from_points([[1.0, 1.0]])
        assert gjk_intersects(seg, p_on)
        assert gjk_distance(seg, p_off) == pytest.approx(1.0, abs=1e-7)

    def test_collinear_segments(self):
        a = SupportBody.from_points([[0.0, 0.0], [1.0, 0.0]])
        b = SupportBody.from_points([[2.0, 0.0], [3.0, 0.0]])
        assert gjk_distance(a, b) == pytest.approx(1.0, abs=1e-7)
