"""Tests for parallel half-plane intersection (Algorithm 3's machinery
on the Section 7 vertex space)."""

import numpy as np
import pytest

from repro.apps import halfplane_intersection, incremental_halfplanes
from repro.apps.parallel_halfplanes import parallel_halfplanes
from repro.configspace.spaces import tangent_halfplanes
from repro.configspace.theory import harmonic


class TestCorrectness:
    @pytest.mark.parametrize("n,seed", [(10, 1), (60, 2), (300, 3)])
    def test_matches_sequential_clipping(self, n, seed):
        normals, offsets = tangent_halfplanes(n, seed=seed)
        order = np.random.default_rng(seed + 5).permutation(n)
        pp = parallel_halfplanes(normals, offsets, order=order.copy())
        inc = incremental_halfplanes(normals, offsets, order=order.copy())
        assert {frozenset(p) for p in pp.vertex_pairs} == {
            frozenset(p) for p in inc.vertex_pairs
        }

    def test_matches_dual_hull(self):
        normals, offsets = tangent_halfplanes(80, seed=4)
        pp = parallel_halfplanes(normals, offsets, seed=5)
        dual = halfplane_intersection(normals, offsets, seed=6)
        assert {frozenset(p) for p in pp.vertex_pairs} == {
            frozenset(p) for p in dual.vertex_pairs
        }

    def test_vertices_feasible(self):
        normals, offsets = tangent_halfplanes(50, seed=7)
        pp = parallel_halfplanes(normals, offsets, seed=8)
        for v in pp.vertices:
            assert (normals @ v <= offsets + 1e-7).all()

    def test_redundant_halfplane_absent(self):
        normals = np.array([[1.0, 0], [-1, 0], [0, 1], [0, -1], [0.6, 0.8]])
        offsets = np.array([1.0, 1, 1, 1, 9.0])
        pp = parallel_halfplanes(normals, offsets, order=np.arange(5))
        assert all(4 not in p for p in pp.vertex_pairs)
        assert len(pp.vertex_pairs) == 4

    def test_input_validation(self):
        with pytest.raises(ValueError):
            parallel_halfplanes(np.ones((3, 3)), np.ones(3))
        with pytest.raises(ValueError):
            parallel_halfplanes(np.ones((3, 2)), -np.ones(3))


class TestDependence:
    def test_supports_are_pairs(self):
        normals, offsets = tangent_halfplanes(60, seed=9)
        pp = parallel_halfplanes(normals, offsets, seed=10)
        for vid, parents in pp.graph.parents.items():
            assert len(parents) == 2
            assert all(p < vid for p in parents)

    def test_rounds_track_depth(self):
        normals, offsets = tangent_halfplanes(200, seed=11)
        pp = parallel_halfplanes(normals, offsets, seed=12)
        assert pp.dependence_depth() <= pp.rounds <= pp.dependence_depth() + 2

    def test_sigma_bounded(self):
        sigmas = []
        for n in (64, 256, 1024):
            normals, offsets = tangent_halfplanes(n, seed=n)
            pp = parallel_halfplanes(normals, offsets, seed=13)
            sigmas.append(pp.dependence_depth() / harmonic(n))
        assert max(sigmas) < 10
        assert max(sigmas) / min(sigmas) < 2.0

    def test_order_invariance_of_polygon(self):
        normals, offsets = tangent_halfplanes(40, seed=14)
        ref = None
        for seed in range(4):
            pp = parallel_halfplanes(normals, offsets, seed=seed)
            got = {frozenset(p) for p in pp.vertex_pairs}
            if ref is None:
                ref = got
            assert got == ref
