"""A dynamic happens-before race checker for the interleave simulator.

A miniature TSan for step generators: while the scheduler drives an
adversarial schedule (:mod:`repro.runtime.interleave` conventions), the
atomic primitives and any registered plain attributes are instrumented
so every *actual* shared-memory access is recorded as an
``(op, location, read/write)`` event -- not just the accesses the
generator *announces* by yielding a tagged preemption point.

The memory model mirrors C11/TSan:

* An access is **atomic** when its operation announced it -- the yield
  immediately before the resume that performed it.  Announced accesses
  are linearization points the scheduler can interleave at, and the
  exhaustive schedule enumeration (Theorems A.1/A.2) quantifies over
  all their orderings, so atomic/atomic conflicts are never data races.
* An access is **plain** when it was *not* announced: the generator
  fused it into the previous step, so no schedule can split them and
  the correctness proofs never see the intermediate state.
* Happens-before is the union of per-operation program order and the
  synchronization edges of the announced atomics: an announced
  read/RMW of a location acquires the vector clock released by the
  last announced write/RMW of that location (CAS/TAS winner ->
  subsequent readers).

A **race** is a pair of accesses to the same location from different
operations, at least one a write, at least one plain, unordered by
happens-before.  The shipped multimaps announce every access and pass;
remove one yield (see the broken fixture in the test suite) and the
checker reports both the unannounced access and the races it causes.

Run ``python -m repro race-check`` for the exhaustive small-schedule
sweep over both multimap implementations.
"""

from __future__ import annotations

import contextlib
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Sequence

from . import multimap as _mm
from .atomics import AtomicCell, AtomicCounter, AtomicFlag
from .interleave import all_schedules

__all__ = [
    "Access",
    "Race",
    "RaceReport",
    "RaceChecker",
    "CheckSummary",
    "check_multimap",
    "multimap_scenario",
]


@dataclass(frozen=True)
class Location:
    """One shared memory cell: an instrumented object's field."""

    oid: int
    fname: str
    label: str = field(compare=False, default="")

    def __str__(self) -> str:
        return self.label or f"{self.fname}@{self.oid:#x}"


@dataclass
class Access:
    """One recorded shared-memory access."""

    op: str
    n: int  # 1-based program-order index within the op
    kind: str  # "read" | "write" | "rmw"
    loc: Location
    step: int  # global execution order
    announced: bool
    tag: Any  # the yielded tag that announced it (None when plain)
    clock: dict[str, int]  # vector-clock snapshot at the access
    #: source location that performed the access: (path, line, function
    #: name), resolved by walking past the instrumentation frames.  The
    #: soundness differential test checks these against the *static*
    #: shared-effect sites of ``repro.analyze``.
    site: tuple[str, int, str] | None = None

    @property
    def is_write(self) -> bool:
        return self.kind in ("write", "rmw")

    def describe(self) -> str:
        ann = f"announced {self.tag!r}" if self.announced else "UNANNOUNCED (plain)"
        return f"{self.op}#{self.n} {self.kind} {self.loc} [{ann}]"


def _happens_before(a: Access, b: Access) -> bool:
    return a.clock.get(a.op, 0) <= b.clock.get(a.op, 0)


@dataclass
class Race:
    """A pair of conflicting accesses unordered by happens-before."""

    loc: Location
    a: Access
    b: Access

    def describe(self) -> str:
        return f"race on {self.loc}: {self.a.describe()}  <->  {self.b.describe()}"


@dataclass
class RaceReport:
    """Everything observed while replaying one schedule."""

    schedule: tuple[str, ...]
    accesses: list[Access]
    races: list[Race]
    unannounced: list[Access]
    results: dict[str, Any]

    @property
    def ok(self) -> bool:
        return not self.races and not self.unannounced

    def describe(self) -> str:
        lines = [f"schedule {''.join(self.schedule) or '(empty)'}: "
                 f"{len(self.accesses)} accesses"]
        for acc in self.unannounced:
            lines.append(f"  yield-discipline: {acc.describe()}")
        for race in self.races:
            lines.append(f"  {race.describe()}")
        return "\n".join(lines)

    def sites(self) -> list[dict]:
        """The observed shared-access source sites, aggregated per
        (path, line) and JSON-serializable: the dynamic half of the
        static/dynamic soundness differential (every entry must appear
        in the static shared-effect set of ``repro effects``)."""
        return _aggregate_sites({}, self.accesses)


def _aggregate_sites(agg: dict, accesses: Iterable[Access]) -> list[dict]:
    """Merge ``accesses`` into ``agg`` (keyed by (path, line)) and
    return the aggregate as sorted JSON-serializable dicts."""
    for a in accesses:
        if a.site is None:
            continue
        path, line, func = a.site
        d = agg.setdefault((path, line), {
            "path": path, "line": line, "funcs": set(),
            "kinds": set(), "announced": True, "count": 0,
        })
        d["funcs"].add(func)
        d["kinds"].add(a.kind)
        d["announced"] = d["announced"] and a.announced
        d["count"] += 1
    return [
        {
            "path": d["path"],
            "line": d["line"],
            "funcs": sorted(d["funcs"]),
            "kinds": sorted(d["kinds"]),
            "announced": d["announced"],
            "count": d["count"],
        }
        for _, d in sorted(agg.items())
    ]


_THIS_FILE = __file__


def _caller_site() -> tuple[str, int, str] | None:
    """The first frame below the instrumentation: the source line that
    actually performed the access (the generator body for traced
    methods, the assignment statement for property writes)."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename == _THIS_FILE:
        frame = frame.f_back
    if frame is None:
        return None
    return (frame.f_code.co_filename, frame.f_lineno, frame.f_code.co_name)


class _Trace:
    """The active recording context; written to by the instrumented
    primitives, driven by :class:`RaceChecker`."""

    def __init__(self) -> None:
        self.accesses: list[Access] = []
        self.current_op: str | None = None
        self.pending_tag: Any = None
        self.first_in_step = False
        #: sparse vector clocks: missing component == 0
        self.clocks: dict[str, dict[str, int]] = {}
        self.released: dict[Location, dict[str, int]] = {}
        self._labels: dict[tuple[int, str], str] = {}

    def location(self, obj: Any, fname: str) -> Location:
        key = (id(obj), fname)
        if key not in self._labels:
            self._labels[key] = f"{type(obj).__name__}.{fname}#{len(self._labels)}"
        return Location(oid=id(obj), fname=fname, label=self._labels[key])

    def record(self, obj: Any, fname: str, kind: str) -> None:
        op = self.current_op
        if op is None:  # access outside a scheduled step (setup/teardown)
            return
        loc = self.location(obj, fname)
        announced = self.first_in_step and self.pending_tag is not None
        self.first_in_step = False
        clock = self.clocks.setdefault(op, {})
        clock[op] = clock.get(op, 0) + 1
        if announced and kind in ("read", "rmw"):
            for o, c in self.released.get(loc, {}).items():
                if c > clock.get(o, 0):
                    clock[o] = c
        access = Access(
            op=op,
            n=clock[op],
            kind=kind,
            loc=loc,
            step=len(self.accesses),
            announced=announced,
            tag=self.pending_tag if announced else None,
            clock=dict(clock),
            site=_caller_site(),
        )
        self.accesses.append(access)
        if announced and kind in ("write", "rmw"):
            self.released[loc] = dict(clock)


_ACTIVE: _Trace | None = None


def _record(obj: Any, fname: str, kind: str) -> None:
    if _ACTIVE is not None:
        _ACTIVE.record(obj, fname, kind)


def _wrap(cls: type, method: str, fname: str, kind: str):
    """Patch ``cls.method`` to record before delegating; returns the
    original for restoration."""
    orig = getattr(cls, method)

    def traced(self, *args, **kwargs):
        _record(self, fname, kind)
        return orig(self, *args, **kwargs)

    traced.__name__ = method
    setattr(cls, method, traced)
    return orig


def _wrap_attr(cls: type, attr: str):
    """Replace a plain attribute (slot or instance dict) with a
    recording property; returns a restore callable."""
    orig = cls.__dict__.get(attr)
    if orig is not None and hasattr(orig, "__get__"):
        getter = orig.__get__
        setter = orig.__set__
    else:  # instance-dict attribute
        def getter(obj, objtype=None):
            return obj.__dict__[attr]

        def setter(obj, value):
            obj.__dict__[attr] = value

    def get(obj):
        _record(obj, attr, "read")
        return getter(obj)

    def set_(obj, value):
        _record(obj, attr, "write")
        setter(obj, value)

    setattr(cls, attr, property(get, set_))

    def restore() -> None:
        if orig is None:
            delattr(cls, attr)
        else:
            setattr(cls, attr, orig)

    return restore


#: Plain (non-atomic) shared fields of the shipped structures; any
#: future lock-free structure registers its own via ``plain_attrs``.
DEFAULT_PLAIN_ATTRS: tuple[tuple[type, str], ...] = ((_mm._TASSlot, "data"),)

_ATOMIC_METHODS: tuple[tuple[type, str, str, str], ...] = (
    (AtomicCell, "load", "cell", "read"),
    (AtomicCell, "store", "cell", "write"),
    (AtomicCell, "compare_and_swap", "cell", "rmw"),
    (AtomicFlag, "test_and_set", "flag", "rmw"),
    (AtomicFlag, "is_set", "flag", "read"),
    (AtomicCounter, "fetch_add", "counter", "rmw"),
)


@contextlib.contextmanager
def instrumented(plain_attrs: Iterable[tuple[type, str]] = DEFAULT_PLAIN_ATTRS):
    """Context manager installing the access instrumentation."""
    saved = [(cls, m, _wrap(cls, m, fname, kind))
             for cls, m, fname, kind in _ATOMIC_METHODS]
    restores = [_wrap_attr(cls, attr) for cls, attr in plain_attrs]
    try:
        yield
    finally:
        for cls, m, orig in saved:
            setattr(cls, m, orig)
        for restore in restores:
            restore()


class RaceChecker:
    """Replays one schedule under instrumentation and reports races.

    ``plain_attrs`` lists (class, attribute) pairs whose plain reads and
    writes should be traced in addition to the atomic primitives.
    """

    def __init__(self, plain_attrs: Iterable[tuple[type, str]] = DEFAULT_PLAIN_ATTRS):
        self.plain_attrs = tuple(plain_attrs)

    def run(
        self,
        ops: dict[str, Callable[[], Generator]],
        schedule: Iterable[str] = (),
        after: Callable[[dict[str, Any]], dict[str, Callable[[], Generator]]] | None = None,
        max_steps: int = 10_000,
    ) -> RaceReport:
        """Drive ``ops`` under ``schedule`` (run_schedule semantics: the
        suffix completes in name order) with full access tracing.

        ``after``, when given, maps the finished results to follow-up
        operations (e.g. the loser's ``GetValue``) which run to
        completion *in the same trace*, so happens-before edges from the
        racing phase carry over.
        """
        global _ACTIVE
        schedule = tuple(schedule)
        trace = _Trace()
        with instrumented(self.plain_attrs):
            _ACTIVE = trace
            try:
                gens = {name: make() for name, make in ops.items()}
                pending: dict[str, Any] = {name: None for name in gens}
                results: dict[str, Any] = {}
                live = dict(gens)
                budget = max_steps

                def step(name: str) -> None:
                    nonlocal budget
                    gen = live.get(name)
                    if gen is None:
                        return
                    budget -= 1
                    if budget < 0:
                        raise RuntimeError(
                            f"operations did not finish in {max_steps} steps"
                        )
                    trace.current_op = name
                    trace.pending_tag = pending[name]
                    trace.first_in_step = True
                    try:
                        pending[name] = next(gen)
                    except StopIteration as stop:
                        results[name] = stop.value
                        del live[name]
                    finally:
                        trace.current_op = None

                def drain() -> None:
                    for name in sorted(live):
                        while name in live:
                            step(name)

                for name in schedule:
                    if not live:
                        break
                    step(name)
                drain()
                if after is not None:
                    extra = after(dict(results))
                    live = {name: make() for name, make in extra.items()}
                    pending.update({name: None for name in live})
                    drain()
            finally:
                _ACTIVE = None
        return self._analyse(schedule, trace, results)

    @staticmethod
    def _analyse(schedule, trace: _Trace, results: dict[str, Any]) -> RaceReport:
        unannounced = [a for a in trace.accesses if not a.announced]
        by_loc: dict[Location, list[Access]] = {}
        for a in trace.accesses:
            by_loc.setdefault(a.loc, []).append(a)
        races: list[Race] = []
        for loc, accs in by_loc.items():
            for i, a in enumerate(accs):
                for b in accs[i + 1:]:
                    if a.op == b.op:
                        continue
                    if not (a.is_write or b.is_write):
                        continue
                    if a.announced and b.announced:
                        continue  # atomic/atomic: never a data race
                    if _happens_before(a, b) or _happens_before(b, a):
                        continue
                    races.append(Race(loc=loc, a=a, b=b))
        return RaceReport(
            schedule=schedule,
            accesses=trace.accesses,
            races=races,
            unannounced=unannounced,
            results=results,
        )


@dataclass
class CheckSummary:
    """Aggregate of an exhaustive schedule sweep."""

    impl: str
    schedules: int
    racy_schedules: int
    first_failure: RaceReport | None
    #: union of the observed access sites over every replayed schedule
    #: (see :meth:`RaceReport.sites`)
    sites: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.racy_schedules == 0

    def describe(self) -> str:
        verdict = "ok" if self.ok else f"{self.racy_schedules} racy schedules"
        out = f"race-check[{self.impl}]: {self.schedules} schedules, {verdict}"
        if self.first_failure is not None:
            out += "\n" + self.first_failure.describe()
        return out


_IMPLS: dict[str, Callable[..., Any]] = {
    "cas": _mm.CASMultimap,
    "tas": _mm.TASMultimap,
}


def multimap_scenario(
    m: Any,
    n_ops: int = 2,
    keys: Sequence[Any] | None = None,
) -> dict[str, Callable[[], Generator]]:
    """The racing-InsertAndSet scenario of Theorems A.1/A.2 on an
    existing multimap: the first two ops share a ridge key, any further
    ops get distinct colliding keys."""
    if keys is None:
        keys = ["r1", "r1"] + [f"r{i}" for i in range(2, n_ops)]
    names = [chr(ord("p") + i) for i in range(n_ops)]
    return {
        name: (lambda k=keys[i], v=f"t{i}": m.insert_and_set_steps(k, v))
        for i, name in enumerate(names)
    }


def check_multimap(
    impl: str | type = "tas",
    capacity: int = 4,
    prefix_len: int = 8,
    n_ops: int = 2,
    collide: bool = True,
    check_get: bool = True,
    max_failures: int = 1,
) -> CheckSummary:
    """Exhaustively sweep every schedule prefix of ``prefix_len`` steps
    over the racing-insert scenario, race-checking each replay and also
    asserting Theorem A.1 (exactly one loser) on the results."""
    cls = _IMPLS[impl] if isinstance(impl, str) else impl
    label = impl if isinstance(impl, str) else cls.__name__
    checker = RaceChecker()
    names = [chr(ord("p") + i) for i in range(n_ops)]
    total = racy = 0
    first: RaceReport | None = None
    site_agg: dict = {}
    sites: list[dict] = []
    for schedule in all_schedules(names, prefix_len):
        kwargs = {"hash_fn": (lambda k: 0)} if collide else {}
        m = cls(capacity, **kwargs)

        def loser_get(results: dict[str, Any]) -> dict[str, Callable[[], Generator]]:
            if not check_get:
                return {}
            loser_value = "t0" if results["p"] is False else "t1"
            return {"g": lambda: m.get_value_steps("r1", loser_value)}

        report = checker.run(multimap_scenario(m, n_ops=n_ops), schedule, after=loser_get)
        total += 1
        sites = _aggregate_sites(site_agg, report.accesses)
        winners = sorted(v for k, v in report.results.items() if k in ("p", "q"))
        if winners != [False, True]:
            raise AssertionError(
                f"Theorem A.1 violated on schedule {schedule}: {report.results}"
            )
        if not report.ok:
            racy += 1
            if first is None or (not first.races and report.races):
                first = report
    return CheckSummary(
        impl=label, schedules=total, racy_schedules=racy, first_failure=first,
        sites=sites,
    )
