"""Atomic primitives with the semantics the paper's models assume.

The binary-forking model (Section 5.2 / Appendix A) is parameterised by
which consensus primitive threads may use:

* ``TestAndSet`` -- the weak primitive the model allows by default
  (Appendix A's Algorithm 5 needs only this);
* ``CompareAndSwap`` -- the stronger primitive used by Algorithm 4.

CPython cannot express true lock-free instructions, so each primitive is
a tiny critical section guarded by a per-cell lock; the *interface* and
linearizable behaviour match the paper, which is what the correctness
theorems (A.1/A.2) quantify over.  The same classes are also driven by
:mod:`repro.runtime.interleave`, which explores adversarial schedules at
a granularity real threads on two cores never would.
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = ["AtomicCell", "AtomicFlag", "AtomicCounter", "Mutex", "ShardedCounter"]


class Mutex:
    """A plain mutual-exclusion context manager.

    The one sanctioned way for code *outside* the runtime layer to
    build a critical section (``repro lint`` rule RPR002 forbids raw
    ``threading`` elsewhere): keeping every lock behind this interface
    means the race checker and any future instrumented runtime see all
    synchronization points.
    """

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()

    def __enter__(self) -> "Mutex":
        self._lock.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()


class AtomicCell:
    """A memory cell supporting atomic load / store / CompareAndSwap."""

    __slots__ = ("_value", "_lock")

    def __init__(self, value: Any = None):
        self._value = value
        self._lock = threading.Lock()

    def load(self) -> Any:
        return self._value

    def store(self, value: Any) -> None:
        with self._lock:
            self._value = value

    def compare_and_swap(self, expected: Any, new: Any) -> bool:
        """Atomically: if the cell holds ``expected``, replace it with
        ``new`` and return True; otherwise leave it unchanged and return
        False.

        "Holds expected" means identity, or equality between values of
        the *same* type.  The type check matters: plain ``==`` would let
        ``CAS(expected=0, ...)`` succeed on a cell holding ``False``
        (and ``CAS(expected=False)`` on ``0``, ``CAS(expected=1)`` on
        ``1.0``), because Python's numeric tower conflates them -- a
        real lost-update bug for multimaps keyed by small ints.
        """
        with self._lock:
            current = self._value
            if current is expected or (
                type(current) is type(expected) and current == expected
            ):
                self._value = new
                return True
            return False


class AtomicFlag:
    """A boolean flag supporting atomic TestAndSet.

    ``test_and_set`` returns the *previous* value, i.e. False exactly for
    the single winner -- matching the convention of Appendix A where
    ``TestAndSet`` succeeds once.
    """

    __slots__ = ("_set", "_lock")

    def __init__(self) -> None:
        self._set = False
        self._lock = threading.Lock()

    def test_and_set(self) -> bool:
        with self._lock:
            prev = self._set
            self._set = True
            return prev

    def is_set(self) -> bool:
        return self._set


class ShardedCounter:
    """A statistics counter safe to bump from many threads at once.

    Each thread increments a private shard (no contention, no lost
    updates from the non-atomic ``int +=`` read-modify-write); readers
    sum the shards under the registry lock.  ``reset()`` does not touch
    the shards -- it bumps an *epoch*, so a worker thread caught between
    "look up my shard" and "increment it" can at worst contribute a
    stale count to an epoch that already ended, never corrupt the new
    one.  Totals are exact whenever no increments are concurrently in
    flight (the quiescent points where tests and the experiment harness
    read them).
    """

    __slots__ = ("_lock", "_shards", "_epoch")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._epoch = 0
        # (epoch, thread id) -> per-thread count list [count]
        self._shards: dict[tuple[int, int], list[int]] = {}

    def add(self, delta: int = 1) -> None:
        key = (self._epoch, threading.get_ident())
        shard = self._shards.get(key)
        if shard is None:
            with self._lock:
                shard = self._shards.setdefault(key, [0])
        # Only this thread writes shard[0]; += here cannot lose updates.
        shard[0] += delta

    @property
    def value(self) -> int:
        with self._lock:
            epoch = self._epoch
            return sum(v[0] for (e, _), v in self._shards.items() if e == epoch)

    def reset(self) -> None:
        with self._lock:
            epoch = self._epoch
            self._epoch += 1
            # Drop completed-epoch shards so long sessions don't leak.
            self._shards = {
                k: v for k, v in self._shards.items() if k[0] != epoch
            }


class AtomicCounter:
    """Monotone counter with an atomic fetch-and-add."""

    __slots__ = ("_value", "_lock")

    def __init__(self, start: int = 0):
        self._value = start
        self._lock = threading.Lock()

    def fetch_add(self, delta: int = 1) -> int:
        with self._lock:
            prev = self._value
            self._value += delta
            return prev

    @property
    def value(self) -> int:
        return self._value
