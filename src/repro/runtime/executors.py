"""Pluggable executors for the parallel incremental hull.

Algorithm 3 is a dynamic task DAG: each ``ProcessRidge`` call may spawn
further calls once it creates a facet.  The paper analyses the same
algorithm under two machines -- a round-synchronous CRCW PRAM
(Theorem 5.4) and the asynchronous binary-forking model (Theorem 5.5).
Each executor here realises one execution discipline over an abstract
``fn(task) -> list[new tasks]`` step function:

:class:`SerialExecutor`
    Depth-first single-threaded order -- the degenerate schedule; useful
    as a determinism baseline and for measuring the task count alone.
:class:`RoundExecutor`
    Round-synchronous: all currently ready calls run in one round, calls
    they spawn run in the next.  The number of rounds equals the level
    count of the configuration dependence graph restricted to executed
    calls -- the exact quantity Theorems 1.1/5.3 bound by O(log n) whp.
:class:`ThreadExecutor`
    Real ``threading`` workers pulling from a shared queue -- the
    asynchronous discipline.  Wall-clock speedup is GIL-bound, but it
    exercises the concurrent multimap and the algorithm's tolerance to
    arbitrary schedules.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

__all__ = ["ExecutionStats", "SerialExecutor", "RoundExecutor", "ThreadExecutor"]

#: A step function consumes one task and returns the tasks it spawned.
StepFn = Callable[[Any], Sequence[Any]]


@dataclass
class ExecutionStats:
    """What an executor observed while draining the task DAG.

    The fault-tolerance counters (``retries`` onward) stay zero on
    fault-free runs; they are filled in by the chaos layer
    (:mod:`repro.runtime.chaos` and the checkpointing round loop in
    :mod:`repro.hull.parallel`) and by :func:`repro.hull.robust.robust_hull`,
    which records its predicate-escalation path in ``escalations``.
    """

    tasks_executed: int = 0
    rounds: int = 0                      # round-synchronous executors only
    round_sizes: list[int] = field(default_factory=list)
    # -- fault tolerance ---------------------------------------------------
    retries: int = 0             # task executions re-dispatched or re-run
    worker_deaths: int = 0       # thread workers that died mid-task
    checkpoints: int = 0         # round checkpoints taken
    rollbacks: int = 0           # rounds rolled back to their checkpoint
    tasks_aborted: int = 0       # injected mid-task crashes
    tasks_delayed: int = 0       # tasks deferred by injected delays
    escalations: list[str] = field(default_factory=list)
    # -- process supervision (repro.runtime.procexec) ----------------------
    deadline_kills: int = 0      # workers killed for missing a chunk deadline
    stall_kills: int = 0         # workers killed for heartbeat staleness
    respawns: int = 0            # replacement workers spawned
    quarantined: int = 0         # chunks poisoned out after max retries
    duplicates_dropped: int = 0  # duplicate/stale result messages ignored
    heartbeats: int = 0          # heartbeat messages observed
    # Visibility-kernel counters (batched sweeps, filter fallbacks,
    # sign-cache hits/misses), attached by repro.hull.parallel at the
    # end of a run; ``{"kernel": "scalar"}`` on scalar runs.
    kernel_stats: dict = field(default_factory=dict)

    @property
    def max_round_width(self) -> int:
        return max(self.round_sizes, default=0)

    @property
    def round_attempts(self) -> int:
        """Rounds including rolled-back attempts (E17's
        rounds-to-completion under faults)."""
        return self.rounds + self.rollbacks


class SerialExecutor:
    """LIFO depth-first execution on the calling thread."""

    def run(self, initial: Sequence[Any], fn: StepFn) -> ExecutionStats:
        stats = ExecutionStats()
        stack = list(initial)
        while stack:
            task = stack.pop()
            stats.tasks_executed += 1
            stack.extend(fn(task))
        return stats


class RoundExecutor:
    """Round-synchronous (PRAM-style) execution.

    Within a round, tasks run in creation order by default; pass a
    ``seed`` to shuffle each round and check schedule independence (the
    result of Algorithm 3 must not depend on intra-round order, since
    ready calls touch disjoint support pairs).
    """

    def __init__(self, seed: int | None = None):
        self._rng = np.random.default_rng(seed) if seed is not None else None

    def run(self, initial: Sequence[Any], fn: StepFn) -> ExecutionStats:
        stats = ExecutionStats()
        frontier = list(initial)
        while frontier:
            if self._rng is not None:
                idx = self._rng.permutation(len(frontier))
                frontier = [frontier[i] for i in idx]
            stats.rounds += 1
            stats.round_sizes.append(len(frontier))
            next_frontier: list[Any] = []
            for task in frontier:
                stats.tasks_executed += 1
                next_frontier.extend(fn(task))
            frontier = next_frontier
        return stats


class ThreadExecutor:
    """Asynchronous execution on ``n_workers`` real threads.

    The step function must be thread-safe; completion is detected with
    an in-flight counter so workers exit exactly when no task is queued
    or running.  Exceptions in workers are re-raised on the caller.
    """

    def __init__(self, n_workers: int = 4):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers

    def run(self, initial: Sequence[Any], fn: StepFn) -> ExecutionStats:
        stats = ExecutionStats()
        q: queue.SimpleQueue = queue.SimpleQueue()
        # Materialize once: a generator would be exhausted by the first
        # pass, leaving pending > 0 with an empty queue -- an eternal
        # done.wait() with no worker ever able to finish.
        initial = list(initial)
        pending = len(initial)
        lock = threading.Lock()
        done = threading.Event()
        errors: list[BaseException] = []
        executed = [0]

        for task in initial:
            q.put(task)
        if pending == 0:
            return stats

        def worker() -> None:
            nonlocal pending
            while not done.is_set():
                try:
                    task = q.get(timeout=0.05)
                except Exception:
                    continue
                try:
                    children = fn(task)
                except BaseException as exc:  # propagate to caller
                    with lock:
                        errors.append(exc)
                    done.set()
                    return
                with lock:
                    executed[0] += 1
                    pending += len(children) - 1
                    finished = pending == 0
                for child in children:
                    q.put(child)
                if finished:
                    done.set()
                    return

        threads = [threading.Thread(target=worker, daemon=True) for _ in range(self.n_workers)]
        for t in threads:
            t.start()
        done.wait()
        for t in threads:
            t.join(timeout=5.0)
        if errors:
            raise errors[0]
        stats.tasks_executed = executed[0]
        return stats
