"""Chaos runtime: applying :class:`~repro.runtime.faults.FaultPlan` to
the executors and the interleave simulator.

Three failure surfaces, one per execution discipline:

* :class:`ChaosThreadExecutor` -- real worker threads that *die* after
  dequeuing a task.  The supervisor detects death by liveness polling
  (not by the dying worker confessing), re-dispatches the lost task
  with bounded retry + exponential backoff, and spawns a replacement
  worker so the pool never shrinks.
* :func:`sweep_stalled_multimap` -- the lock-freedom obligation of the
  binary-forking model (Theorem 5.5 / Appendix A): freeze one multimap
  operation forever at every possible yield point, under exhaustive
  small schedules, and require every *other* operation to complete.
  A blocking implementation fails this sweep at the point where the
  frozen op holds the resource.
* :func:`chaos_hull_roundtrip` -- end-to-end: run Algorithm 3 under a
  fault plan (checkpointing round loop in :mod:`repro.hull.parallel`,
  or worker crashes under :class:`ChaosThreadExecutor`) and require the
  surviving hull to have exactly the facet set of the fault-free run.

``run_chaos_suite`` bundles all three behind ``repro chaos``.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from .backoff import BackoffPolicy
from .executors import ExecutionStats, RoundExecutor, ThreadExecutor
from .faults import CRASH, DELAY, FaultPlan, RetryBudgetExceeded
from .interleave import all_schedules, run_schedule
from .multimap import CASMultimap, TASMultimap
from .racecheck import multimap_scenario

__all__ = [
    "ChaosThreadExecutor",
    "StallSweepSummary",
    "sweep_stalled_multimap",
    "chaos_hull_roundtrip",
    "ChaosSuiteReport",
    "run_chaos_suite",
]


class ChaosThreadExecutor(ThreadExecutor):
    """A :class:`ThreadExecutor` whose workers can die mid-task.

    A crash fault fires right after a worker dequeues a task: the
    worker exits without executing it, acking it, or re-queuing it --
    the task is simply *lost*, as with a real worker process dying.
    The supervisor (the calling thread) detects the death by polling
    thread liveness against the in-flight registry, re-dispatches the
    lost task (``attempts + 1``, bounded by ``max_retries``, through
    the shared :class:`~repro.runtime.backoff.BackoffPolicy` --
    exponential growth with seeded jitter, capped), and spawns a
    replacement worker.  Delay faults make a worker sleep briefly
    before executing.

    ``backoff`` accepts either a :class:`BackoffPolicy` or a bare float
    base delay (legacy knob, wrapped into a policy seeded from the
    fault plan).

    With ``plan=None`` it behaves exactly like :class:`ThreadExecutor`.
    Genuine exceptions from ``fn`` still propagate to the caller and are
    never retried -- retry is for dead workers, not poisoned tasks.
    """

    def __init__(
        self,
        n_workers: int = 4,
        plan: FaultPlan | None = None,
        max_retries: int = 8,
        backoff: float | BackoffPolicy = 0.002,
    ):
        super().__init__(n_workers)
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.plan = plan
        self.max_retries = max_retries
        if not isinstance(backoff, BackoffPolicy):
            backoff = BackoffPolicy(
                base=float(backoff), seed=plan.seed if plan is not None else 0
            )
        self.backoff = backoff

    def run(self, initial: Sequence[Any], fn) -> ExecutionStats:
        stats = ExecutionStats()
        plan = self.plan or FaultPlan.none()
        q: queue.SimpleQueue = queue.SimpleQueue()
        initial = list(initial)
        pending = len(initial)
        lock = threading.Lock()
        done = threading.Event()
        errors: list[BaseException] = []
        executed = [0]
        delayed = [0]
        dispatch_seq = itertools.count()
        worker_seq = itertools.count()
        #: worker id -> (task, attempts) it currently holds; a dead
        #: thread with a registry entry is a detected worker death.
        inflight: dict[int, tuple[Any, int]] = {}
        threads: dict[int, threading.Thread] = {}

        for task in initial:
            q.put((task, 0))
        if pending == 0:
            return stats

        def worker(wid: int) -> None:
            nonlocal pending
            while not done.is_set():
                try:
                    env = q.get(timeout=0.02)
                except queue.Empty:
                    continue
                task, attempts = env
                with lock:
                    site = f"dispatch:{next(dispatch_seq)}"
                    inflight[wid] = env
                if plan.decide(DELAY, site):
                    with lock:
                        delayed[0] += 1
                    time.sleep(self.backoff.base)
                if plan.decide(CRASH, site):
                    # Die holding the task: no ack, no re-queue.  The
                    # supervisor's liveness poll must notice.
                    return
                try:
                    children = fn(task)
                except BaseException as exc:  # propagate to caller
                    with lock:
                        errors.append(exc)
                        inflight.pop(wid, None)
                    done.set()
                    return
                with lock:
                    executed[0] += 1
                    pending += len(children) - 1
                    finished = pending == 0
                    inflight.pop(wid, None)
                for child in children:
                    q.put((child, 0))
                if finished:
                    done.set()
                    return

        def spawn() -> None:
            wid = next(worker_seq)
            t = threading.Thread(target=worker, args=(wid,), daemon=True)
            threads[wid] = t
            t.start()

        for _ in range(self.n_workers):
            spawn()

        # Supervise: completion, crash detection, re-dispatch.
        while not done.wait(timeout=0.01):
            for wid in [w for w, t in threads.items() if not t.is_alive()]:
                threads.pop(wid)
                with lock:
                    env = inflight.pop(wid, None)
                if env is None:
                    continue  # exited cleanly (completion or error path)
                task, attempts = env
                stats.worker_deaths += 1
                if attempts + 1 > self.max_retries:
                    with lock:
                        errors.append(RetryBudgetExceeded(
                            f"task {task!r} lost {attempts + 1} times "
                            f"(max_retries={self.max_retries})"
                        ))
                    done.set()
                    break
                self.backoff.sleep(attempts, site=f"retry:w{wid}")
                stats.retries += 1
                q.put((task, attempts + 1))
                spawn()
        for t in threads.values():
            t.join(timeout=5.0)
        if errors:
            raise errors[0]
        stats.tasks_executed = executed[0]
        stats.tasks_delayed = delayed[0]
        return stats


# ---------------------------------------------------------------------------
# Lock-freedom: stalled multimap operations
# ---------------------------------------------------------------------------

_IMPLS: dict[str, type] = {"cas": CASMultimap, "tas": TASMultimap}


@dataclass
class StallSweepSummary:
    """Aggregate of a stall sweep: schedules x stall points."""

    impl: str
    runs: int = 0
    stall_points: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        verdict = "ok" if self.ok else f"{len(self.failures)} failures"
        out = (f"stall-sweep[{self.impl}]: {self.runs} runs over "
               f"{self.stall_points} stall points, {verdict}")
        for msg in self.failures[:3]:
            out += f"\n  {msg}"
        return out


def sweep_stalled_multimap(
    impl: str | type = "tas",
    capacity: int = 4,
    prefix_len: int = 5,
    n_ops: int = 2,
    collide: bool = True,
    max_stall: int = 8,
    max_failures: int = 5,
) -> StallSweepSummary:
    """Freeze each op at each yield point under exhaustive schedules.

    For every op ``o``, every stall budget ``k in [0, max_stall]`` and
    every schedule prefix, op ``o`` takes at most ``k`` steps and then
    freezes forever; the sweep asserts every *other* operation still
    runs to completion (Theorem 5.5's lock-freedom obligation -- a
    dead process never blocks system-wide progress).  When the stalled
    op is not one of the two racing inserts, Theorem A.1 (exactly one
    loser) is additionally asserted on the survivors.
    """
    cls = _IMPLS[impl] if isinstance(impl, str) else impl
    label = impl if isinstance(impl, str) else cls.__name__
    names = [chr(ord("p") + i) for i in range(n_ops)]
    summary = StallSweepSummary(impl=label)
    for stall_op in names:
        for stall_after in range(max_stall + 1):
            summary.stall_points += 1
            for schedule in all_schedules(names, prefix_len):
                kwargs = {"hash_fn": (lambda k: 0)} if collide else {}
                m = cls(capacity, **kwargs)
                gens = {name: make()
                        for name, make in multimap_scenario(m, n_ops=n_ops).items()}
                # max_steps is the livelock guard: a blocking structure
                # spinning on the frozen op's lock fails instead of
                # hanging the sweep.  Lock-free ops finish in
                # O(capacity) steps, so the bound is never binding.
                res = run_schedule(
                    gens, schedule, strict=False,
                    stall={stall_op: stall_after},
                    max_steps=20 * capacity + prefix_len,
                )
                summary.runs += 1
                tag = (f"{stall_op} stalled after {stall_after} steps, "
                       f"schedule {''.join(schedule) or '(empty)'}")
                for name, r in res.items():
                    if name != stall_op and not r.done:
                        summary.failures.append(
                            f"op {name} blocked [{tag}]: "
                            f"error={r.error!r} stalled={r.stalled}"
                        )
                if stall_op not in ("p", "q") and res["p"].done and res["q"].done:
                    winners = sorted([res["p"].value, res["q"].value])
                    if winners != [False, True]:
                        summary.failures.append(
                            f"A.1 violated among survivors [{tag}]: {winners}"
                        )
                if len(summary.failures) >= max_failures:
                    return summary
    return summary


# ---------------------------------------------------------------------------
# End-to-end: faulted hull runs
# ---------------------------------------------------------------------------

def chaos_hull_roundtrip(
    n: int = 120,
    d: int = 2,
    seed: int = 0,
    crash_rate: float = 0.2,
    delay_rate: float = 0.0,
    kill_rate: float = 0.0,
    stall_rate: float = 0.0,
    drop_rate: float = 0.0,
    dup_rate: float = 0.0,
    workload: str = "ball",
    executor_kind: str = "rounds",
    n_workers: int = 2,
) -> dict[str, Any]:
    """Run one hull instance fault-free and once under a fault plan;
    return a report asserting facet-set identity plus the fault/retry
    counters (the E17 measurements).

    ``executor_kind="procs"`` runs the supervised
    :class:`~repro.runtime.procexec.ProcessExecutor`: the process-level
    kinds (``kill``/``stall``/``drop``/``dup``/``delay``) fire inside
    real worker processes, and identity is additionally asserted on the
    event trace and work counters (the supervised loop claims
    bit-identical runs, not just facet-set identity).  Note the parent
    plan's ``counts()`` cannot see worker-side fires (each worker holds
    its own plan copy); the supervision counters are the ground truth.
    """
    # Imported lazily: repro.hull imports repro.runtime, not vice versa.
    from ..geometry import points as _points
    from ..hull import parallel_hull
    from ..hull.validate import facet_sets_global, validate_hull

    generators: dict[str, Callable] = {
        "ball": _points.uniform_ball,
        "cube": _points.uniform_cube,
        "sphere": _points.on_sphere,
        "gaussian": _points.gaussian,
    }
    pts = generators[workload](n, d, seed=seed)
    order = np.random.default_rng(seed + 1).permutation(n)
    plan = FaultPlan(seed=seed, crash_rate=crash_rate, delay_rate=delay_rate,
                     kill_rate=kill_rate, stall_rate=stall_rate,
                     drop_rate=drop_rate, dup_rate=dup_rate)

    base = parallel_hull(pts, order=order.copy(), executor=RoundExecutor())
    trace_identical = None
    if executor_kind == "rounds":
        run = parallel_hull(
            pts, order=order.copy(), executor=RoundExecutor(), fault_plan=plan
        )
    elif executor_kind == "threads":
        run = parallel_hull(
            pts, order=order.copy(),
            executor=ChaosThreadExecutor(n_workers, plan=plan),
            multimap="cas",
        )
    elif executor_kind == "procs":
        from .procexec import ProcessExecutor

        run = parallel_hull(
            pts, order=order.copy(),
            executor=ProcessExecutor(
                n_workers=n_workers, plan=plan, max_retries=6,
                chunk_timeout=10.0, hb_timeout=2.0,
            ),
        )
        trace_identical = bool(
            run.events == base.events
            and run.counters.as_dict() == base.counters.as_dict()
            and run.tracker.work == base.tracker.work
            and run.tracker.span == base.tracker.span
        )
    else:
        raise ValueError(f"unknown executor_kind {executor_kind!r}")
    validate_hull(run.facets, run.points)
    same = facet_sets_global(run.facets, run.order) == facet_sets_global(
        base.facets, base.order
    )
    s = run.exec_stats
    ok = bool(same) and trace_identical is not False
    report = {
        "workload": workload, "n": n, "d": d, "seed": seed,
        "executor": executor_kind,
        "crash_rate": crash_rate, "delay_rate": delay_rate,
        "kill_rate": kill_rate, "stall_rate": stall_rate,
        "drop_rate": drop_rate, "dup_rate": dup_rate,
        "same_facets": bool(same),
        "rounds": s.rounds, "rollbacks": s.rollbacks,
        "round_attempts": s.round_attempts,
        "checkpoints": s.checkpoints,
        "retries": s.retries, "worker_deaths": s.worker_deaths,
        "tasks_aborted": s.tasks_aborted, "tasks_delayed": s.tasks_delayed,
        "tasks_executed": s.tasks_executed,
        "faults_fired": plan.counts(),
        "baseline_rounds": base.exec_stats.rounds,
        "ok": ok,
    }
    if executor_kind == "procs":
        report.update({
            "trace_identical": trace_identical,
            "stall_kills": s.stall_kills, "deadline_kills": s.deadline_kills,
            "respawns": s.respawns, "duplicates_dropped": s.duplicates_dropped,
            "quarantined": s.quarantined, "heartbeats": s.heartbeats,
            "escalations": list(s.escalations),
        })
    return report


# ---------------------------------------------------------------------------
# The bundled suite behind `repro chaos`
# ---------------------------------------------------------------------------

#: Per-budget knobs: (stall sweeps, roundtrip instances).
_BUDGETS: dict[str, dict[str, Any]] = {
    "small": {
        "sweeps": [dict(n_ops=2, prefix_len=4, max_stall=6)],
        "rounds": [dict(n=80, d=2, crash_rate=0.2, delay_rate=0.1)],
        "threads": [dict(n=60, d=2, crash_rate=0.15, n_workers=2)],
        "procs": [dict(n=80, d=2, crash_rate=0.0, kill_rate=0.25,
                       n_workers=2)],
    },
    "medium": {
        "sweeps": [dict(n_ops=2, prefix_len=6, max_stall=8),
                   dict(n_ops=3, prefix_len=4, max_stall=6)],
        "rounds": [dict(n=200, d=2, crash_rate=0.1),
                   dict(n=150, d=3, crash_rate=0.3, delay_rate=0.1)],
        "threads": [dict(n=150, d=2, crash_rate=0.2, n_workers=3)],
        "procs": [dict(n=150, d=2, crash_rate=0.0, kill_rate=0.3,
                       n_workers=4),
                  dict(n=120, d=3, crash_rate=0.0, kill_rate=0.2,
                       stall_rate=0.05, drop_rate=0.1, dup_rate=0.1,
                       delay_rate=0.1, n_workers=2)],
    },
    "large": {
        "sweeps": [dict(n_ops=2, prefix_len=8, max_stall=10),
                   dict(n_ops=3, prefix_len=5, max_stall=8)],
        "rounds": [dict(n=400, d=2, crash_rate=0.1),
                   dict(n=300, d=3, crash_rate=0.2, delay_rate=0.2),
                   dict(n=200, d=2, crash_rate=0.4)],
        "threads": [dict(n=250, d=2, crash_rate=0.25, n_workers=4)],
        "procs": [dict(n=250, d=2, crash_rate=0.0, kill_rate=0.4,
                       n_workers=4),
                  dict(n=200, d=3, crash_rate=0.0, kill_rate=0.25,
                       stall_rate=0.1, drop_rate=0.15, dup_rate=0.15,
                       delay_rate=0.15, n_workers=4)],
    },
}

#: CLI executor-filter values -> roundtrip families in :data:`_BUDGETS`.
_EXECUTOR_FAMILIES = {"rounds": "rounds", "thread": "threads",
                      "process": "procs"}


@dataclass
class ChaosSuiteReport:
    """Everything `repro chaos` ran and observed."""

    seed: int
    budget: str
    stall_sweeps: list[StallSweepSummary] = field(default_factory=list)
    roundtrips: list[dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (all(s.ok for s in self.stall_sweeps)
                and all(r["ok"] for r in self.roundtrips))

    def as_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "ok": self.ok,
            "stall_sweeps": [
                {"impl": s.impl, "runs": s.runs,
                 "stall_points": s.stall_points, "ok": s.ok,
                 "failures": s.failures[:5]}
                for s in self.stall_sweeps
            ],
            "roundtrips": self.roundtrips,
        }


def run_chaos_suite(
    seed: int = 0, budget: str = "small", executor: str | None = None
) -> ChaosSuiteReport:
    """The `repro chaos` suite: stall sweeps over both multimaps, then
    checkpoint-resume, worker-crash, and worker-process-kill hull
    roundtrips.

    ``executor`` restricts the roundtrips to one family (``"rounds"``,
    ``"thread"``, or ``"process"``) and skips the executor-independent
    stall sweeps -- the `repro chaos --executor` / CI soak knob.  With
    ``None`` everything runs.
    """
    if budget not in _BUDGETS:
        raise ValueError(f"unknown budget {budget!r}; choose from {sorted(_BUDGETS)}")
    if executor is not None and executor not in _EXECUTOR_FAMILIES:
        raise ValueError(
            f"unknown executor {executor!r}; choose from "
            f"{sorted(_EXECUTOR_FAMILIES)}"
        )
    knobs = _BUDGETS[budget]
    report = ChaosSuiteReport(seed=seed, budget=budget)
    if executor is None:
        for impl in ("cas", "tas"):
            for sweep_kw in knobs["sweeps"]:
                report.stall_sweeps.append(
                    sweep_stalled_multimap(impl, **sweep_kw)
                )
    families = ([_EXECUTOR_FAMILIES[executor]] if executor is not None
                else ["rounds", "threads", "procs"])
    offsets = {"rounds": 0, "threads": 100, "procs": 200}
    for family in families:
        for i, kw in enumerate(knobs[family]):
            report.roundtrips.append(chaos_hull_roundtrip(
                seed=seed + offsets[family] + i, executor_kind=family, **kw
            ))
    return report
