"""The concurrent ridge -> facet multimap of Algorithms 4 and 5.

Algorithm 3 pairs the two facets incident on a ridge through a multimap
``M`` with two operations:

* ``InsertAndSet(r, t)``: the first facet to arrive registers itself and
  gets ``True``; the second gets ``False`` and thereby becomes
  responsible for processing the ridge;
* ``GetValue(r, t)``: called only by the loser, returns the *other*
  facet registered under ``r``.

Three interchangeable implementations:

:class:`DictMultimap`
    Plain-dict reference used by the deterministic executors.
:class:`CASMultimap`
    Algorithm 4 -- linear-probing table where a slot is claimed by a
    single ``CompareAndSwap`` writing the key-value pair.
:class:`TASMultimap`
    Algorithm 5 (Appendix A) -- each slot carries ``taken``/``check``
    flags; only ``TestAndSet`` is used, and the loser is elected by the
    second pass over the table.

The CAS/TAS variants are written as *step generators* (yielding before
every shared-memory operation) so :mod:`repro.runtime.interleave` can
drive them under adversarial schedules; the plain methods simply exhaust
the generator and are safe to call from real threads.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Hashable

from .atomics import AtomicCell, AtomicFlag

__all__ = ["MultimapFullError", "DictMultimap", "CASMultimap", "TASMultimap"]


class MultimapFullError(RuntimeError):
    """Raised when linear probing wraps all the way around the table."""


def _drive(gen: Generator) -> Any:
    """Run a step generator to completion and return its value."""
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


class DictMultimap:
    """Sequential reference multimap (used by deterministic executors).

    Also asserts the paper's structural invariant that at most two
    facets ever register under one ridge key.
    """

    def __init__(self) -> None:
        self._first: dict[Hashable, Any] = {}
        self._second: dict[Hashable, Any] = {}

    def insert_and_set(self, key: Hashable, value: Any) -> bool:
        if key in self._first:
            if key in self._second:
                raise AssertionError(
                    f"third InsertAndSet on ridge {key!r}: structural "
                    "invariant of Algorithm 3 violated"
                )
            self._second[key] = value
            return False
        self._first[key] = value
        return True

    def get_value(self, key: Hashable, value: Any) -> Any:
        other = self._first[key]
        if other is value:
            other = self._second[key]
        return other

    def __len__(self) -> int:
        return len(self._first)

    # -- checkpointing (chaos layer: round rollback) ---------------------

    def snapshot(self) -> Any:
        return (dict(self._first), dict(self._second))

    def restore(self, state: Any) -> None:
        first, second = state
        self._first = dict(first)
        self._second = dict(second)


class CASMultimap:
    """Algorithm 4: linear-probing hash table claimed via CompareAndSwap.

    Each slot atomically holds ``None`` or the pair ``(key, value)``;
    claiming a slot and publishing its contents is a single CAS, so
    readers never observe a torn entry.
    """

    def __init__(self, capacity: int, hash_fn: Callable[[Hashable], int] | None = None):
        if capacity < 2:
            raise ValueError("capacity must be >= 2")
        self.capacity = capacity
        self._cells = [AtomicCell(None) for _ in range(capacity)]
        self._hash = hash_fn or (lambda k: hash(k) % capacity)

    # -- step generators (preemption points for the interleaver) --------

    def insert_and_set_steps(self, key: Hashable, value: Any) -> Generator:
        i = self._hash(key) % self.capacity
        probes = 0
        while True:
            yield ("cas", i)
            if self._cells[i].compare_and_swap(None, (key, value)):
                return True
            yield ("read", i)
            stored = self._cells[i].load()
            if stored is not None and stored[0] == key:
                return False
            i = (i + 1) % self.capacity
            probes += 1
            if probes > self.capacity:
                raise MultimapFullError("CASMultimap wrapped around")

    def get_value_steps(self, key: Hashable, value: Any) -> Generator:
        i = self._hash(key) % self.capacity
        probes = 0
        while True:
            yield ("read", i)
            stored = self._cells[i].load()
            if stored is not None and stored[0] == key:
                return stored[1]
            i = (i + 1) % self.capacity
            probes += 1
            if probes > self.capacity:
                raise MultimapFullError("GetValue scanned the full table")

    # -- synchronous interface -------------------------------------------

    def insert_and_set(self, key: Hashable, value: Any) -> bool:
        return _drive(self.insert_and_set_steps(key, value))

    def get_value(self, key: Hashable, value: Any) -> Any:
        return _drive(self.get_value_steps(key, value))

    # -- checkpointing (chaos layer: round rollback) ---------------------
    # Quiescent-state only: snapshot/restore go through the atomic
    # interfaces and must not race concurrent operations.

    def snapshot(self) -> Any:
        return [cell.load() for cell in self._cells]

    def restore(self, state: Any) -> None:
        self._cells = [AtomicCell(v) for v in state]


class _TASSlot:
    __slots__ = ("taken", "check", "data")

    def __init__(self) -> None:
        self.taken = AtomicFlag()
        self.check = AtomicFlag()
        self.data: tuple[Hashable, Any] | None = None


class TASMultimap:
    """Algorithm 5 (Appendix A): the TestAndSet-only multimap.

    Pass one reserves a slot by TAS on ``taken`` and then writes
    ``data``; pass two rescans from the hash index and elects the loser
    by TAS on the ``check`` flag of every slot holding the key.  Only
    the weak TestAndSet primitive is used, matching the binary-forking
    model's default.

    Linear-probing precondition (as in the paper, which sizes the table
    a constant factor above the load): strictly fewer entries than
    ``capacity``.  Pass two terminates at the first never-taken slot; a
    *full* table forces the wrap-around fallback, under which two
    racing inserts can each lose a ``check`` TAS to the other and both
    return False -- found by ``tools/fuzz.py``'s race-checked multimap
    fuzzing at ``capacity == n_entries``.
    """

    def __init__(self, capacity: int, hash_fn: Callable[[Hashable], int] | None = None):
        if capacity < 2:
            raise ValueError("capacity must be >= 2")
        self.capacity = capacity
        self._slots = [_TASSlot() for _ in range(capacity)]
        self._hash = hash_fn or (lambda k: hash(k) % capacity)

    def insert_and_set_steps(self, key: Hashable, value: Any) -> Generator:
        # Pass 1: reserve a slot and publish the entry (Lines 2-5).
        i = self._hash(key) % self.capacity
        probes = 0
        while True:
            yield ("tas-taken", i)
            if not self._slots[i].taken.test_and_set():
                break
            i = (i + 1) % self.capacity
            probes += 1
            if probes > self.capacity:
                raise MultimapFullError("TASMultimap wrapped around")
        yield ("write-data", i)
        self._slots[i].data = (key, value)
        # Pass 2: rescan from the hash index; TAS the check flag of every
        # slot holding our key; losing a TAS means the other facet got
        # there first and we return False (Lines 6-12).
        j = self._hash(key) % self.capacity
        probes = 0
        while True:
            yield ("read-taken", j)
            if not self._slots[j].taken.is_set():
                return True
            yield ("read-data", j)
            data = self._slots[j].data
            if data is not None and data[0] == key:
                yield ("tas-check", j)
                if self._slots[j].check.test_and_set():
                    return False
            j = (j + 1) % self.capacity
            probes += 1
            if probes > self.capacity:
                return True

    def get_value_steps(self, key: Hashable, value: Any) -> Generator:
        i = self._hash(key) % self.capacity
        probes = 0
        while True:
            yield ("read-taken", i)
            if not self._slots[i].taken.is_set():
                raise LookupError(f"key {key!r} not found in TASMultimap")
            yield ("read-data", i)
            data = self._slots[i].data
            if data is not None and data[0] == key and data[1] is not value:
                return data[1]
            i = (i + 1) % self.capacity
            probes += 1
            if probes > self.capacity:
                raise LookupError(f"no second value for key {key!r}")

    def insert_and_set(self, key: Hashable, value: Any) -> bool:
        return _drive(self.insert_and_set_steps(key, value))

    def get_value(self, key: Hashable, value: Any) -> Any:
        return _drive(self.get_value_steps(key, value))

    # -- checkpointing (chaos layer: round rollback) ---------------------
    # Quiescent-state only, as for CASMultimap: flags are re-armed via
    # TestAndSet on fresh slots, never by poking atomic internals.

    def snapshot(self) -> Any:
        return [
            (s.taken.is_set(), s.check.is_set(), s.data) for s in self._slots
        ]

    def restore(self, state: Any) -> None:
        slots = []
        for taken, check, data in state:
            slot = _TASSlot()
            if taken:
                slot.taken.test_and_set()
            if check:
                slot.check.test_and_set()
            slot.data = data
            slots.append(slot)
        self._slots = slots
