"""Round-counting CRCW PRAM primitives.

Theorem 5.4 charges each round of Algorithm 3 O(log* n) span on an
arbitrary-CRCW PRAM, relying on three classic primitives: parallel hash
table operations [39], finding the minimum in O(1) rounds whp [60], and
approximate compaction / prefix sums [41].  This module makes those
costs *executable*: a :class:`PRAM` machine counts synchronous rounds
and total operations, and each primitive is implemented as an actual
data-parallel algorithm over it, so the per-round costs in the span
accounting are measured rather than asserted.

Where the literature algorithm is randomized (constant-round min,
scattered hash insertion), we implement the standard randomized scheme
and *measure* its round count; the tests check the measured rounds
against the analytic target (O(1) / O(log* n)-ish / O(log n)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "PRAM",
    "prefix_sum",
    "compact",
    "pram_min",
    "ParallelHashTable",
    "log_star",
]


def log_star(n: float) -> int:
    """The iterated logarithm log* n (base 2)."""
    count = 0
    while n > 1.0:
        n = math.log2(n)
        count += 1
    return count


@dataclass
class PRAM:
    """A synchronous arbitrary-CRCW PRAM cost model.

    ``step(ops)`` executes one synchronous round in which ``ops``
    processors each perform O(1) work.  ``rounds`` is the span,
    ``work`` the processor-time product actually used.
    """

    rounds: int = 0
    work: int = 0
    log: list = field(default_factory=list)

    def step(self, ops: int, label: str = "") -> None:
        if ops < 0:
            raise ValueError("ops must be >= 0")
        self.rounds += 1
        self.work += int(ops)
        if label:
            self.log.append((self.rounds, label, int(ops)))

    def reset(self) -> None:
        self.rounds = 0
        self.work = 0
        self.log.clear()


def prefix_sum(pram: PRAM, values: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum by the classic up/down tree sweeps:
    2*ceil(log2 n) rounds, O(n) work."""
    a = np.asarray(values, dtype=np.int64).copy()
    n = a.size
    if n == 0:
        return a
    levels = max(1, math.ceil(math.log2(n))) if n > 1 else 0
    size = 1 << levels
    tree = np.zeros(2 * size, dtype=np.int64)
    tree[size: size + n] = a
    # Up sweep.
    for lvl in range(levels, 0, -1):
        lo, hi = 1 << (lvl - 1), 1 << lvl
        idx = np.arange(lo, hi)
        tree[idx] = tree[2 * idx] + tree[2 * idx + 1]
        pram.step(idx.size, "prefix:up")
    # Down sweep.
    down = np.zeros(2 * size, dtype=np.int64)
    for lvl in range(1, levels + 1):
        lo, hi = 1 << (lvl - 1), 1 << lvl
        idx = np.arange(lo, hi)
        down[2 * idx] = down[idx]
        down[2 * idx + 1] = down[idx] + tree[2 * idx]
        pram.step(idx.size, "prefix:down")
    return down[size: size + n]


def compact(pram: PRAM, flags: np.ndarray) -> np.ndarray:
    """Indices of the set flags, packed densely.

    Implemented with the prefix-sum scan (O(log n) rounds).  The paper
    cites *approximate* compaction [41] at O(log* n) span; we use the
    simpler exact scan and record the distinction in EXPERIMENTS.md --
    the span shape claims are checked against the measured rounds.
    """
    flags = np.asarray(flags, dtype=bool)
    offsets = prefix_sum(pram, flags.astype(np.int64))
    out = np.empty(int(flags.sum()), dtype=np.int64)
    idx = np.nonzero(flags)[0]
    out[offsets[idx]] = idx
    pram.step(flags.size, "compact:scatter")
    return out


def pram_min(pram: PRAM, values: np.ndarray, rng: np.random.Generator) -> int:
    """Minimum of ``values`` in O(1) expected rounds on an arbitrary-CRCW
    PRAM with n processors (the standard random-sampling scheme [60]):

    repeat: sample ~sqrt(remaining) candidates, take their minimum by
    all-pairs comparison (one concurrent-write round with <= n
    processors), then keep only elements below it.  Each iteration kills
    all but ~sqrt of the remaining elements whp, so the expected number
    of iterations is O(1) (doubly-logarithmic worst case).
    """
    a = np.asarray(values)
    if a.size == 0:
        raise ValueError("empty array has no minimum")
    n = a.size
    live = a
    while live.size > 1:
        k = max(1, int(math.isqrt(live.size)))
        sample = live[rng.integers(0, live.size, size=k)] if live.size > k else live
        # All-pairs min of the sample: k^2 <= n processors, one round.
        m = sample.min()
        pram.step(min(n, sample.size * sample.size), "min:sample")
        # Filter survivors in one round.
        live = live[live < m]
        pram.step(live.size + 1, "min:filter")
        if live.size == 0:
            return int(m) if np.issubdtype(a.dtype, np.integer) else m
    return int(live[0]) if np.issubdtype(a.dtype, np.integer) else live[0]


class ParallelHashTable:
    """Batch-parallel hash table insertion with round counting.

    All pending keys attempt a slot each round (hash of (key, attempt));
    per-slot collisions are resolved by the arbitrary-CRCW convention
    (one winner), losers retry next round.  With constant load factor
    the number of rounds is O(log log n) whp -- measured by the tests,
    standing in for the O(log* n) dictionary of [39] in the span
    accounting.
    """

    def __init__(self, capacity: int, seed: int = 0):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.slots = np.full(capacity, -1, dtype=np.int64)
        self._rng = np.random.default_rng(seed)
        self._salts = self._rng.integers(1, 2**31, size=64)

    def _hash(self, keys: np.ndarray, attempt: int) -> np.ndarray:
        salt = int(self._salts[attempt % len(self._salts)])
        return ((keys * 2654435761 + salt) % (2**31)) % self.capacity

    def insert_all(self, pram: PRAM, keys: np.ndarray) -> dict[int, int]:
        """Insert distinct non-negative keys; returns key -> slot.
        Raises if the table cannot absorb them (load factor too high)."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size > self.capacity:
            raise ValueError("more keys than capacity")
        placed: dict[int, int] = {}
        pending = keys
        for attempt in range(4 * len(self._salts)):
            if pending.size == 0:
                return placed
            idx = self._hash(pending, attempt)
            # Arbitrary-CRCW write: last writer per free slot wins.
            free = self.slots[idx] == -1
            order = np.arange(pending.size)
            winners: dict[int, int] = {}
            for pos, key in zip(idx[free], pending[free]):
                winners[int(pos)] = int(key)  # later writes overwrite: arbitrary
            for pos, key in winners.items():
                self.slots[pos] = key
                placed[key] = pos
            pram.step(pending.size, "hash:insert")
            won = np.array([placed.get(int(k), -1) != -1 for k in pending])
            pending = pending[~won]
        raise RuntimeError("hash insertion did not converge; raise capacity")
