"""Work-stealing execution simulator for the binary-forking model.

Theorem 5.5 states Algorithm 3's cost in the binary-forking model
[13], whose canonical scheduler is randomized work stealing: each
worker owns a deque, pushes spawned tasks to its bottom, and steals
from the top of a random victim when idle.  The classic bounds are
``T_P <= W/P + O(S)`` in expectation and ``O(P * S)`` total steals.

This module simulates that scheduler, event-driven and deterministic
given a seed, over any recorded :class:`WorkSpanTracker` DAG (e.g. the
one a parallel hull run produces) -- so the paper's scheduling story is
executable, with measured makespans and steal counts the tests compare
against the analytic shapes.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

import numpy as np

from .workspan import WorkSpanTracker

__all__ = ["StealStats", "simulate_work_stealing"]

#: Cost of one (successful or failed) steal attempt, in time units.
STEAL_COST = 1


@dataclass
class StealStats:
    """Outcome of one simulated work-stealing execution."""

    processors: int
    makespan: int
    busy: int            # total task time executed (== W)
    steals: int          # successful steals
    failed_steals: int   # attempts on empty victims

    @property
    def utilisation(self) -> float:
        return self.busy / (self.processors * self.makespan) if self.makespan else 1.0


def simulate_work_stealing(
    tracker: WorkSpanTracker,
    processors: int,
    seed: int = 0,
) -> StealStats:
    """Simulate randomized work stealing over the tracker's task DAG.

    Spawn discipline: when a task finishes, every task it newly enables
    is pushed to the finishing worker's deque bottom (the binary-forking
    "child goes to the spawning worker" rule); initial roots are dealt
    round-robin.  An idle worker steals from the *top* of a uniformly
    random victim; each attempt (hit or miss) costs :data:`STEAL_COST`.
    """
    if processors < 1:
        raise ValueError("processors must be >= 1")
    tasks = tracker._tasks  # noqa: SLF001 - simulator is a friend module
    n = len(tasks)
    if n == 0:
        return StealStats(processors=processors, makespan=0, busy=0,
                          steals=0, failed_steals=0)
    rng = np.random.default_rng(seed)
    indeg = {tid: len(t.deps) for tid, t in tasks.items()}
    dependents: dict[int, list[int]] = {tid: [] for tid in tasks}
    for tid, t in tasks.items():
        for d in t.deps:
            dependents[d].append(tid)

    deques: list[deque[int]] = [deque() for _ in range(processors)]
    roots = sorted(tid for tid, k in indeg.items() if k == 0)
    for i, tid in enumerate(roots):
        deques[i % processors].append(tid)

    # Worker state: (next_free_time, worker_id); all start at t=0.
    events = [(0, w) for w in range(processors)]
    heapq.heapify(events)
    running: dict[int, int] = {}  # worker -> tid being executed
    done = 0
    busy = 0
    steals = 0
    failed = 0
    makespan = 0

    while done < n:
        time, w = heapq.heappop(events)
        tid = running.pop(w, None)
        if tid is not None:
            done += 1
            makespan = max(makespan, time)
            for dep in dependents[tid]:
                indeg[dep] -= 1
                if indeg[dep] == 0:
                    deques[w].append(dep)
            if done == n:
                break
        # Acquire next work: own deque bottom, else steal.
        if deques[w]:
            nxt = deques[w].pop()
        else:
            victims = [v for v in range(processors) if v != w and deques[v]]
            if not victims:
                # Nothing stealable; retry after one steal-attempt tick
                # (bounded: progress is guaranteed while tasks run).
                failed += 1
                heapq.heappush(events, (time + STEAL_COST, w))
                continue
            victim = int(victims[rng.integers(0, len(victims))])
            nxt = deques[victim].popleft()  # steal from the top
            steals += 1
            time += STEAL_COST
        cost = tasks[nxt].cost
        busy += cost
        running[w] = nxt
        heapq.heappush(events, (time + cost, w))

    return StealStats(
        processors=processors,
        makespan=makespan,
        busy=busy,
        steals=steals,
        failed_steals=failed,
    )
