"""Fault-tolerant multiprocess execution of hull rounds.

This is the one place in the tree where parallelism is *real*: worker
**processes** (own PIDs, no GIL) evaluate chunks of the ready frontier
over NumPy arrays placed in POSIX shared memory, while the parent
supervises them the way the chaos layer taught us workers must be
supervised -- by *observation*, never by trusting a worker to confess:

* **Liveness polling.**  Each worker's process sentinel is multiplexed
  into the supervisor's wait loop (the real-PID analogue of
  :class:`~repro.runtime.chaos.ChaosThreadExecutor`'s
  ``Thread.is_alive`` poll).  A SIGKILLed worker is detected on the
  next loop iteration; whatever chunk it held is re-dispatched.
* **Heartbeats.**  Workers send a heartbeat after every task inside a
  chunk (and while idle).  A process that is *alive but frozen* -- the
  ``stall`` fault, a real possibility with a wedged malloc or a page
  fault storm -- stops heartbeating and is killed by the supervisor
  once its heartbeat goes stale.
* **Deadlines.**  Every dispatched chunk carries a deadline as the
  backstop for faults heartbeats cannot see (a *dropped* result
  message leaves a healthy, silent worker).  Deadline expiry kills the
  worker and re-dispatches.
* **Bounded retry with backoff + jitter.**  Lost chunks are retried
  through the shared :class:`~repro.runtime.backoff.BackoffPolicy`;
  after ``max_retries`` losses a chunk is **quarantined** as poison
  (:class:`ChunkQuarantined`), at which point callers degrade down the
  executor ladder (``process -> thread -> serial`` in
  :func:`repro.hull.parallel.parallel_hull`).
* **Idempotent result application.**  Results are applied exactly once
  per chunk, so *duplicated* result messages (the ``dup`` fault, a
  retransmission) and stale late arrivals are dropped and counted.

Worker-side faults (``kill``/``stall``/``drop``/``dup``/``delay``) are
driven by the same seeded site-hash :class:`~repro.runtime.faults.FaultPlan`
as every other chaos surface; sites include the dispatch attempt so a
retried chunk draws a fresh coin (see :mod:`repro.runtime.faults`).

The compute function must be **pure** (a function of the shared arrays
and the chunk payload only): purity is what makes at-least-once
delivery, replays after rollback, and the degradation ladder all
observationally equivalent to a fault-free serial run.
"""

from __future__ import annotations

import os
import pickle
import signal
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from multiprocessing import get_context, shared_memory
from typing import Any, Callable, Sequence

import numpy as np

from .backoff import BackoffPolicy
from .executors import ExecutionStats
from .faults import DELAY, DROP, DUP, KILL, STALL, FaultPlan, _unit_hash

__all__ = [
    "SharedArray",
    "ExecutorBrokenError",
    "ChunkQuarantined",
    "ProcessExecutor",
    "active_segments",
]

_SHM_PREFIX = "repro_shm_"

#: Names of shared-memory segments created (and not yet unlinked) by
#: this process.  The leak tests assert this drains to empty on the
#: success, crash, and KeyboardInterrupt paths alike.
_ACTIVE_SEGMENTS: set[str] = set()


def active_segments() -> frozenset[str]:
    """Shared-memory segments currently owned (created, not unlinked)."""
    return frozenset(_ACTIVE_SEGMENTS)


class ExecutorBrokenError(RuntimeError):
    """The worker pool cannot make progress (respawn budget exhausted,
    spawn failure, or a wedged round): callers should degrade down the
    executor ladder rather than retry."""


class ChunkQuarantined(RuntimeError):
    """A chunk was lost more than ``max_retries`` times -- poison, or a
    fault storm; either way this executor refuses it.  Carries the
    chunk ids so callers can re-run them under a safer discipline."""

    def __init__(self, chunk_ids: list[int], reasons: list[str]):
        self.chunk_ids = chunk_ids
        self.reasons = reasons
        super().__init__(
            f"{len(chunk_ids)} chunk(s) quarantined after retry budget: "
            + "; ".join(reasons[:3])
        )


class SharedArray:
    """A NumPy array in a POSIX shared-memory segment.

    The creating side *owns* the segment (tracked in
    :func:`active_segments`, unlinked exactly once); workers attach by
    descriptor and never unlink.  ``snapshot``/``restore`` give the
    chaos layer byte-exact checkpoint round-trips of shared state.
    """

    def __init__(self, shm: shared_memory.SharedMemory,
                 shape: tuple[int, ...], dtype: np.dtype, owner: bool):
        self._shm = shm
        self._shape = tuple(shape)
        self._dtype = np.dtype(dtype)
        self._owner = owner
        self._closed = False

    # -- construction ------------------------------------------------------

    @classmethod
    def create(cls, arr: np.ndarray) -> "SharedArray":
        arr = np.ascontiguousarray(arr)
        name = f"{_SHM_PREFIX}{os.getpid()}_{id(arr):x}_{len(_ACTIVE_SEGMENTS)}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, arr.nbytes)
        )
        _ACTIVE_SEGMENTS.add(shm.name)
        out = cls(shm, arr.shape, arr.dtype, owner=True)
        out.array[...] = arr
        return out

    @classmethod
    def attach(cls, desc: tuple[str, tuple[int, ...], str]) -> "SharedArray":
        name, shape, dtype = desc
        # CPython's resource tracker registers *attachments* too
        # (bpo-39959): a forked worker would erase the parent's
        # registration on unregister, and a spawned worker's own
        # tracker would unlink the parent's segment at worker exit.
        # Ownership is strictly the parent's, so suppress registration
        # for the duration of the attach (workers attach once, from a
        # single thread, before serving any chunk).
        from multiprocessing import resource_tracker

        orig_register = resource_tracker.register
        try:
            resource_tracker.register = lambda *a, **k: None
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig_register
        return cls(shm, shape, dtype, owner=False)

    def descriptor(self) -> tuple[str, tuple[int, ...], str]:
        return (self._shm.name, self._shape, self._dtype.str)

    # -- access ------------------------------------------------------------

    @property
    def array(self) -> np.ndarray:
        if self._closed:
            raise ValueError("SharedArray is closed")
        n = int(np.prod(self._shape, dtype=np.int64)) if self._shape else 1
        return np.frombuffer(
            self._shm.buf, dtype=self._dtype, count=n
        ).reshape(self._shape)

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> bytes:
        """Byte-exact copy of the current contents (checkpoint)."""
        return self.array.tobytes()

    def restore(self, buf: bytes) -> None:
        """Overwrite the contents from a :meth:`snapshot` (rollback)."""
        expect = self.array.nbytes
        if len(buf) != expect:
            raise ValueError(f"snapshot is {len(buf)} bytes, segment holds {expect}")
        self.array[...] = np.frombuffer(buf, dtype=self._dtype).reshape(self._shape)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Unmap (and, for the owner, unlink) the segment.  Idempotent
        and exception-safe: called from ``finally`` blocks on the
        success, crash, and KeyboardInterrupt paths."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except Exception:
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
            finally:
                _ACTIVE_SEGMENTS.discard(self._shm.name)

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # last-resort leak guard
        try:
            self.close()
        except Exception:
            pass


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

def _worker_main(
    wid: int,
    conn,
    descs: dict[str, tuple],
    fn: Callable[[dict[str, np.ndarray], Any], Any],
    plan: FaultPlan | None,
    modes: dict[str, bool],
    hb_interval: float,
    slow_s: float,
) -> None:
    """Worker loop: attach shared arrays, then serve chunk messages.

    Protocol (worker -> parent): ``("hb", wid, chunk_id, attempt)``
    progress beats, ``("result", chunk_id, attempt, results)`` exactly
    one per healthy chunk, ``("error", chunk_id, attempt, msg)`` for a
    genuine exception from ``fn`` (the worker survives it; the parent
    decides whether the chunk is poison).
    """
    # Re-arm global predicate modes in the child.  Under the default
    # fork start method these are inherited anyway; under spawn they
    # must be re-entered explicitly or an exact/SoS run would silently
    # compute different bits in workers than in the parent.
    import contextlib

    from ..geometry.hyperplane import exact_mode
    from ..geometry.perturb import sos_mode

    stack = contextlib.ExitStack()
    if modes.get("exact"):
        stack.enter_context(exact_mode())
    if modes.get("sos"):
        stack.enter_context(sos_mode())

    arrays: dict[str, np.ndarray] = {}
    attached = []
    try:
        for name, desc in descs.items():
            sa = SharedArray.attach(desc)
            attached.append(sa)
            arrays[name] = sa.array
        while True:
            if not conn.poll(hb_interval):
                try:
                    conn.send(("hb", wid, -1, -1))
                except (BrokenPipeError, OSError):
                    return
                continue
            msg = conn.recv()
            if msg[0] == "stop":
                return
            _, rnd, chunk_id, attempt, site_prefix, payload = msg
            # Fault coins are drawn once per *chunk attempt* (the site
            # carries the attempt number, so a retried chunk re-coins),
            # and a fired kill/stall/delay strikes mid-chunk at a
            # hash-derived task index.
            kill_at = stall_at = delay_at = -1
            if plan is not None and payload:

                def _strike(kind: str) -> int:
                    if not plan.decide(kind, site_prefix):
                        return -1
                    return int(_unit_hash(plan.seed, kind + "@at", site_prefix)
                               * len(payload))

                delay_at = _strike(DELAY)
                stall_at = _strike(STALL)
                kill_at = _strike(KILL)
            results: list[Any] = []
            failed = None
            last_beat = time.monotonic()
            for i, item in enumerate(payload):
                if i == delay_at:
                    time.sleep(slow_s)
                if i == stall_at:
                    # Alive but frozen: only heartbeat staleness or the
                    # chunk deadline can catch this.
                    while True:
                        time.sleep(3600)
                if i == kill_at:
                    os.kill(os.getpid(), signal.SIGKILL)
                try:
                    results.append(fn(arrays, item))
                except BaseException as exc:
                    failed = f"{type(exc).__name__}: {exc}"
                    break
                now = time.monotonic()
                if now - last_beat >= hb_interval:
                    conn.send(("hb", wid, chunk_id, attempt))
                    last_beat = now
            if failed is not None:
                conn.send(("error", rnd, chunk_id, attempt, failed))
                continue
            out = ("result", rnd, chunk_id, attempt, results)
            if plan is not None and plan.decide(DROP, site_prefix):
                continue  # computed, never sent: the deadline must fire
            conn.send(out)
            if plan is not None and plan.decide(DUP, site_prefix):
                conn.send(out)  # retransmission: applied at most once
    except (EOFError, KeyboardInterrupt):
        return
    finally:
        for sa in attached:
            sa.close()
        stack.close()


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

@dataclass
class _Worker:
    wid: int
    proc: Any
    conn: Any
    busy: tuple[int, int] | None = None   # (chunk_id, attempt)
    deadline: float = 0.0
    last_hb: float = 0.0


@dataclass
class _RoundState:
    """Book-keeping for one ``run_round`` call."""

    n_chunks: int
    rnd: int = 0                 # round sequence number (stale-message filter)
    completed: dict[int, list] = field(default_factory=dict)
    attempts: dict[int, int] = field(default_factory=dict)
    failures: dict[int, list[str]] = field(default_factory=dict)
    pending: list[tuple[float, int]] = field(default_factory=list)  # (ready_at, chunk)
    quarantined: dict[int, str] = field(default_factory=dict)

    @property
    def settled(self) -> bool:
        return len(self.completed) + len(self.quarantined) >= self.n_chunks


class ProcessExecutor:
    """Supervised pool of worker processes evaluating pure chunk
    functions over shared-memory NumPy arrays.

    Lifecycle: :meth:`start` (create segments, spawn workers), then any
    number of :meth:`run_round` calls, then :meth:`close` (idempotent;
    always call it from ``finally``).  Also usable as a context
    manager.  Supervision counters accumulate in :attr:`stats`.

    Parameters mirror :class:`~repro.runtime.chaos.ChaosThreadExecutor`
    where they overlap; the new knobs are the real-time ones
    (``chunk_timeout``, ``hb_timeout``) and ``start_method``
    (``"fork"`` where available, else ``"spawn"``; the compute function
    must be an importable module-level callable for spawn).
    """

    def __init__(
        self,
        n_workers: int = 4,
        plan: FaultPlan | None = None,
        max_retries: int = 4,
        backoff: BackoffPolicy | None = None,
        chunk_timeout: float = 30.0,
        hb_timeout: float = 5.0,
        hb_interval: float = 0.05,
        slow_s: float = 0.01,
        start_method: str | None = None,
        max_respawns: int | None = None,
        chunks_per_worker: int = 2,
        round_timeout: float = 120.0,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.n_workers = n_workers
        self.plan = plan
        self.max_retries = max_retries
        self.backoff = backoff or BackoffPolicy()
        self.chunk_timeout = chunk_timeout
        self.hb_timeout = hb_timeout
        self.hb_interval = hb_interval
        self.slow_s = slow_s
        if start_method is None:
            import multiprocessing as _mp

            start_method = ("fork" if "fork" in _mp.get_all_start_methods()
                            else "spawn")
        self._ctx = get_context(start_method)
        self.start_method = start_method
        self.max_respawns = (
            max_respawns if max_respawns is not None else 8 * n_workers
        )
        self.chunks_per_worker = chunks_per_worker
        self.round_timeout = round_timeout
        self.stats = ExecutionStats()
        self._segments: dict[str, SharedArray] = {}
        self._workers: dict[int, _Worker] = {}
        self._fn: Callable | None = None
        self._modes: dict[str, bool] = {}
        self._next_wid = 0
        self._round_seq = 0
        self._round_respawns = 0
        self._started = False
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._started and not self._closed

    def start(self, shared: dict[str, np.ndarray],
              fn: Callable[[dict[str, np.ndarray], Any], Any]) -> None:
        """Create shared segments for ``shared`` and spawn the pool."""
        if self._started:
            raise RuntimeError("ProcessExecutor already started")
        if self.start_method != "fork":
            pickle.dumps(fn)  # fail fast: spawn needs a picklable fn
        self._fn = fn
        from ..geometry.hyperplane import exact_active
        from ..geometry.perturb import sos_active

        self._modes = {"exact": exact_active(), "sos": sos_active()}
        self._started = True
        try:
            for name, arr in shared.items():
                self._segments[name] = SharedArray.create(arr)
            for _ in range(self.n_workers):
                self._spawn()
        except BaseException:
            self.close()
            raise

    def _spawn(self) -> _Worker:
        wid = self._next_wid
        self._next_wid += 1
        parent_conn, child_conn = self._ctx.Pipe()
        descs = {n: s.descriptor() for n, s in self._segments.items()}
        try:
            proc = self._ctx.Process(
                target=_worker_main,
                args=(wid, child_conn, descs, self._fn, self.plan,
                      self._modes, self.hb_interval, self.slow_s),
                daemon=True,
            )
            proc.start()
        except BaseException as exc:
            raise ExecutorBrokenError(f"worker spawn failed: {exc}") from exc
        finally:
            child_conn.close()
        w = _Worker(wid=wid, proc=proc, conn=parent_conn, last_hb=time.monotonic())
        self._workers[wid] = w
        return w

    def close(self) -> None:
        """Stop workers and release every shared segment.  Idempotent;
        safe on the success, crash, and KeyboardInterrupt paths."""
        if self._closed:
            return
        self._closed = True
        for w in self._workers.values():
            try:
                w.conn.send(("stop",))
            except Exception:
                pass
        deadline = time.monotonic() + 1.0
        for w in self._workers.values():
            try:
                w.proc.join(timeout=max(0.0, deadline - time.monotonic()))
                if w.proc.is_alive():
                    w.proc.kill()
                    w.proc.join(timeout=1.0)
            except Exception:
                pass
            try:
                w.conn.close()
            except Exception:
                pass
        self._workers.clear()
        for seg in self._segments.values():
            seg.close()
        self._segments.clear()

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- supervision loop --------------------------------------------------

    def run_round(self, payloads: Sequence[Sequence[Any]]) -> list[list]:
        """Evaluate one chunk per payload; returns results in payload
        order.  Raises :class:`ChunkQuarantined` when any chunk exceeds
        the retry budget and :class:`ExecutorBrokenError` when the pool
        itself cannot continue."""
        if not self._started or self._closed:
            raise RuntimeError("ProcessExecutor is not running (start()/close())")
        payloads = list(payloads)
        if not payloads:
            return []
        self._round_seq += 1
        rnd = self._round_seq
        st = _RoundState(n_chunks=len(payloads), rnd=rnd)
        now = time.monotonic()
        st.pending = [(now, cid) for cid in range(len(payloads))]
        last_progress = now
        self._round_respawns = 0

        while not st.settled:
            now = time.monotonic()
            if now - last_progress > self.round_timeout:
                raise ExecutorBrokenError(
                    f"round {rnd} made no progress for {self.round_timeout}s"
                )
            progressed = self._reap_dead(st, rnd)
            progressed |= self._enforce_deadlines(st, now)
            progressed |= self._dispatch(st, payloads, rnd, now)
            progressed |= self._drain_messages(st)
            if progressed:
                last_progress = time.monotonic()
            else:
                self._wait_for_events()
        if st.quarantined:
            self.stats.quarantined += len(st.quarantined)
            ids = sorted(st.quarantined)
            raise ChunkQuarantined(ids, [st.quarantined[i] for i in ids])
        return [st.completed[cid] for cid in range(len(payloads))]

    # Each helper returns True when it changed supervision state (used
    # for the progress clock that arms ExecutorBrokenError).

    def _wait_for_events(self) -> None:
        sentinels = {w.proc.sentinel: w for w in self._workers.values()}
        conns = {w.conn: w for w in self._workers.values()}
        try:
            mp_connection.wait(
                list(conns) + list(sentinels), timeout=self.hb_interval
            )
        except OSError:
            pass  # a handle died mid-wait; the reap pass will see it

    def _reap_dead(self, st: _RoundState, rnd: int) -> bool:
        changed = False
        for wid in [w for w, h in self._workers.items() if not h.proc.is_alive()]:
            h = self._workers.pop(wid)
            changed = True
            # Drain anything it managed to send before dying.
            try:
                while h.conn.poll():
                    self._handle_message(st, h, h.conn.recv())
            except (EOFError, OSError):
                pass
            try:
                h.conn.close()
            except Exception:
                pass
            self.stats.worker_deaths += 1
            if h.busy is not None:
                chunk_id, _ = h.busy
                self._requeue(st, chunk_id, f"worker {wid} died holding chunk")
            self._respawn()
        return changed

    def _enforce_deadlines(self, st: _RoundState, now: float) -> bool:
        changed = False
        for h in list(self._workers.values()):
            if h.busy is None:
                continue
            stale_hb = now - h.last_hb > self.hb_timeout
            over_deadline = now > h.deadline
            if not (stale_hb or over_deadline):
                continue
            changed = True
            chunk_id, _ = h.busy
            if stale_hb and not over_deadline:
                self.stats.stall_kills += 1
                why = f"heartbeat stale > {self.hb_timeout}s"
            else:
                self.stats.deadline_kills += 1
                why = f"chunk deadline {self.chunk_timeout}s exceeded"
            # Late results (e.g. an injected `drop` where the worker is
            # healthy) may be in the pipe; harvest before killing.
            try:
                while h.conn.poll():
                    self._handle_message(st, h, h.conn.recv())
            except (EOFError, OSError):
                pass
            if h.busy is None or chunk_id in st.completed:
                continue  # the harvest settled it after all
            self._workers.pop(h.wid, None)
            try:
                h.proc.kill()
                h.proc.join(timeout=1.0)
            except Exception:
                pass
            try:
                h.conn.close()
            except Exception:
                pass
            self._requeue(st, chunk_id, why)
            self._respawn()
        return changed

    def _dispatch(self, st: _RoundState, payloads, rnd: int, now: float) -> bool:
        changed = False
        idle = [h for h in self._workers.values() if h.busy is None]
        due = sorted([p for p in st.pending if p[0] <= now])
        for h, (ready_at, chunk_id) in zip(idle, due):
            st.pending.remove((ready_at, chunk_id))
            attempt = st.attempts.get(chunk_id, 0)
            site_prefix = f"proc:r{rnd}:c{chunk_id}:a{attempt}"
            try:
                h.conn.send(
                    ("task", rnd, chunk_id, attempt, site_prefix,
                     payloads[chunk_id])
                )
            except (BrokenPipeError, OSError):
                # Death between poll and send; the reap pass will
                # requeue via h.busy.
                h.busy = (chunk_id, attempt)
                continue
            h.busy = (chunk_id, attempt)
            h.deadline = time.monotonic() + self.chunk_timeout
            h.last_hb = time.monotonic()
            changed = True
        return changed

    def _drain_messages(self, st: _RoundState) -> bool:
        changed = False
        for h in list(self._workers.values()):
            try:
                while h.conn.poll():
                    self._handle_message(st, h, h.conn.recv())
                    changed = True
            except (EOFError, OSError):
                continue  # dying worker; the reap pass owns it
        return changed

    def _handle_message(self, st: _RoundState, h: _Worker, msg: tuple) -> None:
        kind = msg[0]
        if kind == "hb":
            _, wid, chunk_id, attempt = msg
            self.stats.heartbeats += 1
            if h.busy is not None and chunk_id == h.busy[0]:
                h.last_hb = time.monotonic()
            elif chunk_id == -1:
                h.last_hb = time.monotonic()
            return
        if kind == "result":
            _, rnd, chunk_id, attempt, results = msg
            if rnd != st.rnd:
                # Late message from a previous round (e.g. the second
                # copy of a `dup` whose round settled before the drain):
                # chunk ids are per-round, so applying it would corrupt
                # this round.
                self.stats.duplicates_dropped += 1
                return
            if h.busy is not None and h.busy[0] == chunk_id:
                h.busy = None
            if chunk_id in st.completed:
                self.stats.duplicates_dropped += 1
                return
            st.completed[chunk_id] = results
            st.pending = [p for p in st.pending if p[1] != chunk_id]
            return
        if kind == "error":
            _, rnd, chunk_id, attempt, detail = msg
            if rnd != st.rnd:
                self.stats.duplicates_dropped += 1
                return
            if h.busy is not None and h.busy[0] == chunk_id:
                h.busy = None
            if chunk_id in st.completed:
                self.stats.duplicates_dropped += 1
                return
            self._requeue(st, chunk_id, f"worker exception: {detail}")
            return
        raise ExecutorBrokenError(f"unknown worker message {msg!r}")

    def _requeue(self, st: _RoundState, chunk_id: int, why: str) -> None:
        if chunk_id in st.completed or chunk_id in st.quarantined:
            return
        st.failures.setdefault(chunk_id, []).append(why)
        attempt = st.attempts.get(chunk_id, 0)
        if attempt + 1 > self.max_retries:
            st.quarantined[chunk_id] = (
                f"chunk {chunk_id} lost {attempt + 1}x "
                f"(max_retries={self.max_retries}); last: {why}"
            )
            return
        st.attempts[chunk_id] = attempt + 1
        self.stats.retries += 1
        ready_at = time.monotonic() + self.backoff.delay(
            attempt, site=f"chunk:{chunk_id}"
        )
        st.pending.append((ready_at, chunk_id))

    def _respawn(self) -> None:
        if len(self._workers) >= self.n_workers:
            return
        if self._round_respawns >= self.max_respawns:
            raise ExecutorBrokenError(
                f"per-round respawn budget exhausted ({self.max_respawns}); "
                "the pool is dying faster than it can be replaced"
            )
        self._round_respawns += 1
        self.stats.respawns += 1
        self._spawn()
