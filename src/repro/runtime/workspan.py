"""Work-span accounting and greedy-scheduler simulation.

The paper states its costs in the work-span model: *work* W is the total
operation count, *span* S the length of the critical path, and a greedy
scheduler achieves ``T_P <= W/P + S`` (Brent).  Python cannot measure
those quantities from wall clock on two cores, so the parallel hull run
reports them directly: every task (a ``ProcessRidge`` call) is logged
with its operation cost and its dependence predecessors, and this module
turns the log into W, S, parallelism W/S, and simulated ``T_P`` under a
greedy list scheduler.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from .atomics import Mutex

__all__ = ["TaskLog", "ScheduleResult", "WorkSpanTracker"]


@dataclass
class TaskLog:
    """One logged task.

    ``cost`` is the task's *work* (operation count).  ``span_cost`` is
    its contribution to the critical path: the paper's model runs the
    heavy inner steps (filtering a conflict set, taking a min) with
    internal parallelism, so a task of work ``w`` only adds ``O(log w)``
    to the span.  When no ``span_cost`` is given the task is treated as
    sequential (``span_cost == cost``).
    """

    tid: int
    cost: int
    deps: tuple[int, ...]
    span_cost: int = 0

    def __post_init__(self) -> None:
        if self.span_cost <= 0:
            self.span_cost = self.cost


@dataclass
class ScheduleResult:
    """Outcome of a simulated greedy schedule on ``processors`` workers."""

    processors: int
    makespan: int
    busy: int  # total busy work (== W)

    @property
    def utilisation(self) -> float:
        return self.busy / (self.processors * self.makespan) if self.makespan else 1.0


class WorkSpanTracker:
    """Records a task DAG and derives work/span/schedule quantities."""

    def __init__(self) -> None:
        self._tasks: dict[int, TaskLog] = {}
        self._next = 0
        self._mutex = Mutex()

    def add_task(
        self, cost: int, deps: tuple[int, ...] = (), span_cost: int | None = None
    ) -> int:
        """Log a task with ``cost`` operations depending on ``deps``
        (task ids returned by earlier ``add_task`` calls).  Pass
        ``span_cost`` when the task's operations are internally parallel
        (e.g. a vectorized filter contributes O(log) to the critical
        path).  Returns the new task id.  Thread-safe."""
        for d in deps:
            if d not in self._tasks:
                raise KeyError(f"unknown dependence task id {d}")
        with self._mutex:
            tid = self._next
            self._next += 1
            self._tasks[tid] = TaskLog(
                tid=tid,
                cost=max(1, int(cost)),
                deps=tuple(deps),
                span_cost=0 if span_cost is None else max(1, int(span_cost)),
            )
        return tid

    def add_batched_sweep(
        self, block_sizes: list[int], deps: tuple[int, ...] = ()
    ) -> int:
        """Log one vectorized (facet x candidate) sweep at its
        *scalar-equivalent* work.

        A batched kernel evaluates ``sum(block_sizes)`` visibility
        tests in one NumPy call; accounting it as one unit-cost task
        would make batched runs look asymptotically cheaper than the
        scalar runs they are bit-identical to, corrupting the E2/E13
        work comparisons.  So: ``cost = sum(block_sizes)`` (every sign
        still costs one work unit, as in Theorem 5.4), while the span
        contribution is ``O(log max(block_sizes))`` -- the same
        internal-parallelism credit a scalar per-facet filter task
        gets, since batching adds breadth, never depth.  Returns the
        task id (shared by every facet of the sweep)."""
        total = sum(max(0, int(b)) for b in block_sizes)
        widest = max((int(b) for b in block_sizes), default=0)
        return self.add_task(
            cost=max(1, total),
            deps=deps,
            span_cost=max(1, int(math.log2(widest + 2))),
        )

    def __len__(self) -> int:
        return len(self._tasks)

    def checkpoint(self) -> int:
        """Mark for :meth:`rollback`: the next task id to be issued."""
        with self._mutex:
            return self._next

    def rollback(self, mark: int) -> None:
        """Discard every task logged since ``checkpoint`` returned
        ``mark`` (chaos layer: a rolled-back round's tasks never
        happened).  Ids are issued monotonically, so truncation by id is
        exact."""
        with self._mutex:
            for tid in range(mark, self._next):
                self._tasks.pop(tid, None)
            self._next = mark

    @property
    def work(self) -> int:
        """W: total operations across all tasks."""
        return sum(t.cost for t in self._tasks.values())

    @property
    def span(self) -> int:
        """S: span-cost of the heaviest dependence path (longest-path DP
        in task-id order, which is a valid topological order because
        deps always precede their dependents)."""
        finish: dict[int, int] = {}
        best = 0
        for tid in range(self._next):
            t = self._tasks[tid]
            start = max((finish[d] for d in t.deps), default=0)
            finish[tid] = start + t.span_cost
            best = max(best, finish[tid])
        return best

    @property
    def cost_span(self) -> int:
        """Span with full (sequential) task costs -- the critical path
        when tasks are non-malleable, which is what
        :meth:`simulate_greedy` schedules.  Equals :attr:`span` when no
        task declared a separate ``span_cost``."""
        finish: dict[int, int] = {}
        best = 0
        for tid in range(self._next):
            t = self._tasks[tid]
            start = max((finish[d] for d in t.deps), default=0)
            finish[tid] = start + t.cost
            best = max(best, finish[tid])
        return best

    @property
    def depth(self) -> int:
        """Dependence depth in *tasks* (unit cost), i.e. the quantity of
        Theorem 4.2."""
        level: dict[int, int] = {}
        best = 0
        for tid in range(self._next):
            t = self._tasks[tid]
            level[tid] = 1 + max((level[d] for d in t.deps), default=0)
            best = max(best, level[tid])
        return best

    @property
    def parallelism(self) -> float:
        s = self.span
        return self.work / s if s else float("inf")

    def brent_bound(self, processors: int) -> float:
        """Brent's upper bound T_P <= W/P + S for *non-malleable* tasks
        (the model :meth:`simulate_greedy` schedules), using the
        cost-weighted span."""
        return self.work / processors + self.cost_span

    def brent_speedup(self, processors: int) -> float:
        """Model-level speedup W / (W/P + S) with the paper's span (the
        inner filter/min steps run with internal parallelism)."""
        return self.work / (self.work / processors + self.span)

    def simulate_greedy(self, processors: int) -> ScheduleResult:
        """Event-driven greedy list scheduler: at every instant, run any
        ready task on any idle processor.  Returns the exact makespan of
        that schedule (which Brent's theorem upper-bounds)."""
        if processors < 1:
            raise ValueError("processors must be >= 1")
        indeg = {tid: len(t.deps) for tid, t in self._tasks.items()}
        dependents: dict[int, list[int]] = {tid: [] for tid in self._tasks}
        for tid, t in self._tasks.items():
            for d in t.deps:
                dependents[d].append(tid)
        ready = [tid for tid, k in indeg.items() if k == 0]
        heapq.heapify(ready)
        running: list[tuple[int, int]] = []  # (finish_time, tid)
        time = 0
        done = 0
        busy = 0
        while done < len(self._tasks):
            while ready and len(running) < processors:
                tid = heapq.heappop(ready)
                cost = self._tasks[tid].cost
                busy += cost
                heapq.heappush(running, (time + cost, tid))
            if not running:
                raise RuntimeError("deadlock: no ready or running tasks")
            time, tid = heapq.heappop(running)
            done += 1
            for dep in dependents[tid]:
                indeg[dep] -= 1
                if indeg[dep] == 0:
                    heapq.heappush(ready, dep)
        return ScheduleResult(processors=processors, makespan=time, busy=busy)

    def speedup_curve(self, processor_counts: list[int]) -> dict[int, float]:
        """Simulated speedup T_1 / T_P for each processor count."""
        t1 = self.work
        return {
            p: t1 / self.simulate_greedy(p).makespan if t1 else 1.0
            for p in processor_counts
        }
