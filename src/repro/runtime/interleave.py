"""Deterministic adversarial interleaving of concurrent operations.

The correctness theorems for the concurrent multimap (A.1: exactly one
of two ``InsertAndSet`` calls on the same ridge returns False; A.2: by
the time ``GetValue`` runs, both entries are present) quantify over
*all* interleavings of the primitive steps.  Two real cores explore a
vanishing fraction of that space, so we verify the theorems under a
step-level scheduler instead: every operation is written as a generator
that yields before each shared-memory access, and the scheduler picks
which operation advances next -- by a seeded random choice, a fixed
choice sequence, or exhaustive enumeration for small step counts.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, Sequence

__all__ = ["OpResult", "run_interleaved", "run_schedule", "all_schedules"]


@dataclass
class OpResult:
    """Result of one operation under a schedule."""

    name: str
    value: Any = None
    steps: int = 0
    error: BaseException | None = None


def run_schedule(
    ops: dict[str, Generator],
    schedule: Iterable[str],
    strict: bool = True,
) -> dict[str, OpResult]:
    """Drive the operation generators following ``schedule``.

    ``schedule`` names which operation takes the next step; once an
    operation finishes, further mentions of it are skipped.  After the
    schedule is exhausted every unfinished operation is run to
    completion in name order (any prefix of a schedule extends to a full
    one, so this still explores exactly the chosen interleaving of the
    scheduled prefix).
    """
    results = {name: OpResult(name=name) for name in ops}
    live = dict(ops)

    def step(name: str) -> None:
        gen = live.get(name)
        if gen is None:
            return
        try:
            next(gen)
            results[name].steps += 1
        except StopIteration as stop:
            results[name].value = stop.value
            del live[name]
        except Exception as exc:  # pragma: no cover - surfaced to caller
            if strict:
                raise
            results[name].error = exc
            del live[name]

    for name in schedule:
        if not live:
            break
        step(name)
    for name in sorted(live):
        while name in live:
            step(name)
    return results


def run_interleaved(
    ops: dict[str, Callable[[], Generator]],
    seed: int,
    max_steps: int = 10_000,
) -> dict[str, OpResult]:
    """Run the operations under a seeded uniformly random interleaving."""
    rng = random.Random(seed)
    gens = {name: make() for name, make in ops.items()}
    results = {name: OpResult(name=name) for name in gens}
    live = dict(gens)
    for _ in range(max_steps):
        if not live:
            break
        name = rng.choice(sorted(live))
        gen = live[name]
        try:
            next(gen)
            results[name].steps += 1
        except StopIteration as stop:
            results[name].value = stop.value
            del live[name]
    if live:
        raise RuntimeError(f"operations did not finish in {max_steps} steps: {sorted(live)}")
    return results


def all_schedules(names: Sequence[str], length: int) -> Iterable[tuple[str, ...]]:
    """All schedules of ``length`` steps over ``names`` (exhaustive
    small-model checking; ``len(names) ** length`` schedules)."""
    return itertools.product(names, repeat=length)
