"""Deterministic adversarial interleaving of concurrent operations.

The correctness theorems for the concurrent multimap (A.1: exactly one
of two ``InsertAndSet`` calls on the same ridge returns False; A.2: by
the time ``GetValue`` runs, both entries are present) quantify over
*all* interleavings of the primitive steps.  Two real cores explore a
vanishing fraction of that space, so we verify the theorems under a
step-level scheduler instead: every operation is written as a generator
that yields before each shared-memory access, and the scheduler picks
which operation advances next -- by a seeded random choice, a fixed
choice sequence, or exhaustive enumeration for small step counts.

Partial failure is part of the model: ``run_schedule`` can freeze an
operation forever at a chosen yield point (``stall``), which is how the
chaos layer (:mod:`repro.runtime.chaos`) checks the *lock-freedom*
obligation of Theorem 5.5 -- a stalled process must never prevent the
remaining operations from completing.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, Mapping, Sequence

__all__ = ["OpResult", "run_interleaved", "run_schedule", "all_schedules"]


@dataclass
class OpResult:
    """Result of one operation under a schedule.

    Exactly one of three terminal states holds at the end of a run:
    ``done`` (ran to completion, ``value`` is the return), ``error``
    (raised mid-flight; only with ``strict=False``), or ``stalled``
    (frozen at a yield point by the ``stall`` map and never finished).
    """

    name: str
    value: Any = None
    steps: int = 0
    error: BaseException | None = None
    done: bool = False
    stalled: bool = False


def run_schedule(
    ops: dict[str, Generator],
    schedule: Iterable[str],
    strict: bool = True,
    stall: Mapping[str, int] | None = None,
    max_steps: int | None = None,
) -> dict[str, OpResult]:
    """Drive the operation generators following ``schedule``.

    ``schedule`` names which operation takes the next step; once an
    operation finishes, further mentions of it are skipped.  After the
    schedule is exhausted every unfinished operation is run to
    completion in name order (any prefix of a schedule extends to a full
    one, so this still explores exactly the chosen interleaving of the
    scheduled prefix).

    ``strict=False`` records an op's in-flight exception in
    ``OpResult.error`` and keeps driving the remaining ops instead of
    aborting the whole schedule -- one poisoned operation must not hide
    what the others do.

    ``stall`` maps op names to a step budget: once the op has taken that
    many steps it freezes forever at its current yield point -- it is
    skipped by the schedule and by the completion drain, and its result
    is marked ``stalled``.  A budget of 0 freezes the op before its
    first step.

    ``max_steps`` bounds the steps any single op may take in total.  An
    op that exceeds it is abandoned with ``error`` set (livelock guard:
    a *blocking* structure whose op spins forever on a frozen lock
    holder must show up as a failed op, not hang the test harness).
    """
    results = {name: OpResult(name=name) for name in ops}
    live = dict(ops)
    stall = dict(stall or {})
    unknown = set(stall) - set(ops)
    if unknown:
        raise KeyError(f"stall names unknown ops: {sorted(unknown)}")

    def frozen(name: str) -> bool:
        budget = stall.get(name)
        if budget is not None and results[name].steps >= budget:
            results[name].stalled = True
            return True
        return False

    def step(name: str) -> None:
        gen = live.get(name)
        if gen is None or frozen(name):
            return
        if max_steps is not None and results[name].steps >= max_steps:
            exc = RuntimeError(
                f"op {name!r} exceeded {max_steps} steps without finishing"
            )
            if strict:
                raise exc
            results[name].error = exc
            del live[name]
            return
        try:
            next(gen)
            results[name].steps += 1
        except StopIteration as stop:
            results[name].value = stop.value
            results[name].done = True
            del live[name]
        except Exception as exc:
            if strict:
                raise
            results[name].error = exc
            del live[name]

    for name in schedule:
        if not live:
            break
        step(name)
    for name in sorted(live):
        while name in live and not frozen(name):
            step(name)
    return results


def run_interleaved(
    ops: dict[str, Callable[[], Generator]],
    seed: int,
    max_steps: int = 10_000,
) -> dict[str, OpResult]:
    """Run the operations under a seeded uniformly random interleaving."""
    rng = random.Random(seed)
    gens = {name: make() for name, make in ops.items()}
    results = {name: OpResult(name=name) for name in gens}
    live = dict(gens)
    for _ in range(max_steps):
        if not live:
            break
        name = rng.choice(sorted(live))
        gen = live[name]
        try:
            next(gen)
            results[name].steps += 1
        except StopIteration as stop:
            results[name].value = stop.value
            results[name].done = True
            del live[name]
    if live:
        raise RuntimeError(f"operations did not finish in {max_steps} steps: {sorted(live)}")
    return results


def all_schedules(names: Sequence[str], length: int) -> Iterable[tuple[str, ...]]:
    """All schedules of ``length`` steps over ``names`` (exhaustive
    small-model checking; ``len(names) ** length`` schedules)."""
    return itertools.product(names, repeat=length)
