"""Parallel-runtime substrate: atomic primitives, the concurrent
multimap of Algorithms 4/5, adversarial interleaving, work-span
accounting, and pluggable task executors."""

from .atomics import AtomicCell, AtomicCounter, AtomicFlag, Mutex
from .backoff import BackoffPolicy
from .chaos import (
    ChaosThreadExecutor,
    StallSweepSummary,
    chaos_hull_roundtrip,
    run_chaos_suite,
    sweep_stalled_multimap,
)
from .executors import ExecutionStats, RoundExecutor, SerialExecutor, ThreadExecutor
from .faults import (
    FaultEvent,
    FaultPlan,
    InjectedFault,
    RetryBudgetExceeded,
    TaskAbortInjected,
    WorkerCrashInjected,
)
from .forkjoin import StealStats, simulate_work_stealing
from .procexec import (
    ChunkQuarantined,
    ExecutorBrokenError,
    ProcessExecutor,
    SharedArray,
)
from .interleave import OpResult, all_schedules, run_interleaved, run_schedule
from .pram import PRAM, ParallelHashTable, compact, log_star, pram_min, prefix_sum
from .multimap import CASMultimap, DictMultimap, MultimapFullError, TASMultimap
from .racecheck import CheckSummary, RaceChecker, RaceReport, check_multimap
from .workspan import ScheduleResult, TaskLog, WorkSpanTracker

__all__ = [
    "AtomicCell",
    "AtomicCounter",
    "AtomicFlag",
    "Mutex",
    "BackoffPolicy",
    "ChaosThreadExecutor",
    "ChunkQuarantined",
    "ExecutorBrokenError",
    "ProcessExecutor",
    "SharedArray",
    "StallSweepSummary",
    "chaos_hull_roundtrip",
    "run_chaos_suite",
    "sweep_stalled_multimap",
    "FaultEvent",
    "FaultPlan",
    "InjectedFault",
    "RetryBudgetExceeded",
    "TaskAbortInjected",
    "WorkerCrashInjected",
    "CheckSummary",
    "RaceChecker",
    "RaceReport",
    "check_multimap",
    "ExecutionStats",
    "RoundExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "StealStats",
    "simulate_work_stealing",
    "OpResult",
    "all_schedules",
    "run_interleaved",
    "run_schedule",
    "PRAM",
    "ParallelHashTable",
    "compact",
    "log_star",
    "pram_min",
    "prefix_sum",
    "CASMultimap",
    "DictMultimap",
    "MultimapFullError",
    "TASMultimap",
    "ScheduleResult",
    "TaskLog",
    "WorkSpanTracker",
]
