"""Shared retry-backoff policy for the fault-tolerant executors.

Both supervision layers -- :class:`~repro.runtime.chaos.ChaosThreadExecutor`
(thread workers) and :class:`~repro.runtime.procexec.ProcessExecutor`
(real worker processes) -- re-dispatch work lost to a dead worker.  Naive
retry loops hammer a struggling pool: every supervisor that retries "in
2 ms, always" synchronises its re-dispatches with every other retry in
flight.  The standard remedy is exponential backoff with jitter, and the
standard bug is implementing it twice, differently.  This module is the
single implementation.

Design constraints inherited from the chaos substrate:

* **Deterministic.**  A chaos run must replay exactly from its seed, so
  the jitter cannot come from a mutable RNG stream whose consumption
  order depends on thread timing.  Like :class:`~repro.runtime.faults.FaultPlan`,
  the jitter is a keyed blake2b hash of ``(seed, site, attempt)`` -- a
  pure function, stable across processes and schedules.
* **Monotone.**  ``delay(attempt)`` must not shrink as ``attempt``
  grows (tests pin this), which holds whenever
  ``factor >= 1 + jitter``: the un-jittered delay grows by ``factor``
  while jitter adds at most ``jitter * delay``.
* **Capped.**  Delays saturate at ``cap`` so a long retry chain cannot
  stall a supervisor for seconds.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

__all__ = ["BackoffPolicy"]


def _unit_hash(seed: int, site: str, attempt: int) -> float:
    """Uniform float in [0, 1) from a keyed hash (process-stable)."""
    digest = hashlib.blake2b(
        f"{seed}|backoff|{site}|{attempt}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2.0**64


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with seeded jitter and a hard cap.

    ``delay(attempt, site)`` for attempt 0, 1, 2, ... is

        ``min(base * factor**attempt * (1 + jitter * u), cap)``

    where ``u = hash(seed, site, attempt) in [0, 1)``.  Distinct sites
    draw distinct jitter streams, which is the point: two chunks lost
    to the same worker death fan their retries out instead of
    re-colliding.
    """

    base: float = 0.002
    factor: float = 2.0
    cap: float = 0.05
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError("base must be >= 0")
        if self.cap < self.base:
            raise ValueError("cap must be >= base")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.factor < 1.0 + self.jitter:
            # The monotonicity guarantee (see module docstring).
            raise ValueError("factor must be >= 1 + jitter for monotone delays")

    def delay(self, attempt: int, site: str = "") -> float:
        """Seconds to wait before re-dispatching ``site`` for the
        ``attempt``-th time (0-based; attempt 0 is the first retry)."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        raw = self.base * self.factor ** attempt
        jit = raw * self.jitter * _unit_hash(self.seed, site, attempt)
        return min(raw + jit, self.cap)

    def sleep(self, attempt: int, site: str = "") -> float:
        """Sleep the computed delay; returns it (for stats)."""
        d = self.delay(attempt, site)
        if d > 0:
            time.sleep(d)
        return d
