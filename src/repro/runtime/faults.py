"""Deterministic fault plans for chaos testing the parallel runtime.

The paper's binary-forking results (Theorem 5.5, Appendix A) rest on the
concurrent structures being *lock-free*: a process that stalls or dies
mid-operation must never block system-wide progress.  The interleave
simulator explores adversarial schedules, but every operation in it runs
to completion -- so the lock-freedom obligation is never actually
exercised.  This module supplies the missing failure model.

A :class:`FaultPlan` is the single source of truth for which faults
fire.  Every decision is a pure function of ``(seed, kind, site)`` --
a keyed hash, not a mutable RNG stream -- so a chaos run is exactly
reproducible from its seed regardless of schedule, thread timing, or
the order in which decisions are queried.  A fired fault never
re-fires (one shot per site), which is what makes retry loops and
checkpoint-resume provably terminate: each rollback disarms at least
one fault, and the number of fault sites is finite.

Fault kinds
-----------

``crash``
    The acting process dies.  In the round-synchronous executor the
    ``ProcessRidge`` call aborts *after* doing its work but before
    committing its children (at-least-once semantics; the round rolls
    back to its checkpoint).  In the thread executor the worker dies
    right after dequeuing (the task is lost and must be re-dispatched).
``stall``
    The acting process freezes forever at a yield point and never takes
    another step.  The lock-freedom obligation is that every *other*
    operation still completes; :func:`repro.runtime.chaos.sweep_stalled_multimap`
    checks exactly that over exhaustive schedules.
``delay``
    The action is postponed but not lost (a slow worker): a round task
    is deferred to the next round, a thread worker sleeps briefly.

Process-level kinds (:mod:`repro.runtime.procexec` workers -- real
PIDs, so the failure modes are the real ones):

``kill``
    The worker process SIGKILLs itself mid-chunk: no exception, no
    cleanup, no goodbye message.  The supervisor's liveness poll (the
    process sentinel) must notice and re-dispatch the chunk.
``stall``
    (Shared with the simulator kind above.)  In a worker process the
    stall is a real sleep-forever: the process stays *alive* but stops
    heartbeating, so only heartbeat-staleness detection -- not liveness
    polling -- can catch it.
``drop``
    The worker computes its chunk but never sends the result message
    (a lost packet).  The chunk deadline must fire and re-dispatch.
``dup``
    The worker sends its result message twice (a retransmitted packet).
    The supervisor must apply it exactly once.

Worker-side sites include the dispatch *attempt* number, so a retried
chunk draws a fresh coin rather than deterministically re-dying at the
same site: with bounded retries this guarantees termination (the
parent-side one-shot rule cannot be enforced across process
boundaries, since each worker holds its own copy of the plan).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = [
    "CRASH",
    "STALL",
    "DELAY",
    "KILL",
    "DROP",
    "DUP",
    "FAULT_KINDS",
    "PROC_FAULT_KINDS",
    "InjectedFault",
    "TaskAbortInjected",
    "WorkerCrashInjected",
    "RetryBudgetExceeded",
    "FaultEvent",
    "FaultPlan",
    "unit_hash",
    "unit_hash_attempt",
]

CRASH = "crash"
STALL = "stall"
DELAY = "delay"
KILL = "kill"
DROP = "drop"
DUP = "dup"
FAULT_KINDS = (CRASH, STALL, DELAY, KILL, DROP, DUP)
#: The kinds a worker *process* can act on (see module docstring).
PROC_FAULT_KINDS = (KILL, STALL, DROP, DUP, DELAY)


class InjectedFault(RuntimeError):
    """Base class of all injected (synthetic) failures.

    Deliberately *not* a subclass of any domain error so fault-handling
    code can distinguish chaos from genuine bugs."""


class TaskAbortInjected(InjectedFault):
    """A ``ProcessRidge``-style task died mid-call (round executors)."""


class WorkerCrashInjected(InjectedFault):
    """A worker thread died after dequeuing a task (thread executors)."""


class RetryBudgetExceeded(RuntimeError):
    """A task failed more times than the executor's retry bound allows."""


@dataclass(frozen=True)
class FaultEvent:
    """Record of one fault that actually fired."""

    kind: str
    site: str


def _unit_hash(seed: int, kind: str, site: str) -> float:
    """Map ``(seed, kind, site)`` to a uniform float in [0, 1).

    Uses blake2b rather than ``hash()`` so decisions are stable across
    processes (``hash`` of strings is salted per interpreter run).
    """
    digest = hashlib.blake2b(
        f"{seed}|{kind}|{site}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2.0**64


#: Public alias -- the keyed coin shared by every seeded-fault consumer
#: (chaos plans, backoff jitter, the noisy predicate oracle).
unit_hash = _unit_hash


def unit_hash_attempt(seed: int, kind: str, site: str, attempt: int) -> float:
    """Uniform float in [0, 1) keyed by ``(seed, kind, site, attempt)``.

    Distinct ``attempt`` indices on the same site draw *independent*
    coins -- the property majority-vote repetition (and chunk-retry
    fault injection) relies on.  The site is length-prefixed in the
    hashed payload, so the encoding is injective: no ``(site, attempt)``
    pair can replay the digest of another (e.g. ``("a1", 1)`` vs
    ``("a", 11)``, which naive string concatenation would alias).
    """
    digest = hashlib.blake2b(
        f"{seed}|{kind}|{len(site)}:{site}|{attempt}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2.0**64


@dataclass
class FaultPlan:
    """A seeded, deterministic assignment of faults to sites.

    ``site`` strings name injection points ("ridge:2-5", "dispatch:17",
    ...).  ``decide(kind, site)`` fires iff the keyed hash of
    ``(seed, kind, site)`` falls under that kind's rate, the site has
    not fired that kind before, and the total fault budget
    (``max_faults``, ``None`` = unbounded) is not exhausted.  Fired
    faults are recorded in :attr:`events` for test assertions and the
    E17 experiment log.
    """

    seed: int = 0
    crash_rate: float = 0.0
    stall_rate: float = 0.0
    delay_rate: float = 0.0
    kill_rate: float = 0.0
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    max_faults: int | None = None
    events: list[FaultEvent] = field(default_factory=list)
    _fired: set[tuple[str, str]] = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            rate = self.rate(kind)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind}_rate must be in [0, 1], got {rate}")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError("max_faults must be >= 0 or None")

    @classmethod
    def none(cls) -> "FaultPlan":
        """The no-op plan: never fires anything."""
        return cls(seed=0)

    def rate(self, kind: str) -> float:
        try:
            return {CRASH: self.crash_rate, STALL: self.stall_rate,
                    DELAY: self.delay_rate, KILL: self.kill_rate,
                    DROP: self.drop_rate, DUP: self.dup_rate}[kind]
        except KeyError:
            raise ValueError(f"unknown fault kind {kind!r}") from None

    # -- decisions ---------------------------------------------------------

    def would_fire(self, kind: str, site: str) -> bool:
        """The pure coin for ``(kind, site)`` -- no budget, no one-shot
        bookkeeping.  Exposed for tests and for planning sweeps."""
        return _unit_hash(self.seed, kind, site) < self.rate(kind)

    def decide(self, kind: str, site: str) -> bool:
        """Fire-once decision: records the event when it fires."""
        key = (kind, site)
        if key in self._fired:
            return False
        if self.max_faults is not None and len(self.events) >= self.max_faults:
            return False
        if not self.would_fire(kind, site):
            return False
        self._fired.add(key)
        self.events.append(FaultEvent(kind=kind, site=site))
        return True

    def should_crash(self, site: str) -> bool:
        return self.decide(CRASH, site)

    def should_stall(self, site: str) -> bool:
        return self.decide(STALL, site)

    def should_delay(self, site: str) -> bool:
        return self.decide(DELAY, site)

    # -- reporting ---------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Fired-fault histogram by kind (zero-filled)."""
        out = {kind: 0 for kind in FAULT_KINDS}
        for ev in self.events:
            out[ev.kind] += 1
        return out

    def describe(self) -> str:
        c = self.counts()
        out = (f"FaultPlan(seed={self.seed}, fired: "
               f"{c[CRASH]} crash / {c[STALL]} stall / {c[DELAY]} delay")
        if any(c[k] for k in (KILL, DROP, DUP)):
            out += f" / {c[KILL]} kill / {c[DROP]} drop / {c[DUP]} dup"
        return out + ")"
