"""Direct randomized incremental Delaunay (Bowyer--Watson) with
support-set dependence tracking.

The paper's depth machinery descends from the parallel incremental
Delaunay analyses [17, 18]; this module implements that lineage
directly -- the classic conflict-graph Bowyer--Watson algorithm, with
the support structure those papers use: a triangle created on cavity
boundary edge ``e`` when inserting ``x`` is supported by the *two*
triangles incident on ``e`` at that moment (the cavity one it replaces
and the outside one it borders), so the dependence graph has the same
2-support shape as the hull's and its depth is O(log n) whp.

The convex-hull boundary is handled with *ghost triangles*: a symbolic
vertex at infinity closes the triangulation, a ghost triangle
``(u, v, inf)`` standing for hull edge ``u -> v`` (interior on the
left) and conflicting with exactly the points strictly right of it.
Insertion then treats inside and outside points uniformly.

Cross-checked in the tests against the lifted-hull Delaunay and scipy,
triangle-for-triangle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..configspace.depgraph import DependenceGraph
from ..geometry.predicates import in_circle, orient
from ..hull.common import HullSetupError

__all__ = ["GHOST", "BWTriangle", "BowyerWatsonResult", "bowyer_watson"]

#: The symbolic vertex at infinity.
GHOST = -1


@dataclass(eq=False)
class BWTriangle:
    """A (possibly ghost) triangle of the evolving triangulation."""

    tid: int
    verts: tuple[int, int, int]      # ghost triangles: (u, v, GHOST), interior left of u->v
    conflicts: np.ndarray            # ascending ranks of conflicting points
    alive: bool = True

    @property
    def is_ghost(self) -> bool:
        return self.verts[2] == GHOST

    def edges(self):
        a, b, c = self.verts
        yield frozenset((a, b))
        yield frozenset((b, c))
        yield frozenset((a, c))

    def __hash__(self) -> int:
        return self.tid


@dataclass
class BowyerWatsonResult:
    points: np.ndarray
    order: np.ndarray
    triangles: set[frozenset]        # real Delaunay triples (original indices)
    created: list[BWTriangle]
    graph: DependenceGraph
    in_circle_tests: int

    @property
    def n_triangles(self) -> int:
        return len(self.triangles)

    def dependence_depth(self) -> int:
        return self.graph.depth()


def bowyer_watson(
    points: np.ndarray,
    seed: int | None = None,
    order: np.ndarray | None = None,
) -> BowyerWatsonResult:
    """Delaunay triangulation of 2D points in general position by
    randomized incremental Bowyer--Watson with conflict sets."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise HullSetupError("bowyer_watson expects an (n, 2) array")
    n = points.shape[0]
    if n < 3:
        raise HullSetupError("need at least 3 points")
    if order is None:
        order = np.random.default_rng(seed).permutation(n)
    else:
        order = np.asarray(order, dtype=np.int64)

    pts = points[order]
    # First non-collinear triple, scanning forward (ranks re-packed so
    # the bootstrap triangle is ranks {0, 1, 2}).
    k = next(
        (k for k in range(2, n) if orient(pts[[0, 1]], pts[k]) != 0), None
    )
    if k is None:
        raise HullSetupError("input is collinear")
    perm = np.array([0, 1, k] + [i for i in range(2, n) if i != k], dtype=np.int64)
    pts = pts[perm]
    order = order[perm]

    tests = 0

    def conflicts_with(tri_verts, q_rank: int) -> bool:
        nonlocal tests
        tests += 1
        a, b, c = tri_verts
        if c == GHOST:
            return orient(pts[[a, b]], pts[q_rank]) < 0
        s = orient(pts[[a, b]], pts[c])
        return in_circle(pts[a], pts[b], pts[c], pts[q_rank]) * s > 0

    triangles: dict[int, BWTriangle] = {}
    edge_map: dict[frozenset, set[int]] = {}
    inverse: dict[int, set[int]] = {}
    created: list[BWTriangle] = []
    graph = DependenceGraph()
    next_tid = [0]

    def make(verts, candidates, support, step) -> BWTriangle:
        conf = np.array(
            [int(q) for q in candidates if conflicts_with(verts, int(q))],
            dtype=np.int64,
        )
        tri = BWTriangle(tid=next_tid[0], verts=verts, conflicts=conf)
        next_tid[0] += 1
        created.append(tri)
        triangles[tri.tid] = tri
        for e in tri.edges():
            edge_map.setdefault(e, set()).add(tri.tid)
        for q in conf:
            inverse.setdefault(int(q), set()).add(tri.tid)
        graph.order.append(tri.tid)
        graph.added_at[tri.tid] = step
        if support is not None:
            graph.parents[tri.tid] = support
        return tri

    def kill(tri: BWTriangle) -> None:
        tri.alive = False
        del triangles[tri.tid]
        for e in tri.edges():
            s = edge_map.get(e)
            if s is not None:
                s.discard(tri.tid)
                if not s:
                    del edge_map[e]
        for q in tri.conflicts:
            s = inverse.get(int(q))
            if s is not None:
                s.discard(tri.tid)
                if not s:
                    del inverse[int(q)]

    # Bootstrap: one real CCW triangle plus three ghosts.
    a, b, c = 0, 1, 2
    if orient(pts[[a, b]], pts[c]) < 0:
        b, c = c, b
    later = np.arange(3, n, dtype=np.int64)
    make((a, b, c), later, None, step=3)
    # Ghosts walk the CCW boundary: interior on the left of each edge,
    # so a ghost conflicts exactly with the points strictly outside it.
    for (u, v) in ((a, b), (b, c), (c, a)):
        make((u, v, GHOST), later, None, step=3)

    for step in range(3, n):
        v = step  # rank == index after permutation
        cavity_ids = inverse.get(v)
        if not cavity_ids:
            raise AssertionError(
                "every point conflicts with some (possibly ghost) triangle"
            )
        cavity = {tid: triangles[tid] for tid in cavity_ids}
        new_tris: list[BWTriangle] = []
        for tid, t_in in cavity.items():
            for e in t_in.edges():
                others = edge_map[e] - {tid}
                if not others:
                    continue
                (out_id,) = others
                if out_id in cavity:
                    continue
                t_out = triangles[out_id]
                # New triangle on boundary edge e and the new point v.
                eu, ev = sorted(e)
                candidates = np.union1d(t_in.conflicts, t_out.conflicts)
                candidates = candidates[candidates > v]
                verts = _new_triangle_verts(pts, e, v)
                new_tris.append(
                    make(verts, candidates, support=(tid, out_id), step=step + 1)
                )
        for t_in in cavity.values():
            kill(t_in)

    real = {
        frozenset(int(order[i]) for i in t.verts)
        for t in triangles.values()
        if not t.is_ghost
    }
    return BowyerWatsonResult(
        points=points,
        order=order,
        triangles=real,
        created=created,
        graph=graph,
        in_circle_tests=tests,
    )


def _new_triangle_verts(pts, edge: frozenset, v: int) -> tuple[int, int, int]:
    """Vertices of the cavity-boundary replacement triangle.

    A real boundary edge joins two real vertices; a ghost boundary edge
    contains GHOST, in which case the new triangle is the ghost triangle
    of the fresh hull edge (v, u), directed so the interior stays left.
    """
    e = sorted(edge)
    if e[0] == GHOST:
        (u,) = [x for x in e if x != GHOST]
        # Direct the new hull edge so that v->u or u->v keeps the rest of
        # the point set on the left; pts[0..2] centroid is interior.
        interior = pts[:3].mean(axis=0)
        if orient(np.array([pts[u], pts[v]]), interior) > 0:
            return (u, v, GHOST)
        return (v, u, GHOST)
    u, w = e
    # Orient (u, w, v) counterclockwise.
    if orient(pts[[u, w]], pts[v]) > 0:
        return (u, w, v)
    return (w, u, v)
