"""Intersection of half-planes (Section 7), two ways.

1. **By duality through the hull** (:func:`halfplane_intersection`):
   a half-plane ``a.x <= b`` with ``b > 0`` dualises to the point
   ``a/b``; vertices of the intersection polygon correspond exactly to
   edges of the dual point hull.  Running the parallel incremental hull
   on the dual points gives a parallel half-plane intersection with the
   paper's O(log n) dependence depth for free.

2. **Directly** (:func:`incremental_halfplanes`): the randomized
   incremental algorithm on the polygon itself, instrumented with the
   support structure the paper describes -- each new vertex created by
   half-plane ``x`` is supported by the (up to two) old vertices on the
   edges that ``x`` cuts.  This produces a measured dependence depth for
   experiment E8 that is independent of the hull code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..configspace.depgraph import DependenceGraph
from ..hull.parallel import parallel_hull

__all__ = [
    "Halfspace3DResult",
    "halfspace_intersection_3d",
    "HalfplaneResult",
    "halfplane_intersection",
    "IncrementalHalfplaneResult",
    "incremental_halfplanes",
]


def _check_inputs(normals: np.ndarray, offsets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    normals = np.asarray(normals, dtype=np.float64)
    offsets = np.asarray(offsets, dtype=np.float64)
    if normals.ndim != 2 or normals.shape[1] != 2:
        raise ValueError("normals must be (n, 2)")
    if offsets.shape != (normals.shape[0],):
        raise ValueError("offsets must be (n,)")
    if not (offsets > 0).all():
        raise ValueError("every half-plane must strictly contain the origin (b > 0)")
    return normals, offsets


@dataclass
class HalfplaneResult:
    """Intersection polygon from the dual-hull computation."""

    normals: np.ndarray
    offsets: np.ndarray
    vertex_pairs: list[tuple[int, int]]   # defining half-plane pairs, CCW order
    vertices: np.ndarray                  # (m, 2) vertex coordinates
    hull_run: object

    def dependence_depth(self) -> int:
        return self.hull_run.dependence_depth()

    def contains(self, q, tol: float = 1e-9) -> bool:
        q = np.asarray(q, dtype=np.float64)
        return bool((self.normals @ q <= self.offsets + tol).all())


def halfplane_intersection(
    normals: np.ndarray,
    offsets: np.ndarray,
    seed: int | None = None,
    order: np.ndarray | None = None,
) -> HalfplaneResult:
    """Bounded intersection of half-planes by point/plane duality.

    Every input must be non-redundant-safe: redundant half-planes are
    fine (they dualise to interior points); an unbounded intersection
    raises (its dual hull would not contain the origin-dual structure
    we rely on -- detected via a hull vertex winding check).
    """
    normals, offsets = _check_inputs(normals, offsets)
    dual = normals / offsets[:, None]
    run = parallel_hull(dual, seed=seed, order=order)
    # Hull edges (facets in 2D) -> polygon vertices.  Order them CCW by
    # walking facet adjacency.
    edges = {tuple(sorted(f.indices)): f for f in run.facets}
    adjacency: dict[int, list[int]] = {}
    for (i, j) in edges:
        adjacency.setdefault(i, []).append(j)
        adjacency.setdefault(j, []).append(i)
    if any(len(v) != 2 for v in adjacency.values()):
        raise ValueError("dual hull is degenerate; cannot order the polygon")
    # The dual hull must strictly contain the origin or the primal
    # intersection is unbounded.
    for f in run.facets:
        if f.plane.side(np.zeros(2)) >= 0:
            raise ValueError("unbounded intersection: origin not interior to dual hull")
    start = min(adjacency)
    cycle = [start, adjacency[start][0]]
    while True:
        nxt = [v for v in adjacency[cycle[-1]] if v != cycle[-2]][0]
        if nxt == start:
            break
        cycle.append(nxt)
    pairs = []
    verts = []
    m = len(cycle)
    for t in range(m):
        i, j = cycle[t], cycle[(t + 1) % m]
        oi, oj = int(run.order[i]), int(run.order[j])
        a = np.array([normals[oi], normals[oj]])
        b = np.array([offsets[oi], offsets[oj]])
        verts.append(np.linalg.solve(a, b))
        pairs.append((oi, oj))
    return HalfplaneResult(
        normals=normals,
        offsets=offsets,
        vertex_pairs=pairs,
        vertices=np.array(verts),
        hull_run=run,
    )


@dataclass
class IncrementalHalfplaneResult:
    """Polygon plus dependence structure from the direct incremental
    algorithm."""

    normals: np.ndarray
    offsets: np.ndarray
    order: np.ndarray
    vertex_pairs: list[tuple[int, int]]
    vertices: np.ndarray
    graph: DependenceGraph
    cut_counts: list[int] = field(default_factory=list)

    def dependence_depth(self) -> int:
        return self.graph.depth()


def incremental_halfplanes(
    normals: np.ndarray,
    offsets: np.ndarray,
    seed: int | None = None,
    order: np.ndarray | None = None,
) -> IncrementalHalfplaneResult:
    """Randomized incremental half-plane intersection with support-set
    dependence tracking.

    Bootstraps from a large axis-aligned bounding box (four synthetic
    half-planes with negative ids), the standard way to sidestep the
    unbounded-prefix boundary cases the paper notes can be handled with
    direction-tagged configurations.  Each insertion clips the current
    CCW polygon; the two vertices created by half-plane ``x`` are
    supported by the old vertices of the edges that ``x`` cuts (the
    paper's 2-support structure for this space).  Box-supported corners
    are the roots of the dependence graph.  Raises ``ValueError`` if
    the true intersection is unbounded (it still touches the box).
    """
    normals, offsets = _check_inputs(normals, offsets)
    n = normals.shape[0]
    if order is None:
        order = np.random.default_rng(seed).permutation(n)
    else:
        order = np.asarray(order, dtype=np.int64)
    if n < 3:
        raise ValueError("need at least 3 half-planes")

    box_r = 1e8 * float(offsets.max() / np.linalg.norm(normals, axis=1).min())
    box_normals = {-1: np.array([1.0, 0.0]), -2: np.array([0.0, 1.0]),
                   -3: np.array([-1.0, 0.0]), -4: np.array([0.0, -1.0])}

    def normal_of(i: int) -> np.ndarray:
        return box_normals[i] if i < 0 else normals[i]

    def offset_of(i: int) -> float:
        return box_r if i < 0 else float(offsets[i])

    def vertex_of(i: int, j: int) -> np.ndarray:
        a = np.array([normal_of(i), normal_of(j)])
        b = np.array([offset_of(i), offset_of(j)])
        return np.linalg.solve(a, b)

    def violated(v: np.ndarray, h: int) -> bool:
        return float(normal_of(h) @ v) > offset_of(h)

    # Initial polygon: the box corners, CCW.
    box_cycle = [-1, -2, -3, -4]
    poly: list[tuple[tuple[int, int], np.ndarray]] = []
    for t in range(4):
        i, j = box_cycle[t], box_cycle[(t + 1) % 4]
        poly.append((tuple(sorted((i, j))), vertex_of(i, j)))

    graph = DependenceGraph()
    for pair, _v in poly:
        graph.order.append(pair)
        graph.added_at[pair] = 0
    cut_counts: list[int] = []

    for step in range(n):
        h = int(order[step])
        keep = [not violated(v, h) for _pair, v in poly]
        if all(keep):
            cut_counts.append(0)
            continue
        if not any(keep):
            raise ValueError("intersection became empty (inconsistent half-planes)")
        m = len(poly)
        # The violated vertices form one contiguous arc (convex polygon
        # cut by a line); find its boundary edges.
        new_poly: list[tuple[tuple[int, int], np.ndarray]] = []
        removed = sum(1 for kflag in keep if not kflag)
        cut_counts.append(removed)
        for t in range(m):
            t_next = (t + 1) % m
            if keep[t]:
                new_poly.append(poly[t])
            if keep[t] != keep[t_next]:
                # Edge (t, t+1) crosses the new boundary line.  The edge
                # lies on the half-plane shared by the two vertex pairs.
                shared = set(poly[t][0]) & set(poly[t_next][0])
                if len(shared) != 1:
                    raise ValueError("degenerate cut: adjacent vertices share no line")
                (g,) = shared
                pair = tuple(sorted((g, h)))
                v = vertex_of(g, h)
                new_poly.append((pair, v))
                # Supported by the two old endpoints of the cut edge.
                graph.order.append(pair)
                graph.added_at[pair] = step + 1
                graph.parents[pair] = (poly[t][0], poly[t_next][0])
        poly = new_poly

    if any(i < 0 for pair, _v in poly for i in pair):
        raise ValueError("unbounded intersection: final polygon touches the bounding box")
    return IncrementalHalfplaneResult(
        normals=normals,
        offsets=offsets,
        order=order,
        vertex_pairs=[p for p, _v in poly],
        vertices=np.array([v for _p, v in poly]),
        graph=graph,
        cut_counts=cut_counts,
    )


@dataclass
class Halfspace3DResult:
    """Bounded intersection of 3D half-spaces from the dual hull."""

    normals: np.ndarray
    offsets: np.ndarray
    vertex_triples: list[tuple[int, int, int]]   # defining half-space triples
    vertices: np.ndarray                         # (m, 3) coordinates
    hull_run: object

    def dependence_depth(self) -> int:
        return self.hull_run.dependence_depth()

    def contains(self, q, tol: float = 1e-9) -> bool:
        q = np.asarray(q, dtype=np.float64)
        return bool((self.normals @ q <= self.offsets + tol).all())


def halfspace_intersection_3d(
    normals: np.ndarray,
    offsets: np.ndarray,
    seed: int | None = None,
    order: np.ndarray | None = None,
) -> Halfspace3DResult:
    """Bounded intersection of 3D half-spaces ``a_i . x <= b_i`` (all
    with ``b_i > 0``) by duality: facets of the hull of the dual points
    ``a_i / b_i`` correspond exactly to the vertices of the primal
    intersection (each defined by three half-space boundaries).

    This is the d-dimensional half-space story of Section 7 made
    concrete for d = 3 on top of the parallel hull.
    """
    normals = np.asarray(normals, dtype=np.float64)
    offsets = np.asarray(offsets, dtype=np.float64)
    if normals.ndim != 2 or normals.shape[1] != 3:
        raise ValueError("normals must be (n, 3)")
    if offsets.shape != (normals.shape[0],):
        raise ValueError("offsets must be (n,)")
    if not (offsets > 0).all():
        raise ValueError("every half-space must strictly contain the origin (b > 0)")
    dual = normals / offsets[:, None]
    run = parallel_hull(dual, seed=seed, order=order)
    for f in run.facets:
        if f.plane.side(np.zeros(3)) >= 0:
            raise ValueError("unbounded intersection: origin not interior to dual hull")
    triples: list[tuple[int, int, int]] = []
    verts: list[np.ndarray] = []
    for f in run.facets:
        tri = tuple(sorted(int(run.order[i]) for i in f.indices))
        a = normals[list(tri)]
        b = offsets[list(tri)]
        verts.append(np.linalg.solve(a, b))
        triples.append(tri)
    return Halfspace3DResult(
        normals=normals,
        offsets=offsets,
        vertex_triples=triples,
        vertices=np.array(verts),
        hull_run=run,
    )
