"""2D Delaunay triangulation through the paper's hull machinery.

The classic lifting argument: mapping ``(x, y)`` to ``(x, y, x^2+y^2)``
turns empty-circumcircle triangles into downward-facing facets of the 3D
convex hull.  Running the *parallel* incremental hull on the lifted
points therefore yields a parallel incremental Delaunay algorithm whose
dependence depth inherits the O(log n) bound of Theorem 1.1 -- the
connection the paper draws to the earlier Delaunay results [17, 18].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..configspace.spaces.delaunay2d import lift_to_paraboloid
from ..hull.parallel import ParallelHullRun, parallel_hull
from ..hull.sequential import sequential_hull

__all__ = ["DelaunayResult", "delaunay"]


@dataclass
class DelaunayResult:
    """Triangulation plus the hull run it was extracted from."""

    points: np.ndarray               # the caller's 2D points
    triangles: set[frozenset]        # triples of original point indices
    hull_run: object                 # ParallelHullRun or SequentialHullResult

    @property
    def n_triangles(self) -> int:
        return len(self.triangles)

    def dependence_depth(self) -> int:
        """Dependence depth of the lifted hull construction (only for
        the parallel backend)."""
        if isinstance(self.hull_run, ParallelHullRun):
            return self.hull_run.dependence_depth()
        raise TypeError("depth is only recorded by the parallel backend")

    def edge_set(self) -> set[frozenset]:
        return {
            frozenset(e)
            for t in self.triangles
            for e in (
                tuple(sorted(t))[:2],
                tuple(sorted(t))[1:],
                (tuple(sorted(t))[0], tuple(sorted(t))[2]),
            )
        }


def delaunay(
    points: np.ndarray,
    seed: int | None = None,
    order: np.ndarray | None = None,
    backend: str = "parallel",
) -> DelaunayResult:
    """Delaunay triangulation of 2D ``points`` by lifted incremental
    hull (general position: no 3 collinear / 4 cocircular).

    ``backend`` is ``"parallel"`` (Algorithm 3 on the lifted points,
    recording dependence structure) or ``"sequential"`` (Algorithm 2).
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("delaunay expects an (n, 2) array")
    lifted = lift_to_paraboloid(points)
    if backend == "parallel":
        run = parallel_hull(lifted, order=order, seed=seed)
    elif backend == "sequential":
        run = sequential_hull(lifted, order=order, seed=seed)
    else:
        raise ValueError(f"unknown backend {backend!r}")
    triangles: set[frozenset] = set()
    for f in run.facets:
        # Lower facets (outward normal pointing down) are the Delaunay
        # triangles; the plane normal already points outward.
        if f.plane.normal[2] < 0:
            triangles.add(frozenset(int(run.order[i]) for i in f.indices))
    return DelaunayResult(points=points, triangles=triangles, hull_run=run)
