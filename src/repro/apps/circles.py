"""Randomized incremental intersection of unit disks (Section 7), with
support-set dependence tracking.

The boundary of an intersection of unit disks is a cyclic sequence of
arcs.  Adding a circle ``x`` destroys the arcs that leave its disk:
arcs fully outside vanish, partially-outside arcs are *trimmed* (a new,
shorter arc configuration is created, supported by the arc it trims --
the paper's singleton support), and up to two fresh arcs of circle ``x``
itself appear, each supported by the two old arcs cut at its endpoints
(the paper's 2-support).  The recorded dependence graph realises the
O(log n) depth claim for this space (experiment E9).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import acos, atan2, pi

import numpy as np

from ..configspace.depgraph import DependenceGraph

__all__ = ["Arc", "DiskIntersectionResult", "incremental_disk_intersection"]

_TAU = 2.0 * pi
_TOL = 1e-9


def _norm(a: float) -> float:
    a = a % _TAU
    return a + _TAU if a < 0 else a


@dataclass
class Arc:
    """One boundary arc: on circle ``owner``, CCW from ``start`` for
    ``length`` radians, bounded by circles ``cut_start`` / ``cut_end``
    (``-1`` while the owner circle is still uncut, i.e. a full circle)."""

    aid: int
    owner: int
    start: float
    length: float
    cut_start: int
    cut_end: int
    alive: bool = True

    def contains_angle(self, theta: float) -> bool:
        return _norm(theta - self.start) <= self.length + _TOL


@dataclass
class DiskIntersectionResult:
    centers: np.ndarray
    order: np.ndarray
    arcs: list[Arc]                 # every arc ever created
    graph: DependenceGraph
    empty: bool = False             # intersection became empty

    def boundary(self) -> list[Arc]:
        return [a for a in self.arcs if a.alive]

    def dependence_depth(self) -> int:
        return self.graph.depth()

    def contains(self, q, tol: float = 1e-9) -> bool:
        q = np.asarray(q, dtype=np.float64)
        return bool((np.linalg.norm(self.centers - q[None, :], axis=1) <= 1.0 + tol).all())


def _constraint(centers: np.ndarray, owner: int, other: int) -> tuple[float, float]:
    """CCW interval (start, length) of circle ``owner`` inside disk
    ``other``; length -1 when the circles are too far apart."""
    m = centers[other] - centers[owner]
    dist = float(np.hypot(m[0], m[1]))
    if dist >= 2.0 - _TOL:
        return (0.0, -1.0)
    phi = atan2(m[1], m[0])
    alpha = acos(min(1.0, max(-1.0, dist / 2.0)))
    return (_norm(phi - alpha), 2.0 * alpha)


def _circ_intersect(
    a_start: float, a_len: float, b_start: float, b_len: float
) -> list[tuple[float, float, bool, bool]]:
    """Components of the intersection of two CCW circular intervals.

    Each component is ``(start, length, starts_at_b, ends_at_b)`` --
    the booleans say whether the component's start/end is an endpoint
    of interval B (as opposed to A).  At most two components.
    """
    comps: list[tuple[float, float, bool, bool]] = []
    a_end = a_start + a_len
    b_end = b_start + b_len
    for st, from_b in ((a_start, False), (b_start, True)):
        in_a = _norm(st - a_start) <= a_len + _TOL
        in_b = _norm(st - b_start) <= b_len + _TOL
        if not (in_a and in_b):
            continue
        to_a_end = a_len if not from_b else _norm(a_end - st)
        to_b_end = b_len if from_b else _norm(b_end - st)
        length = min(to_a_end, to_b_end)
        ends_at_b = to_b_end < to_a_end
        if length <= _TOL:
            continue
        if any(abs(st - c[0]) < 1e-12 for c in comps):
            continue  # identical start: same component
        comps.append((st, length, from_b, ends_at_b))
    # Drop a component nested inside the other (happens when one
    # interval contains the other and both candidate starts fire).
    if len(comps) == 2:
        (s0, l0, *_), (s1, l1, *_) = comps
        if _norm(s1 - s0) <= l0 + _TOL and _norm(s1 - s0) + l1 <= l0 + 2 * _TOL:
            comps = comps[:1]
        elif _norm(s0 - s1) <= l1 + _TOL and _norm(s0 - s1) + l0 <= l1 + 2 * _TOL:
            comps = comps[1:]
    return comps


def incremental_disk_intersection(
    centers: np.ndarray,
    seed: int | None = None,
    order: np.ndarray | None = None,
) -> DiskIntersectionResult:
    """Incrementally intersect unit disks in a (random) insertion order,
    tracking the configuration dependence structure.

    Returns a result whose alive arcs trace the final boundary (empty if
    the intersection is a full disk of the last surviving circle or the
    empty set -- ``empty`` distinguishes the latter).
    """
    centers = np.asarray(centers, dtype=np.float64)
    n = centers.shape[0]
    if order is None:
        order = np.random.default_rng(seed).permutation(n)
    else:
        order = np.asarray(order, dtype=np.int64)

    arcs: list[Arc] = []
    graph = DependenceGraph()
    next_aid = [0]

    def new_arc(owner, start, length, cs, ce, parents, step) -> Arc:
        arc = Arc(aid=next_aid[0], owner=owner, start=start, length=length,
                  cut_start=cs, cut_end=ce)
        next_aid[0] += 1
        arcs.append(arc)
        graph.order.append(arc.aid)
        graph.added_at[arc.aid] = step
        if parents:
            graph.parents[arc.aid] = tuple(p.aid for p in parents)
        return arc

    inserted: list[int] = []
    for step in range(n):
        x = int(order[step])
        if step == 0:
            inserted.append(x)
            continue
        if step == 1:
            # Bootstrap: two circles, one arc each (the base case).
            y = inserted[0]
            sy, ly = _constraint(centers, y, x)
            sx, lx = _constraint(centers, x, y)
            if ly < 0:
                return DiskIntersectionResult(centers, order, arcs, graph, empty=True)
            new_arc(y, sy, ly, x, x, (), step + 1)
            new_arc(x, sx, lx, y, y, (), step + 1)
            inserted.append(x)
            continue
        live = [a for a in arcs if a.alive]
        # 1. Clip existing arcs against the new disk.
        for a in live:
            s, ln = _constraint(centers, a.owner, x)
            if ln < 0:
                a.alive = False
                continue
            comps = _circ_intersect(a.start, a.length, s, ln)
            if (
                len(comps) == 1
                and not comps[0][2]
                and abs(comps[0][1] - a.length) <= 2 * _TOL
            ):
                continue  # the whole arc survives: unaffected
            a.alive = False
            for (ps, pl, starts_at_new, ends_at_new) in comps:
                cs = x if starts_at_new else a.cut_start
                ce = x if ends_at_new else a.cut_end
                new_arc(a.owner, ps, pl, cs, ce, (a,), step + 1)
        # 2. Add the new circle's own arcs.
        others = inserted
        constraints = []
        empty = False
        for c in others:
            s, ln = _constraint(centers, x, c)
            if ln < 0:
                empty = True
                break
            constraints.append((s, ln, c))
        if not empty:
            for s0, _l0, c0 in constraints:
                if not all(
                    _norm(s0 - s) <= ln + _TOL
                    for s, ln, c in constraints
                    if c != c0
                ):
                    continue
                end_len, c_end = min(
                    (_norm((s + ln) - s0), c) for s, ln, c in constraints
                )
                if end_len <= _TOL:
                    continue
                # Supported by the old arcs cut at this arc's endpoints:
                # the endpoint on circle c is the crossing of circles
                # (x, c); find the pre-insertion arc on c containing it.
                parents = []
                for cutter, theta_on_x in ((c0, s0), (c_end, s0 + end_len)):
                    p = centers[x] + np.array(
                        [np.cos(theta_on_x), np.sin(theta_on_x)]
                    )
                    rel = p - centers[cutter]
                    theta_c = atan2(float(rel[1]), float(rel[0]))
                    host = next(
                        (a for a in live if a.alive is not None
                         and a.owner == cutter and a.contains_angle(theta_c)),
                        None,
                    )
                    if host is not None and host not in parents:
                        parents.append(host)
                new_arc(x, s0, end_len, c0, c_end, tuple(parents), step + 1)
        # Empty-boundary check: intersection may have vanished.
        if not any(a.alive for a in arcs):
            return DiskIntersectionResult(centers, order, arcs, graph, empty=True)
        inserted.append(x)

    return DiskIntersectionResult(centers, order, arcs, graph)
