"""Convex collision detection on hull polytopes (GJK).

A downstream application of the hull library: the Gilbert--Johnson--
Keerthi algorithm decides whether two convex bodies intersect using
only their support functions -- which a :class:`~repro.hull.polytope.
Polytope` (or a raw vertex cloud) provides as a max-dot-product over
vertices.  Works in 2D and 3D; results are cross-validated in the test
suite against an LP feasibility oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SupportBody", "gjk_intersects", "gjk_distance"]

_MAX_ITER = 128
_EPS = 1e-12


@dataclass
class SupportBody:
    """A convex body given by its vertices (support = argmax dot)."""

    vertices: np.ndarray

    @staticmethod
    def from_polytope(poly) -> "SupportBody":
        return SupportBody(vertices=poly.points[poly.vertices()])

    @staticmethod
    def from_points(points: np.ndarray) -> "SupportBody":
        return SupportBody(vertices=np.asarray(points, dtype=np.float64))

    def support(self, direction: np.ndarray) -> np.ndarray:
        return self.vertices[int(np.argmax(self.vertices @ direction))]


def _minkowski_support(a: SupportBody, b: SupportBody, d: np.ndarray) -> np.ndarray:
    """Support of the Minkowski difference A - B in direction d."""
    return a.support(d) - b.support(-d)


def _closest_on_simplex(simplex: list[np.ndarray]) -> tuple[np.ndarray, list[np.ndarray]]:
    """Closest point to the origin on the simplex, plus the minimal
    sub-simplex realising it (distance subalgorithm, any dimension up to
    len(simplex)-1; simplices here have at most d+1 <= 4 vertices)."""
    best_point = None
    best_sub: list[np.ndarray] = []
    best_dist = np.inf
    m = len(simplex)
    # Enumerate faces of the simplex (non-empty subsets).
    for mask in range(1, 1 << m):
        sub = [simplex[i] for i in range(m) if mask >> i & 1]
        p = _closest_on_affine(sub)
        if p is None:
            continue
        dist = float(p @ p)
        if dist < best_dist - _EPS:
            best_dist = dist
            best_point = p
            best_sub = sub
    return best_point, best_sub


def _closest_on_affine(sub: list[np.ndarray]) -> np.ndarray | None:
    """Projection of the origin onto the convex hull of ``sub`` if it
    lands inside (barycentric coordinates all >= 0), else None."""
    k = len(sub)
    if k == 1:
        return sub[0]
    base = sub[0]
    edges = np.array([s - base for s in sub[1:]])  # (k-1, dim)
    gram = edges @ edges.T
    rhs = -(edges @ base)
    try:
        lam = np.linalg.solve(gram, rhs)
    except np.linalg.LinAlgError:
        return None
    if (lam < -1e-12).any() or lam.sum() > 1 + 1e-12:
        return None
    return base + lam @ edges


def gjk_distance(a: SupportBody, b: SupportBody) -> float:
    """Distance between two convex bodies (0 when they intersect)."""
    dim = a.vertices.shape[1]
    if b.vertices.shape[1] != dim:
        raise ValueError("dimension mismatch")
    d = a.vertices.mean(axis=0) - b.vertices.mean(axis=0)
    if float(d @ d) < _EPS:
        d = np.zeros(dim)
        d[0] = 1.0
    simplex = [_minkowski_support(a, b, -d)]
    for _ in range(_MAX_ITER):
        p, simplex = _closest_on_simplex(simplex)
        dist = float(np.sqrt(p @ p))
        if dist < 1e-10:
            return 0.0
        w = _minkowski_support(a, b, -p)
        # No progress towards the origin: p is the closest point.
        if float(p @ (w - p)) > -1e-12 * (1.0 + dist):
            return dist
        simplex.append(w)
        if len(simplex) > dim + 1:
            # Keep the minimal face plus the new point.
            simplex = simplex[-(dim + 1):]
    return dist  # pragma: no cover - iteration cap


def gjk_intersects(a: SupportBody, b: SupportBody, tol: float = 1e-9) -> bool:
    """Do the convex hulls of the two vertex sets intersect?"""
    return gjk_distance(a, b) <= tol
