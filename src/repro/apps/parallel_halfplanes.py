"""Parallel incremental half-plane intersection: Algorithm 3's
machinery on the Section 7 vertex space.

The transfer works because the structure the paper's ProcessRidge needs
is present verbatim:

* configurations are polygon **vertices** (two boundary lines), and the
  interfaces are polygon **edges** -- each on one boundary line, shared
  by exactly two vertices;
* a half-plane excluding any point of a segment excludes one of its
  endpoints (the complement of a half-plane is convex), so the new
  vertex created on an edge satisfies ``C(new) ⊆ C(v1) ∪ C(v2)``;
* equal conflict pivots mean the *whole* edge is cut away (both
  endpoints die -- the bury case), differing pivots mean the earlier
  half-plane crosses the edge once and spawns one new vertex (the
  create case, supported by the edge's two old endpoints -- exactly the
  paper's 2-support for this space).

``ProcessEdge(v1, line, v2)`` therefore runs the same four cases as
Algorithm 3, pairing the two new vertices a half-plane creates through
the multimap keyed by the *cutting line*.  Bootstrap is the same
bounding box as the sequential variant.  Tests check vertex-for-vertex
agreement with both sequential clipping and the dual-hull method, and
the usual O(log n) dependence depth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..configspace.depgraph import DependenceGraph
from ..runtime.multimap import DictMultimap

__all__ = ["PVertex", "ParallelHalfplaneResult", "parallel_halfplanes"]

_INF = np.iinfo(np.int64).max


@dataclass(eq=False)
class PVertex:
    """A polygon vertex: intersection of boundary lines ``pair``,
    with its conflict set (violating half-planes, ascending ranks)."""

    vid: int
    pair: tuple[int, int]
    coords: np.ndarray
    conflicts: np.ndarray
    alive: bool = True

    def __hash__(self) -> int:
        return self.vid


@dataclass
class ParallelHalfplaneResult:
    normals: np.ndarray
    offsets: np.ndarray
    order: np.ndarray
    vertex_pairs: list[tuple[int, int]]     # original half-plane ids
    vertices: np.ndarray
    created: list[PVertex]
    graph: DependenceGraph
    rounds: int

    def dependence_depth(self) -> int:
        return self.graph.depth()


def parallel_halfplanes(
    normals: np.ndarray,
    offsets: np.ndarray,
    seed: int | None = None,
    order: np.ndarray | None = None,
) -> ParallelHalfplaneResult:
    """Round-synchronous edge-driven half-plane intersection."""
    normals = np.asarray(normals, dtype=np.float64)
    offsets = np.asarray(offsets, dtype=np.float64)
    if normals.ndim != 2 or normals.shape[1] != 2:
        raise ValueError("normals must be (n, 2)")
    if not (offsets > 0).all():
        raise ValueError("every half-plane must strictly contain the origin")
    n = normals.shape[0]
    if order is None:
        order = np.random.default_rng(seed).permutation(n)
    else:
        order = np.asarray(order, dtype=np.int64)
    # Rank space: half-plane rank r corresponds to original order[r].
    nr = normals[order]
    br = offsets[order]

    box_r = 1e8 * float(offsets.max() / np.linalg.norm(normals, axis=1).min())
    # Box lines get ranks -1..-4 (inserted "before everything").
    box_normals = {-1: np.array([1.0, 0.0]), -2: np.array([0.0, 1.0]),
                   -3: np.array([-1.0, 0.0]), -4: np.array([0.0, -1.0])}

    def normal_of(r: int) -> np.ndarray:
        return box_normals[r] if r < 0 else nr[r]

    def offset_of(r: int) -> float:
        return box_r if r < 0 else float(br[r])

    def vertex_coords(i: int, j: int) -> np.ndarray:
        a = np.array([normal_of(i), normal_of(j)])
        b = np.array([offset_of(i), offset_of(j)])
        return np.linalg.solve(a, b)

    created: list[PVertex] = []
    graph = DependenceGraph()
    next_vid = [0]

    def make(pair: tuple[int, int], candidates: np.ndarray, support) -> PVertex:
        coords = vertex_coords(*pair)
        conf = np.array(
            [int(h) for h in candidates
             if float(nr[int(h)] @ coords) > float(br[int(h)])],
            dtype=np.int64,
        )
        v = PVertex(vid=next_vid[0], pair=pair, coords=coords, conflicts=conf)
        next_vid[0] += 1
        created.append(v)
        graph.order.append(v.vid)
        if support is not None:
            graph.parents[v.vid] = support
        return v

    # Bootstrap: the box corners; conflict candidates = all half-planes.
    everything = np.arange(n, dtype=np.int64)
    box_cycle = [-1, -2, -3, -4]
    corners = []
    for t in range(4):
        i, j = box_cycle[t], box_cycle[(t + 1) % 4]
        v = make(tuple(sorted((i, j))), everything, None)
        graph.added_at[v.vid] = 0
        corners.append(v)

    # Seed: one ProcessEdge per box edge (each on one box line, between
    # two adjacent corners).
    frontier: list[tuple[PVertex, int, PVertex]] = []
    for t in range(4):
        line = box_cycle[(t + 1) % 4]
        frontier.append((corners[t], line, corners[(t + 1) % 4]))

    M = DictMultimap()
    rounds = 0

    def process(task):
        v1, line, v2 = task
        b1 = int(v1.conflicts[0]) if v1.conflicts.size else _INF
        b2 = int(v2.conflicts[0]) if v2.conflicts.size else _INF
        if b1 == _INF and b2 == _INF:
            return []                     # final edge of the polygon
        if b1 == b2:
            v1.alive = False              # the whole edge is cut away
            v2.alive = False
            return []
        if b2 < b1:
            v1, v2 = v2, v1
            b1, b2 = b2, b1
        h = b1
        merged = np.union1d(v1.conflicts, v2.conflicts)
        merged = merged[merged > h]
        v = make(tuple(sorted((line, h))), merged, support=(v1.vid, v2.vid))
        graph.added_at[v.vid] = rounds
        v1.alive = False
        children = [(v, line, v2)]        # shortened edge on the same line
        # The other line of the new vertex is h: its edge pairs the two
        # vertices h creates, discovered through the multimap.
        if not M.insert_and_set(h, v):
            children.append((v, h, M.get_value(h, v)))
        return children

    while frontier:
        rounds += 1
        nxt = []
        for task in frontier:
            nxt.extend(process(task))
        frontier = nxt

    alive = [v for v in created if v.alive]
    if any(r < 0 for v in alive for r in v.pair):
        raise ValueError("unbounded intersection: final polygon touches the bounding box")
    pairs = [tuple(sorted((int(order[a]), int(order[b])))) for a, b in
             (v.pair for v in alive)]
    return ParallelHalfplaneResult(
        normals=normals,
        offsets=offsets,
        order=order,
        vertex_pairs=pairs,
        vertices=np.array([v.coords for v in alive]) if alive else np.zeros((0, 2)),
        created=created,
        graph=graph,
        rounds=rounds,
    )
