"""Derived solvers built on the paper's machinery: 2D Delaunay by
lifting, half-plane intersection (dual and direct incremental), and
unit-disk intersection with dependence tracking."""

from .bowyer_watson import BowyerWatsonResult, bowyer_watson
from .parallel_halfplanes import ParallelHalfplaneResult, parallel_halfplanes
from .parallel_delaunay import ParallelDelaunayResult, parallel_delaunay
from .collision import SupportBody, gjk_distance, gjk_intersects
from .layers import ConvexLayers, convex_layers
from .circles import Arc, DiskIntersectionResult, incremental_disk_intersection
from .delaunay import DelaunayResult, delaunay
from .halfspace import (
    Halfspace3DResult,
    halfspace_intersection_3d,
    HalfplaneResult,
    IncrementalHalfplaneResult,
    halfplane_intersection,
    incremental_halfplanes,
)

__all__ = [
    "BowyerWatsonResult",
    "bowyer_watson",
    "ParallelDelaunayResult",
    "parallel_delaunay",
    "ParallelHalfplaneResult",
    "parallel_halfplanes",
    "SupportBody",
    "gjk_distance",
    "gjk_intersects",
    "ConvexLayers",
    "convex_layers",
    "Arc",
    "DiskIntersectionResult",
    "incremental_disk_intersection",
    "DelaunayResult",
    "delaunay",
    "Halfspace3DResult",
    "halfspace_intersection_3d",
    "HalfplaneResult",
    "IncrementalHalfplaneResult",
    "halfplane_intersection",
    "incremental_halfplanes",
]
