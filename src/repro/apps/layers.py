"""Convex layers (onion peeling) on top of the parallel hull.

Repeatedly strip the hull vertices: layer 0 is the hull of everything,
layer 1 the hull of the rest, and so on.  A classic robust-statistics /
depth-ranking application that exercises the hull code as a subroutine
many times over shrinking, increasingly degenerate-prone subsets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hull.parallel import parallel_hull
from ..hull.sequential import sequential_hull

__all__ = ["ConvexLayers", "convex_layers"]


@dataclass
class ConvexLayers:
    """Result of onion peeling.

    ``layers[k]`` holds the original indices of the k-th layer's hull
    vertices; ``core`` the < d+1 points left when no further
    full-dimensional hull exists (possibly empty).
    """

    points: np.ndarray
    layers: list[list[int]]
    core: list[int]

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    def depth_of(self) -> np.ndarray:
        """Layer index per point (core points get ``n_layers``)."""
        out = np.full(self.points.shape[0], self.n_layers, dtype=np.int64)
        for k, layer in enumerate(self.layers):
            out[layer] = k
        return out


def convex_layers(
    points: np.ndarray,
    seed: int | None = None,
    backend: str = "parallel",
) -> ConvexLayers:
    """Peel convex layers until fewer than d+1 points remain or the
    rest is not full-dimensional (those become the ``core``)."""
    points = np.asarray(points, dtype=np.float64)
    n, d = points.shape
    run_hull = parallel_hull if backend == "parallel" else sequential_hull
    if backend not in ("parallel", "sequential"):
        raise ValueError(f"unknown backend {backend!r}")
    remaining = list(range(n))
    layers: list[list[int]] = []
    rng = np.random.default_rng(seed)
    while len(remaining) >= d + 1:
        sub = points[remaining]
        try:
            run = run_hull(sub, seed=int(rng.integers(0, 2**31)))
        except Exception:
            break  # not full-dimensional anymore: remainder is the core
        verts = sorted(remaining[i] for i in run.vertex_indices())
        layers.append(verts)
        vert_set = set(verts)
        remaining = [i for i in remaining if i not in vert_set]
    return ConvexLayers(points=points, layers=layers, core=remaining)
