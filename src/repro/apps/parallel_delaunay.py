"""Parallel incremental Delaunay: Algorithm 3 transferred to triangles.

The paper's ProcessRidge machinery is not hull-specific -- it needs
exactly (a) configurations with conflict sets satisfying
``C(new) ⊆ C(t1) ∪ C(t2)`` across a shared interface and (b) interfaces
shared by exactly two configurations.  Delaunay triangulations have
both: triangles share edges, a new triangle ``(e, p)`` appears when the
conflict pivot ``p`` of one edge-neighbour is absent from the other,
and equal pivots mean the edge is interior to ``p``'s cavity (the
"bury" case).  So ``ProcessEdge(t1, e, t2)`` runs the paper's four
cases verbatim, with ghost triangles (shared with
:mod:`repro.apps.bowyer_watson`) closing the hull boundary.

This gives the parallel incremental Delaunay of [17, 18] -- which the
paper cites as the lineage of its asynchrony idea -- expressed through
this paper's own algorithm, with the same measured O(log n) dependence
depth.  Tests check it triangle-for-triangle against Bowyer--Watson,
the lifted hull, and scipy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..configspace.depgraph import DependenceGraph
from ..geometry.predicates import in_circle, orient
from ..hull.common import HullSetupError
from ..runtime.multimap import DictMultimap
from .bowyer_watson import GHOST, BWTriangle

__all__ = ["ParallelDelaunayResult", "parallel_delaunay"]

_INF = np.iinfo(np.int64).max


@dataclass
class ParallelDelaunayResult:
    points: np.ndarray
    order: np.ndarray
    triangles: set[frozenset]      # real Delaunay triples (original indices)
    created: list[BWTriangle]
    graph: DependenceGraph
    rounds: int
    in_circle_tests: int

    @property
    def n_triangles(self) -> int:
        return len(self.triangles)

    def dependence_depth(self) -> int:
        return self.graph.depth()


def parallel_delaunay(
    points: np.ndarray,
    seed: int | None = None,
    order: np.ndarray | None = None,
) -> ParallelDelaunayResult:
    """Round-synchronous edge-driven incremental Delaunay."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise HullSetupError("parallel_delaunay expects an (n, 2) array")
    n = points.shape[0]
    if n < 3:
        raise HullSetupError("need at least 3 points")
    if order is None:
        order = np.random.default_rng(seed).permutation(n)
    else:
        order = np.asarray(order, dtype=np.int64)

    pts = points[order]
    k = next((k for k in range(2, n) if orient(pts[[0, 1]], pts[k]) != 0), None)
    if k is None:
        raise HullSetupError("input is collinear")
    perm = np.array([0, 1, k] + [i for i in range(2, n) if i != k], dtype=np.int64)
    pts = pts[perm]
    order = order[perm]
    interior = pts[:3].mean(axis=0)

    tests = 0

    def conflicts_with(verts, q_rank: int) -> bool:
        nonlocal tests
        tests += 1
        a, b, c = verts
        if c == GHOST:
            return orient(pts[[a, b]], pts[q_rank]) < 0
        s = orient(pts[[a, b]], pts[c])
        return in_circle(pts[a], pts[b], pts[c], pts[q_rank]) * s > 0

    created: list[BWTriangle] = []
    graph = DependenceGraph()
    next_tid = [0]

    def make(verts, candidates, support) -> BWTriangle:
        conf = np.array(
            [int(q) for q in candidates if conflicts_with(verts, int(q))],
            dtype=np.int64,
        )
        tri = BWTriangle(tid=next_tid[0], verts=verts, conflicts=conf)
        next_tid[0] += 1
        created.append(tri)
        graph.order.append(tri.tid)
        if support is not None:
            graph.parents[tri.tid] = support
        return tri

    def tri_edges(verts):
        a, b, c = verts
        return (frozenset((a, b)), frozenset((b, c)), frozenset((a, c)))

    def new_verts(edge: frozenset, p: int):
        e = sorted(edge)
        if e[0] == GHOST:
            (u,) = [x for x in e if x != GHOST]
            if orient(np.array([pts[u], pts[p]]), interior) > 0:
                return (u, p, GHOST)
            return (p, u, GHOST)
        u, w = e
        if orient(pts[[u, w]], pts[p]) > 0:
            return (u, w, p)
        return (w, u, p)

    # Bootstrap: real CCW triangle + CCW ghosts, conflicts over the rest.
    a, b, c = 0, 1, 2
    if orient(pts[[a, b]], pts[c]) < 0:
        b, c = c, b
    later = np.arange(3, n, dtype=np.int64)
    base = [make((a, b, c), later, None)]
    for (u, v) in ((a, b), (b, c), (c, a)):
        base.append(make((u, v, GHOST), later, None))
    for t in base:
        graph.added_at[t.tid] = 0

    M = DictMultimap()

    # Seed one ProcessEdge per shared edge of the bootstrap complex.
    pairs: dict[frozenset, list[BWTriangle]] = {}
    for t in base:
        for e in tri_edges(t.verts):
            pairs.setdefault(e, []).append(t)
    frontier = [
        (ts[0], e, ts[1]) for e, ts in sorted(pairs.items(), key=lambda kv: sorted(kv[0]))
    ]
    for e, ts in pairs.items():
        if len(ts) != 2:
            raise AssertionError(f"bootstrap edge {set(e)} has {len(ts)} triangles")

    rounds = 0

    def process(task):
        t1, e, t2 = task
        b1 = int(t1.conflicts[0]) if t1.conflicts.size else _INF
        b2 = int(t2.conflicts[0]) if t2.conflicts.size else _INF
        if b1 == _INF and b2 == _INF:
            return []                       # final edge
        if b1 == b2:
            t1.alive = False                # buried: interior to p's cavity
            t2.alive = False
            return []
        if b2 < b1:
            t1, t2 = t2, t1
            b1, b2 = b2, b1
        p = b1
        merged = np.union1d(t1.conflicts, t2.conflicts)
        merged = merged[merged > p]
        t = make(new_verts(e, p), merged, support=(t1.tid, t2.tid))
        graph.added_at[t.tid] = rounds
        t1.alive = False
        children = []
        for e2 in tri_edges(t.verts):
            if e2 == e:
                children.append((t, e, t2))
            elif not M.insert_and_set(e2, t):
                children.append((t, e2, M.get_value(e2, t)))
        return children

    while frontier:
        rounds += 1
        nxt = []
        for task in frontier:
            nxt.extend(process(task))
        frontier = nxt

    real = {
        frozenset(int(order[i]) for i in t.verts)
        for t in created
        if t.alive and not t.is_ghost
    }
    return ParallelDelaunayResult(
        points=points,
        order=order,
        triangles=real,
        created=created,
        graph=graph,
        rounds=rounds,
        in_circle_tests=tests,
    )
