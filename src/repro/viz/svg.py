"""Dependency-free SVG rendering of 2D runs.

Renders hulls, the parallel algorithm's rounds (facets coloured by the
round that created them), Delaunay triangulations, half-plane polygons,
and disk-intersection boundaries -- as plain SVG strings, so the output
is testable and viewable without matplotlib.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["SVGCanvas", "render_hull_rounds", "render_delaunay", "render_disk_boundary", "render_depth_chart"]

#: Categorical palette for rounds (cycled).
PALETTE = [
    "#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951",
    "#ff8ab7", "#a463f2", "#97bbf5", "#9c6b4e", "#9498a0",
]


@dataclass
class SVGCanvas:
    """Minimal SVG builder with a data-space -> pixel transform."""

    width: int = 640
    height: int = 640
    margin: int = 24

    def __post_init__(self) -> None:
        self._elements: list[str] = []
        self._xmin = self._ymin = -1.0
        self._xmax = self._ymax = 1.0

    def fit(self, points: np.ndarray) -> None:
        """Set the data window to the bounding box of ``points``."""
        points = np.asarray(points, dtype=float)
        self._xmin, self._ymin = points.min(axis=0)
        self._xmax, self._ymax = points.max(axis=0)
        if self._xmax == self._xmin:
            self._xmax += 1.0
        if self._ymax == self._ymin:
            self._ymax += 1.0

    def _tx(self, x: float) -> float:
        u = (x - self._xmin) / (self._xmax - self._xmin)
        return self.margin + u * (self.width - 2 * self.margin)

    def _ty(self, y: float) -> float:
        v = (y - self._ymin) / (self._ymax - self._ymin)
        return self.height - self.margin - v * (self.height - 2 * self.margin)

    def circle(self, center, r_px: float, fill: str = "#222", opacity: float = 1.0) -> None:
        self._elements.append(
            f'<circle cx="{self._tx(center[0]):.2f}" cy="{self._ty(center[1]):.2f}" '
            f'r="{r_px:.2f}" fill="{fill}" opacity="{opacity}"/>'
        )

    def line(self, a, b, stroke: str = "#444", width: float = 1.5,
             dashed: bool = False, opacity: float = 1.0) -> None:
        dash = ' stroke-dasharray="5,4"' if dashed else ""
        self._elements.append(
            f'<line x1="{self._tx(a[0]):.2f}" y1="{self._ty(a[1]):.2f}" '
            f'x2="{self._tx(b[0]):.2f}" y2="{self._ty(b[1]):.2f}" '
            f'stroke="{stroke}" stroke-width="{width}" opacity="{opacity}"{dash}/>'
        )

    def polygon(self, pts, fill: str = "none", stroke: str = "#333",
                width: float = 1.0, opacity: float = 1.0) -> None:
        coords = " ".join(f"{self._tx(p[0]):.2f},{self._ty(p[1]):.2f}" for p in pts)
        self._elements.append(
            f'<polygon points="{coords}" fill="{fill}" stroke="{stroke}" '
            f'stroke-width="{width}" opacity="{opacity}"/>'
        )

    def arc(self, center, radius_data: float, start: float, length: float,
            stroke: str = "#333", width: float = 2.0) -> None:
        """Circular arc in data space (angles in radians, CCW)."""
        a0, a1 = start, start + length
        p0 = (center[0] + radius_data * math.cos(a0), center[1] + radius_data * math.sin(a0))
        p1 = (center[0] + radius_data * math.cos(a1), center[1] + radius_data * math.sin(a1))
        rx = radius_data / (self._xmax - self._xmin) * (self.width - 2 * self.margin)
        ry = radius_data / (self._ymax - self._ymin) * (self.height - 2 * self.margin)
        large = 1 if length > math.pi else 0
        # SVG y-axis is flipped, so a CCW data arc is a CW screen arc.
        self._elements.append(
            f'<path d="M {self._tx(p0[0]):.2f} {self._ty(p0[1]):.2f} '
            f'A {rx:.2f} {ry:.2f} 0 {large} 0 '
            f'{self._tx(p1[0]):.2f} {self._ty(p1[1]):.2f}" '
            f'fill="none" stroke="{stroke}" stroke-width="{width}"/>'
        )

    def text(self, pos, s: str, size: int = 12, fill: str = "#000") -> None:
        self._elements.append(
            f'<text x="{self._tx(pos[0]):.2f}" y="{self._ty(pos[1]):.2f}" '
            f'font-size="{size}" fill="{fill}" font-family="sans-serif">{s}</text>'
        )

    def raw(self, element: str) -> None:
        self._elements.append(element)

    def render(self) -> str:
        body = "\n".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="100%" height="100%" fill="white"/>\n{body}\n</svg>'
        )


def render_hull_rounds(run, show_points: bool = True) -> str:
    """SVG of a 2D :class:`ParallelHullRun`: every facet ever created,
    coloured by creation round (final hull edges drawn solid and thick,
    replaced/buried edges dashed and faded)."""
    pts = run.points
    if pts.shape[1] != 2:
        raise ValueError("render_hull_rounds is 2D only")
    canvas = SVGCanvas()
    canvas.fit(pts)
    if show_points:
        for p in pts:
            canvas.circle(p, 2.0, fill="#999", opacity=0.7)
    for f in run.created:
        rnd = run.rounds.get(f.fid, 0)
        color = PALETTE[rnd % len(PALETTE)]
        a, b = pts[f.indices[0]], pts[f.indices[1]]
        if f.alive:
            canvas.line(a, b, stroke=color, width=2.5)
        else:
            canvas.line(a, b, stroke=color, width=1.0, dashed=True, opacity=0.45)
    for i, rnd in enumerate(sorted({run.rounds.get(f.fid, 0) for f in run.created})):
        canvas.raw(
            f'<text x="10" y="{16 + 14 * i}" font-size="11" '
            f'fill="{PALETTE[rnd % len(PALETTE)]}" font-family="sans-serif">'
            f"round {rnd}</text>"
        )
    return canvas.render()


def render_delaunay(result) -> str:
    """SVG of a :class:`~repro.apps.delaunay.DelaunayResult`."""
    pts = result.points
    canvas = SVGCanvas()
    canvas.fit(pts)
    for t in result.triangles:
        tri = [pts[i] for i in sorted(t)]
        canvas.polygon(tri, stroke="#4269d0", width=0.8, opacity=0.9)
    for p in pts:
        canvas.circle(p, 1.8, fill="#222")
    return canvas.render()


def render_disk_boundary(result, show_circles: bool = True) -> str:
    """SVG of a :class:`DiskIntersectionResult`: faded full circles plus
    the boundary arcs of the intersection."""
    centers = result.centers
    canvas = SVGCanvas()
    lo = centers.min(axis=0) - 1.1
    hi = centers.max(axis=0) + 1.1
    canvas.fit(np.array([lo, hi]))
    if show_circles:
        for c in centers:
            canvas.arc(c, 1.0, 0.0, 2 * math.pi - 1e-6, stroke="#ccc", width=0.7)
    for arc in result.boundary():
        canvas.arc(centers[arc.owner], 1.0, arc.start, arc.length,
                   stroke="#ff725c", width=2.5)
    return canvas.render()


def render_depth_chart(series: dict, title: str = "dependence depth vs n") -> str:
    """Line chart of depth-vs-n series on a log-x scale.

    ``series`` maps a label to a list of ``(n, depth)`` pairs.  Returns
    an SVG string; used by ``examples/depth_chart.py`` to draw the E1
    summary figure across problems.
    """
    import math as _math

    if not series or not any(series.values()):
        raise ValueError("series must contain at least one point")
    canvas = SVGCanvas(width=720, height=480, margin=56)
    xs = [(_math.log2(n)) for pts_ in series.values() for n, _ in pts_]
    ys = [float(dep) for pts_ in series.values() for _, dep in pts_]
    canvas.fit(np.array([[min(xs), 0.0], [max(xs), max(ys) * 1.1]]))
    # Axes.
    canvas.line((min(xs), 0), (max(xs), 0), stroke="#333", width=1.2)
    canvas.line((min(xs), 0), (min(xs), max(ys) * 1.1), stroke="#333", width=1.2)
    for x in sorted({round(v) for v in xs}):
        canvas.text((x, -0.04 * max(ys)), f"2^{int(x)}", size=11, fill="#555")
    for frac in (0.25, 0.5, 0.75, 1.0):
        y = max(ys) * frac
        canvas.text((min(xs) - 0.35, y), f"{y:.0f}", size=11, fill="#555")
        canvas.line((min(xs), y), (max(xs), y), stroke="#eee", width=0.8)
    for idx, (label, pts_) in enumerate(sorted(series.items())):
        color = PALETTE[idx % len(PALETTE)]
        data = sorted((_math.log2(n), float(dep)) for n, dep in pts_)
        for a, b in zip(data, data[1:]):
            canvas.line(a, b, stroke=color, width=2.0)
        for p in data:
            canvas.circle(p, 3.0, fill=color)
        canvas.raw(
            f'<text x="64" y="{20 + 14 * idx}" font-size="12" fill="{color}" '
            f'font-family="sans-serif">{label}</text>'
        )
    canvas.raw(
        f'<text x="{canvas.width // 2 - 80}" y="{canvas.height - 8}" '
        f'font-size="12" fill="#333" font-family="sans-serif">{title}</text>'
    )
    return canvas.render()
