"""Dependency-free SVG rendering of 2D runs (hull rounds, Delaunay,
disk-intersection boundaries)."""

from .svg import (
    SVGCanvas,
    render_delaunay,
    render_depth_chart,
    render_disk_boundary,
    render_hull_rounds,
)

__all__ = [
    "SVGCanvas",
    "render_delaunay",
    "render_depth_chart",
    "render_disk_boundary",
    "render_hull_rounds",
]
