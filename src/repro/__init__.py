"""repro -- a reproduction of *Randomized Incremental Convex Hull is
Highly Parallel* (Blelloch, Gu, Shun, Sun; SPAA 2020).

Public API highlights
---------------------

* :func:`repro.hull.sequential_hull` -- Algorithm 2, the classic
  conflict-graph randomized incremental hull in any constant dimension.
* :func:`repro.hull.parallel_hull` -- Algorithm 3, the paper's parallel
  ridge-driven variant, with pluggable executors (round-synchronous /
  serial / real threads) and the concurrent multimap of Algorithms 4/5.
* :mod:`repro.configspace` -- the configuration-space framework of
  Sections 3-4: support sets, k-support checking, and the configuration
  dependence graph with its depth analysis.
* :mod:`repro.apps` -- derived solvers: 2D Delaunay by lifting,
  half-plane intersection, unit-disk intersection.
* :mod:`repro.baselines` -- non-incremental hull baselines for the
  benchmark comparisons.
"""

from . import analysis, apps, baselines, configspace, geometry, hull, runtime, viz

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "apps",
    "baselines",
    "configspace",
    "geometry",
    "hull",
    "runtime",
    "viz",
    "__version__",
]
