"""RPR004: geometric branching must go through ``geometry.predicates``.

Branching on the sign of a raw floating-point determinant is exactly
the bug class the predicate envelope (``orient`` -> ``orient_exact``
escalation) exists to prevent: near-degenerate inputs flip the float
sign and the incremental structure silently corrupts (the moment-curve
bug in EXPERIMENTS.md' honest notes).  Outside ``geometry/`` -- where
the envelope itself lives -- comparing a determinant against zero is
therefore forbidden; callers use ``orient``/``orient_exact``/
``in_circle``, whose integer sign is exact.

The rule flags comparisons (``<``, ``>``, ``<=``, ``>=``, ``==``,
``!=``) between a literal zero and an expression that is a determinant:
a call to something named ``det``/``slogdet`` (``np.linalg.det(m) > 0``)
or a variable named ``det``/``determinant`` or ending in ``_det``.
"""

from __future__ import annotations

import ast

from .core import LintedFile, Rule, Violation

__all__ = ["RawPredicateRule"]

_DET_CALL_NAMES = frozenset({"det", "slogdet"})
_DET_VAR_NAMES = frozenset({"det", "determinant"})
_CMP_OPS = (ast.Lt, ast.Gt, ast.LtE, ast.GtE, ast.Eq, ast.NotEq)


def _is_zero(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return node.value == 0
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _is_zero(node.operand)
    return False


def _call_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
    return None


def _is_determinant(node: ast.expr) -> bool:
    name = _call_name(node)
    if name is not None and name in _DET_CALL_NAMES:
        return True
    if isinstance(node, ast.Name):
        n = node.id.lower()
        return n in _DET_VAR_NAMES or n.endswith("_det")
    if isinstance(node, ast.UnaryOp):
        return _is_determinant(node.operand)
    return False


class RawPredicateRule(Rule):
    id = "RPR004"
    name = "raw-predicate"
    summary = (
        "no raw float sign test on a determinant outside geometry/; "
        "use orient/orient_exact/in_circle"
    )

    def exempt(self, f: LintedFile) -> bool:
        return f.in_dir("geometry")

    def check(self, f: LintedFile) -> list[Violation]:
        out: list[Violation] = []
        for node in ast.walk(f.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            ops = node.ops
            for i, op in enumerate(ops):
                if not isinstance(op, _CMP_OPS):
                    continue
                left, right = operands[i], operands[i + 1]
                det = None
                if _is_zero(right) and _is_determinant(left):
                    det = left
                elif _is_zero(left) and _is_determinant(right):
                    det = right
                if det is not None:
                    out.append(self.violation(
                        f, node,
                        "raw float sign test on a determinant; use "
                        "geometry.predicates.orient/orient_exact/in_circle "
                        "(exact integer sign) instead",
                    ))
        return out
