"""``repro lint`` -- static enforcement of the repository's concurrency
and robustness disciplines.

The correctness theorems this repo reproduces are verified under the
step-level scheduler in :mod:`repro.runtime.interleave`; that
verification is sound only while the code keeps five unwritten
contracts.  This package makes them written:

========  ====================================================
RPR001    no access to atomic internals outside runtime/atomics.py
RPR002    no raw threading outside runtime/
RPR003    yield before every shared access in step generators
RPR004    no raw determinant sign tests outside geometry/
RPR005    no unseeded randomness
========  ====================================================

Use ``python -m repro lint [paths ...]`` (defaults to ``src tools``),
or programmatically::

    from repro.lint import lint_paths
    violations = lint_paths(["src"])

Suppress a finding with ``# repro: noqa`` or ``# repro: noqa: RPR004``.
The dynamic counterpart of RPR003 is :mod:`repro.runtime.racecheck`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from .core import DEFAULT_TARGETS, LintedFile, Rule, Violation, collect_files, run_lint
from .rules_atomics import AtomicInternalsRule, RawThreadingRule
from .rules_determinism import UnseededRandomRule
from .rules_geometry import RawPredicateRule
from .rules_yields import YieldDisciplineRule

__all__ = [
    "ALL_RULES",
    "DEFAULT_TARGETS",
    "LintedFile",
    "Rule",
    "Violation",
    "collect_files",
    "lint_paths",
    "run_lint",
]

#: The registry, in rule-id order.
ALL_RULES: tuple[Rule, ...] = (
    AtomicInternalsRule(),
    RawThreadingRule(),
    YieldDisciplineRule(),
    RawPredicateRule(),
    UnseededRandomRule(),
)


def lint_paths(
    paths: Sequence[str | Path] | None = None,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] = (),
) -> list[Violation]:
    """Lint ``paths`` (default: ``src`` and ``tools``) with every
    registered rule, minus ``ignore``, restricted to ``select`` when
    given."""
    if paths is None or not list(paths):
        paths = [p for p in DEFAULT_TARGETS if Path(p).exists()]
    return run_lint(
        paths,
        ALL_RULES,
        select=None if select is None else frozenset(s.upper() for s in select),
        ignore=frozenset(s.upper() for s in ignore),
    )
