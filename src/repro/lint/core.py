"""Infrastructure for the ``repro lint`` static checker.

The checker enforces the unwritten concurrency and robustness
disciplines that the correctness arguments of this repository (Theorems
A.1/A.2, the determinism of the round executor, the exactness of the
geometric branching) silently rely on.  Each rule is a small AST pass
with a stable identifier (``RPR001`` ...); violations can be suppressed
per line with ``# repro: noqa`` (all rules) or
``# repro: noqa: RPR003[,RPR004]`` (specific rules).

Rules are registered by :mod:`repro.lint` and run by :func:`run_lint`;
each rule declares which files it exempts (e.g. RPR002 permits raw
``threading`` inside ``runtime/``, where the primitives live).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "Violation",
    "Rule",
    "LintedFile",
    "SuppressionComment",
    "collect_files",
    "load_files",
    "run_lint",
    "suppressed_lines",
    "iter_suppressions",
    "unused_suppressions",
    "walk_shallow",
    "is_step_generator",
]

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)

#: Default lint targets, relative to the repository root: the library
#: and its tooling.  ``tests/`` is excluded by default because the test
#: suite legitimately spawns raw threads and plants rule violations as
#: fixtures; pass paths explicitly to lint it.
DEFAULT_TARGETS = ("src", "tools")


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass
class LintedFile:
    """A parsed source file handed to every rule."""

    path: Path
    source: str
    tree: ast.Module
    #: module path components below ``src`` (or the file's own parts),
    #: used by rules for directory-scoped exemptions.
    parts: tuple[str, ...] = field(default_factory=tuple)

    @property
    def posix(self) -> str:
        return self.path.as_posix()

    def in_dir(self, name: str) -> bool:
        """True when a path component equals ``name`` (e.g. ``runtime``)."""
        return name in self.parts

    def is_module(self, suffix: str) -> bool:
        """True when the file path ends with ``suffix`` (posix form)."""
        return self.posix.endswith(suffix)


class Rule:
    """Base class for lint rules.

    Subclasses set ``id``/``name``/``summary`` and implement
    :meth:`check`, returning violations for one parsed file.  ``check``
    is only called for files not exempted by :meth:`exempt`.
    """

    id: str = "RPR000"
    name: str = "unnamed"
    summary: str = ""

    def exempt(self, f: LintedFile) -> bool:  # pragma: no cover - trivial default
        return False

    def check(self, f: LintedFile) -> list[Violation]:
        raise NotImplementedError

    def violation(self, f: LintedFile, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=f.posix,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.id,
            message=message,
        )


def suppressed_lines(source: str) -> dict[int, frozenset[str] | None]:
    """Map line number -> suppressed rule ids (None == all rules).

    Shared by ``repro lint`` (RPR rules) and ``repro effects`` (RPREFF
    rules): both honour the same ``# repro: noqa[: CODE,...]`` syntax.
    Only real ``COMMENT`` tokens count -- a docstring *describing* the
    syntax is not a suppression (it would otherwise inflate the
    suppression ratchet).
    """
    out: dict[int, frozenset[str] | None] = {}
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out  # unparsable files carry their own RPR999/RPREFF999
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _NOQA_RE.match(tok.string)
        if not m:
            continue
        i = tok.start[0]
        codes = m.group("codes")
        if codes is None:
            out[i] = None
        else:
            out[i] = frozenset(c.strip().upper() for c in codes.split(",") if c.strip())
    return out


# Backwards-compatible private alias (pre-PR-5 name).
_suppressed_lines = suppressed_lines


@dataclass(frozen=True)
class SuppressionComment:
    """One ``# repro: noqa`` comment found in a source file."""

    path: str
    line: int
    codes: frozenset[str] | None  # None == blanket (all rules)

    def covers(self, rule_id: str) -> bool:
        return self.codes is None or rule_id.upper() in self.codes


def iter_suppressions(files: Iterable["LintedFile"]) -> list[SuppressionComment]:
    """Every noqa comment in ``files``, in (path, line) order.

    The ratchet baseline (``analyze-baseline.json``) and the
    unused-suppression audit both consume this."""
    out = []
    for f in files:
        for line, codes in sorted(suppressed_lines(f.source).items()):
            out.append(SuppressionComment(path=f.posix, line=line, codes=codes))
    return out


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.update(q for q in p.rglob("*.py") if "__pycache__" not in q.parts)
        elif p.suffix == ".py":
            files.add(p)
    return sorted(files)


def _module_parts(path: Path) -> tuple[str, ...]:
    parts = path.as_posix().split("/")
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    return tuple(parts)


def parse_file(path: Path, source: str | None = None) -> LintedFile | Violation:
    """Parse one file; returns a syntax-error pseudo-violation on failure."""
    if source is None:
        source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Violation(
            path=path.as_posix(),
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            rule_id="RPR999",
            message=f"syntax error: {exc.msg}",
        )
    return LintedFile(path=path, source=source, tree=tree, parts=_module_parts(path))


def load_files(
    paths: Sequence[str | Path],
    sources: dict[str, str] | None = None,
) -> tuple[list[LintedFile], list[Violation]]:
    """Collect and parse every python file under ``paths``.

    Returns ``(parsed files, syntax-error pseudo-violations)``.  When
    ``sources`` is given, it maps virtual paths to source text analysed
    *instead of* the filesystem (used by the fixture tests and the
    ``--effects`` fuzzer); ``paths`` is ignored in that mode.

    This is the single source-loading entry point shared by ``repro
    lint`` and ``repro effects``.
    """
    files: list[LintedFile] = []
    errors: list[Violation] = []
    if sources is not None:
        items: Iterable[tuple[Path, str | None]] = [
            (Path(p), src) for p, src in sorted(sources.items())
        ]
    else:
        items = [(p, None) for p in collect_files(paths)]
    for path, source in items:
        parsed = parse_file(path, source=source)
        if isinstance(parsed, Violation):
            errors.append(parsed)
        else:
            files.append(parsed)
    return files, errors


def run_lint(
    paths: Sequence[str | Path],
    rules: Iterable[Rule],
    select: frozenset[str] | None = None,
    ignore: frozenset[str] = frozenset(),
) -> list[Violation]:
    """Run ``rules`` over every python file under ``paths``.

    ``select``/``ignore`` filter by rule id; line-level ``# repro:
    noqa`` comments are honoured afterwards.  Violations come back
    sorted by (path, line, col, rule id).
    """
    chosen = [
        r for r in rules
        if (select is None or r.id in select) and r.id not in ignore
    ]
    files, out = load_files(paths)
    out = list(out)
    for parsed in files:
        suppressed = suppressed_lines(parsed.source)
        for rule in chosen:
            if rule.exempt(parsed):
                continue
            for v in rule.check(parsed):
                codes = suppressed.get(v.line, frozenset())
                if codes is None or v.rule_id in codes:
                    continue
                out.append(v)
    out.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return out


def unused_suppressions(
    paths: Sequence[str | Path],
    rules: Iterable[Rule],
    prefix: str = "RPR",
) -> list[SuppressionComment]:
    """Noqa comments that suppress nothing.

    Re-runs every rule *ignoring* suppressions, then reports each
    ``# repro: noqa`` comment naming a ``prefix`` rule id (or blanket)
    for which no violation exists on its line.  These are the lint
    false-positive surface the interprocedural effect analyzer is built
    on: a stale suppression hides future real findings, so CI pins the
    audit to empty.

    A code belongs to this audit only when ``prefix`` is followed by a
    digit (``RPR004``, not ``RPREFF002``/``RPRHOT001``): the effect and
    hot-path analyzers share the noqa dialect but run their own
    suppression ratchets, so their codes must not read as stale here.
    """
    rules = list(rules)
    files, _ = load_files(paths)
    hits: dict[tuple[str, int], set[str]] = {}
    for parsed in files:
        for rule in rules:
            if rule.exempt(parsed):
                continue
            for v in rule.check(parsed):
                hits.setdefault((v.path, v.line), set()).add(v.rule_id)

    def _mine(code: str) -> bool:
        return code.startswith(prefix) and code[len(prefix):len(prefix) + 1].isdigit()

    unused = []
    for comment in iter_suppressions(files):
        if comment.codes is not None and not any(_mine(c) for c in comment.codes):
            continue  # someone else's noqa dialect
        fired = hits.get((comment.path, comment.line), set())
        if comment.codes is None:
            if not fired:
                unused.append(comment)
        elif not any(comment.covers(rid) for rid in fired):
            unused.append(comment)
    return unused


# -- shared AST helpers (lint rules + the effect analyzer) ---------------

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SKIP_NODES = _FUNC_NODES + (ast.ClassDef, ast.Lambda)


def walk_shallow(node: ast.AST):
    """Walk an AST without descending into nested function/class defs."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, _SKIP_NODES):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def is_step_generator(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True for the tagged-yield convention of the step generators: the
    function yields a tuple whose first element is a string literal
    (``yield ("cas", i)``).  Shared by RPR003 and the step-atomicity
    check of :mod:`repro.analyze`."""
    for node in walk_shallow(func):
        if isinstance(node, ast.Yield) and isinstance(node.value, ast.Tuple):
            elts = node.value.elts
            if elts and isinstance(elts[0], ast.Constant) and isinstance(elts[0].value, str):
                return True
    return False
