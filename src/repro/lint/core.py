"""Infrastructure for the ``repro lint`` static checker.

The checker enforces the unwritten concurrency and robustness
disciplines that the correctness arguments of this repository (Theorems
A.1/A.2, the determinism of the round executor, the exactness of the
geometric branching) silently rely on.  Each rule is a small AST pass
with a stable identifier (``RPR001`` ...); violations can be suppressed
per line with ``# repro: noqa`` (all rules) or
``# repro: noqa: RPR003[,RPR004]`` (specific rules).

Rules are registered by :mod:`repro.lint` and run by :func:`run_lint`;
each rule declares which files it exempts (e.g. RPR002 permits raw
``threading`` inside ``runtime/``, where the primitives live).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["Violation", "Rule", "LintedFile", "collect_files", "run_lint"]

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)

#: Default lint targets, relative to the repository root: the library
#: and its tooling.  ``tests/`` is excluded by default because the test
#: suite legitimately spawns raw threads and plants rule violations as
#: fixtures; pass paths explicitly to lint it.
DEFAULT_TARGETS = ("src", "tools")


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass
class LintedFile:
    """A parsed source file handed to every rule."""

    path: Path
    source: str
    tree: ast.Module
    #: module path components below ``src`` (or the file's own parts),
    #: used by rules for directory-scoped exemptions.
    parts: tuple[str, ...] = field(default_factory=tuple)

    @property
    def posix(self) -> str:
        return self.path.as_posix()

    def in_dir(self, name: str) -> bool:
        """True when a path component equals ``name`` (e.g. ``runtime``)."""
        return name in self.parts

    def is_module(self, suffix: str) -> bool:
        """True when the file path ends with ``suffix`` (posix form)."""
        return self.posix.endswith(suffix)


class Rule:
    """Base class for lint rules.

    Subclasses set ``id``/``name``/``summary`` and implement
    :meth:`check`, returning violations for one parsed file.  ``check``
    is only called for files not exempted by :meth:`exempt`.
    """

    id: str = "RPR000"
    name: str = "unnamed"
    summary: str = ""

    def exempt(self, f: LintedFile) -> bool:  # pragma: no cover - trivial default
        return False

    def check(self, f: LintedFile) -> list[Violation]:
        raise NotImplementedError

    def violation(self, f: LintedFile, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=f.posix,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.id,
            message=message,
        )


def _suppressed_lines(source: str) -> dict[int, frozenset[str] | None]:
    """Map line number -> suppressed rule ids (None == all rules)."""
    out: dict[int, frozenset[str] | None] = {}
    for i, line in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(line)
        if not m:
            continue
        codes = m.group("codes")
        if codes is None:
            out[i] = None
        else:
            out[i] = frozenset(c.strip().upper() for c in codes.split(",") if c.strip())
    return out


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.update(q for q in p.rglob("*.py") if "__pycache__" not in q.parts)
        elif p.suffix == ".py":
            files.add(p)
    return sorted(files)


def _module_parts(path: Path) -> tuple[str, ...]:
    parts = path.as_posix().split("/")
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    return tuple(parts)


def parse_file(path: Path, source: str | None = None) -> LintedFile | Violation:
    """Parse one file; returns a syntax-error pseudo-violation on failure."""
    if source is None:
        source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Violation(
            path=path.as_posix(),
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            rule_id="RPR999",
            message=f"syntax error: {exc.msg}",
        )
    return LintedFile(path=path, source=source, tree=tree, parts=_module_parts(path))


def run_lint(
    paths: Sequence[str | Path],
    rules: Iterable[Rule],
    select: frozenset[str] | None = None,
    ignore: frozenset[str] = frozenset(),
) -> list[Violation]:
    """Run ``rules`` over every python file under ``paths``.

    ``select``/``ignore`` filter by rule id; line-level ``# repro:
    noqa`` comments are honoured afterwards.  Violations come back
    sorted by (path, line, col, rule id).
    """
    chosen = [
        r for r in rules
        if (select is None or r.id in select) and r.id not in ignore
    ]
    out: list[Violation] = []
    for path in collect_files(paths):
        parsed = parse_file(path)
        if isinstance(parsed, Violation):
            out.append(parsed)
            continue
        suppressed = _suppressed_lines(parsed.source)
        for rule in chosen:
            if rule.exempt(parsed):
                continue
            for v in rule.check(parsed):
                codes = suppressed.get(v.line, frozenset())
                if codes is None or v.rule_id in codes:
                    continue
                out.append(v)
    out.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return out
