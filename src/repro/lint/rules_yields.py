"""RPR003: yield discipline in step-generator functions.

The interleave scheduler (and the theorems verified through it) only
explores the interleavings that the step generators *expose*: an
operation must ``yield`` a tagged preemption point before **every**
shared-memory access, the convention used by ``runtime/multimap.py``
(``yield ("cas", i)`` then the CAS, ``yield ("read", i)`` then the
load).  An access without a preceding yield is fused into the previous
step, silently shrinking the schedule space the correctness proofs
quantify over.

Detection: a function is a *step generator* when it yields a tuple whose
first element is a string literal (the tag convention).  Inside such a
function, a *shared access* is any subscript of a private ``self``
attribute (``self._cells[i]``, ``self._slots[j].data``, ...).  The rule
simulates the function body: each yield arms exactly one access; an
access with no armed yield -- on any path, including the wrap-around of
a loop -- is a violation.  Two accesses back-to-back need two yields.
"""

from __future__ import annotations

import ast

from .core import LintedFile, Rule, Violation, is_step_generator, walk_shallow

__all__ = ["YieldDisciplineRule"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SKIP_NODES = _FUNC_NODES + (ast.ClassDef, ast.Lambda)

# Shared with repro.analyze (which checks the same discipline
# interprocedurally); aliased so existing imports keep working.
_walk_shallow = walk_shallow
_is_step_generator = is_step_generator


def _is_shared_subscript(node: ast.Subscript) -> bool:
    """True for ``self._attr[...]`` -- a slot of a shared container."""
    base = node.value
    return (
        isinstance(base, ast.Attribute)
        and base.attr.startswith("_")
        and isinstance(base.value, ast.Name)
        and base.value.id == "self"
    )


def _shared_accesses(node: ast.AST) -> list[ast.Subscript]:
    """Shared-container subscripts under ``node``, in source order."""
    found = [
        n for n in _walk_shallow(node)
        if isinstance(n, ast.Subscript) and _is_shared_subscript(n)
    ]
    found.sort(key=lambda n: (n.lineno, n.col_offset))
    return found


def _has_own_yield(node: ast.AST) -> bool:
    """True when ``node`` itself (not a nested block) contains a yield."""
    return any(isinstance(n, ast.Yield) for n in _walk_shallow(node))


class YieldDisciplineRule(Rule):
    id = "RPR003"
    name = "yield-discipline"
    summary = (
        "in step-generator functions every shared-container access "
        "must be preceded by its own yield preemption point"
    )

    def check(self, f: LintedFile) -> list[Violation]:
        out: list[Violation] = []
        for node in ast.walk(f.tree):
            if isinstance(node, _FUNC_NODES) and _is_step_generator(node):
                out.extend(self._check_function(f, node))
        return out

    def _check_function(self, f: LintedFile, func) -> list[Violation]:
        flagged: dict[int, Violation] = {}

        def consume(accesses: list[ast.Subscript], armed: bool) -> bool:
            for acc in accesses:
                if not armed and id(acc) not in flagged:
                    flagged[id(acc)] = self.violation(
                        f, acc,
                        "shared access "
                        f"`self.{acc.value.attr}[...]` in step generator "
                        f"`{func.name}` is not preceded by a yield "
                        "preemption point",
                    )
                armed = False
            return armed

        def simulate(stmts: list[ast.stmt], armed: bool) -> bool:
            for stmt in stmts:
                if isinstance(stmt, _SKIP_NODES):
                    continue
                if isinstance(stmt, ast.If):
                    armed = consume(_shared_accesses(stmt.test), armed)
                    a1 = simulate(stmt.body, armed)
                    a2 = simulate(stmt.orelse, armed)
                    armed = a1 and a2
                elif isinstance(stmt, (ast.While, ast.For)):
                    # Two passes model the wrap-around: the second
                    # iteration starts from the state the first left.
                    header = stmt.test if isinstance(stmt, ast.While) else stmt.iter
                    for _ in range(2):
                        armed = consume(_shared_accesses(header), armed)
                        armed = simulate(stmt.body, armed)
                    armed = simulate(stmt.orelse, armed)
                elif isinstance(stmt, ast.Try):
                    armed = simulate(stmt.body, armed)
                    for handler in stmt.handlers:
                        armed = simulate(handler.body, armed) and armed
                    armed = simulate(stmt.orelse, armed)
                    armed = simulate(stmt.finalbody, armed)
                elif isinstance(stmt, ast.With):
                    for item in stmt.items:
                        armed = consume(_shared_accesses(item), armed)
                    armed = simulate(stmt.body, armed)
                elif _has_own_yield(stmt):
                    # A simple statement carrying the yield itself: it
                    # arms the next access.  The `yield tag` idiom never
                    # mixes an access into the same statement.
                    armed = True
                else:
                    armed = consume(_shared_accesses(stmt), armed)
            return armed

        simulate(func.body, armed=False)
        return sorted(flagged.values(), key=lambda v: (v.line, v.col))
