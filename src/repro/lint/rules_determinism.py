"""RPR005: all randomness must be seeded.

The round executor's depth measurements (E1), the work equivalence
check (E2), and the differential fuzzer's reproducers are only
meaningful when every random draw is derived from an explicit seed.
Global-state randomness (``random.random()``, ``np.random.rand``,
``np.random.seed``) or entropy-seeded generators
(``np.random.default_rng()`` with no argument) make failures
unreproducible.

Allowed: ``random.Random(seed)``, ``np.random.default_rng(seed)``,
``np.random.Generator``/``SeedSequence`` construction, and any method
call on a generator object (``rng.integers(...)``) -- the object carries
its seed.
"""

from __future__ import annotations

import ast

from .core import LintedFile, Rule, Violation

__all__ = ["UnseededRandomRule"]

#: Constructors on the random/np.random modules that take a seed; calls
#: to them are fine exactly when a non-None seed argument is passed.
_SEEDED_CTORS = frozenset({"Random", "default_rng", "RandomState"})

#: Names importable from the random modules that are types/helpers, not
#: entropy sources.
_BENIGN = frozenset({"Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox"})


def _random_module_chain(node: ast.expr) -> str | None:
    """Return 'random' or 'np.random' when ``node`` is that module
    expression (by name), else None."""
    if isinstance(node, ast.Name) and node.id == "random":
        return "random"
    if (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    ):
        return f"{node.value.id}.random"
    return None


def _seed_is_missing(call: ast.Call) -> bool:
    """True when the constructor call has no seed or an explicit None."""
    if call.keywords:
        for kw in call.keywords:
            if kw.arg in (None, "seed"):
                return isinstance(kw.value, ast.Constant) and kw.value.value is None
    if not call.args:
        return True
    first = call.args[0]
    return isinstance(first, ast.Constant) and first.value is None


class UnseededRandomRule(Rule):
    id = "RPR005"
    name = "unseeded-random"
    summary = "no unseeded random.* / np.random.* calls (determinism)"

    def check(self, f: LintedFile) -> list[Violation]:
        out: list[Violation] = []
        for node in ast.walk(f.tree):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            module = _random_module_chain(node.func.value)
            if module is None:
                continue
            fn = node.func.attr
            if fn in _BENIGN:
                continue
            if fn in _SEEDED_CTORS:
                if _seed_is_missing(node):
                    out.append(self.violation(
                        f, node,
                        f"`{module}.{fn}()` without a seed draws from OS "
                        "entropy; pass an explicit seed so runs are "
                        "reproducible",
                    ))
                continue
            out.append(self.violation(
                f, node,
                f"global-state randomness `{module}.{fn}(...)`; use a "
                "seeded generator (np.random.default_rng(seed) / "
                "random.Random(seed)) instead",
            ))
        return out
