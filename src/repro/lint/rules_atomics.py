"""RPR001/RPR002: the atomic-primitive encapsulation rules.

The linearizability argument for the concurrent multimap (Appendix A)
holds only if every thread goes through the atomic *interfaces* --
``load``/``store``/``compare_and_swap``/``test_and_set`` -- and never
pokes at the guarded state directly, and if ad-hoc locks/threads don't
appear outside the runtime layer where the scheduler can't see them.
"""

from __future__ import annotations

import ast

from .core import LintedFile, Rule, Violation

__all__ = [
    "AtomicInternalsRule",
    "RawThreadingRule",
    "THREADING_ALLOWLIST",
    "MULTIPROCESSING_ALLOWLIST",
]

#: Attribute names that are implementation details of the atomics.
_INTERNAL_ATTRS = frozenset({"_value", "_set", "_lock"})

#: Modules whose direct use outside ``runtime/`` bypasses the simulator.
_THREAD_MODULES = frozenset({"threading", "_thread"})

#: The only runtime modules allowed to import ``threading`` directly:
#: the atomic primitives themselves, the executors that own real worker
#: threads, and the fault-injection layer (whose supervisor must poll
#: ``Thread.is_alive`` to detect injected worker deaths).  Every other
#: module -- including elsewhere in ``runtime/`` -- goes through the
#: ``repro.runtime`` primitives so the interleave scheduler, race
#: checker, and chaos layer see every synchronization point.
THREADING_ALLOWLIST = (
    "runtime/atomics.py",
    "runtime/executors.py",
    "runtime/chaos.py",
)

#: Modules owning real OS processes / shared-memory segments.
_PROC_MODULES = frozenset({"multiprocessing", "_multiprocessing"})

#: The only module allowed to import ``multiprocessing`` directly: the
#: supervised process executor, which owns worker lifecycles (spawn,
#: SIGKILL, sentinel polling) and shared-memory segment ownership.  A
#: raw ``multiprocessing`` use anywhere else would create workers no
#: supervisor watches and segments no owner unlinks.
MULTIPROCESSING_ALLOWLIST = (
    "runtime/procexec.py",
)


class AtomicInternalsRule(Rule):
    id = "RPR001"
    name = "atomic-internals"
    summary = (
        "do not touch _value/_set/_lock internals of the atomic "
        "primitives outside runtime/atomics.py"
    )

    def exempt(self, f: LintedFile) -> bool:
        return f.is_module("runtime/atomics.py")

    def check(self, f: LintedFile) -> list[Violation]:
        out: list[Violation] = []
        for node in ast.walk(f.tree):
            if isinstance(node, ast.Attribute) and node.attr in _INTERNAL_ATTRS:
                out.append(self.violation(
                    f, node,
                    f"access to atomic internal `.{node.attr}`; use the "
                    "load/store/CAS/TAS interface (or runtime.atomics.Mutex)",
                ))
        return out


class RawThreadingRule(Rule):
    id = "RPR002"
    name = "raw-threading"
    summary = (
        "no raw threading/multiprocessing outside the allowlisted "
        "runtime modules (atomics, executors, chaos, procexec)"
    )

    def _blocked_roots(self, f: LintedFile) -> frozenset[str]:
        roots = frozenset()
        if not any(f.is_module(m) for m in THREADING_ALLOWLIST):
            roots |= _THREAD_MODULES
        if not any(f.is_module(m) for m in MULTIPROCESSING_ALLOWLIST):
            roots |= _PROC_MODULES
        return roots

    def check(self, f: LintedFile) -> list[Violation]:
        blocked = self._blocked_roots(f)
        if not blocked:
            return []
        out: list[Violation] = []

        def _why(root: str) -> str:
            if root in _PROC_MODULES:
                return (
                    "; only runtime/procexec.py may own worker processes "
                    "and shared-memory segments (supervision + unlink "
                    "ownership)"
                )
            return (
                "; use repro.runtime primitives (Mutex, AtomicCell, "
                "executors) so the interleave scheduler and race checker "
                "see every synchronization point"
            )

        for node in ast.walk(f.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in blocked:
                        out.append(self.violation(
                            f, node,
                            f"raw `import {alias.name}`" + _why(root),
                        ))
            elif isinstance(node, ast.ImportFrom):
                root = node.module.split(".")[0] if node.module else ""
                if root in blocked:
                    out.append(self.violation(
                        f, node,
                        f"raw `from {node.module} import ...`" + _why(root),
                    ))
        return out
