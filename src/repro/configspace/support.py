"""Support sets and the k-support property (Definitions 3.2 and 3.3).

``Φ`` supports ``(π, x)`` when (1) ``D(π) ⊆ D(Φ) ∪ {x}`` and (2)
``C(π) ∪ {x} ⊆ C(Φ)``: once every configuration of ``Φ`` is active,
adding ``x`` must activate ``π`` (and destroy part of ``Φ``), no matter
what else exists.  A space has *k-support* when every active
configuration has a support set of size at most ``k`` for each of its
defining objects.

This module provides the definitional checker and an exhaustive
verifier: for a concrete instance it enumerates every ``Y``, every
``π ∈ T(Y)`` and ``x ∈ D(π)``, and searches ``T(Y \\ {x})`` for a
support set of size ≤ k -- certifying Theorem 5.1 (2-support for hull
facets), Lemma 6.2 (4-support for 3D corners) and the Section 7 claims
on real instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, Sequence

from .base import Config, ConfigurationSpace

__all__ = [
    "is_support_set",
    "find_support_set",
    "SupportReport",
    "check_k_support",
]


def is_support_set(config: Config, x: int, phi: Sequence[Config]) -> bool:
    """Definition 3.2: does ``phi`` support ``(config, x)``?"""
    if x not in config.defining:
        return False
    defining_union = frozenset().union(*(c.defining for c in phi)) if phi else frozenset()
    if not (config.defining <= defining_union | {x}):
        return False
    conflict_union = frozenset().union(*(c.conflicts for c in phi)) if phi else frozenset()
    return (config.conflicts | {x}) <= conflict_union


def find_support_set(
    active_prev: Iterable[Config],
    config: Config,
    x: int,
    k: int,
) -> tuple[Config, ...] | None:
    """Search ``T(Y \\ {x})`` for a support set of size ≤ k.

    Exhaustive over subsets of a pruned candidate pool: condition (2)
    requires ``x ∈ C(Φ)``, so at least one member conflicts with ``x``;
    and members whose defining or conflict sets are disjoint from
    ``D(π) ∪ C(π) ∪ {x}`` can never help, so they are dropped.  Returns
    the first (smallest) support set found, or None.
    """
    relevant = config.defining | config.conflicts | {x}
    pool = [
        c
        for c in active_prev
        if (c.defining & relevant) or (c.conflicts & relevant)
    ]
    # Deterministic order so witnesses are reproducible.
    pool.sort(key=lambda c: (sorted(c.defining), str(c.tag)))
    for size in range(1, k + 1):
        for phi in combinations(pool, size):
            if is_support_set(config, x, phi):
                return phi
    return None


@dataclass
class SupportReport:
    """Outcome of an exhaustive k-support check on one instance."""

    k: int
    checked: int = 0
    witnesses: dict = field(default_factory=dict)  # (config key, x) -> phi keys
    failures: list = field(default_factory=list)   # (config key, x)

    @property
    def ok(self) -> bool:
        return not self.failures

    def max_support_size(self) -> int:
        return max((len(phi) for phi in self.witnesses.values()), default=0)


def check_k_support(
    space: ConfigurationSpace,
    objects: Iterable[int],
    k: int | None = None,
    record_witnesses: bool = True,
) -> SupportReport:
    """Verify Definition 3.3 on a concrete ``Y``: every ``π ∈ T(Y)``
    and every ``x ∈ D(π)`` has a support set of size ≤ k in
    ``T(Y \\ {x})``.

    Uses the space's constructive :meth:`find_support` when provided
    (verifying the returned set against Definition 3.2), otherwise the
    generic exhaustive search.
    """
    if k is None:
        k = space.support_k
    Y = frozenset(objects)
    report = SupportReport(k=k)
    active = space.active_set(Y)
    prev_cache: dict[int, set[Config]] = {}
    for config in sorted(active, key=lambda c: (sorted(c.defining), str(c.tag))):
        for x in sorted(config.defining):
            if x not in prev_cache:
                prev_cache[x] = space.active_set(Y - {x})
            prev = prev_cache[x]
            report.checked += 1
            phi = space.find_support(prev, config, x)
            if phi is not None and (
                len(phi) > k
                or not set(phi) <= prev
                or not is_support_set(config, x, phi)
            ):
                phi = None  # constructive rule failed; fall back
            if phi is None:
                phi = find_support_set(prev, config, x, k)
            if phi is None:
                report.failures.append((config.key(), x))
            elif record_witnesses:
                report.witnesses[(config.key(), x)] = tuple(c.key() for c in phi)
    return report
