"""Configuration spaces (Section 3, after Mulmuley's formulation).

A configuration space is a ground set of *objects* ``X`` together with
*configurations*, each carrying a defining set ``D`` (at most ``g``
objects, the maximum degree) and a conflict set ``C`` (disjoint from
``D``).  A configuration is *active* for ``Y`` iff ``D ⊆ Y`` and
``C ∩ Y = ∅``; the active set is ``T(Y)``.

Concrete spaces (convex hull facets, Delaunay triangles, half-plane
vertices, unit-circle arcs, 3D corners) subclass
:class:`ConfigurationSpace` and provide a *brute-force* ``active_set``
used as ground truth by the k-support checker and the dependence-graph
builder.  Objects are always identified by integer indices into the
space's input data.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import FrozenSet, Hashable, Iterable

__all__ = ["Config", "ConfigurationSpace"]


@dataclass(frozen=True)
class Config:
    """One configuration.

    ``defining`` and ``conflicts`` hold object indices; ``tag``
    disambiguates multiple configurations over the same defining set
    (e.g. a facet's orientation), realising the space's multiplicity.
    Identity -- and therefore hashing -- is ``(defining, tag)``; the
    conflict set is a derived attribute and deliberately excluded, so a
    configuration computed from different subsets ``Y`` compares equal.
    """

    defining: FrozenSet[int]
    tag: Hashable
    conflicts: FrozenSet[int]

    def __hash__(self) -> int:
        return hash((self.defining, self.tag))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Config)
            and self.defining == other.defining
            and self.tag == other.tag
        )

    def key(self) -> tuple:
        return (self.defining, self.tag)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        d = ",".join(map(str, sorted(self.defining)))
        return f"Config({{{d}}}, tag={self.tag!r}, |C|={len(self.conflicts)})"


class ConfigurationSpace(ABC):
    """Abstract configuration space over objects ``0..n_objects-1``.

    Subclasses must report the structural constants the theorems are
    parameterised by (degree ``g``, multiplicity ``c``, support bound
    ``k``, base size ``n_b``) and compute active sets; they may override
    :meth:`find_support` with a constructive rule (the generic
    brute-force search in :mod:`repro.configspace.support` is the
    fallback and the ground truth).
    """

    #: maximum degree g = max |D(pi)|
    degree: int
    #: multiplicity c = max configurations per defining set
    multiplicity: int
    #: claimed support bound k (what the paper proves for this space)
    support_k: int
    #: base size n_b (smallest |Y| at which k-support is claimed)
    base_size: int

    @property
    @abstractmethod
    def n_objects(self) -> int:
        """Size of the ground set X."""

    @abstractmethod
    def active_set(self, objects: Iterable[int]) -> set[Config]:
        """Brute-force ``T(Y)`` for ``Y = set(objects)``.

        Conflict sets of the returned configurations are taken over the
        *full* ground set X, per the model (activity w.r.t. Y is then
        just ``C ∩ Y = ∅``, which callers may re-check against other
        subsets)."""

    def ground_set(self) -> frozenset[int]:
        return frozenset(range(self.n_objects))

    def is_active(self, config: Config, objects: frozenset[int]) -> bool:
        return config.defining <= objects and not (config.conflicts & objects)

    def find_support(
        self, active_prev: set[Config], config: Config, x: int
    ) -> tuple[Config, ...] | None:
        """Constructive support set for ``(config, x)`` within the
        active set ``T(Y \\ {x})``, or None to fall back to search.

        The default defers to the generic brute-force search.
        """
        return None
