"""Concrete configuration spaces from the paper: hull facets
(Section 5), 3D corners (Section 6), ridge formulation / half-planes /
unit circles (Section 7), and the Delaunay example (Section 3)."""

from .corners3d import CornerConfigSpace
from .delaunay2d import DelaunayLiftedSpace, NaiveDelaunaySpace, lift_to_paraboloid
from .halfspaces import HalfplaneSpace, tangent_halfplanes
from .halfspaces3d import HalfspaceSpace3D, tangent_halfspaces_3d
from .hull_facets import HullFacetSpace
from .hull_ridges import HullRidgeSpace
from .unitcircles import UnitCircleArcSpace, clustered_unit_circles

__all__ = [
    "CornerConfigSpace",
    "DelaunayLiftedSpace",
    "NaiveDelaunaySpace",
    "lift_to_paraboloid",
    "HalfplaneSpace",
    "tangent_halfplanes",
    "HalfspaceSpace3D",
    "tangent_halfspaces_3d",
    "HullFacetSpace",
    "HullRidgeSpace",
    "UnitCircleArcSpace",
    "clustered_unit_circles",
]
