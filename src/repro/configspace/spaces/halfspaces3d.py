"""The 3D half-space intersection configuration space (Section 7,
d-dimensional form).

Objects are closed half-spaces ``a_i . x <= b_i`` in R^3 with
``b_i > 0`` (all strictly containing the origin).  Configurations:

* **vertices** -- three boundary planes meeting in a point; conflicts
  are the half-spaces not containing it (degree 3, multiplicity 1);
* **edge rays** -- per the paper's boundary prescription
  ("configurations with d-1 half-spaces and a direction along the
  shared edge signifying infinity"): two boundary planes plus a
  direction along their intersection line; conflicts are the
  half-spaces the ray eventually leaves (degree 2, multiplicity 2).

``T(Y)`` is then the vertex set of the intersection polyhedron of ``Y``
together with the unbounded edge ends.  Everything is exact (rational
3x3 solves and cross products), and the support structure is verified
empirically through the generic checker -- testing whether the paper's
d-dimensional boundary sentence suffices at d = 3.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from typing import Iterable

import numpy as np

from ...geometry.linalg import solve_exact
from ..base import Config, ConfigurationSpace

__all__ = ["HalfspaceSpace3D", "tangent_halfspaces_3d"]

FVec = tuple[Fraction, Fraction, Fraction]


def tangent_halfspaces_3d(n: int, seed: int = 0, radius: float = 1.0):
    """``n`` half-spaces tangent to the sphere of ``radius`` around the
    origin at uniformly random directions."""
    rng = np.random.default_rng(seed)
    normals = rng.standard_normal((n, 3))
    normals /= np.linalg.norm(normals, axis=1, keepdims=True)
    return normals, np.full(n, radius)


def _fvec(row) -> FVec:
    return (Fraction(float(row[0])), Fraction(float(row[1])), Fraction(float(row[2])))


def _cross(a: FVec, b: FVec) -> FVec:
    return (
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    )


def _dot(a: FVec, b: FVec) -> Fraction:
    return a[0] * b[0] + a[1] * b[1] + a[2] * b[2]


class HalfspaceSpace3D(ConfigurationSpace):
    """Vertices + edge rays of 3D half-space intersections."""

    def __init__(self, normals: np.ndarray, offsets: np.ndarray):
        self.normals = np.asarray(normals, dtype=np.float64)
        self.offsets = np.asarray(offsets, dtype=np.float64)
        if self.normals.ndim != 2 or self.normals.shape[1] != 3:
            raise ValueError("HalfspaceSpace3D needs (n, 3) normals")
        if not (self.offsets > 0).all():
            raise ValueError("all half-spaces must strictly contain the origin")
        self.degree = 3
        self.multiplicity = 2  # two rays per plane pair; one vertex per triple
        self.support_k = 2
        self.base_size = 3
        self._fn: list[FVec] = [_fvec(r) for r in self.normals]
        self._fb: list[Fraction] = [Fraction(float(b)) for b in self.offsets]
        self._vertex_cache: dict[frozenset, Config | None] = {}
        self._ray_cache: dict[tuple, Config | None] = {}

    @property
    def n_objects(self) -> int:
        return int(self.normals.shape[0])

    # -- vertices -----------------------------------------------------------

    def vertex(self, triple: frozenset) -> tuple[Fraction, ...] | None:
        i, j, k = sorted(triple)
        rows = [list(self._fn[t]) for t in (i, j, k)]
        try:
            return tuple(solve_exact(rows, [self._fb[i], self._fb[j], self._fb[k]]))
        except ZeroDivisionError:
            return None  # the three planes do not meet in a single point

    def _vertex_config(self, triple: frozenset) -> Config | None:
        if triple in self._vertex_cache:
            return self._vertex_cache[triple]
        v = self.vertex(triple)
        cfg = None
        if v is not None:
            conflicts = set()
            for h in range(self.n_objects):
                if h in triple:
                    continue
                if _dot(self._fn[h], v) > self._fb[h]:
                    conflicts.add(h)
            cfg = Config(defining=triple, tag="vertex", conflicts=frozenset(conflicts))
        self._vertex_cache[triple] = cfg
        return cfg

    # -- edge rays -----------------------------------------------------------

    def _ray_config(self, i: int, j: int, direction: int) -> Config | None:
        key = (i, j, direction)
        if key in self._ray_cache:
            return self._ray_cache[key]
        d = _cross(self._fn[i], self._fn[j])
        if d == (0, 0, 0):
            self._ray_cache[key] = None
            return None  # parallel boundary planes: no shared edge
        if direction < 0:
            d = (-d[0], -d[1], -d[2])
        # A point on the line i cap j: solve the 2x3 system by fixing the
        # coordinate where |d| is largest to 0.
        axis = max(range(3), key=lambda a: abs(d[a]))
        cols = [c for c in range(3) if c != axis]
        rows = [[self._fn[t][c] for c in cols] for t in (i, j)]
        try:
            sol = solve_exact(rows, [self._fb[i], self._fb[j]])
        except ZeroDivisionError:  # pragma: no cover - d != 0 prevents this
            self._ray_cache[key] = None
            return None
        p = [Fraction(0)] * 3
        p[cols[0]], p[cols[1]] = sol
        conflicts = set()
        for h in range(self.n_objects):
            if h in (i, j):
                continue
            s = _dot(self._fn[h], d)
            if s > 0:
                conflicts.add(h)
            elif s == 0 and _dot(self._fn[h], tuple(p)) > self._fb[h]:
                conflicts.add(h)
        cfg = Config(
            defining=frozenset((i, j)),
            tag=("ray", direction),
            conflicts=frozenset(conflicts),
        )
        self._ray_cache[key] = cfg
        return cfg

    # -- active sets -----------------------------------------------------------

    def active_set(self, objects: Iterable[int]) -> set[Config]:
        Y = sorted(set(objects))
        ys = frozenset(Y)
        out: set[Config] = set()
        for triple in combinations(Y, 3):
            cfg = self._vertex_config(frozenset(triple))
            if cfg is not None and not (cfg.conflicts & ys):
                out.add(cfg)
        for i, j in combinations(Y, 2):
            for direction in (1, -1):
                cfg = self._ray_config(i, j, direction)
                if cfg is not None and not (cfg.conflicts & ys):
                    out.add(cfg)
        return out
