"""The corner configuration space for degenerate 3D hulls (Section 6).

With four or more coplanar points, hull facets are arbitrary convex
polygons, so facets cannot serve as constant-degree configurations.
The paper instead takes *corners*: for every non-collinear triple there
are six configurations -- each choice of middle ("corner") point, times
each side of the plane.  A corner ``pl - pm - pr`` on side ``s``
conflicts with (Figure 3):

* every point strictly on side ``s`` of the plane;
* every point on the plane strictly outside line ``pm-pl`` (the side
  away from ``pr``) or strictly outside line ``pm-pr`` (away from ``pl``);
* every point on those lines strictly beyond ``pl`` resp. ``pr`` (in
  the direction away from ``pm``).

Lemma 6.1 says the active set of ``Y`` is exactly the corner set of the
3D hull of ``Y``; Lemma 6.2 says the space has 4-support.  Everything
here is exact (rational arithmetic end to end), because engineered
degeneracy is the entire point of this space.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from math import gcd
from typing import Iterable, Sequence

import numpy as np

from ..base import Config, ConfigurationSpace

__all__ = ["CornerConfigSpace"]

Vec = tuple[Fraction, Fraction, Fraction]


def _fvec(p) -> Vec:
    return (Fraction(float(p[0])), Fraction(float(p[1])), Fraction(float(p[2])))


def _sub(a: Vec, b: Vec) -> Vec:
    return (a[0] - b[0], a[1] - b[1], a[2] - b[2])


def _cross(a: Vec, b: Vec) -> Vec:
    return (
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    )


def _dot(a: Vec, b: Vec) -> Fraction:
    return a[0] * b[0] + a[1] * b[1] + a[2] * b[2]


def _sign(x: Fraction) -> int:
    return (x > 0) - (x < 0)


def _is_zero(v: Vec) -> bool:
    return v[0] == 0 and v[1] == 0 and v[2] == 0


class CornerConfigSpace(ConfigurationSpace):
    """Corner configurations over a 3D point cloud (degeneracy allowed).

    ``tag = (corner_index, side)`` where ``side`` is relative to the
    canonical normal of the sorted defining triple.  All predicates are
    exact, so coplanar/collinear inputs are decided correctly.
    """

    def __init__(self, points: np.ndarray):
        self.points = np.asarray(points, dtype=np.float64)
        if self.points.shape[1] != 3:
            raise ValueError("CornerConfigSpace is 3D only")
        self.degree = 3
        self.multiplicity = 6
        self.support_k = 4
        self.base_size = 4
        self._fpoints: list[Vec] = [_fvec(p) for p in self.points]
        self._config_cache: dict[tuple, Config] = {}

    @property
    def n_objects(self) -> int:
        return int(self.points.shape[0])

    # -- exact predicates --------------------------------------------------

    def _canonical_normal(self, triple: tuple[int, int, int]) -> Vec | None:
        """Exact normal of the plane through the sorted triple; None if
        collinear."""
        a, b, c = (self._fpoints[i] for i in sorted(triple))
        n = _cross(_sub(b, a), _sub(c, a))
        return None if _is_zero(n) else n

    def _corner_conflicts(self, pl: int, pm: int, pr: int, side: int) -> frozenset:
        """The Figure 3 conflict set for corner ``pl-pm-pr`` on ``side``
        (relative to the canonical normal of the sorted triple)."""
        n = self._canonical_normal((pl, pm, pr))
        assert n is not None
        P = self._fpoints
        base = P[pm]
        el = _sub(P[pl], base)   # pm -> pl
        er = _sub(P[pr], base)   # pm -> pr
        # In-plane outward tests: w_l is perpendicular to line(pm, pl)
        # within the plane; pr's side of that line is "inside".
        wl = _cross(n, el)
        wr = _cross(n, er)
        inside_l = _sign(_dot(wl, er))  # side of pr w.r.t. line(pm, pl)
        inside_r = _sign(_dot(wr, el))
        conflicts = set()
        for j in range(self.n_objects):
            if j in (pl, pm, pr):
                continue
            q = _sub(P[j], base)
            s = _sign(_dot(n, q))
            if s != 0:
                if s == side:
                    conflicts.add(j)
                continue
            # q lies on the plane.
            sl = _sign(_dot(wl, q))
            sr = _sign(_dot(wr, q))
            if (sl != 0 and sl == -inside_l) or (sr != 0 and sr == -inside_r):
                conflicts.add(j)  # strictly outside one of the wedge lines
                continue
            if sl == 0:
                # Collinear with pm-pl: conflict iff strictly beyond pl.
                if _dot(_sub(q, el), el) > 0:
                    conflicts.add(j)
                continue
            if sr == 0:
                if _dot(_sub(q, er), er) > 0:
                    conflicts.add(j)
        return frozenset(conflicts)

    def _config(self, pl: int, pm: int, pr: int, side: int) -> Config | None:
        """Corner configuration; None when the triple is collinear."""
        defining = frozenset((pl, pm, pr))
        tag = (pm, side)
        key = (defining, tag)
        cached = self._config_cache.get(key)
        if cached is not None:
            return cached
        if self._canonical_normal((pl, pm, pr)) is None:
            return None
        cfg = Config(
            defining=defining,
            tag=tag,
            conflicts=self._corner_conflicts(pl, pm, pr, side),
        )
        self._config_cache[key] = cfg
        return cfg

    # -- active sets --------------------------------------------------------

    def active_set(self, objects: Iterable[int]) -> set[Config]:
        """Definitional active set: every corner configuration of every
        non-collinear triple of Y, kept iff its conflict set misses Y."""
        Y = sorted(set(objects))
        ys = frozenset(Y)
        out: set[Config] = set()
        for triple in combinations(Y, 3):
            for pm in triple:
                pl, pr = sorted(set(triple) - {pm})
                for side in (1, -1):
                    cfg = self._config(pl, pm, pr, side)
                    if cfg is not None and not (cfg.conflicts & ys):
                        out.add(cfg)
        return out

    # -- geometric ground truth for Lemma 6.1 -------------------------------

    def hull_corners(self, objects: Iterable[int]) -> set[tuple]:
        """Corners of the 3D hull of Y computed *geometrically*: for
        every supporting plane, order the face's extreme points into
        their boundary cycle and emit each consecutive triple.  Returns
        keys ``(defining frozenset, (corner, side))`` comparable with
        :meth:`active_set` keys.  Requires Y to be full-dimensional.
        """
        Y = sorted(set(objects))
        P = self._fpoints
        planes: dict[tuple, tuple[Vec, Fraction, int]] = {}
        for triple in combinations(Y, 3):
            n = self._canonical_normal(tuple(triple))
            if n is None:
                continue
            a = P[sorted(triple)[0]]
            off = _dot(n, a)
            key = self._plane_key(n, off)
            if key in planes:
                continue
            signs = {s for s in (_sign(_dot(n, P[j]) - off) for j in Y) if s != 0}
            if len(signs) == 1:
                planes[key] = (n, off, next(iter(signs)))
            elif len(signs) == 0:
                raise ValueError("all points coplanar: hull is not full-dimensional")
        corners: set[tuple] = set()
        for n, off, inner in planes.values():
            outward = tuple(-x for x in n) if inner > 0 else n
            face = [j for j in Y if _dot(n, P[j]) == off]
            cycle = self._face_cycle(face, outward)
            m = len(cycle)
            for i in range(m):
                pm = cycle[i]
                pl = cycle[(i - 1) % m]
                pr = cycle[(i + 1) % m]
                side = self._side_tag((pl, pm, pr), outward)
                corners.add((frozenset((pl, pm, pr)), (pm, side)))
        return corners

    def _side_tag(self, triple: tuple[int, int, int], outward: Vec) -> int:
        n = self._canonical_normal(triple)
        assert n is not None
        return _sign(_dot(n, outward))

    @staticmethod
    def _plane_key(n: Vec, off: Fraction) -> tuple:
        """Canonical rational plane key (normal scaled to coprime
        integers, first nonzero component positive)."""
        dens = [x.denominator for x in (*n, off)]
        scale = 1
        for d in dens:
            scale = scale * d // gcd(scale, d)
        ints = [int(x * scale) for x in (*n, off)]
        g = 0
        for v in ints:
            g = gcd(g, abs(v))
        if g:
            ints = [v // g for v in ints]
        first = next((v for v in ints[:3] if v != 0))
        if first < 0:
            ints = [-v for v in ints]
        return tuple(ints)

    def _face_cycle(self, face: Sequence[int], outward: Vec) -> list[int]:
        """Vertices of the face polygon in boundary order (gift wrapping
        within the plane with exact orientation; interior and
        edge-interior points are dropped)."""
        P = self._fpoints
        if len(face) < 3:
            raise ValueError("a hull face needs at least 3 points")

        def turn(a: int, b: int, c: int) -> int:
            return _sign(_dot(outward, _cross(_sub(P[b], P[a]), _sub(P[c], P[b]))))

        # Start from the point extreme in an in-plane direction.
        u = None
        for i, j in combinations(face, 2):
            e = _sub(P[j], P[i])
            if not _is_zero(e):
                u = e
                break
        assert u is not None
        v = _cross(outward, u)
        start = min(face, key=lambda i: (_dot(u, P[i]), _dot(v, P[i])))
        cycle = [start]
        current = start
        while True:
            candidate = None
            for nxt in face:
                if nxt == current:
                    continue
                if candidate is None:
                    candidate = nxt
                    continue
                t = turn(current, candidate, nxt)
                if t < 0:
                    candidate = nxt
                elif t == 0:
                    # Collinear: keep the farther one (edge-interior
                    # points are not polygon vertices).
                    d_cand = _sub(P[candidate], P[current])
                    d_next = _sub(P[nxt], P[current])
                    if _dot(d_next, d_next) > _dot(d_cand, d_cand):
                        candidate = nxt
            assert candidate is not None
            if candidate == start:
                break
            cycle.append(candidate)
            current = candidate
            if len(cycle) > len(face):
                raise RuntimeError("face cycle did not close")
        if len(cycle) < 3:
            raise RuntimeError("degenerate face cycle")
        return cycle
