"""2D Delaunay triangulation as a configuration space (Section 3's
running example).

Two formulations are provided, and the difference between them is an
instructive empirical finding recorded in EXPERIMENTS.md:

:class:`NaiveDelaunaySpace`
    The textbook space: each triple of points is one configuration
    conflicting with the points strictly inside its circumcircle.  This
    space does **not** have 2-support: when the removed defining point
    ``x`` leaves edge ``(a, b)`` on the hull of ``Y \\ {x}``, the edge
    has only one adjacent triangle, whose circumcircle need not cover
    the conflicts of ``(a, b, x)`` beyond the hull.  The test suite
    exhibits concrete counterexamples.

:class:`DelaunayLiftedSpace`
    The formulation the paper's machinery actually covers: lift points
    to the paraboloid ``z = x^2 + y^2`` and use the 3D hull *facet*
    space (Theorem 5.1 then gives 2-support, base size 4).  Active
    lower facets are exactly the Delaunay triangles; upper facets are
    the farthest-point Delaunay triangles and are what rescues support
    at the boundary.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

import numpy as np

from ...geometry.predicates import in_circle, orient_exact
from ..base import Config, ConfigurationSpace
from .hull_facets import HullFacetSpace

__all__ = ["NaiveDelaunaySpace", "DelaunayLiftedSpace", "lift_to_paraboloid"]


def lift_to_paraboloid(points: np.ndarray) -> np.ndarray:
    """Map 2D points onto the paraboloid ``z = x^2 + y^2``."""
    points = np.asarray(points, dtype=np.float64)
    z = (points * points).sum(axis=1)
    return np.column_stack([points, z])


class NaiveDelaunaySpace(ConfigurationSpace):
    """Triangles with empty-circumcircle conflict sets.

    Points must be in general position: no three collinear, no four
    cocircular (either raises).  ``support_k = 2`` records the *naive
    expectation*; :func:`repro.configspace.check_k_support` demonstrates
    it fails at hull-boundary steps (see the module docstring).
    """

    def __init__(self, points: np.ndarray):
        self.points = np.asarray(points, dtype=np.float64)
        if self.points.shape[1] != 2:
            raise ValueError("NaiveDelaunaySpace is 2D only")
        self.degree = 3
        self.multiplicity = 1
        self.support_k = 2
        self.base_size = 3
        self._config_cache: dict[tuple, Config] = {}

    @property
    def n_objects(self) -> int:
        return int(self.points.shape[0])

    def _config(self, subset: tuple[int, ...]) -> Config:
        cached = self._config_cache.get(subset)
        if cached is not None:
            return cached
        a, b, c = (self.points[i] for i in subset)
        tri_orient = orient_exact(np.array([a, b]), c)
        if tri_orient == 0:
            raise ValueError(f"degenerate input: collinear triple {subset}")
        conflicts = set()
        for j in range(self.n_objects):
            if j in subset:
                continue
            # Normalize by triangle orientation so +1 always means
            # "strictly inside the circumcircle".
            s = in_circle(a, b, c, self.points[j]) * tri_orient
            if s == 0:
                raise ValueError(
                    f"degenerate input: point {j} cocircular with {subset}"
                )
            if s > 0:
                conflicts.add(j)
        cfg = Config(defining=frozenset(subset), tag=None, conflicts=frozenset(conflicts))
        self._config_cache[subset] = cfg
        return cfg

    def active_set(self, objects: Iterable[int]) -> set[Config]:
        """The Delaunay triangles of Y."""
        Y = sorted(set(objects))
        ys = frozenset(Y)
        if len(Y) < 3:
            return set()
        out: set[Config] = set()
        for subset in combinations(Y, 3):
            cfg = self._config(subset)
            if not (cfg.conflicts & ys):
                out.add(cfg)
        return out


class DelaunayLiftedSpace(HullFacetSpace):
    """The lifted formulation: 3D hull facets over paraboloid-lifted
    points.  Inherits 2-support from Theorem 5.1; use
    :meth:`delaunay_triangles` to read off the triangulation."""

    def __init__(self, points: np.ndarray):
        points = np.asarray(points, dtype=np.float64)
        if points.shape[1] != 2:
            raise ValueError("DelaunayLiftedSpace takes 2D input points")
        self.flat_points = points
        super().__init__(lift_to_paraboloid(points))
        self.base_size = 4

    def delaunay_triangles(self, objects: Iterable[int]) -> set[frozenset]:
        """Triples forming the Delaunay triangulation of ``Y``: the
        *lower* facets of the lifted hull (downward-facing normals)."""
        Y = sorted(set(objects))
        triangles: set[frozenset] = set()
        for cfg in self.active_set(Y):
            if self._is_lower(tuple(sorted(cfg.defining)), cfg.tag):
                triangles.add(cfg.defining)
        return triangles

    def _is_lower(self, subset: tuple[int, ...], sign: int) -> bool:
        """Is the oriented facet downward-facing (conflict side below)?

        The configuration with tag ``sign`` conflicts with points on the
        ``sign`` orientation side; the facet is a lower hull facet iff
        that side contains ``-infinity`` in z, which we test with a
        point far below the facet's centroid."""
        simplex = self.points[list(subset)]
        probe = simplex.mean(axis=0)
        probe = probe.copy()
        probe[2] -= 1.0 + 4.0 * float(np.abs(self.points[:, 2]).max())
        return orient_exact(simplex, probe) == sign
