"""The facet configuration space for d-dimensional convex hull
(Section 5, right column of Table 1).

Objects are the input points.  Every ``d``-subset defines two
configurations -- one per orientation (multiplicity 2) -- and a
configuration conflicts with every point strictly visible from the
oriented facet.  ``T(Y)`` is the set of hull facets of ``Y``.

The constructive support rule is Fact 5.2: for facet ``t`` and defining
point ``x``, the support of ``(t, x)`` is the pair of facets of
``T(Y \\ {x})`` sharing the ridge ``t \\ {x}``.

Everything here is brute force over exact predicates -- it is the ground
truth the fast hull algorithms are validated against, and the instance
on which Theorem 5.1 is certified exhaustively.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

import numpy as np

from ...geometry.predicates import orient_exact
from ..base import Config, ConfigurationSpace

__all__ = ["HullFacetSpace"]


class HullFacetSpace(ConfigurationSpace):
    """Configuration space of oriented hull facets over a point cloud.

    ``tag`` is the orientation sign: a configuration with tag ``+1``
    conflicts with points on the positive orientation side of its
    (sorted) defining tuple, tag ``-1`` with the negative side.  Points
    must be in general position (an exactly-coplanar point raises).
    """

    def __init__(self, points: np.ndarray):
        self.points = np.asarray(points, dtype=np.float64)
        n, d = self.points.shape
        self.dimension = d
        self.degree = d
        self.multiplicity = 2
        self.support_k = 2
        self.base_size = d + 1
        self._config_cache: dict[tuple, Config] = {}

    @property
    def n_objects(self) -> int:
        return int(self.points.shape[0])

    def _config(self, subset: tuple[int, ...], sign: int) -> Config:
        """Configuration for an oriented d-subset; conflict set over X."""
        key = (subset, sign)
        cached = self._config_cache.get(key)
        if cached is not None:
            return cached
        simplex = self.points[list(subset)]
        conflicts = set()
        for j in range(self.n_objects):
            if j in subset:
                continue
            s = orient_exact(simplex, self.points[j])
            if s == 0:
                raise ValueError(
                    f"degenerate input: point {j} lies on the hyperplane of {subset}"
                )
            if s == sign:
                conflicts.add(j)
        cfg = Config(
            defining=frozenset(subset), tag=sign, conflicts=frozenset(conflicts)
        )
        self._config_cache[key] = cfg
        return cfg

    def active_set(self, objects: Iterable[int]) -> set[Config]:
        """Hull facets of the subset ``Y``: oriented d-subsets of Y with
        no point of Y on their conflict side."""
        Y = sorted(set(objects))
        ys = frozenset(Y)
        if len(Y) < self.dimension + 1:
            return set()
        out: set[Config] = set()
        for subset in combinations(Y, self.dimension):
            for sign in (1, -1):
                cfg = self._config(subset, sign)
                if not (cfg.conflicts & ys):
                    out.add(cfg)
        return out

    def find_support(
        self, active_prev: set[Config], config: Config, x: int
    ) -> tuple[Config, ...] | None:
        """Fact 5.2: the two facets of ``T(Y \\ {x})`` sharing the ridge
        ``D(config) \\ {x}``."""
        ridge = config.defining - {x}
        sharing = [c for c in active_prev if ridge <= c.defining]
        if len(sharing) != 2:
            return None
        return tuple(sharing)
