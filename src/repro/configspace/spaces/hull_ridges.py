"""The alternative ridge-based hull formulation (Section 7, first
paragraph).

Configurations correspond to *ridges of the hull together with their two
neighbouring facets*: defined by ``d+1`` points (the ``d-1`` ridge
points plus the two apex points completing the facets), with the ridge
choice as the tag (any (d-1)-subset of the d+1 points can be the ridge,
so the multiplicity is ``C(d+1, d-1)``).  A configuration conflicts
with every point visible from either of its two facets.

The paper notes this space also has 2-support and the property that
adding a configuration deletes its whole support set, which makes the
Clarkson-Shor work bound (Theorem 3.1) directly applicable.  We verify
the structural claims (activity == hull ridges, 2-support) empirically
through the generic checkers.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

import numpy as np

from ...geometry.predicates import orient_exact
from ..base import Config, ConfigurationSpace

__all__ = ["HullRidgeSpace"]


class HullRidgeSpace(ConfigurationSpace):
    """Ridge + two-facet configurations over a point cloud in general
    position.

    ``tag`` is the frozenset of ridge point indices; ``defining`` is the
    ridge plus the two apexes.  The conflict set is computed exactly:
    the facet ``ridge + apex_a`` is oriented away from ``apex_b`` (and
    vice versa), and a point conflicts if it is strictly visible from
    either facet.
    """

    def __init__(self, points: np.ndarray):
        self.points = np.asarray(points, dtype=np.float64)
        n, d = self.points.shape
        self.dimension = d
        self.degree = d + 1
        self.multiplicity = (d + 1) * d // 2  # C(d+1, d-1)
        self.support_k = 2
        self.base_size = d + 1
        self._config_cache: dict[tuple, Config | None] = {}

    @property
    def n_objects(self) -> int:
        return int(self.points.shape[0])

    def _facet_conflicts(self, facet: tuple[int, ...], away_from: int) -> set[int] | None:
        """Points strictly visible from the facet oriented away from
        ``away_from``; None if ``away_from`` is exactly on the facet's
        hyperplane (degenerate)."""
        simplex = self.points[list(facet)]
        ref = orient_exact(simplex, self.points[away_from])
        if ref == 0:
            return None
        visible = set()
        for j in range(self.n_objects):
            if j in facet or j == away_from:
                continue
            s = orient_exact(simplex, self.points[j])
            if s == -ref:
                visible.add(j)
        return visible

    def _config(self, ridge: frozenset, apex_a: int, apex_b: int) -> Config | None:
        defining = ridge | {apex_a, apex_b}
        key = (defining, ridge)
        if key in self._config_cache:
            return self._config_cache[key]
        facet_a = tuple(sorted(ridge | {apex_a}))
        facet_b = tuple(sorted(ridge | {apex_b}))
        ca = self._facet_conflicts(facet_a, away_from=apex_b)
        cb = self._facet_conflicts(facet_b, away_from=apex_a)
        cfg = None
        if ca is not None and cb is not None:
            cfg = Config(defining=defining, tag=ridge,
                         conflicts=frozenset((ca | cb) - defining))
        self._config_cache[key] = cfg
        return cfg

    def active_set(self, objects: Iterable[int]) -> set[Config]:
        """Active configurations == ridges of the hull of Y with their
        incident facet pair (checked in tests against the hull
        algorithms)."""
        Y = sorted(set(objects))
        ys = frozenset(Y)
        d = self.dimension
        out: set[Config] = set()
        if len(Y) < d + 1:
            return out
        for group in combinations(Y, d + 1):
            gset = frozenset(group)
            for ridge_tuple in combinations(group, d - 1):
                ridge = frozenset(ridge_tuple)
                apex_a, apex_b = sorted(gset - ridge)
                cfg = self._config(ridge, apex_a, apex_b)
                if cfg is not None and not (cfg.conflicts & ys):
                    out.add(cfg)
        return out
