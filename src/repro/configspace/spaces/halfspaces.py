"""The half-plane intersection configuration space (Section 7).

Objects are closed half-planes ``a_i . x <= b_i`` in R^2 (each given by
its outward normal ``a_i`` and offset ``b_i``); we require ``b_i > 0``
so all of them strictly contain the origin, making the intersection
nonempty.  A *vertex* configuration is the point defined by two boundary
lines; it conflicts with every half-plane that does not contain it.

The paper: "Boundaries can be handled by using configurations with
``d-1`` half-spaces and a direction along the shared edge signifying
infinity."  In 2D that is a *ray* configuration: one half-plane plus a
direction along its boundary line; it conflicts with every half-plane
the ray eventually leaves.  Rays are what support the fresh vertices a
new half-plane creates when it caps an unbounded part of the region --
without them 2-support genuinely fails (the test suite demonstrates
this), with them it holds.

``T(Y)`` is then the vertex set of the intersection of ``Y`` plus the
unbounded edge ends.  All predicates are exact (rational 2x2 solves),
so engineered degeneracies (three concurrent lines) are detected rather
than mis-decided.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from typing import Iterable

import numpy as np

from ...geometry.linalg import solve_exact
from ..base import Config, ConfigurationSpace

__all__ = ["HalfplaneSpace", "tangent_halfplanes"]


def tangent_halfplanes(n: int, seed: int = 0, radius: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
    """Workload generator: ``n`` half-planes tangent to the circle of
    ``radius`` around the origin at random angles (so every boundary
    line touches the intersection region's vicinity and the polygon is
    bounded once angles span more than a half-circle).

    Returns ``(normals, offsets)``.
    """
    rng = np.random.default_rng(seed)
    theta = rng.random(n) * 2.0 * np.pi
    normals = np.column_stack([np.cos(theta), np.sin(theta)])
    offsets = np.full(n, radius)
    return normals, offsets


class HalfplaneSpace(ConfigurationSpace):
    """Vertices of half-plane intersections as a configuration space."""

    def __init__(self, normals: np.ndarray, offsets: np.ndarray):
        self.normals = np.asarray(normals, dtype=np.float64)
        self.offsets = np.asarray(offsets, dtype=np.float64)
        if self.normals.shape[1] != 2:
            raise ValueError("HalfplaneSpace is 2D only")
        if not (self.offsets > 0).all():
            raise ValueError("all half-planes must strictly contain the origin (b > 0)")
        self.degree = 2
        self.multiplicity = 2  # one vertex per pair; two rays per single
        self.support_k = 2
        self.base_size = 2
        self._config_cache: dict[frozenset, Config | None] = {}
        self._ray_cache: dict[tuple[int, int], Config] = {}

    @property
    def n_objects(self) -> int:
        return int(self.normals.shape[0])

    def vertex(self, i: int, j: int) -> tuple[Fraction, Fraction] | None:
        """Exact intersection point of boundary lines i and j (None if
        parallel)."""
        rows = [
            [Fraction(float(self.normals[i, 0])), Fraction(float(self.normals[i, 1]))],
            [Fraction(float(self.normals[j, 0])), Fraction(float(self.normals[j, 1]))],
        ]
        det = rows[0][0] * rows[1][1] - rows[0][1] * rows[1][0]
        if det == 0:  # repro: noqa: RPR004 -- exact Fraction determinant
            return None
        x, y = solve_exact(rows, [Fraction(float(self.offsets[i])),
                                  Fraction(float(self.offsets[j]))])
        return x, y

    def _config(self, pair: frozenset) -> Config | None:
        if pair in self._config_cache:
            return self._config_cache[pair]
        i, j = sorted(pair)
        v = self.vertex(i, j)
        if v is None:
            self._config_cache[pair] = None
            return None
        x, y = v
        conflicts = set()
        for h in range(self.n_objects):
            if h in pair:
                continue
            lhs = Fraction(float(self.normals[h, 0])) * x + Fraction(
                float(self.normals[h, 1])
            ) * y
            if lhs > Fraction(float(self.offsets[h])):
                conflicts.add(h)
        cfg = Config(defining=pair, tag=None, conflicts=frozenset(conflicts))
        self._config_cache[pair] = cfg
        return cfg

    def _ray(self, i: int, direction: int) -> Config:
        """Ray configuration: the boundary line of half-plane ``i``
        escaping to infinity in ``direction`` (+1 = CCW tangent
        ``rot90(a_i)``, -1 = the opposite).  Conflicts: every half-plane
        the far end of the ray violates (computed exactly)."""
        key = (i, direction)
        cached = self._ray_cache.get(key)
        if cached is not None:
            return cached
        ax = Fraction(float(self.normals[i, 0]))
        ay = Fraction(float(self.normals[i, 1]))
        bi = Fraction(float(self.offsets[i]))
        dx, dy = (-ay * direction, ax * direction)
        conflicts = set()
        for h in range(self.n_objects):
            if h == i:
                continue
            hx = Fraction(float(self.normals[h, 0]))
            hy = Fraction(float(self.normals[h, 1]))
            bh = Fraction(float(self.offsets[h]))
            s = hx * dx + hy * dy
            if s > 0:
                conflicts.add(h)
            elif s == 0:
                # Parallel boundaries: a_h . x is constant on line i;
                # the constant is (a_h . a_i) * b_i / |a_i|^2.
                norm2 = ax * ax + ay * ay
                value = (hx * ax + hy * ay) * bi / norm2
                if value > bh:
                    conflicts.add(h)
        cfg = Config(
            defining=frozenset({i}),
            tag=("ray", direction),
            conflicts=frozenset(conflicts),
        )
        self._ray_cache[key] = cfg
        return cfg

    def active_set(self, objects: Iterable[int]) -> set[Config]:
        Y = sorted(set(objects))
        ys = frozenset(Y)
        out: set[Config] = set()
        for i, j in combinations(Y, 2):
            cfg = self._config(frozenset((i, j)))
            if cfg is not None and not (cfg.conflicts & ys):
                out.add(cfg)
        for i in Y:
            for direction in (1, -1):
                ray = self._ray(i, direction)
                if not (ray.conflicts & ys):
                    out.add(ray)
        return out
