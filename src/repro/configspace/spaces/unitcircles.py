"""The unit-circle intersection configuration space (Section 7).

Objects are unit circles (given by their centers); the region of
interest is the intersection of the closed unit disks, whose boundary
decomposes into circular arcs.  A configuration is an arc: a maximal
piece of one circle (the *owner*) bounded at each end by the constraint
of another circle becoming tight.  Per the paper, an arc is defined by
two circles (both endpoints cut by the same circle) or three, giving
multiplicity at most 3; an arc conflicts with any circle that overlaps
it (some arc point strictly outside that circle's disk) but does not
fully contain it.

The geometry is float-based with an explicit tolerance; the workload
generators keep instances far from degeneracy (no two identical
centers, no three circles through one point).
"""

from __future__ import annotations

from itertools import combinations
from math import acos, atan2, pi
from typing import Iterable

import numpy as np

from ..base import Config, ConfigurationSpace

__all__ = ["UnitCircleArcSpace", "clustered_unit_circles"]

_TAU = 2.0 * pi
_TOL = 1e-9


def clustered_unit_circles(n: int, seed: int = 0, spread: float = 0.6) -> np.ndarray:
    """``n`` unit-circle centers inside the disk of radius ``spread``
    around the origin -- every disk then contains the origin, so the
    common intersection is nonempty and bounded."""
    rng = np.random.default_rng(seed)
    angles = rng.random(n) * _TAU
    radii = spread * np.sqrt(rng.random(n))
    return np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])


def _norm_angle(a: float) -> float:
    """Map an angle into [0, 2*pi)."""
    a = a % _TAU
    return a + _TAU if a < 0 else a


def _interval_contains(s: float, length: float, x: float) -> bool:
    """Does the CCW circular interval [s, s+length] contain angle x?"""
    return _norm_angle(x - s) <= length + _TOL


class UnitCircleArcSpace(ConfigurationSpace):
    """Arcs of unit-disk intersections as a configuration space.

    A configuration's ``tag`` is ``(owner, cut_start, cut_end)``: the
    circle the arc lies on and the circles whose constraints are tight
    at its CCW start and end.  Its defining set is the union of those
    (2 or 3 circles), matching the paper's description.
    """

    def __init__(self, centers: np.ndarray):
        self.centers = np.asarray(centers, dtype=np.float64)
        if self.centers.shape[1] != 2:
            raise ValueError("UnitCircleArcSpace is 2D only")
        n = self.centers.shape[0]
        for i, j in combinations(range(n), 2):
            if np.linalg.norm(self.centers[i] - self.centers[j]) < _TOL:
                raise ValueError(f"duplicate circle centers {i} and {j}")
        self.degree = 3
        self.multiplicity = 3
        self.support_k = 2
        self.base_size = 2
        self._config_cache: dict[tuple, Config] = {}

    @property
    def n_objects(self) -> int:
        return int(self.centers.shape[0])

    # -- angular constraint geometry ------------------------------------

    def _constraint(self, owner: int, other: int) -> tuple[float, float]:
        """The CCW interval ``(start, length)`` of circle ``owner``
        lying inside disk ``other``.  Length ``-1`` encodes "disks too
        far apart: nothing of owner is inside other"."""
        m = self.centers[other] - self.centers[owner]
        dist = float(np.hypot(m[0], m[1]))
        if dist >= 2.0 - _TOL:
            return (0.0, -1.0)
        phi = atan2(m[1], m[0])
        alpha = acos(min(1.0, max(-1.0, dist / 2.0)))
        return (_norm_angle(phi - alpha), 2.0 * alpha)

    def _allowed_components(
        self, owner: int, others: list[int]
    ) -> list[tuple[float, float, int, int]]:
        """Maximal CCW intervals of circle ``owner`` inside every disk
        of ``others``, as ``(start, length, cut_start, cut_end)`` where
        the named circles are tight at the endpoints.  Empty when some
        disk excludes the whole circle or no disk constrains it (a full
        circle is not an arc configuration)."""
        constraints: list[tuple[float, float, int]] = []
        for c in others:
            s, ln = self._constraint(owner, c)
            if ln < 0:
                return []
            if ln >= _TAU - _TOL:  # pragma: no cover - unit circles always cut
                continue
            constraints.append((s, ln, c))
        if not constraints:
            return []
        comps: list[tuple[float, float, int, int]] = []
        for s0, _l0, c0 in constraints:
            # s0 opens a component iff every other constraint allows it.
            if not all(
                _interval_contains(s, ln, s0)
                for s, ln, c in constraints
                if c != c0
            ):
                continue
            # The component runs CCW from s0 until the first constraint
            # interval ends.
            end_len, c_end = min(
                (_norm_angle((s + ln) - s0), c) for s, ln, c in constraints
            )
            if end_len > _TOL:
                comps.append((s0, end_len, c0, c_end))
        return comps

    def _arc_conflicts(
        self, owner: int, start: float, length: float, exclude: frozenset
    ) -> frozenset:
        """Circles outside ``exclude`` with some arc point strictly
        outside their disk (the paper's conflict relation: overlapping
        but not fully containing)."""
        conflicts = set()
        for h in range(self.n_objects):
            if h == owner or h in exclude:
                continue
            s, ln = self._constraint(owner, h)
            if ln < 0:
                conflicts.add(h)
                continue
            inside = (
                _interval_contains(s, ln, start)
                and _norm_angle(start - s) + length <= ln + _TOL
            )
            if not inside:
                conflicts.add(h)
        return frozenset(conflicts)

    def _config(
        self, owner: int, cut_start: int, cut_end: int, start: float, length: float
    ) -> Config:
        tag = (owner, cut_start, cut_end)
        defining = frozenset({owner, cut_start, cut_end})
        key = (defining, tag)
        cached = self._config_cache.get(key)
        if cached is not None:
            return cached
        cfg = Config(
            defining=defining,
            tag=tag,
            conflicts=self._arc_conflicts(owner, start, length, defining),
        )
        self._config_cache[key] = cfg
        return cfg

    # -- active sets -----------------------------------------------------

    def active_set(self, objects: Iterable[int]) -> set[Config]:
        """Arcs on the boundary of the intersection of the disks in Y."""
        Y = sorted(set(objects))
        out: set[Config] = set()
        if len(Y) < 2:
            return out
        for owner in Y:
            others = [c for c in Y if c != owner]
            for start, length, c_start, c_end in self._allowed_components(owner, others):
                out.add(self._config(owner, c_start, c_end, start, length))
        return out
