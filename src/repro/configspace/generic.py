"""Algorithm 1: the generic parallel incremental algorithm.

The paper's Algorithm 1 executes *any* configuration space
incrementally and in parallel: starting from the active set of the
first ``n_b`` objects, every support set ``Φ`` is handed to
``AddConfiguration``, which finds the earliest object ``x`` in
``C(Φ)``, activates the configuration ``π`` that ``Φ`` supports for
``x`` (if any), retires the configurations ``x`` conflicts with, and
recurses on the support sets involving ``π``.

The paper leaves the support-set discovery abstract ("this algorithm is
under-specified"); this implementation makes it concrete for *any*
space with a brute-force active set: candidate support sets are found
by checking Definition 3.2 against the configurations that the pivot
``x`` would newly activate.  It is exponentially slower than the
specialised hull algorithm (it exists for small-instance ground truth),
but it is executable for every space in :mod:`repro.configspace.spaces`
and its round structure realises the dependence-graph depth exactly --
letting us validate Theorem 4.3 beyond convex hulls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .base import Config, ConfigurationSpace
from .depgraph import DependenceGraph
from .support import find_support_set, is_support_set

__all__ = ["GenericRun", "generic_parallel_incremental"]


@dataclass
class GenericRun:
    """Outcome of a generic Algorithm 1 execution."""

    active: set[Config]                  # T(X) at the end
    added_round: dict = field(default_factory=dict)   # config key -> round
    supports: dict = field(default_factory=dict)      # config key -> support keys
    rounds: int = 0
    activations: int = 0

    def graph(self) -> DependenceGraph:
        g = DependenceGraph()
        for key, _rnd in sorted(self.added_round.items(), key=lambda kv: kv[1]):
            g.order.append(key)
            g.added_at[key] = self.added_round[key]
            sup = self.supports.get(key)
            if sup:
                g.parents[key] = sup
        return g

    def depth(self) -> int:
        return self.graph().depth()


def generic_parallel_incremental(
    space: ConfigurationSpace,
    order: Sequence[int],
) -> GenericRun:
    """Execute Algorithm 1 for ``space`` under insertion order ``order``.

    Round-synchronously: in each round, every currently-active support
    set whose earliest conflicting object activates a new configuration
    fires; newly activated configurations join the pool for the next
    round.  Termination: no support set fires.

    The result's active set must equal ``space.active_set(order)`` --
    asserted by the tests for every concrete space.
    """
    order = list(order)
    rank = {x: i for i, x in enumerate(order)}
    nb = space.base_size
    if len(order) < nb:
        raise ValueError(f"need at least base_size={nb} objects")

    inserted = frozenset(order)  # all objects eventually present
    current: set[Config] = set(space.active_set(order[:nb]))
    run = GenericRun(active=set(current))
    for c in current:
        run.added_round[c.key()] = 0

    # Pre-compute, for each object x, the configurations activated at
    # the step where x arrives (ground truth, brute force) -- these are
    # the targets support sets can fire for.
    activated_by: dict[int, set[Config]] = {}
    prev: set[Config] = set(space.active_set(order[:nb]))
    for i in range(nb, len(order)):
        now = space.active_set(order[: i + 1])
        activated_by[order[i]] = now - prev
        prev = now

    pool = set(current)  # configurations available to form support sets
    rnd = 0
    while True:
        rnd += 1
        fired: list[tuple[Config, tuple]] = []
        for x, targets in activated_by.items():
            for pi in targets:
                key = pi.key()
                if key in run.added_round:
                    continue
                phi = space.find_support(pool, pi, x)
                if phi is not None and not (
                    len(phi) <= space.support_k
                    and set(phi) <= pool
                    and is_support_set(pi, x, phi)
                ):
                    phi = None
                if phi is None:
                    phi = find_support_set(pool, pi, x, space.support_k)
                if phi is not None:
                    fired.append((pi, tuple(c.key() for c in phi)))
        if not fired:
            break
        for pi, sup_keys in fired:
            run.added_round[pi.key()] = rnd
            run.supports[pi.key()] = sup_keys
            run.activations += 1
            pool.add(pi)
        run.rounds = rnd

    # Final active set: configurations ever added that are active for X.
    run.active = {c for c in pool if space.is_active(c, inserted)}
    return run
