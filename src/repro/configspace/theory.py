"""Analytic bounds from the paper, as executable formulas.

These are the quantities the experiment harness plots measurements
against:

* Theorem 3.1 (Clarkson--Shor): expected total conflict size of an
  incremental construction;
* Theorem 4.2: the tail bound ``Pr[D(G(S)) >= sigma * H_n] <
  c * n^-(sigma - g)`` for sigma >= g*k*e^2;
* the derived expected-depth scale ``g * H_n`` and the Chernoff form
  used inside the proof.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "harmonic",
    "expected_path_length_bound",
    "chernoff_tail",
    "depth_tail_bound",
    "min_sigma",
    "depth_bound_whp",
    "clarkson_shor_conflict_bound",
]


def harmonic(n: int) -> float:
    """H_n = sum_{i=1..n} 1/i (exact summation; n is at most ~1e7 in
    our experiments so the loop is fine and avoids asymptotic error)."""
    if n < 0:
        raise ValueError("n must be >= 0")
    if n > 10_000_000:
        # Asymptotic expansion for very large n.
        g = 0.5772156649015329
        return math.log(n) + g + 1 / (2 * n) - 1 / (12 * n * n)
    return sum(1.0 / i for i in range(1, n + 1))


def expected_path_length_bound(n: int, g: int) -> float:
    """E[L] <= g * H_n: the expected length of a single backward path in
    the proof of Theorem 4.2."""
    return g * harmonic(n)


def chernoff_tail(mean: float, a: float) -> float:
    """The paper's Chernoff form ``Pr[Z >= A] < (e * E[Z] / A)^A`` for a
    sum of independent indicators (valid for A > E[Z])."""
    if a <= 0:
        return 1.0
    return (math.e * mean / a) ** a


def min_sigma(g: int, k: int) -> float:
    """The smallest sigma for which Theorem 4.2 applies: g*k*e^2."""
    return g * k * math.e**2


def depth_tail_bound(n: int, sigma: float, g: int, k: int, c: int) -> float:
    """Theorem 4.2: an upper bound on ``Pr[D(G(S)) >= sigma * H_n]``.

    Returns ``c * n^-(sigma - g)`` (clamped to 1), raising if sigma is
    below the theorem's validity threshold ``g*k*e^2``.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if sigma < min_sigma(g, k):
        raise ValueError(
            f"Theorem 4.2 requires sigma >= g*k*e^2 = {min_sigma(g, k):.3f}, got {sigma}"
        )
    return min(1.0, c * float(n) ** (-(sigma - g)))


def depth_bound_whp(n: int, g: int, k: int, c: int, failure_exponent: float = 1.0) -> float:
    """The depth value ``sigma * H_n`` that holds with probability at
    least ``1 - c / n^failure_exponent`` per Theorem 4.2 (choosing the
    smallest valid sigma that achieves the exponent)."""
    sigma = max(min_sigma(g, k), g + failure_exponent)
    return sigma * harmonic(n)


def clarkson_shor_conflict_bound(active_sizes: Sequence[float], g: int) -> float:
    """Theorem 3.1: with t_i = E[|T({x_1..x_i})|], the expected total
    conflict size is at most ``n * g^2 * sum_i t_i / i^2``.

    ``active_sizes[i-1]`` supplies t_i (measured or analytic).
    """
    n = len(active_sizes)
    return n * g * g * sum(t / (i * i) for i, t in enumerate(active_sizes, start=1))
