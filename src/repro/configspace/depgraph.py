"""The configuration dependence graph (Definition 4.1).

Given a configuration space and an insertion order ``S = <x_1..x_n>``,
the graph has a vertex for every configuration that ever becomes active
during the incremental process (``V_i = T(Y_i) \\ T(Y_{i-1})``), and
edges into each ``π ∈ V_i`` from the ≤ k configurations of
``T(Y_{i-1})`` that support ``(π, x_i)``.  Its depth is the quantity
Theorem 4.2 bounds by ``O(log n)`` whp.

Two constructions:

* :func:`build_dependence_graph` -- the definitional one, by brute-force
  active sets per prefix (ground truth; small n);
* :func:`graph_from_hull_run` -- the O(output) one read off a parallel
  hull run's support DAG (they must agree on hull instances, which is
  itself a test).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import networkx as nx

from .base import Config, ConfigurationSpace
from .support import find_support_set, is_support_set

__all__ = ["DependenceGraph", "build_dependence_graph", "graph_from_hull_run"]


@dataclass
class DependenceGraph:
    """A leveled DAG over configuration keys.

    ``parents[key]`` are the support-set keys of the step that added
    ``key``; roots (the base-case configurations) have no entry.
    """

    parents: dict = field(default_factory=dict)
    added_at: dict = field(default_factory=dict)  # key -> insertion step
    order: list = field(default_factory=list)     # keys in addition order

    def depth(self) -> int:
        """Longest path length in edges (a root alone has depth 0)."""
        level: dict = {}
        best = 0
        for key in self.order:
            ps = self.parents.get(key, ())
            level[key] = 1 + max((level[p] for p in ps), default=-1) if ps else 0
            best = max(best, level[key])
        return best

    def levels(self) -> dict:
        """key -> level (roots at 0)."""
        level: dict = {}
        for key in self.order:
            ps = self.parents.get(key, ())
            level[key] = 1 + max((level[p] for p in ps), default=-1) if ps else 0
        return level

    def to_networkx(self) -> nx.DiGraph:
        g = nx.DiGraph()
        g.add_nodes_from(self.order)
        for key, ps in self.parents.items():
            for p in ps:
                g.add_edge(p, key)
        return g

    def __len__(self) -> int:
        return len(self.order)


def build_dependence_graph(
    space: ConfigurationSpace,
    order: Sequence[int],
    strict: bool = True,
) -> DependenceGraph:
    """Definitional construction by brute force over prefixes.

    For each step ``i > n_b`` the newly active configurations get edges
    from their support sets in ``T(Y_{i-1})`` (constructive rule if the
    space has one, else exhaustive search).  With ``strict`` a missing
    support set raises -- for a space with claimed k-support that is a
    counterexample.
    """
    nb = space.base_size
    graph = DependenceGraph()
    prev_active: set[Config] = set()
    for i in range(nb, len(order) + 1):
        prefix = frozenset(order[:i])
        active = {c for c in space.active_set(prefix)}
        added = active - prev_active
        x = order[i - 1]
        for config in sorted(added, key=lambda c: (sorted(c.defining), str(c.tag))):
            key = config.key()
            graph.order.append(key)
            graph.added_at[key] = i
            if i == nb:
                continue  # base-case configurations are roots
            phi = space.find_support(prev_active, config, x)
            if phi is not None and not (
                len(phi) <= space.support_k
                and set(phi) <= prev_active
                and is_support_set(config, x, phi)
            ):
                phi = None
            if phi is None:
                phi = find_support_set(prev_active, config, x, space.support_k)
            if phi is None:
                if strict:
                    raise AssertionError(
                        f"no support set of size <= {space.support_k} for "
                        f"({config!r}, {x}) at step {i}"
                    )
                continue
            graph.parents[key] = tuple(c.key() for c in phi)
        prev_active = active
    return graph


def graph_from_hull_run(run) -> DependenceGraph:
    """Read the dependence graph off a
    :class:`~repro.hull.parallel.ParallelHullRun` support DAG."""
    graph = DependenceGraph()
    for f in run.created:
        graph.order.append(f.fid)
        sup = run.support.get(f.fid)
        if sup is not None:
            graph.parents[f.fid] = sup
        graph.added_at[f.fid] = run.pivots.get(f.fid, 0)
    return graph
