"""The configuration-space framework of Sections 3-4: configurations
with defining/conflict sets, support sets and k-support checking, the
configuration dependence graph, and the paper's analytic bounds."""

from . import spaces
from .base import Config, ConfigurationSpace
from .generic import GenericRun, generic_parallel_incremental
from .depgraph import DependenceGraph, build_dependence_graph, graph_from_hull_run
from .support import SupportReport, check_k_support, find_support_set, is_support_set
from .theory import (
    chernoff_tail,
    clarkson_shor_conflict_bound,
    depth_bound_whp,
    depth_tail_bound,
    expected_path_length_bound,
    harmonic,
    min_sigma,
)

__all__ = [
    "spaces",
    "Config",
    "ConfigurationSpace",
    "GenericRun",
    "generic_parallel_incremental",
    "DependenceGraph",
    "build_dependence_graph",
    "graph_from_hull_run",
    "SupportReport",
    "check_k_support",
    "find_support_set",
    "is_support_set",
    "chernoff_tail",
    "clarkson_shor_conflict_bound",
    "depth_bound_whp",
    "depth_tail_bound",
    "expected_path_length_bound",
    "harmonic",
    "min_sigma",
]
