"""Graceful degradation: the float -> exact -> sos -> joggle ladder.

The paper assumes general position and real arithmetic; real inputs
offer neither.  :func:`robust_hull` wraps :func:`parallel_hull` in a
four-rung ladder:

1. **float** -- the default adaptive predicates (float fast path with
   exact rational recheck inside the error envelope);
2. **exact** -- every hyperplane built in :func:`exact_mode`, so *all*
   visibility is decided rationally (slow, but immune to any float
   filter bug);
3. **sos** -- :func:`~repro.geometry.perturb.sos_mode` Simulation of
   Simplicity: exact predicates plus deterministic symbolic
   tie-breaking by insertion rank, so genuinely degenerate clouds
   (duplicates, not-full-dimensional, cocircular...) yield the
   canonical simplicial hull of the perturbed points *without touching
   the input coordinates*;
4. **joggle** -- :func:`joggled_hull`'s seeded numeric perturbation,
   the last resort (it changes the input), kept for inputs that defeat
   even symbolic perturbation and as an explicit opt-out
   (``allow_sos=False``).

Each rung is attempted, validated, **certified** (a
:class:`~repro.hull.certify.HullCertificate` checked by the independent
exact verifier -- construction bugs cannot self-approve), and on
failure the next rung is tried.  The escalation path ends up both in
the result and in the run's ``exec_stats.escalations`` so chaos reports
and experiment logs can see which inputs needed which tier.

When a :class:`~repro.geometry.noisy.NoisyKernel` is supplied
(``noise=``), *noisy* rungs run before the exact ladder: the hull is
built against the lying oracle, and the same independent certificate
decides whether the answer survived the noise.  Rejection escalates the
vote count (``k -> 2k+1 -> adaptive``, each at a fresh noise epoch so
retries draw independent errors) and finally falls through to the
noise-free ladder above -- certificate-gated self-healing.  Every
attempt lands in ``escalations`` as ``noisy[p=..,votes=..]:{ok,...}``,
with an ``#attempt`` counter distinguishing retries of the same rung.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry.hyperplane import exact_mode
from ..geometry.noisy import NoisyKernel
from ..geometry.perturb import sos_mode
from .certify import CertificateError, HullCertificate, make_certificate, verify_certificate
from .joggle import JoggledHull, joggled_hull
from .parallel import ParallelHullRun, parallel_hull
from .validate import HullValidationError, validate_hull

__all__ = ["RobustHullResult", "robust_hull"]


@dataclass
class RobustHullResult:
    """Outcome of :func:`robust_hull`.

    ``mode`` is the rung that succeeded (``"float"``, ``"exact"``,
    ``"sos"`` or ``"joggle"``); ``run`` the surviving hull run (over
    joggled coordinates when ``mode == "joggle"``, in which case
    ``joggled`` carries the perturbation provenance).  ``escalations``
    is the full path, e.g. ``["float:HullSetupError",
    "exact:HullSetupError", "sos:ok"]``, normalized to one
    ``rung:outcome`` entry per attempt -- a re-attempt of a rung already
    on the path gets an attempt counter (``"rung#2:outcome"``), so the
    path is injective and counting attempts per rung is exact.  With
    noise, ``mode`` is the noisy rung label (``"noisy[p=..,votes=..]"``)
    and ``noise`` the :class:`NoisyKernel` that produced the surviving
    run (its counters hold the vote-overhead numbers).  ``certificate``
    is the independently verified :class:`HullCertificate` of the
    surviving run (None only when ``certify=False``).
    """

    run: ParallelHullRun
    mode: str
    escalations: list[str] = field(default_factory=list)
    joggled: JoggledHull | None = None
    certificate: HullCertificate | None = None
    noise: NoisyKernel | None = None

    def vertex_indices(self) -> set[int]:
        return self.run.vertex_indices()


def robust_hull(
    points: np.ndarray,
    seed: int | None = 0,
    order: np.ndarray | None = None,
    allow_joggle: bool = True,
    allow_sos: bool = True,
    validate: bool = True,
    certify: bool = True,
    noise: NoisyKernel | None = None,
    noise_retries: int = 1,
    **hull_kwargs,
) -> RobustHullResult:
    """Compute a hull of ``points``, escalating through the predicate
    ladder on failure.

    ``validate=True`` (default) runs :func:`validate_hull` after every
    rung, so a structurally broken hull escalates instead of being
    returned; ``certify=True`` (default) additionally emits a
    certificate and checks it with the independent exact verifier
    (recorded as ``"mode:CertificateError"`` when it fails).
    ``allow_sos=False`` skips symbolic perturbation; with both
    ``allow_sos=False`` and ``allow_joggle=False`` the exact rung's
    failure is re-raised (callers that need the *true* face lattice of
    degenerate points should use
    :func:`~repro.geometry.perturb.merge_coplanar_facets` on an SoS run
    instead).  Extra keyword arguments are forwarded to
    :func:`parallel_hull` -- in particular ``engine="soa"`` runs every
    rung (noisy, float, exact, sos) on the round-vectorized
    conflict-list engine; the ladder semantics are unchanged because
    the SoA engine raises, validates, and certifies exactly as the
    object driver does.

    ``noise`` prepends noisy rungs: the hull runs against the given
    :class:`NoisyKernel` (``noise_retries`` attempts per vote level,
    each at a fresh epoch), the certificate gate decides acceptance,
    and rejection climbs ``noise.escalation_levels()`` before falling
    through to the exact ladder.  Noisy attempts may fail *arbitrarily*
    -- a lying oracle can corrupt structural invariants deep inside the
    run, not just the checked properties -- so any exception escalates
    (recorded by type), whereas the noise-free rungs keep their strict
    catch list so genuine bugs still surface.
    """
    points = np.asarray(points, dtype=np.float64)
    escalations: list[str] = []
    rung_attempts: dict[str, int] = {}

    def record(rung: str, outcome: str) -> None:
        # One entry per attempt; repeat attempts of a rung get "#k"
        # (first keeps the bare label, so single-pass paths -- every
        # pre-noise caller -- read exactly as before).
        k = rung_attempts.get(rung, 0) + 1
        rung_attempts[rung] = k
        tag = rung if k == 1 else f"{rung}#{k}"
        escalations.append(f"{tag}:{outcome}")

    def attempt(
        mode: str, kernel_override: NoisyKernel | None = None
    ) -> tuple[ParallelHullRun, HullCertificate | None]:
        kwargs = dict(hull_kwargs)
        if kernel_override is not None:
            kwargs["kernel"] = kernel_override
        run = parallel_hull(points, seed=seed, order=order, **kwargs)
        if validate:
            validate_hull(run.facets, run.points)
        cert = None
        if certify:
            cert = make_certificate(run, mode)
            verify_certificate(cert, points)
        return run, cert

    if noise is not None:
        if noise_retries < 1:
            raise ValueError(f"noise_retries must be >= 1, got {noise_retries}")
        epoch = noise.epoch
        for level in noise.escalation_levels():
            for _ in range(noise_retries):
                nk = noise.spawn(votes=level, epoch=epoch)
                epoch += 1
                label = nk.rung_label()
                try:
                    run, cert = attempt(label, kernel_override=nk)
                except Exception as exc:
                    record(label, type(exc).__name__)
                    continue
                record(label, "ok")
                run.exec_stats.escalations = (
                    run.exec_stats.escalations + list(escalations)
                )
                return RobustHullResult(
                    run=run, mode=label, escalations=escalations,
                    certificate=cert, noise=nk,
                )

    rungs = ["float", "exact"] + (["sos"] if allow_sos else [])
    last_error: Exception | None = None
    for mode in rungs:
        try:
            if mode == "exact":
                with exact_mode():
                    run, cert = attempt(mode)
            elif mode == "sos":
                with sos_mode():
                    run, cert = attempt(mode)
            else:
                run, cert = attempt(mode)
        except (ValueError, HullValidationError, CertificateError) as exc:
            # ValueError covers HullSetupError (its subclass) and the
            # geometry layer's "orientation reference lies on the
            # hyperplane" -- a genuinely degenerate reference that only
            # the SoS rung can break.
            record(mode, type(exc).__name__)
            last_error = exc
            continue
        record(mode, "ok")
        # Merge, don't overwrite: the run may already carry executor-
        # ladder escalations (process->thread->serial degradation from
        # the supervised ProcessExecutor loop).
        run.exec_stats.escalations = run.exec_stats.escalations + list(escalations)
        return RobustHullResult(
            run=run, mode=mode, escalations=escalations, certificate=cert
        )

    if not allow_joggle:
        raise last_error
    jh = joggled_hull(points, seed=0 if seed is None else seed, order=order)
    cert = None
    if certify:
        # The certificate speaks about the *joggled* coordinates (that
        # is the cloud the hull is a hull of); reconstruct them in the
        # caller's index order from the run's rank-ordered points.
        joggled_points = np.empty_like(jh.run.points)
        joggled_points[jh.run.order] = jh.run.points
        cert = make_certificate(jh.run, "joggle")
        try:
            verify_certificate(cert, joggled_points)
        except CertificateError:
            record("joggle", "CertificateError")
            raise
    record("joggle", f"ok[attempts={jh.attempts}]")
    jh.run.exec_stats.escalations = jh.run.exec_stats.escalations + list(escalations)
    return RobustHullResult(
        run=jh.run, mode="joggle", escalations=escalations, joggled=jh,
        certificate=cert,
    )
