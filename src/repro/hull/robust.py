"""Graceful degradation: the float -> exact -> joggle escalation ladder.

The paper assumes general position and real arithmetic; real inputs
offer neither.  :func:`robust_hull` wraps :func:`parallel_hull` in a
three-rung ladder:

1. **float** -- the default adaptive predicates (float fast path with
   exact rational recheck inside the error envelope);
2. **exact** -- every hyperplane built in :func:`exact_mode`, so *all*
   visibility is decided rationally (slow, but immune to any float
   filter bug);
3. **joggle** -- :func:`joggled_hull`'s seeded perturbation, the last
   resort for genuinely degenerate (not full-dimensional) clouds.

Each rung is attempted, validated, and on :class:`HullSetupError` or
:class:`HullValidationError` the failure is recorded and the next rung
tried.  The escalation path ends up both in the result and in the run's
``exec_stats.escalations`` so chaos reports and experiment logs can see
which inputs needed which tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry.hyperplane import exact_mode
from .common import HullSetupError
from .joggle import JoggledHull, joggled_hull
from .parallel import ParallelHullRun, parallel_hull
from .validate import HullValidationError, validate_hull

__all__ = ["RobustHullResult", "robust_hull"]


@dataclass
class RobustHullResult:
    """Outcome of :func:`robust_hull`.

    ``mode`` is the rung that succeeded (``"float"``, ``"exact"`` or
    ``"joggle"``); ``run`` the surviving hull run (over joggled
    coordinates when ``mode == "joggle"``, in which case ``joggled``
    carries the perturbation provenance).  ``escalations`` is the full
    path, e.g. ``["float:HullSetupError", "exact:HullSetupError",
    "joggle:ok[attempts=2]"]``.
    """

    run: ParallelHullRun
    mode: str
    escalations: list[str] = field(default_factory=list)
    joggled: JoggledHull | None = None

    def vertex_indices(self) -> set[int]:
        return self.run.vertex_indices()


def robust_hull(
    points: np.ndarray,
    seed: int | None = 0,
    order: np.ndarray | None = None,
    allow_joggle: bool = True,
    validate: bool = True,
    **hull_kwargs,
) -> RobustHullResult:
    """Compute a hull of ``points``, escalating through the predicate
    ladder on failure.

    ``validate=True`` (default) runs :func:`validate_hull` after the
    float and exact rungs, so a structurally broken hull escalates
    instead of being returned.  ``allow_joggle=False`` re-raises the
    exact rung's failure instead of perturbing the input (callers that
    need the *true* hull of degenerate points should use the
    configuration-space machinery instead).  Extra keyword arguments are
    forwarded to :func:`parallel_hull`.
    """
    points = np.asarray(points, dtype=np.float64)
    escalations: list[str] = []

    def attempt() -> ParallelHullRun:
        run = parallel_hull(points, seed=seed, order=order, **hull_kwargs)
        if validate:
            validate_hull(run.facets, run.points)
        return run

    for mode in ("float", "exact"):
        try:
            if mode == "exact":
                with exact_mode():
                    run = attempt()
            else:
                run = attempt()
        except (HullSetupError, HullValidationError) as exc:
            escalations.append(f"{mode}:{type(exc).__name__}")
            last_error = exc
            continue
        escalations.append(f"{mode}:ok")
        run.exec_stats.escalations = list(escalations)
        return RobustHullResult(run=run, mode=mode, escalations=escalations)

    if not allow_joggle:
        raise last_error
    jh = joggled_hull(points, seed=0 if seed is None else seed, order=order)
    escalations.append(f"joggle:ok[attempts={jh.attempts}]")
    jh.run.exec_stats.escalations = list(escalations)
    return RobustHullResult(
        run=jh.run, mode="joggle", escalations=escalations, joggled=jh
    )
