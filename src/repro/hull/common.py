"""Shared machinery for the sequential and parallel incremental hulls.

Both algorithms (paper Algorithms 2 and 3) operate on the same state:
points pre-permuted into insertion order (so *rank == index*, and the
conflict pivot ``min_S(C(t))`` is simply the smallest index in a conflict
array), facets built against a fixed interior reference point, and
conflict sets stored as ascending ``int64`` index arrays so that the hot
"filter the visible candidates" loop is one vectorized hyperplane
evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..analyze.shapes import observe
from ..geometry.hyperplane import Hyperplane
from ..geometry.kernels import BatchKernel
from ..geometry.noisy import NoisyKernel
from ..geometry.perturb import sos_active
from ..geometry.simplex import Facet
from ..runtime.atomics import Mutex

__all__ = [
    "Counters",
    "HullSetupError",
    "prepare_points",
    "initial_simplex_ranks",
    "promote_initial",
    "FacetFactory",
]


class HullSetupError(ValueError):
    """Raised when the input cannot seed a full-dimensional hull."""


@dataclass
class Counters:
    """Operation counters for the work accounting of Theorem 5.4.

    ``visibility_tests`` counts every point-vs-facet side evaluation,
    which is the unit of work both theorems are stated in.
    """

    visibility_tests: int = 0
    facets_created: int = 0
    facets_buried: int = 0
    facets_replaced: int = 0
    ridges_processed: int = 0
    flips: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)

    def restore(self, state: dict[str, int]) -> None:
        """Reset to a snapshot taken with :meth:`as_dict` (chaos layer:
        a rolled-back round's work is uncounted)."""
        self.__dict__.update(state)


def prepare_points(
    points: np.ndarray,
    order: np.ndarray | None = None,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Validate the input cloud and put it in insertion order.

    Returns ``(pts, order)`` where ``pts[i]`` is the point inserted at
    rank ``i`` and ``order[i]`` is its index in the caller's array.  If
    ``order`` is None a uniformly random permutation is drawn from
    ``seed`` (the randomized incremental order of the paper).
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise HullSetupError("points must be a 2D (n, d) array")
    n, d = points.shape
    if d < 2:
        raise HullSetupError("dimension must be >= 2")
    if n < d + 1:
        raise HullSetupError(f"need at least d+1={d + 1} points, got {n}")
    if not np.isfinite(points).all():
        raise HullSetupError("points must be finite")
    if order is None:
        order = np.random.default_rng(seed).permutation(n)
    else:
        order = np.asarray(order, dtype=np.int64)
        if sorted(order.tolist()) != list(range(n)):
            raise HullSetupError("order must be a permutation of range(n)")
    return points[order], order


def _affinely_independent(chosen: list[np.ndarray], candidate: np.ndarray) -> bool:
    """Exact test: does ``candidate`` extend the affine span of ``chosen``?

    Uses a float rank estimate as a filter and exact rational Gaussian
    elimination to resolve borderline cases, so degenerate inputs (e.g.
    integer grids) are handled correctly.
    """
    if not chosen:
        return True
    base = chosen[0]
    rows = [c - base for c in chosen[1:]] + [candidate - base]
    m = np.asarray(rows)
    k = len(rows)
    # Float filter: compare the k-th singular value against a scale-aware
    # threshold; fall through to the exact test when ambiguous.
    sv = np.linalg.svd(m, compute_uv=False)
    scale = float(sv[0]) if sv.size else 0.0
    tol = 1e-9 * (scale + 1.0)
    if sv.size >= k and sv[k - 1] > tol:
        return True
    return _exact_rank(rows) == k


def _exact_rank(rows: list[np.ndarray]) -> int:
    """Exact rank of a small matrix via rational Gaussian elimination."""
    a = [[Fraction(float(x)) for x in row] for row in rows]
    rank = 0
    n_rows, n_cols = len(a), len(a[0]) if a else 0
    col = 0
    for col in range(n_cols):
        pivot_row = next(
            (i for i in range(rank, n_rows) if a[i][col] != 0), None
        )
        if pivot_row is None:
            continue
        a[rank], a[pivot_row] = a[pivot_row], a[rank]
        inv = 1 / a[rank][col]
        for i in range(rank + 1, n_rows):
            f = a[i][col] * inv
            if f == 0:
                continue
            for j in range(col, n_cols):
                a[i][j] -= f * a[rank][j]
        rank += 1
        if rank == n_rows:
            break
    return rank


def initial_simplex_ranks(pts: np.ndarray, base_size: int | None = None) -> list[int]:
    """Pick the first affinely independent ``d+1`` ranks, scanning
    forward in insertion order.

    The paper assumes general position so the first ``d+1`` points
    suffice; on degenerate inputs we keep the earliest points that work,
    preserving relative order (callers then re-rank so the chosen points
    occupy ranks ``0..d``).  Raises :class:`HullSetupError` when the
    cloud is not full-dimensional.
    """
    n, d = pts.shape
    need = (base_size if base_size is not None else d + 1)
    if sos_active():
        # Under Simulation of Simplicity every d+1 distinct ranks are
        # affinely independent (the perturbed cloud is in general
        # position), so the paper's assumption holds verbatim: the first
        # points in insertion order seed the simplex, and no input is
        # rejected as flat.
        return list(range(need))
    chosen: list[int] = []
    chosen_pts: list[np.ndarray] = []
    for i in range(n):
        if _affinely_independent(chosen_pts, pts[i]):
            chosen.append(i)
            chosen_pts.append(pts[i])
            if len(chosen) == need:
                return chosen
    raise HullSetupError(
        f"input is not full-dimensional: affine rank {len(chosen) - 1} < {d}"
    )


def promote_initial(pts: np.ndarray, order: np.ndarray, ranks: list[int]):
    """Re-rank so the chosen initial-simplex points occupy ranks 0..d,
    keeping every other point in its original relative order."""
    n = pts.shape[0]
    keep = np.ones(n, dtype=bool)
    keep[list(ranks)] = False
    perm = np.concatenate(
        [np.asarray(ranks, dtype=np.int64), np.nonzero(keep)[0]]
    )
    return pts[perm], order[perm]


class FacetFactory:
    """Creates facets with vectorized conflict-set computation.

    One factory per run; it owns the interior reference point (the
    centroid of the initial simplex, strictly inside every intermediate
    hull) and the work counters.

    ``kernel`` picks the visibility engine: ``"scalar"`` (the default
    oracle -- one :meth:`Hyperplane.visible_mask` call per facet) or
    ``"batch"`` (the :class:`~repro.geometry.kernels.BatchKernel`:
    candidate blocks of many facets are swept in one einsum, uncertain
    entries escalate to the same exact ladder, and decisions are cached
    per (facet identity, rank)).  A
    :class:`~repro.geometry.noisy.NoisyKernel` instance is also
    accepted: its ``base`` names one of the two engines above, whose
    *true* masks are then perturbed by the seeded lying oracle before
    conflict sets are built (the sign cache, when active, stores true
    signs -- noise is a deterministic re-application, so caching does
    not accidentally de-noise or double-noise a decision).  Work
    accounting is kernel-invariant: ``counters.visibility_tests``
    counts scalar-equivalent *questions* either way (vote repetitions
    land in the noisy kernel's own counters), so E2/E13 comparisons are
    unaffected by the engine choice.
    """

    def __init__(self, pts: np.ndarray, interior: np.ndarray, counters: Counters,
                 interior_ranks: tuple[int, ...] | None = None,
                 kernel: str | NoisyKernel = "scalar"):
        self.pts = pts
        self.interior = np.asarray(interior, dtype=np.float64)
        self.counters = counters
        # Ranks whose (uniform-weight) affine combination the interior
        # point is -- lets SoS planes classify the reference even when
        # it lies exactly on a degenerate facet's plane.
        if interior_ranks is None:
            interior_ranks = tuple(range(pts.shape[1] + 1))
        self._interior_combo = (pts[list(interior_ranks)], interior_ranks)
        self._mutex = Mutex()
        self._next_fid = 0
        self.noisy = kernel if isinstance(kernel, NoisyKernel) else None
        kernel = self.noisy.base if self.noisy is not None else kernel
        if kernel not in ("scalar", "batch"):
            raise ValueError(f"unknown kernel {kernel!r}; use 'scalar' or 'batch'")
        self.kernel = kernel
        self.batch_kernel = BatchKernel(pts) if kernel == "batch" else None

    def kernel_snapshot(self) -> dict:
        """Kernel counters for ``exec_stats`` (empty-ish for scalar)."""
        snap: dict = {"kernel": self.kernel}
        if self.batch_kernel is not None:
            snap.update(self.batch_kernel.snapshot())
            if self.batch_kernel.cache is not None:
                snap.update(self.batch_kernel.cache.snapshot())
        if self.noisy is not None:
            snap["kernel"] = f"noisy[{self.kernel}]"
            snap.update(self.noisy.snapshot())
        return snap

    def _plane_for(self, indices: tuple[int, ...]) -> Hyperplane:
        return Hyperplane.through(
            self.pts[list(indices)], self.interior,
            indices=indices, ref_combo=self._interior_combo,
        )

    def _clean_candidates(
        self, indices: tuple[int, ...], candidates: np.ndarray
    ) -> np.ndarray:
        # repro: shape: candidates=(C,):int64 -> (*,):int64
        candidates = np.asarray(candidates, dtype=np.int64)
        observe("repro.hull.common.FacetFactory._clean_candidates",
                candidates=candidates)
        if candidates.size:
            # Drop the d defining indices; a few vector compares beat
            # np.isin for constant-size index tuples (hot path).
            keep = np.ones(candidates.shape[0], dtype=bool)
            for i in indices:
                keep &= candidates != i
            candidates = candidates[keep]
        return candidates

    def make(self, indices: tuple[int, ...], candidates: np.ndarray) -> Facet:
        """Build the facet on ``indices`` oriented against the interior
        point, with conflict set = the strictly visible subset of
        ``candidates`` (ascending index array, defining points excluded).

        Thread-safe: the vectorized visibility work runs outside the
        lock; only id allocation and counter updates are serialized.
        """
        return self.make_batch([(indices, candidates)])[0]

    def make_batch(
        self, specs: list[tuple[tuple[int, ...], np.ndarray]]
    ) -> list[Facet]:
        """Build several facets at once; ``specs`` is a list of
        ``(indices, candidates)`` pairs.

        With ``kernel="batch"`` every candidate block in the call is
        evaluated in one flattened einsum sweep (plus the shared exact
        fallback); with ``kernel="scalar"`` each facet runs its own
        :meth:`Hyperplane.visible_mask`.  Facet ids are allocated in
        spec order, so the two engines produce identical runs.
        """
        # Canonicalize to sorted rank order *before* building the plane,
        # so plane.base_points rows always match Facet.indices -- the
        # orientation sign a certificate claims is then well-defined
        # (row permutations flip determinant signs).  Visibility is
        # invariant: the plane re-orients against the interior either way.
        idx_list = [tuple(sorted(int(i) for i in idx)) for idx, _ in specs]
        planes = [self._plane_for(idx) for idx in idx_list]
        cand_list = [
            self._clean_candidates(idx, cands)
            for idx, (_, cands) in zip(idx_list, specs)
        ]
        n_tests = sum(int(c.size) for c in cand_list)
        if self.batch_kernel is not None:
            masks = self.batch_kernel.visible_blocks(planes, idx_list, cand_list)
        else:
            masks = [
                plane.visible_mask(self.pts[cands], indices=cands)
                if cands.size else np.zeros(0, dtype=bool)
                for plane, cands in zip(planes, cand_list)
            ]
        if self.noisy is not None:
            # Perturb *after* the true masks exist: both engines (and the
            # sign cache) stay exact underneath, and the flip for a given
            # (facet, rank) site is the same whichever engine computed it.
            masks = self.noisy.noisy_masks(idx_list, cand_list, masks)
        with self._mutex:
            fid0 = self._next_fid
            self._next_fid += len(specs)
            self.counters.visibility_tests += n_tests
            self.counters.facets_created += len(specs)
        return [
            Facet(
                fid=fid0 + k,
                indices=idx_list[k],
                plane=planes[k],
                conflicts=cand_list[k][masks[k]] if cand_list[k].size else cand_list[k],
            )
            for k in range(len(specs))
        ]

    def make_precomputed(
        self, indices: tuple[int, ...], conflicts: np.ndarray, n_tests: int
    ) -> Facet:
        """Register a facet whose conflict sweep was already evaluated
        elsewhere (a worker process in
        :class:`~repro.runtime.procexec.ProcessExecutor` runs).

        The parent allocates the fid, re-counts the scalar-equivalent
        work (``n_tests`` = the candidates the worker swept), and builds
        the plane locally -- plane construction is a pure function of
        ``pts``, so parent and worker agree bit-for-bit, and shipping
        only the surviving conflict indices keeps result messages small.
        """
        idx = tuple(sorted(int(i) for i in indices))
        plane = self._plane_for(idx)
        conflicts = np.asarray(conflicts, dtype=np.int64)
        with self._mutex:
            fid = self._next_fid
            self._next_fid += 1
            self.counters.visibility_tests += int(n_tests)
            self.counters.facets_created += 1
        return Facet(fid=fid, indices=idx, plane=plane, conflicts=conflicts)

    def fid_checkpoint(self) -> int:
        """The next facet id to be issued (chaos layer: rollback mark)."""
        with self._mutex:
            return self._next_fid

    def fid_rollback(self, mark: int) -> None:
        """Rewind id allocation to ``mark`` so a replayed round issues
        the same ids it did before the rollback.  Only valid when every
        facet with id >= ``mark`` has been discarded by the caller."""
        with self._mutex:
            self._next_fid = mark

    @staticmethod
    def merge_candidates(a: np.ndarray, b: np.ndarray, above: int) -> np.ndarray:
        """Ascending union of two (already sorted, unique) conflict
        arrays restricted to indices strictly greater than ``above``
        (the point being inserted).  Fast paths for the common cases
        where one side is empty (facets close to final)."""
        # repro: shape: a=(A,):int64, b=(B,):int64 -> (*,):int64
        observe("repro.hull.common.FacetFactory.merge_candidates", a=a, b=b)
        if a.size and a[0] <= above:
            a = a[np.searchsorted(a, above, side="right"):]
        if b.size and b[0] <= above:
            b = b[np.searchsorted(b, above, side="right"):]
        if not b.size:
            return a
        if not a.size:
            return b
        merged = np.concatenate([a, b])
        merged.sort(kind="stable")
        keep = np.empty(merged.shape[0], dtype=bool)
        keep[0] = True
        np.not_equal(merged[1:], merged[:-1], out=keep[1:])
        return merged[keep]
