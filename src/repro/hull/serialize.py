"""JSON-serializable summaries of hull runs.

Reproduction artefacts want to be archived: this module flattens a run
into plain JSON (counters, depth structure, per-round profile, the
support DAG) and restores the dependence-graph part for later analysis
-- without pickling live numpy/lock-bearing objects.
"""

from __future__ import annotations

import json
from typing import Any

from ..configspace.depgraph import DependenceGraph

__all__ = ["run_summary", "save_run", "load_summary", "graph_from_summary"]


def run_summary(run) -> dict[str, Any]:
    """Flatten a :class:`ParallelHullRun` into a JSON-safe dict."""
    kernel_stats = dict(
        getattr(run.exec_stats, "kernel_stats", {}) or {"kernel": "scalar"}
    )
    # Noisy-oracle provenance (flip/vote counters from a NoisyKernel
    # run) rides inside kernel_stats; surface it as its own block so
    # archived escalation paths like "noisy[p=0.05,votes=3]:ok" stay
    # interpretable without re-running anything.
    noise = {k: v for k, v in kernel_stats.items()
             if k.startswith(("noise_", "noisy_"))}
    return {
        "schema": "repro.hull.run/1",
        "n": int(run.points.shape[0]),
        "d": int(run.points.shape[1]),
        "order": [int(x) for x in run.order],
        "base_size": int(run.base_size),
        "counters": run.counters.as_dict(),
        "hull_facets": [list(map(int, f.indices)) for f in run.facets],
        "created": [
            {
                "fid": int(f.fid),
                "indices": list(map(int, f.indices)),
                "conflicts": int(f.conflicts.size),
                "alive": bool(f.alive),
            }
            for f in run.created
        ],
        "support": {str(k): [int(a), int(b)] for k, (a, b) in run.support.items()},
        "pivots": {str(k): int(v) for k, v in run.pivots.items()},
        "rounds": {str(k): int(v) for k, v in run.rounds.items()},
        "exec": {
            "rounds": int(run.exec_stats.rounds),
            "tasks": int(run.exec_stats.tasks_executed),
            "round_sizes": list(map(int, run.exec_stats.round_sizes)),
            # Fault-tolerance provenance (all zero / empty on clean
            # single-process runs; additive, schema unchanged).
            "escalations": [str(e) for e in run.exec_stats.escalations],
            "supervision": {
                "retries": int(run.exec_stats.retries),
                "worker_deaths": int(run.exec_stats.worker_deaths),
                "checkpoints": int(run.exec_stats.checkpoints),
                "rollbacks": int(run.exec_stats.rollbacks),
                "deadline_kills": int(run.exec_stats.deadline_kills),
                "stall_kills": int(run.exec_stats.stall_kills),
                "respawns": int(run.exec_stats.respawns),
                "quarantined": int(run.exec_stats.quarantined),
                "duplicates_dropped": int(run.exec_stats.duplicates_dropped),
                "heartbeats": int(run.exec_stats.heartbeats),
            },
        },
        # Visibility-kernel provenance (batched sweeps, filter
        # fallbacks, sign-cache hits); {"kernel": "scalar"} by default.
        "kernel": kernel_stats,
        "noise": noise or None,
        "depth": int(run.dependence_depth()),
        "work": int(run.tracker.work),
        "span": int(run.tracker.span),
    }


def save_run(run, path) -> None:
    """Write the JSON summary of ``run`` to ``path``."""
    with open(path, "w") as fh:
        json.dump(run_summary(run), fh)


def load_summary(path) -> dict[str, Any]:
    """Load a summary written by :func:`save_run` (schema-checked)."""
    with open(path) as fh:
        data = json.load(fh)
    if data.get("schema") != "repro.hull.run/1":
        raise ValueError(f"unrecognised run summary schema: {data.get('schema')!r}")
    return data


def graph_from_summary(summary: dict[str, Any]) -> DependenceGraph:
    """Rebuild the dependence graph from a (loaded) summary, so depth
    and level analyses can run without the original objects."""
    graph = DependenceGraph()
    for entry in summary["created"]:
        fid = entry["fid"]
        graph.order.append(fid)
        sup = summary["support"].get(str(fid))
        if sup is not None:
            graph.parents[fid] = tuple(sup)
        graph.added_at[fid] = summary["rounds"].get(str(fid), 0)
    return graph
