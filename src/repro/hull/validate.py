"""Structural and geometric validation of hull results.

Used throughout the test suite to certify that both hull algorithms (and
any baseline) produced the true convex hull:

* no input point is strictly visible from any output facet
  (containment);
* every ridge of the output is shared by exactly two facets (the hull
  is a closed (d-1)-manifold);
* vertex sets match a brute-force extreme-point computation and -- in
  tests -- ``scipy.spatial.ConvexHull``;
* combinatorial sanity per dimension (2D: #facets == #vertices; 3D
  simplicial: F = 2V - 4).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..geometry.predicates import orient_exact
from ..geometry.simplex import Facet, facet_ridges

__all__ = [
    "HullValidationError",
    "check_containment",
    "check_ridge_manifold",
    "check_counts",
    "validate_hull",
    "facet_sets_global",
    "brute_force_extreme_ranks",
    "brute_force_facet_sets",
]


def facet_sets_global(facets: list["Facet"], order: np.ndarray) -> set[frozenset]:
    """Facet point-sets mapped back to the caller's original indices --
    the right way to compare hulls computed under different insertion
    orders (per-run facet keys live in rank space)."""
    return {frozenset(int(order[i]) for i in f.indices) for f in facets}


class HullValidationError(AssertionError):
    """A hull invariant failed."""


def check_containment(facets: list[Facet], points: np.ndarray) -> None:
    """No input point may be strictly visible from any facet.

    For hulls built under SoS the planes resolve exact-zero margins by
    point rank, so containment here means containment of the *perturbed*
    cloud -- on-plane points count as outside exactly when the symbolic
    tie-break says so, making the check as strict as construction.
    """
    ranks = np.arange(points.shape[0])
    for f in facets:
        if f.plane.sos:
            mask = f.plane.visible_mask(points, indices=ranks)
        else:
            mask = f.plane.visible_mask(points)
        if mask.any():
            bad = int(np.nonzero(mask)[0][0])
            raise HullValidationError(
                f"point {bad} is strictly outside facet {f.indices}"
            )


def check_ridge_manifold(facets: list[Facet]) -> None:
    """Every ridge must be incident on exactly two facets."""
    incidence: dict[frozenset, int] = {}
    for f in facets:
        for r in facet_ridges(f.indices):
            incidence[r] = incidence.get(r, 0) + 1
    bad = {tuple(sorted(r)): k for r, k in incidence.items() if k != 2}
    if bad:
        raise HullValidationError(f"non-manifold ridges (ridge -> count): {bad}")


def check_counts(facets: list[Facet], d: int) -> None:
    """Dimension-specific combinatorial checks for simplicial hulls."""
    v = len({i for f in facets for i in f.indices})
    fcount = len(facets)
    if d == 2 and fcount != v:
        raise HullValidationError(f"2D hull must have #edges == #vertices; got {fcount} != {v}")
    if d == 3 and fcount != 2 * v - 4:
        raise HullValidationError(
            f"simplicial 3D hull must satisfy F = 2V - 4; got F={fcount}, V={v}"
        )


def validate_hull(facets: list[Facet], points: np.ndarray) -> None:
    """Run every structural check; raises :class:`HullValidationError`."""
    if not facets:
        raise HullValidationError("hull has no facets")
    d = points.shape[1]
    check_containment(facets, points)
    check_ridge_manifold(facets)
    check_counts(facets, d)


def brute_force_extreme_ranks(points: np.ndarray) -> set[int]:
    """Exact extreme points by LP-free enumeration: rank ``i`` is
    extreme iff some hyperplane through d-1 other points ... is
    expensive; instead we use the direct definition via facet
    enumeration.  Intended for small n in tests."""
    facet_sets = brute_force_facet_sets(points)
    return {i for s in facet_sets for i in s}


def brute_force_facet_sets(points: np.ndarray) -> set[frozenset]:
    """All d-subsets of points that span a hull facet, decided exactly:
    the subset's hyperplane has all other points strictly on one side
    (general position assumed -- a zero orientation for a non-member
    raises, as the simplicial hull is then ill-defined).  O(n^{d+1});
    tests only."""
    points = np.asarray(points, dtype=np.float64)
    n, d = points.shape
    out: set[frozenset] = set()
    for combo in combinations(range(n), d):
        simplex = points[list(combo)]
        signs = set()
        degenerate = False
        for j in range(n):
            if j in combo:
                continue
            s = orient_exact(simplex, points[j])
            if s == 0:
                degenerate = True
                break
            signs.add(s)
            if len(signs) == 2:
                break
        if degenerate:
            continue
        if len(signs) <= 1:
            out.add(frozenset(combo))
    return out
