"""Derived polytope quantities from a set of hull facets.

Turns the raw facet list produced by either hull algorithm into the
things applications actually consume: vertex lists, facet adjacency,
volume/surface measures, and membership tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gamma

import numpy as np

from ..geometry.simplex import Facet, facet_ridges

__all__ = ["Polytope"]


def _simplex_volume(vertices: np.ndarray) -> float:
    """Volume of the d-simplex spanned by d+1 rows of ``vertices``."""
    edges = vertices[1:] - vertices[0]
    d = edges.shape[0]
    return abs(float(np.linalg.det(edges))) / float(gamma(d + 1))


@dataclass
class Polytope:
    """A convex polytope given by simplicial facets over a point array.

    All indices refer to rows of ``points`` (the insertion-ordered array
    of the producing run).
    """

    points: np.ndarray
    facets: list[Facet]
    interior: np.ndarray

    @property
    def dimension(self) -> int:
        return int(self.points.shape[1])

    def vertices(self) -> list[int]:
        return sorted({i for f in self.facets for i in f.indices})

    def adjacency(self) -> dict[int, list[int]]:
        """Facet-id -> neighbouring facet-ids (one per shared ridge)."""
        by_ridge: dict[frozenset, list[int]] = {}
        for f in self.facets:
            for r in facet_ridges(f.indices):
                by_ridge.setdefault(r, []).append(f.fid)
        adj: dict[int, list[int]] = {f.fid: [] for f in self.facets}
        for pair in by_ridge.values():
            if len(pair) == 2:
                a, b = pair
                adj[a].append(b)
                adj[b].append(a)
        return adj

    def volume(self) -> float:
        """d-volume by fanning simplices from the interior point."""
        total = 0.0
        for f in self.facets:
            verts = np.vstack([self.interior[None, :], self.points[list(f.indices)]])
            total += _simplex_volume(verts)
        return total

    def surface_measure(self) -> float:
        """Total (d-1)-measure of the boundary (perimeter in 2D, surface
        area in 3D)."""
        total = 0.0
        d = self.dimension
        for f in self.facets:
            pts = self.points[list(f.indices)]
            edges = pts[1:] - pts[0]
            gramian = edges @ edges.T
            total += float(np.sqrt(max(0.0, np.linalg.det(gramian)))) / float(
                gamma(d)
            )
        return total

    def contains(self, q, strict: bool = False) -> bool:
        """Membership test: ``q`` is inside (or on, unless ``strict``)
        every facet's inner half-space."""
        sides = [f.plane.side(q) for f in self.facets]
        if strict:
            return all(s < 0 for s in sides)
        return all(s <= 0 for s in sides)

    @staticmethod
    def from_run(run) -> "Polytope":
        """Build from a :class:`SequentialHullResult` or
        :class:`ParallelHullRun`."""
        return Polytope(points=run.points, facets=list(run.facets), interior=run.interior)
