"""Online convex hull maintenance: add points one at a time.

The batch algorithms (Algorithms 2/3) pre-compute conflict sets because
they know all points up front; a *stream* of points doesn't allow that.
This builder maintains the hull under arbitrary insertions by locating
the visible region directly (testing the current facets -- O(h) per
insertion, the textbook online variant) and stitching the horizon
exactly like the batch code.

It exists for downstream users who want the library as a data structure
rather than a one-shot solver; the batch algorithms remain the
reproduction's subject.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..geometry.hyperplane import Hyperplane
from ..geometry.simplex import Facet, facet_ridges
from .common import HullSetupError, _affinely_independent

__all__ = ["OnlineHull"]


class OnlineHull:
    """Incrementally maintained convex hull in any constant dimension.

    Points are added with :meth:`add`; until d+1 affinely independent
    points have arrived the builder buffers them (``is_full_dimensional``
    is False and there are no facets yet).
    """

    def __init__(self, dimension: int):
        if dimension < 2:
            raise HullSetupError("dimension must be >= 2")
        self.dimension = dimension
        self._points: list[np.ndarray] = []
        self._buffer: list[int] = []          # indices not yet in any hull
        self._interior: np.ndarray | None = None
        self._facets: dict[int, Facet] = {}
        self._ridge_map: dict[frozenset, set[int]] = {}
        self._fid = itertools.count()
        self.inserted = 0
        self.interior_points = 0

    # -- public surface ---------------------------------------------------

    @property
    def is_full_dimensional(self) -> bool:
        return self._interior is not None

    @property
    def facets(self) -> list[Facet]:
        return sorted(self._facets.values(), key=lambda f: f.fid)

    @property
    def points(self) -> np.ndarray:
        return np.asarray(self._points, dtype=np.float64)

    def vertex_indices(self) -> set[int]:
        return {i for f in self._facets.values() for i in f.indices}

    def add(self, point) -> str:
        """Insert one point.  Returns what happened: ``"buffered"``
        (hull not yet full-dimensional), ``"interior"`` (inside the
        current hull), or ``"extreme"`` (the hull grew)."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.dimension,):
            raise HullSetupError(f"expected a point of dimension {self.dimension}")
        if not np.isfinite(point).all():
            raise HullSetupError("point must be finite")
        idx = len(self._points)
        self._points.append(point)
        self.inserted += 1
        if self._interior is None:
            self._buffer.append(idx)
            if self._try_bootstrap():
                return "extreme"
            return "buffered"
        return self._insert(idx)

    def extend(self, points) -> list[str]:
        return [self.add(p) for p in np.asarray(points, dtype=np.float64)]

    def contains(self, q, strict: bool = False) -> bool:
        """Membership test against the current hull (requires full
        dimensionality)."""
        if self._interior is None:
            raise HullSetupError("hull is not full-dimensional yet")
        sides = [f.plane.side(q) for f in self._facets.values()]
        return all(s < 0 for s in sides) if strict else all(s <= 0 for s in sides)

    # -- internals ---------------------------------------------------------

    def _try_bootstrap(self) -> bool:
        """Once the buffer spans d dimensions, build the first simplex
        hull and flush the remaining buffered points through ``_insert``."""
        d = self.dimension
        chosen: list[int] = []
        chosen_pts: list[np.ndarray] = []
        for i in self._buffer:
            if _affinely_independent(chosen_pts, self._points[i]):
                chosen.append(i)
                chosen_pts.append(self._points[i])
                if len(chosen) == d + 1:
                    break
        if len(chosen) < d + 1:
            return False
        self._interior = np.mean(chosen_pts, axis=0)
        for leave_out in chosen:
            self._install(tuple(i for i in chosen if i != leave_out))
        rest = [i for i in self._buffer if i not in set(chosen)]
        self._buffer = []
        for i in rest:
            self._insert(i)
        return True

    def _install(self, indices: tuple[int, ...]) -> Facet:
        plane = Hyperplane.through(self.points[list(indices)], self._interior)
        f = Facet(
            fid=next(self._fid),
            indices=tuple(sorted(indices)),
            plane=plane,
            conflicts=np.zeros(0, dtype=np.int64),
        )
        self._facets[f.fid] = f
        for r in facet_ridges(f.indices):
            self._ridge_map.setdefault(r, set()).add(f.fid)
        return f

    def _uninstall(self, f: Facet) -> None:
        f.alive = False
        del self._facets[f.fid]
        for r in facet_ridges(f.indices):
            s = self._ridge_map.get(r)
            if s is not None:
                s.discard(f.fid)
                if not s:
                    del self._ridge_map[r]

    def _insert(self, idx: int) -> str:
        q = self._points[idx]
        visible = {
            fid: f for fid, f in self._facets.items() if f.plane.is_visible(q)
        }
        if not visible:
            self.interior_points += 1
            return "interior"
        new_indices: list[tuple[int, ...]] = []
        for fid, t1 in visible.items():
            for r in facet_ridges(t1.indices):
                others = self._ridge_map[r] - {fid}
                if not others:
                    continue
                (other_id,) = others
                if other_id in visible:
                    continue
                new_indices.append(tuple(r | {idx}))
        for t1 in list(visible.values()):
            self._uninstall(t1)
        for indices in new_indices:
            self._install(indices)
        return "extreme"
