"""Certified hull outputs: emit a :class:`HullCertificate` from any run
and verify it with an exact checker that shares no code with
construction.

The construction pipeline (``geometry.hyperplane`` + ``hull.parallel``)
is large and concurrent; trusting its own ``validate_hull`` means
trusting the same predicate kernel that built the hull.  A certificate
is a small, serializable claim --

* the facet list (as insertion-rank tuples) plus the insertion order
  (mapping ranks back to the caller's indices),
* per facet: the orientation sign that means "visible" and an extreme
  *witness* vertex lying on the facet's supporting hyperplane,
* the ridge pairing (which two facets share each ridge),
* the interior reference, expressed as the uniform affine combination
  of ranks ``0..d`` so it can be reproduced exactly,

-- checked here by an independent verifier:

* a *different* float filter (batched LU determinants with a crude
  norm-product bound, vs construction's cofactor normals with a
  Hadamard envelope);
* a *different* exact determinant (recursive Laplace expansion over
  :class:`fractions.Fraction`, vs construction's fraction-free Bareiss);
* a *different* Simulation-of-Simplicity sign (brute-force permutation
  expansion of the homogeneous perturbed matrix, vs construction's
  sparse-polynomial cofactor recursion).

The two implementations agree only if both are right, which is the point.
``robust_hull`` certifies after every rung of its escalation ladder, and
``repro certify`` exposes the same check (plus deliberate corruption
modes for testing the checker) on the command line.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence

import numpy as np

__all__ = [
    "CertificateError",
    "HullCertificate",
    "make_certificate",
    "verify_certificate",
    "corrupt_certificate",
    "CORRUPTION_MODES",
]

SCHEMA = "repro-hull-certificate/1"

_EPS = float(np.finfo(np.float64).eps)
_TINY = float(np.finfo(np.float64).tiny)


class CertificateError(AssertionError):
    """The certificate does not describe a convex hull of the points."""


@dataclass
class HullCertificate:
    """A self-contained, independently checkable description of a hull.

    All point references are insertion *ranks*; ``order[rank]`` maps
    back to the caller's original index.  ``facets`` are sorted tuples
    of ranks in a canonical (sorted) order.  ``vis_signs[k]`` is the
    exact orientation sign (of the determinant ``det([f_1 - f_0; ...;
    q - f_0])``) that means "q is visible from facet k"; ``witnesses[k]``
    is a vertex rank of facet k, on the facet's supporting hyperplane by
    construction of the hull -- the extreme point exhibiting that the
    plane touches the hull.  ``ridges`` lists every ridge with the pair
    of facet positions sharing it.  ``sos`` marks a canonical hull of
    the symbolically perturbed cloud (ties broken by rank), in which
    case the checker resolves zero signs the same way.
    """

    n: int
    d: int
    mode: str
    sos: bool
    order: list[int]
    facets: list[tuple[int, ...]]
    vis_signs: list[int]
    witnesses: list[int]
    interior_ranks: tuple[int, ...]
    ridges: list[tuple[tuple[int, ...], tuple[int, int]]] = field(repr=False)
    schema: str = SCHEMA

    def facet_sets_global(self) -> set[frozenset]:
        """Facet point-sets over the caller's original indices."""
        return {frozenset(self.order[i] for i in f) for f in self.facets}

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "n": self.n,
            "d": self.d,
            "mode": self.mode,
            "sos": self.sos,
            "order": list(map(int, self.order)),
            "facets": [list(map(int, f)) for f in self.facets],
            "vis_signs": list(map(int, self.vis_signs)),
            "witnesses": list(map(int, self.witnesses)),
            "interior_ranks": list(map(int, self.interior_ranks)),
            "ridges": [
                [list(map(int, r)), list(map(int, pair))] for r, pair in self.ridges
            ],
        }

    @staticmethod
    def from_dict(data: dict) -> "HullCertificate":
        if data.get("schema") != SCHEMA:
            raise CertificateError(f"unknown certificate schema {data.get('schema')!r}")
        return HullCertificate(
            n=int(data["n"]),
            d=int(data["d"]),
            mode=str(data["mode"]),
            sos=bool(data["sos"]),
            order=[int(x) for x in data["order"]],
            facets=[tuple(int(x) for x in f) for f in data["facets"]],
            vis_signs=[int(x) for x in data["vis_signs"]],
            witnesses=[int(x) for x in data["witnesses"]],
            interior_ranks=tuple(int(x) for x in data["interior_ranks"]),
            # Tolerate non-2 incidence lists here: a *corrupted* hull's
            # ridge can have 1 or 3 incident facets, and the checker
            # (not the parser) is what must reject it.
            ridges=[
                (tuple(int(x) for x in r), tuple(int(x) for x in p))
                for r, p in data["ridges"]
            ],
        )


# --------------------------------------------------------------------------
# Emission (reads the run's claims; does no checking of its own).
# --------------------------------------------------------------------------

def make_certificate(run, mode: str = "float") -> HullCertificate:
    """Extract a certificate from a finished hull run.

    ``run`` is any result object with ``points`` (rank-ordered), ``order``,
    and ``facets`` (alive :class:`~repro.geometry.simplex.Facet` list) --
    both :func:`~repro.hull.parallel.parallel_hull` and
    :func:`~repro.hull.sequential.sequential_hull` results qualify.
    """
    d = int(run.points.shape[1])
    facets = sorted(run.facets, key=lambda f: f.indices)
    ridge_map: dict[tuple[int, ...], list[int]] = {}
    vis_signs: list[int] = []
    witnesses: list[int] = []
    sos = bool(facets and facets[0].plane.sos)
    for pos, f in enumerate(facets):
        vis_signs.append(int(f.plane.vis_sign))
        witnesses.append(int(f.indices[0]))
        for i in f.indices:
            r = tuple(sorted(set(f.indices) - {i}))
            ridge_map.setdefault(r, []).append(pos)
    ridges = [
        (r, (pair[0], pair[1]) if len(pair) == 2 else tuple(pair))
        for r, pair in sorted(ridge_map.items())
    ]
    return HullCertificate(
        n=int(run.points.shape[0]),
        d=d,
        mode=mode,
        sos=sos,
        order=[int(x) for x in run.order],
        facets=[tuple(f.indices) for f in facets],
        vis_signs=vis_signs,
        witnesses=witnesses,
        interior_ranks=tuple(range(d + 1)),
        ridges=ridges,
    )


# --------------------------------------------------------------------------
# The independent verifier.  Everything below deliberately reimplements
# the predicate stack with different algorithms -- keep it free of
# imports from geometry.hyperplane / geometry.perturb / geometry.linalg.
# --------------------------------------------------------------------------

def _laplace_det(rows: list[list[Fraction]]) -> Fraction:
    """Exact determinant by recursive Laplace expansion along the first
    row (quadratic-factorial but independent of Bareiss; matrices are
    (d x d))."""
    n = len(rows)
    if n == 1:
        return rows[0][0]
    total = Fraction(0)
    for j, x in enumerate(rows[0]):
        if not x:
            continue
        minor = [[r[c] for c in range(n) if c != j] for r in rows[1:]]
        term = x * _laplace_det(minor)
        total += term if j % 2 == 0 else -term
    return total


def _orient_exact_rows(base: np.ndarray, q_exact: list[Fraction]) -> int:
    rows = []
    b0 = [Fraction(float(x)) for x in base[0]]
    for p in base[1:]:
        rows.append([Fraction(float(x)) - b for x, b in zip(p, b0)])
    rows.append([x - b for x, b in zip(q_exact, b0)])
    det = _laplace_det(rows)
    # Exact Fraction sign, not a float comparison; RPR004's heuristic
    # cannot see the type.
    return (det > 0) - (det < 0)  # repro: noqa: RPR004


def _orient_sos_bruteforce(
    base: np.ndarray, base_ranks: Sequence[int], q, q_rank: int | None,
    q_exact: list[Fraction] | None = None,
    q_combo: list[tuple[int, Fraction]] | None = None,
) -> int:
    """Simulation-of-Simplicity orientation by brute-force expansion of
    the homogeneous (d+1)x(d+1) determinant

        det [[1, p_i + (eps^(2^(i*d+j)))_j] for rows i]

    over all permutations and all perturbed/unperturbed entry choices.
    Exponential in d -- fine for the small fixed dimensions this repo
    targets, and algorithmically unrelated to geometry.perturb's sparse
    cofactor recursion.  The query row is either a ranked input point
    (``q_rank``) or, for the interior reference, an affine combination
    of ranked points: ``q_exact`` its exact coordinates and ``q_combo``
    the ``(rank, weight)`` terms whose eps-perturbations it inherits.
    """
    d = base.shape[1]
    # rows: (constant 1, [(coeff, exponent-or-0 term list)])
    entries: list[list[list[tuple[Fraction, int]]]] = []

    def point_entries(p, rank, exact=None, combo=None):
        row: list[list[tuple[Fraction, int]]] = [[(Fraction(1), 0)]]
        for j in range(d):
            coord = exact[j] if exact is not None else Fraction(float(p[j]))
            cell = [(coord, 0)] if coord else []
            if rank is not None:
                cell.append((Fraction(1), 1 << (rank * d + j)))
            if combo is not None:
                cell.extend((w, 1 << (k * d + j)) for k, w in combo)
            row.append(cell)
        return row

    for p, r in zip(base, base_ranks):
        entries.append(point_entries(p, r))
    entries.append(point_entries(q, q_rank, q_exact, q_combo))

    m = d + 1
    poly: dict[int, Fraction] = {}
    for perm in itertools.permutations(range(m)):
        inv = 0
        for a in range(m):
            for b in range(a + 1, m):
                inv += perm[a] > perm[b]
        psign = -1 if inv % 2 else 1
        # Multiply out the chosen cells (each a sum of monomials).
        terms: list[tuple[Fraction, int]] = [(Fraction(psign), 0)]
        dead = False
        for i in range(m):
            cell = entries[i][perm[i]]
            if not cell:
                dead = True
                break
            terms = [
                (c1 * c2, e1 + e2) for c1, e1 in terms for c2, e2 in cell
            ]
        if dead:
            continue
        for c, e in terms:
            s = poly.get(e, Fraction(0)) + c
            if s:
                poly[e] = s
            else:
                poly.pop(e, None)
    if not poly:
        return 0
    lead = poly[min(poly)]
    return 1 if lead > 0 else -1


def _batched_orient_filter(base: np.ndarray, pts: np.ndarray) -> np.ndarray:
    """Float filter over all query points at once: signs in {-1, 0, +1},
    with 0 meaning "uncertain, decide exactly".  The bound is a crude
    norm-product estimate -- deliberately different from (and looser
    than) construction's Hadamard envelope."""
    d = base.shape[1]
    edges = base[1:] - base[0]                       # (d-1, d)
    qrows = pts - base[0]                            # (n, d)
    mats = np.broadcast_to(edges, (pts.shape[0], d - 1, d))
    full = np.concatenate([mats, qrows[:, None, :]], axis=1)   # (n, d, d)
    dets = np.linalg.det(full)
    scale = max(1.0, float(np.abs(edges).max(initial=0.0)))
    qscale = np.maximum(1.0, np.abs(qrows).max(axis=1))
    bound = (
        math.factorial(d) * d * d * _EPS * (scale ** (d - 1)) * qscale
        + d**3 * (_TINY * scale ** (d - 1) * qscale)
    )
    out = np.zeros(pts.shape[0], dtype=np.int8)
    out[dets > bound] = 1
    out[dets < -bound] = -1
    return out


def _fail(msg: str) -> None:
    raise CertificateError(msg)


def verify_certificate(cert: HullCertificate, points: np.ndarray) -> None:
    """Check that ``cert`` describes a convex hull of ``points`` (given
    in the caller's original index order).  Raises
    :class:`CertificateError` on the first violated claim.

    For an SoS certificate the statement verified is: the facet list is
    the canonical simplicial hull of the symbolically perturbed cloud
    (no perturbed point strictly outside any facet, ridges a closed
    manifold, orientations consistent with the interior reference).
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape != (cert.n, cert.d):
        _fail(f"points shape {points.shape} != certificate ({cert.n}, {cert.d})")
    n, d = cert.n, cert.d
    if sorted(cert.order) != list(range(n)):
        _fail("order is not a permutation of range(n)")
    pts = points[cert.order]

    if not cert.facets:
        _fail("certificate lists no facets")
    if not (len(cert.facets) == len(cert.vis_signs) == len(cert.witnesses)):
        _fail("facet/vis_sign/witness lists disagree in length")
    seen_facets = set()
    for pos, f in enumerate(cert.facets):
        if len(f) != d or len(set(f)) != d:
            _fail(f"facet {f} does not have d={d} distinct vertices")
        if not all(0 <= i < n for i in f):
            _fail(f"facet {f} references an out-of-range rank")
        if tuple(sorted(f)) != tuple(f):
            _fail(f"facet {f} is not in canonical sorted order")
        if f in seen_facets:
            _fail(f"facet {f} listed twice")
        seen_facets.add(f)
        if cert.witnesses[pos] not in f:
            _fail(f"witness {cert.witnesses[pos]} is not a vertex of facet {f}")
        if cert.vis_signs[pos] not in (-1, 1):
            _fail(f"facet {f} has invalid orientation sign {cert.vis_signs[pos]}")

    # Ridge pairing: recompute incidence from the facet list and match
    # the certificate's claim exactly.
    incidence: dict[tuple[int, ...], list[int]] = {}
    for pos, f in enumerate(cert.facets):
        for i in f:
            r = tuple(sorted(set(f) - {i}))
            incidence.setdefault(r, []).append(pos)
    bad = {r: p for r, p in incidence.items() if len(p) != 2}
    if bad:
        _fail(f"non-manifold ridges (ridge -> facet positions): {bad}")
    claimed = {r: tuple(sorted(pair)) for r, pair in cert.ridges}
    actual = {r: tuple(sorted(p)) for r, p in incidence.items()}
    if claimed != actual:
        _fail("ridge pairing claim does not match the facet list")

    # Combinatorial counts for simplicial hulls (Euler-type identities).
    v = len({i for f in cert.facets for i in f})
    fcount = len(cert.facets)
    if d == 2 and fcount != v:
        _fail(f"2D hull needs #edges == #vertices; got {fcount} != {v}")
    if d == 3 and fcount != 2 * v - 4:
        _fail(f"simplicial 3D hull needs F = 2V - 4; got F={fcount}, V={v}")

    # Interior reference: exact uniform combination of the claimed ranks.
    if cert.interior_ranks != tuple(range(d + 1)):
        _fail(f"unsupported interior combination {cert.interior_ranks}")
    w = Fraction(1, d + 1)
    interior_exact = [
        sum(w * Fraction(float(pts[i][j])) for i in cert.interior_ranks)
        for j in range(d)
    ]
    interior_float = np.array([float(x) for x in interior_exact])

    ranks_all = np.arange(n)
    for pos, f in enumerate(cert.facets):
        base = pts[list(f)]
        vis = cert.vis_signs[pos]

        # Orientation claim: the interior reference must be strictly on
        # the non-visible side.
        s_ref = _orient_exact_rows(base, interior_exact)
        if s_ref == 0:
            if not cert.sos:
                _fail(f"facet {f} is degenerate (interior on its plane)")
            s_ref = _orient_sos_bruteforce(
                base, f, interior_float, None, q_exact=interior_exact,
                q_combo=[(k, w) for k in cert.interior_ranks],
            )
            if s_ref == 0:
                _fail(f"facet {f}: SoS could not orient the interior reference")
        if s_ref == vis:
            _fail(f"facet {f} is oriented inside-out (interior on visible side)")

        # Containment: no point may be strictly visible.  Batched float
        # filter first, exact (or SoS) recheck for the uncertain ones.
        signs = _batched_orient_filter(base, pts)
        member = np.isin(ranks_all, list(f))
        violating = (signs == vis) & ~member
        if violating.any():
            bad_rank = int(ranks_all[violating][0])
            _fail(f"point rank {bad_rank} is strictly outside facet {f}")
        for i in ranks_all[signs == 0]:
            i = int(i)
            if i in f:
                continue
            q_exact = [Fraction(float(x)) for x in pts[i]]
            s = _orient_exact_rows(base, q_exact)
            if s == 0 and cert.sos:
                s = _orient_sos_bruteforce(base, f, pts[i], i)
            if s == vis:
                _fail(f"point rank {i} is strictly outside facet {f}")


# --------------------------------------------------------------------------
# Deliberate corruption, for testing the checker (and `repro certify
# --corrupt`).  Every mode must make verify_certificate raise.
# --------------------------------------------------------------------------

CORRUPTION_MODES = ("drop-facet", "flip-orientation", "duplicate-ridge", "tamper-vertex")


def corrupt_certificate(
    cert: HullCertificate, mode: str, seed: int = 0
) -> HullCertificate:
    """Return a deliberately broken copy of ``cert``.

    Modes: ``drop-facet`` removes one facet (opens the manifold);
    ``flip-orientation`` negates one facet's visible sign (claims the
    hull lies outside it); ``duplicate-ridge`` duplicates a facet under
    a fresh vertex label (a ridge gains a third incident facet);
    ``tamper-vertex`` swaps a hull vertex for a non-vertex rank (breaks
    containment or the ridge structure).  Deterministic in ``seed``.
    """
    rng = np.random.default_rng(seed)
    data = cert.to_dict()
    k = int(rng.integers(len(data["facets"])))
    if mode == "drop-facet":
        for key in ("facets", "vis_signs", "witnesses"):
            data[key].pop(k)
        data["ridges"] = _recompute_ridges(data["facets"])
    elif mode == "flip-orientation":
        data["vis_signs"][k] = -data["vis_signs"][k]
    elif mode == "duplicate-ridge":
        data["facets"].append(list(data["facets"][k]))
        data["vis_signs"].append(data["vis_signs"][k])
        data["witnesses"].append(data["witnesses"][k])
        data["ridges"] = _recompute_ridges(data["facets"])
    elif mode == "tamper-vertex":
        used = {i for f in data["facets"] for i in f}
        f = list(data["facets"][k])
        candidates = [i for i in range(cert.n) if i not in f]
        # Prefer a rank that is not a hull vertex at all, so the broken
        # claim is geometric (containment) and not merely structural.
        replacement = next((i for i in candidates if i not in used), candidates[0])
        f[int(rng.integers(len(f)))] = replacement
        data["facets"][k] = sorted(f)
        data["witnesses"][k] = data["facets"][k][0]
        data["ridges"] = _recompute_ridges(data["facets"])
    else:
        raise ValueError(f"unknown corruption mode {mode!r}; pick from {CORRUPTION_MODES}")
    return HullCertificate.from_dict(data)


def _recompute_ridges(facets: list[list[int]]) -> list:
    incidence: dict[tuple[int, ...], list[int]] = {}
    for pos, f in enumerate(facets):
        for i in f:
            r = tuple(sorted(set(f) - {i}))
            incidence.setdefault(r, []).append(pos)
    return [[list(r), list(p)] for r, p in sorted(incidence.items())]
