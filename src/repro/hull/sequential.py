"""Algorithm 2: the sequential randomized incremental convex hull.

The classic Clarkson--Shor conflict-graph formulation: points are added
in a (random) insertion order; each insertion deletes the facets its
point is visible from and stitches a new facet onto every horizon ridge.
Expected work is ``O(n^{floor(d/2)} + n log n)`` for points in general
position.

This implementation is fully instrumented: it records the multiset of
facets ever created, the per-step conflict structure, and the visibility
-test count -- the quantities Theorems 3.1 and 5.4 are stated in, and the
reference the parallel algorithm (Algorithm 3) is checked against
facet-for-facet.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.noisy import NoisyKernel
from ..geometry.simplex import Facet, Ridge, facet_ridges
from .common import (
    Counters,
    FacetFactory,
    initial_simplex_ranks,
    prepare_points,
    promote_initial,
)

__all__ = ["SequentialHullResult", "sequential_hull"]


@dataclass
class SequentialHullResult:
    """Outcome of a sequential incremental hull run.

    ``facets`` are the alive hull facets; indices inside facets are
    *ranks* (insertion positions); ``order`` maps ranks back to the
    caller's point indices.  ``created`` is every facet ever created, in
    creation order, for cross-checking against the parallel algorithm.
    """

    points: np.ndarray          # points in insertion order
    order: np.ndarray           # order[rank] -> original index
    facets: list[Facet]
    created: list[Facet]
    creation_step: dict[int, int]   # facet id -> insertion step that made it
    counters: Counters
    interior: np.ndarray

    @property
    def dimension(self) -> int:
        return int(self.points.shape[1])

    def vertex_ranks(self) -> set[int]:
        return {i for f in self.facets for i in f.indices}

    def vertex_indices(self) -> set[int]:
        """Hull vertices as original (caller-side) point indices."""
        return {int(self.order[i]) for i in self.vertex_ranks()}

    def facet_keys(self) -> set:
        """Geometric identities of the alive facets (order-independent)."""
        return {f.key() for f in self.facets}

    def created_keys(self) -> set:
        return {f.key() for f in self.created}


def _soa_sequential_run(
    points: np.ndarray,
    order: np.ndarray | None,
    seed: int | None,
    kernel: str | NoisyKernel,
) -> SequentialHullResult:
    """Run the conflict-list SoA engine and adapt it into a
    :class:`SequentialHullResult` (determinism makes the created-facet
    multiset and conflict sets identical to Algorithm 2's; a facet's
    creation step is the insertion rank of its conflict pivot)."""
    from .soa import SoAHullEngine  # local: soa imports this module

    eng = SoAHullEngine(points, order=order, seed=seed, kernel=kernel)
    while eng.step_round():
        pass
    run = eng.finish()
    created = [eng._facet_of(fid) for fid in range(eng.store.size)]
    d = run.dimension
    creation_step = {
        fid: (d if p < 0 else int(p))
        for fid, p in enumerate(run.pivot_points)
    }
    return SequentialHullResult(
        points=run.points,
        order=run.order,
        facets=[f for f in created if f.alive],
        created=created,
        creation_step=creation_step,
        counters=run.counters,
        interior=run.interior,
    )


def sequential_hull(
    points: np.ndarray,
    order: np.ndarray | None = None,
    seed: int | None = None,
    kernel: str | NoisyKernel = "scalar",
    engine: str = "objects",
) -> SequentialHullResult:
    """Run Algorithm 2 on ``points``.

    Parameters
    ----------
    points:
        ``(n, d)`` array, general position assumed (degenerate ties are
        resolved exactly; exactly-degenerate *hull* structure raises).
    order:
        Explicit insertion order (a permutation of ``range(n)``); random
        when omitted, drawn from ``seed``.
    kernel:
        Visibility engine: ``"scalar"`` (the per-facet oracle) or
        ``"batch"`` (every insertion step's new facets share one
        einsum sweep; see :mod:`repro.geometry.kernels`).  The two
        engines produce identical facets, conflicts, and counters.  A
        :class:`~repro.geometry.noisy.NoisyKernel` perturbs its base
        engine's visibility answers at a seeded flip rate (see
        :mod:`repro.geometry.noisy`).
    engine:
        ``"objects"`` (this module's per-insertion driver, the scalar
        oracle of the differential suites) or ``"soa"`` (the
        round-vectorized conflict-list engine of
        :mod:`repro.hull.soa`, adapted back into a
        :class:`SequentialHullResult`).  Note the SoA adaptation keeps
        the *intrinsic* quantities identical (created facets, conflict
        sets, ``visibility_tests``/``facets_created``); the
        order-dependent ridge counters it also fills
        (``ridges_processed``, ``flips``, ...) have no Algorithm 2
        counterpart.
    """
    if engine == "soa":
        return _soa_sequential_run(points, order, seed, kernel)
    if engine != "objects":
        raise ValueError(f"unknown engine {engine!r}; use 'objects' or 'soa'")
    pts, order = prepare_points(points, order, seed)
    n, d = pts.shape
    init = initial_simplex_ranks(pts)
    pts, order = promote_initial(pts, order, init)

    counters = Counters()
    interior = pts[: d + 1].mean(axis=0)
    factory = FacetFactory(pts, interior, counters, kernel=kernel)

    facets: dict[int, Facet] = {}
    # ridge -> set of alive facet ids incident on it (always size 2 once
    # the hull is complete)
    ridge_map: dict[Ridge, set[int]] = {}
    # C^{-1}: rank -> set of alive facet ids whose conflict set holds it
    inverse: dict[int, set[int]] = {}
    created: list[Facet] = []
    creation_step: dict[int, int] = {}

    all_later = np.arange(d + 1, n, dtype=np.int64)

    def install(f: Facet, step: int) -> None:
        facets[f.fid] = f
        created.append(f)
        creation_step[f.fid] = step
        for r in facet_ridges(f.indices):
            ridge_map.setdefault(r, set()).add(f.fid)
        for v in f.conflicts:
            inverse.setdefault(int(v), set()).add(f.fid)

    def uninstall(f: Facet) -> None:
        f.alive = False
        del facets[f.fid]
        for r in facet_ridges(f.indices):
            s = ridge_map.get(r)
            if s is not None:
                s.discard(f.fid)
                if not s:
                    del ridge_map[r]
        for v in f.conflicts:
            s = inverse.get(int(v))
            if s is not None:
                s.discard(f.fid)
                if not s:
                    del inverse[int(v)]

    # Bootstrap simplex: every d-subset of the first d+1 points is a
    # facet.  One make_batch call: with kernel="batch" all d+1 conflict
    # sets come out of a single einsum sweep.
    first = list(range(d + 1))
    boot = factory.make_batch([
        (tuple(i for i in first if i != leave_out), all_later)
        for leave_out in first
    ])
    for f in boot:
        install(f, step=d)

    # Incremental insertion.
    for v in range(d + 1, n):
        visible_ids = inverse.get(v)
        if not visible_ids:
            continue  # v is inside the current hull
        visible = {fid: facets[fid] for fid in visible_ids}
        # Horizon: ridges with exactly one incident facet visible from v.
        # Specs are collected first so the whole insertion step is one
        # batched sweep under kernel="batch" (the facet x candidate
        # block of Theorem 5.4's per-step work).
        specs: list[tuple[tuple[int, ...], np.ndarray]] = []
        for fid, t1 in visible.items():
            for r in facet_ridges(t1.indices):
                others = ridge_map[r] - {fid}
                if not others:
                    continue
                (other_id,) = others
                if other_id in visible:
                    continue  # interior ridge of the visible region
                t2 = facets[other_id]
                candidates = FacetFactory.merge_candidates(
                    t1.conflicts, t2.conflicts, above=v
                )
                specs.append((tuple(r | {v}), candidates))
        new_facets: list[Facet] = factory.make_batch(specs) if specs else []
        for t1 in visible.values():
            uninstall(t1)
        for t in new_facets:
            install(t, step=v)

    return SequentialHullResult(
        points=pts,
        order=order,
        facets=sorted(facets.values(), key=lambda f: f.fid),
        created=created,
        creation_step=creation_step,
        counters=counters,
        interior=interior,
    )
