"""The point-parallel baseline: bulk-synchronous insertion of
"independent" points.

The paper's introduction describes how practical parallel hull codes
[27, 34, 38, 40, 42, 47, 56, 59] exploit the incremental algorithm:
*"if two points are visible from disjoint sets of facets, they can be
added simultaneously"* -- with no non-trivial bound on the number of
rounds this needs.  This module implements that scheme as an honest
baseline so the benefit of Algorithm 3's facet-level asynchrony can be
measured (experiment E15 in EXPERIMENTS.md).

Independence here is the safe closed-neighbourhood condition: a point
``p`` can join the current round if no facet of its visible region
*or adjacent to it* has been claimed by an earlier-rank point of the
round.  (Plain visible-set disjointness is not sufficient: two visible
regions meeting at a ridge would both rebuild that ridge.)  Points are
considered greedily in insertion-rank order, matching how the
randomized analyses prioritise earlier points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry.noisy import NoisyKernel
from ..geometry.simplex import Facet, facet_ridges
from .common import (
    Counters,
    FacetFactory,
    initial_simplex_ranks,
    prepare_points,
    promote_initial,
)

__all__ = ["PointParallelResult", "point_parallel_hull"]


@dataclass
class PointParallelResult:
    points: np.ndarray
    order: np.ndarray
    facets: list[Facet]
    counters: Counters
    rounds: int
    round_sizes: list[int] = field(default_factory=list)   # points inserted per round
    deferred: list[int] = field(default_factory=list)      # conflicts-deferred per round
    interior: np.ndarray | None = None

    def vertex_indices(self) -> set[int]:
        return {int(self.order[i]) for f in self.facets for i in f.indices}

    def facet_keys(self) -> set:
        return {f.key() for f in self.facets}


def point_parallel_hull(
    points: np.ndarray,
    order: np.ndarray | None = None,
    seed: int | None = None,
    kernel: str | NoisyKernel = "scalar",
) -> PointParallelResult:
    """Bulk-synchronous point-parallel incremental hull.

    Per round: every pending point locates its visible facets; a greedy
    maximal independent set (by insertion rank, closed-neighbourhood
    disjointness) is inserted simultaneously; the rest wait.  Interior
    points retire immediately.  The number of rounds is the quantity
    the paper says had "no strong theoretical bounds" -- compare it with
    Algorithm 3's O(log n) dependence depth.
    """
    pts, order = prepare_points(points, order, seed)
    n, d = pts.shape
    init = initial_simplex_ranks(pts)
    pts, order = promote_initial(pts, order, init)

    counters = Counters()
    interior = pts[: d + 1].mean(axis=0)
    factory = FacetFactory(pts, interior, counters, kernel=kernel)

    facets: dict[int, Facet] = {}
    ridge_map: dict[frozenset, set[int]] = {}
    inverse: dict[int, set[int]] = {}

    def install(f: Facet) -> None:
        facets[f.fid] = f
        for r in facet_ridges(f.indices):
            ridge_map.setdefault(r, set()).add(f.fid)
        for v in f.conflicts:
            inverse.setdefault(int(v), set()).add(f.fid)

    def uninstall(f: Facet) -> None:
        f.alive = False
        del facets[f.fid]
        for r in facet_ridges(f.indices):
            s = ridge_map.get(r)
            if s is not None:
                s.discard(f.fid)
                if not s:
                    del ridge_map[r]
        for v in f.conflicts:
            s = inverse.get(int(v))
            if s is not None:
                s.discard(f.fid)
                if not s:
                    del inverse[int(v)]

    all_later = np.arange(d + 1, n, dtype=np.int64)
    first = list(range(d + 1))
    for f in factory.make_batch([
        (tuple(i for i in first if i != leave_out), all_later)
        for leave_out in first
    ]):
        install(f)

    def insert_point(v: int) -> None:
        visible_ids = inverse.get(v)
        if not visible_ids:
            return
        visible = {fid: facets[fid] for fid in visible_ids}
        specs: list[tuple[tuple[int, ...], np.ndarray]] = []
        for fid, t1 in visible.items():
            for r in facet_ridges(t1.indices):
                others = ridge_map[r] - {fid}
                if not others:
                    continue
                (other_id,) = others
                if other_id in visible:
                    continue
                t2 = facets[other_id]
                # Unlike the rank-ordered algorithms, a *lower*-rank
                # point can still be pending here (it may have been
                # deferred by an earlier round), so candidates are only
                # purged of the inserted point itself.
                candidates = np.setdiff1d(
                    np.union1d(t1.conflicts, t2.conflicts),
                    np.array([v], dtype=np.int64),
                )
                specs.append((tuple(r | {v}), candidates))
        new_facets: list[Facet] = factory.make_batch(specs) if specs else []
        for t1 in visible.values():
            uninstall(t1)
        for t in new_facets:
            install(t)

    pending = list(range(d + 1, n))
    rounds = 0
    round_sizes: list[int] = []
    deferred: list[int] = []
    while pending:
        rounds += 1
        claimed: set[int] = set()
        chosen: list[int] = []
        waiting: list[int] = []
        still_pending: list[int] = []
        for v in pending:  # ascending rank = priority
            vis = inverse.get(v)
            if not vis:
                continue  # interior (now or already): retires silently
            # Closed neighbourhood of the visible region.
            neighbourhood = set(vis)
            for fid in vis:
                for r in facet_ridges(facets[fid].indices):
                    neighbourhood |= ridge_map[r]
            if neighbourhood & claimed:
                waiting.append(v)
                still_pending.append(v)
                continue
            claimed |= neighbourhood
            chosen.append(v)
        for v in chosen:
            insert_point(v)
        round_sizes.append(len(chosen))
        deferred.append(len(waiting))
        if not chosen and still_pending:
            raise RuntimeError("no progress in point-parallel round")
        pending = still_pending

    return PointParallelResult(
        points=pts,
        order=order,
        facets=sorted(facets.values(), key=lambda f: f.fid),
        counters=counters,
        rounds=rounds,
        round_sizes=round_sizes,
        deferred=deferred,
        interior=interior,
    )
