"""Joggled hulls: deterministic perturbation for degenerate inputs.

The paper's main algorithms assume general position (Section 5); its
Section 6 handles 3D degeneracy with the corner configuration space
(see :mod:`repro.configspace.spaces.corners3d`).  For users who just
need *a* hull of a degenerate cloud in any dimension, this wrapper
implements the standard pragmatic alternative (Qhull's ``QJ``):
perturb every coordinate by a tiny seeded amount, retry with a larger
amplitude if the input is still not full-dimensional, and validate that
the joggled hull contains the *original* points within the perturbation
tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .common import HullSetupError
from .parallel import ParallelHullRun, parallel_hull
from .validate import HullValidationError

__all__ = ["JoggledHull", "joggled_hull"]


@dataclass
class JoggledHull:
    """A hull of joggled points, with provenance.

    ``run`` is over the perturbed coordinates; ``amplitude`` is the
    absolute perturbation bound actually used, which also bounds how far
    any original point can lie outside the reported hull.
    ``attempt_log`` records every amplitude tried and how it went, e.g.
    ``[(1e-9, "HullValidationError"), (1e-7, "ok")]``.
    """

    original: np.ndarray
    run: ParallelHullRun
    amplitude: float
    attempts: int
    attempt_log: list[tuple[float, str]] = field(default_factory=list)

    def vertex_indices(self) -> set[int]:
        return self.run.vertex_indices()


def _check_containment(run: ParallelHullRun, points: np.ndarray, slack: float) -> None:
    """Require every original point to be inside the joggled hull up to
    ``slack`` (normal-normalized margin).  Raises
    :class:`HullValidationError` otherwise.  Module-level so tests can
    stub it to exercise the amplitude-escalation path."""
    for f in run.facets:
        margins = f.plane.margins(points)
        worst = float(margins.max(initial=0.0))
        norm = float(np.linalg.norm(f.plane.normal)) or 1.0
        if worst / norm > slack:
            raise HullValidationError(
                f"original point protrudes {worst / norm:.3g} past the "
                f"joggled hull (allowed {slack:.3g})"
            )


def joggled_hull(
    points: np.ndarray,
    seed: int = 0,
    rel_amplitude: float = 1e-9,
    max_attempts: int = 5,
    order: np.ndarray | None = None,
) -> JoggledHull:
    """Hull of ``points`` after deterministic joggling.

    The amplitude starts at ``rel_amplitude * scale`` (scale = max
    coordinate magnitude) and grows 100x per retry when the perturbed
    cloud is still not full-dimensional *or* some original point ends up
    further outside the joggled hull than ``4 d * amplitude`` allows (a
    too-small amplitude can leave the cloud effectively degenerate).
    Raises :class:`HullSetupError` when the attempt budget runs out on a
    setup failure, :class:`HullValidationError` when it runs out on a
    containment failure.
    """
    points = np.asarray(points, dtype=np.float64)
    n, d = points.shape
    scale = float(np.abs(points).max()) or 1.0
    amplitude = rel_amplitude * scale
    last_error: Exception | None = None
    attempt_log: list[tuple[float, str]] = []
    for attempt in range(1, max_attempts + 1):
        rng = np.random.default_rng(seed + attempt)
        jitter = rng.uniform(-amplitude, amplitude, size=points.shape)
        try:
            run = parallel_hull(points + jitter, seed=seed, order=order)
            _check_containment(run, points, slack=4.0 * d * amplitude)
        except (HullSetupError, HullValidationError) as exc:
            last_error = exc
            attempt_log.append((amplitude, type(exc).__name__))
            amplitude *= 100.0
            continue
        attempt_log.append((amplitude, "ok"))
        return JoggledHull(
            original=points, run=run, amplitude=amplitude,
            attempts=attempt, attempt_log=attempt_log,
        )
    if isinstance(last_error, HullValidationError):
        raise HullValidationError(
            f"joggled hull still fails containment after {max_attempts} "
            f"attempts (last error: {last_error})"
        )
    raise HullSetupError(
        f"input not full-dimensional even after {max_attempts} joggle "
        f"attempts (last error: {last_error})"
    )
