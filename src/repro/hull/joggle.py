"""Joggled hulls: deterministic perturbation for degenerate inputs.

The paper's main algorithms assume general position (Section 5); its
Section 6 handles 3D degeneracy with the corner configuration space
(see :mod:`repro.configspace.spaces.corners3d`).  For users who just
need *a* hull of a degenerate cloud in any dimension, this wrapper
implements the standard pragmatic alternative (Qhull's ``QJ``):
perturb every coordinate by a tiny seeded amount, retry with a larger
amplitude if the input is still not full-dimensional, and validate that
the joggled hull contains the *original* points within the perturbation
tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .common import HullSetupError
from .parallel import ParallelHullRun, parallel_hull
from .validate import HullValidationError

__all__ = ["JoggledHull", "joggled_hull"]


@dataclass
class JoggledHull:
    """A hull of joggled points, with provenance.

    ``run`` is over the perturbed coordinates; ``amplitude`` is the
    absolute perturbation bound actually used, which also bounds how far
    any original point can lie outside the reported hull.
    """

    original: np.ndarray
    run: ParallelHullRun
    amplitude: float
    attempts: int

    def vertex_indices(self) -> set[int]:
        return self.run.vertex_indices()


def joggled_hull(
    points: np.ndarray,
    seed: int = 0,
    rel_amplitude: float = 1e-9,
    max_attempts: int = 5,
    order: np.ndarray | None = None,
) -> JoggledHull:
    """Hull of ``points`` after deterministic joggling.

    The amplitude starts at ``rel_amplitude * scale`` (scale = max
    coordinate magnitude) and grows 100x per retry when the perturbed
    cloud is still not full-dimensional.  Raises
    :class:`HullValidationError` if some original point ends up further
    outside the joggled hull than ``d * amplitude`` allows (which would
    indicate a genuine bug, not joggling slack).
    """
    points = np.asarray(points, dtype=np.float64)
    n, d = points.shape
    scale = float(np.abs(points).max()) or 1.0
    amplitude = rel_amplitude * scale
    last_error: Exception | None = None
    for attempt in range(1, max_attempts + 1):
        rng = np.random.default_rng(seed + attempt)
        jitter = rng.uniform(-amplitude, amplitude, size=points.shape)
        try:
            run = parallel_hull(points + jitter, seed=seed, order=order)
        except HullSetupError as exc:
            last_error = exc
            amplitude *= 100.0
            continue
        # Original points must be inside the joggled hull up to slack.
        slack = 4.0 * d * amplitude
        for f in run.facets:
            margins = f.plane.margins(points)
            worst = float(margins.max(initial=0.0))
            norm = float(np.linalg.norm(f.plane.normal)) or 1.0
            if worst / norm > slack:
                raise HullValidationError(
                    f"original point protrudes {worst / norm:.3g} past the "
                    f"joggled hull (allowed {slack:.3g})"
                )
        return JoggledHull(
            original=points, run=run, amplitude=amplitude, attempts=attempt
        )
    raise HullSetupError(
        f"input not full-dimensional even after {max_attempts} joggle "
        f"attempts (last error: {last_error})"
    )
