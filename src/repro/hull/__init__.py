"""The paper's convex hull algorithms: Algorithm 2 (sequential
randomized incremental) and Algorithm 3 (its parallel ridge-driven
variant), plus validation and polytope post-processing."""

from .certify import (
    CertificateError,
    HullCertificate,
    corrupt_certificate,
    make_certificate,
    verify_certificate,
)
from .common import Counters, FacetFactory, HullSetupError, prepare_points
from .parallel import Event, ParallelHullRun, RidgeTask, parallel_hull
from .online import OnlineHull
from .joggle import JoggledHull, joggled_hull
from .point_parallel import PointParallelResult, point_parallel_hull
from .polytope import Polytope
from .robust import RobustHullResult, robust_hull
from .serialize import graph_from_summary, load_summary, run_summary, save_run
from .sequential import SequentialHullResult, sequential_hull
from .soa import SoAHullEngine, SoAHullRun, soa_hull
from .validate import (
    HullValidationError,
    brute_force_extreme_ranks,
    brute_force_facet_sets,
    facet_sets_global,
    validate_hull,
)

__all__ = [
    "CertificateError",
    "HullCertificate",
    "corrupt_certificate",
    "make_certificate",
    "verify_certificate",
    "Counters",
    "FacetFactory",
    "HullSetupError",
    "prepare_points",
    "Event",
    "ParallelHullRun",
    "RidgeTask",
    "parallel_hull",
    "OnlineHull",
    "JoggledHull",
    "joggled_hull",
    "PointParallelResult",
    "point_parallel_hull",
    "Polytope",
    "RobustHullResult",
    "robust_hull",
    "graph_from_summary",
    "load_summary",
    "run_summary",
    "save_run",
    "SequentialHullResult",
    "sequential_hull",
    "SoAHullEngine",
    "SoAHullRun",
    "soa_hull",
    "HullValidationError",
    "brute_force_extreme_ranks",
    "brute_force_facet_sets",
    "facet_sets_global",
    "validate_hull",
]
