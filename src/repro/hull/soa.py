"""The conflict-list structure-of-arrays hull core (``engine="soa"``).

The per-facet drivers (:mod:`.sequential`, :mod:`.parallel`) run the
paper's algorithms over Python ``Facet`` objects: every ``ProcessRidge``
call allocates tuples, walks ridge sets, and issues its own (small)
visibility sweep.  The kernel bench shows what that costs -- raw
predicate sweeps run >20x over the scalar oracle while end-to-end hulls
sit near 1x, because the driver dominates.  This module is ROADMAP
item 1: the same round-synchronous Algorithm 3, re-expressed so that an
*entire round* is a handful of NumPy sweeps and the per-facet Python
loop disappears.

Memory layout (the parlaylib-style conflict-list representation):

* **Facet store** -- an append-only structure of arrays, one row per
  facet ever created: defining ranks ``indices (F, d)``, oriented float
  planes ``normals (F, d)`` / ``offsets (F,)`` with their error-envelope
  coefficients ``err_scale`` / ``err_base`` (exactly what
  :func:`~repro.geometry.kernels.batch_planes` computes and
  :meth:`~repro.geometry.hyperplane.Hyperplane.through` would), the
  conflict pivot ``pivot (F,)`` (``min C(t)``; ``INT64_MAX`` when
  empty), the conflict-list segment ``conf_start``/``conf_len``, the
  ``alive`` flag, and provenance columns (``support`` pair,
  ``pivot_point``, ``round_created``) for the dependence DAG.
* **Conflict pool** -- one flat, append-only ``int64`` array; facet
  ``f`` owns ``pool[conf_start[f] : conf_start[f] + conf_len[f]]``,
  ascending and unique.  Conflict sets are immutable once written
  (exactly the ``Facet.conflicts`` contract), so rounds only ever
  append.
* **Frontier / pending pool** -- ready ``ProcessRidge(t1, r, t2)``
  calls as three arrays (``t1`` fids, ``t2`` fids, sorted ridge rows
  ``(K, d-1)``), plus the half-registered ridges that Algorithm 3
  keeps in the multimap ``M``: each ridge key is registered at most
  twice over the whole run (the second registrant creates the task),
  so a per-round ``lexsort`` over (pending + new) ridge rows pairs
  adjacent equal rows and is semantically identical to
  ``DictMultimap.insert_and_set`` -- a run of three equal rows would be
  a structural bug and raises.

The round transaction (all vectorized, no per-facet Python loop):

1. gather both pivot columns, classify every ready ridge into the
   paper's four cases with boolean masks (final / bury / flip /
   create);
2. gather every creating ridge's two parent conflict segments in one
   indexed load (:func:`~repro.geometry.kernels.gather_segments`),
   filter to ranks strictly above the pivot, and dedupe by a
   ``lexsort`` -- exactly ``FacetFactory.merge_candidates`` +
   ``_clean_candidates``, but for all facets of the round at once;
3. build all new planes in one :func:`batch_planes` call, orienting
   float-certain rows against the interior point in place; ambiguous
   rows (or all rows under :func:`~repro.geometry.hyperplane.exact_mode`)
   materialize a real :class:`Hyperplane` via the scalar ladder, so
   degenerate inputs raise / SoS-perturb exactly as the oracle does;
4. decide all (facet x candidate) visibilities in one flat einsum
   sweep (:func:`~repro.geometry.kernels.visible_flat`) with the same
   envelope filter and the same per-entry exact fallback as the
   scalar path;
5. prefix-sum partition the survivors into the new facets' conflict
   segments, append to the store and pool, and pair the new ridges.

Scalar equivalence is structural, not statistical: any float-certain
sign is proven by the envelope, every ambiguous sign takes the scalar
exact ladder, and the paper's determinism theorem makes the created
facet set and all per-facet conflict sets independent of execution
order -- so facet keys, conflict sets, certificates, and the intrinsic
counters (``visibility_tests``, ``facets_created``) match the
sequential scalar oracle exactly (the differential suite under
``tests/differential/test_soa_vs_scalar.py`` pins this).  Work/span
accounting stays scalar-equivalent: each round logs one
:meth:`~repro.runtime.workspan.WorkSpanTracker.add_batched_sweep` at
the round's summed cleaned-candidate cost, so ``tracker.work`` equals
``counters.visibility_tests`` and the span reflects the
round-synchronous schedule.

``kernel="batch"`` (the default) runs the flat fast path above;
``kernel="scalar"`` or a :class:`~repro.geometry.noisy.NoisyKernel`
routes facet creation through the shared
:class:`~repro.hull.common.FacetFactory` (same fid order, same
counters), which keeps the noisy-oracle ladder semantics intact and
makes a p=0 noisy run bit-identical to the unwrapped engine.
"""

from __future__ import annotations

import copy
import itertools
import operator
from dataclasses import dataclass, field

import numpy as np

from ..analyze.shapes import observe
from ..geometry.hyperplane import Hyperplane, exact_active
from ..geometry.kernels import (
    KernelStats,
    batch_planes,
    gather_segments,
    visible_flat,
)
from ..geometry.noisy import NoisyKernel
from ..geometry.perturb import sos_active
from ..geometry.simplex import Facet
from ..runtime.executors import ExecutionStats
from ..runtime.workspan import WorkSpanTracker
from .common import (
    Counters,
    FacetFactory,
    HullSetupError,
    initial_simplex_ranks,
    prepare_points,
    promote_initial,
)

__all__ = ["SoAHullEngine", "SoAHullRun", "soa_hull"]

_INF = np.iinfo(np.int64).max

_PLANE_OF = operator.attrgetter("plane")
_NORMAL_OF = operator.attrgetter("plane.normal")
_OFFSET_OF = operator.attrgetter("plane.offset")
_ESCALE_OF = operator.attrgetter("plane.err_scale")
_EBASE_OF = operator.attrgetter("plane.err_base")
_EXACT_OF = operator.attrgetter("plane.always_exact")
_CONFLICTS_OF = operator.attrgetter("conflicts")
_INDICES_OF = operator.attrgetter("indices")


def _grown(arr: np.ndarray, cap: int) -> np.ndarray:
    """Reallocate a growable column at ``cap`` rows, keeping content."""
    out = np.zeros((cap,) + arr.shape[1:], dtype=arr.dtype)
    out[: arr.shape[0]] = arr
    return out


class _FacetStore:
    """Append-only SoA facet columns with doubling capacity."""

    __slots__ = (
        "d", "size", "indices", "normals", "offsets", "err_scale",
        "err_base", "exact", "alive", "pivot", "conf_start", "conf_len",
        "support", "pivot_point", "round_created",
    )

    def __init__(self, d: int, capacity: int = 64):
        self.d = d
        self.size = 0
        self.indices = np.zeros((capacity, d), dtype=np.int64)
        self.normals = np.zeros((capacity, d), dtype=np.float64)
        self.offsets = np.zeros(capacity, dtype=np.float64)
        self.err_scale = np.zeros(capacity, dtype=np.float64)
        self.err_base = np.zeros(capacity, dtype=np.float64)
        self.exact = np.zeros(capacity, dtype=bool)
        self.alive = np.zeros(capacity, dtype=bool)
        self.pivot = np.zeros(capacity, dtype=np.int64)
        self.conf_start = np.zeros(capacity, dtype=np.int64)
        self.conf_len = np.zeros(capacity, dtype=np.int64)
        self.support = np.zeros((capacity, 2), dtype=np.int64)
        self.pivot_point = np.zeros(capacity, dtype=np.int64)
        self.round_created = np.zeros(capacity, dtype=np.int64)

    _COLUMNS = (
        "indices", "normals", "offsets", "err_scale", "err_base", "exact",
        "alive", "pivot", "conf_start", "conf_len", "support",
        "pivot_point", "round_created",
    )

    def _ensure(self, extra: int) -> None:
        cap = self.offsets.shape[0]
        if self.size + extra <= cap:
            return
        new_cap = max(2 * cap, self.size + extra)
        self.indices = _grown(self.indices, new_cap)
        self.normals = _grown(self.normals, new_cap)
        self.offsets = _grown(self.offsets, new_cap)
        self.err_scale = _grown(self.err_scale, new_cap)
        self.err_base = _grown(self.err_base, new_cap)
        self.exact = _grown(self.exact, new_cap)
        self.alive = _grown(self.alive, new_cap)
        self.pivot = _grown(self.pivot, new_cap)
        self.conf_start = _grown(self.conf_start, new_cap)
        self.conf_len = _grown(self.conf_len, new_cap)
        self.support = _grown(self.support, new_cap)
        self.pivot_point = _grown(self.pivot_point, new_cap)
        self.round_created = _grown(self.round_created, new_cap)

    def append_block(
        self,
        indices: np.ndarray,
        normals: np.ndarray,
        offsets: np.ndarray,
        err_scale: np.ndarray,
        err_base: np.ndarray,
        exact: np.ndarray,
        pivot: np.ndarray,
        conf_start: np.ndarray,
        conf_len: np.ndarray,
        support: np.ndarray,
        pivot_point: np.ndarray,
        round_created: int,
    ) -> int:
        """Append ``K`` facet rows; returns the first new fid."""
        k = int(indices.shape[0])
        self._ensure(k)
        fid0 = self.size
        end = fid0 + k
        self.indices[fid0:end] = indices
        self.normals[fid0:end] = normals
        self.offsets[fid0:end] = offsets
        self.err_scale[fid0:end] = err_scale
        self.err_base[fid0:end] = err_base
        self.exact[fid0:end] = exact
        self.alive[fid0:end] = True
        self.pivot[fid0:end] = pivot
        self.conf_start[fid0:end] = conf_start
        self.conf_len[fid0:end] = conf_len
        self.support[fid0:end] = support
        self.pivot_point[fid0:end] = pivot_point
        self.round_created[fid0:end] = round_created
        self.size = end
        return fid0

    def snapshot(self) -> dict:
        snap = {"size": self.size}
        snap.update(
            zip(self._COLUMNS,
                map(np.copy, map(self._used, self._COLUMNS)))
        )
        return snap

    def _used(self, name: str) -> np.ndarray:
        return getattr(self, name)[: self.size]

    def restore(self, snap: dict) -> None:
        self.size = 0
        self._ensure(int(snap["size"]))
        self.size = int(snap["size"])
        self.indices[: self.size] = snap["indices"]
        self.normals[: self.size] = snap["normals"]
        self.offsets[: self.size] = snap["offsets"]
        self.err_scale[: self.size] = snap["err_scale"]
        self.err_base[: self.size] = snap["err_base"]
        self.exact[: self.size] = snap["exact"]
        self.alive[: self.size] = snap["alive"]
        self.pivot[: self.size] = snap["pivot"]
        self.conf_start[: self.size] = snap["conf_start"]
        self.conf_len[: self.size] = snap["conf_len"]
        self.support[: self.size] = snap["support"]
        self.pivot_point[: self.size] = snap["pivot_point"]
        self.round_created[: self.size] = snap["round_created"]


class _ConflictPool:
    """Flat append-only int64 pool with doubling capacity."""

    __slots__ = ("buf", "end")

    def __init__(self, capacity: int = 256):
        self.buf = np.zeros(capacity, dtype=np.int64)
        self.end = 0

    def extend(self, vals: np.ndarray) -> int:
        """Append ``vals``; returns the start offset of the block."""
        m = int(vals.shape[0])
        if self.end + m > self.buf.shape[0]:
            self.buf = _grown(self.buf, max(2 * self.buf.shape[0], self.end + m))
        start = self.end
        self.buf[start:start + m] = vals
        self.end = start + m
        return start

    def view(self) -> np.ndarray:
        return self.buf[: self.end]


@dataclass
class SoAHullRun:
    """Outcome of a conflict-list SoA hull run.

    ``facets`` are the alive hull facets, materialized as regular
    :class:`~repro.geometry.simplex.Facet` objects (same planes, same
    conflict arrays) so certification, validation, and serialization
    consume an SoA run unchanged.  The created-facet history stays in
    column form: ``created_indices``/``created_normals`` give every
    facet's geometric key, ``support``/``pivot_points``/
    ``rounds_created`` the dependence DAG.
    """

    points: np.ndarray
    order: np.ndarray
    facets: list[Facet]
    counters: Counters
    exec_stats: ExecutionStats
    tracker: WorkSpanTracker
    interior: np.ndarray
    base_size: int
    created_indices: np.ndarray     # (F, d) defining ranks of every facet
    created_normals: np.ndarray     # (F, d) oriented float normals
    created_alive: np.ndarray       # (F,) alive flags
    support: np.ndarray             # (F, 2) support fids, -1 for base facets
    pivot_points: np.ndarray        # (F,) creating pivot, -1 for base facets
    rounds_created: np.ndarray      # (F,) creation round (0 = bootstrap)
    conflict_lens: np.ndarray       # (F,) conflict-list lengths
    conflict_pool: np.ndarray       # flat pool, segments in fid order
    engine: "SoAHullEngine" = field(repr=False, default=None)

    @property
    def dimension(self) -> int:
        return int(self.points.shape[1])

    def vertex_ranks(self) -> set[int]:
        return set(map(int, np.unique(self.created_indices[self.created_alive])))

    def vertex_indices(self) -> set[int]:
        return set(map(int, self.order[sorted(self.vertex_ranks())]))

    def facet_keys(self) -> set:
        return set(map(Facet.key, self.facets))

    def _keys_of(self, rows: np.ndarray, normals: np.ndarray) -> list:
        # Vectorized Facet.key(): point set plus the sign of the first
        # nonzero normal component (0 for exactly-zero SoS normals).
        nz = normals != 0.0
        has = nz.any(axis=1)
        first = np.argmax(nz, axis=1)
        comp = normals[np.arange(rows.shape[0]), first]
        sign = np.where(comp > 0.0, first + 1, -(first + 1))
        sign = np.where(has, sign, 0)
        return list(zip(map(frozenset, rows.tolist()), map(int, sign.tolist())))

    def created_keys(self) -> set:
        return set(self._keys_of(self.created_indices, self.created_normals))

    def created_conflicts(self) -> dict:
        """Geometric key -> conflict array, for every facet ever
        created (the per-facet conflict sets the determinism theorem
        makes execution-order independent)."""
        bounds = np.cumsum(self.conflict_lens)[:-1]
        keys = self._keys_of(self.created_indices, self.created_normals)
        return dict(zip(keys, np.split(self.conflict_pool, bounds)))

    def dependence_depth(self) -> int:
        """Longest support-DAG path, computed round-group by round-group
        (supports always come from strictly earlier rounds)."""
        nf = self.support.shape[0]
        depth = np.zeros(nf, dtype=np.int64)
        rc = self.rounds_created
        last = int(rc.max(initial=0))
        bounds = np.searchsorted(rc, np.arange(last + 2))
        for r in range(1, last + 1):
            lo, hi = int(bounds[r]), int(bounds[r + 1])
            if hi <= lo:
                continue
            sup = self.support[lo:hi]
            depth[lo:hi] = 1 + np.maximum(depth[sup[:, 0]], depth[sup[:, 1]])
        return int(depth.max(initial=0))


class SoAHullEngine:
    """Round-stepped conflict-list engine (see the module docstring).

    Use :func:`soa_hull` for a plain run; the engine object itself
    exposes :meth:`step_round` / :meth:`snapshot` / :meth:`restore` for
    the chaos-checkpoint property tests and for streaming consumers.
    """

    def __init__(
        self,
        points: np.ndarray,
        order: np.ndarray | None = None,
        seed: int | None = None,
        kernel: str | NoisyKernel = "batch",
        base_size: int | None = None,
    ):
        pts, order = prepare_points(points, order, seed)
        n, d = pts.shape
        if base_size is None:
            base_size = d + 1
        if base_size < d + 1:
            raise HullSetupError(f"base_size must be >= d+1 = {d + 1}")
        init = initial_simplex_ranks(pts)
        pts, order = promote_initial(pts, order, init)
        self.pts = pts
        self.order = order
        self.n, self.d = n, d
        self.base_size = int(base_size)
        self.counters = Counters()
        self.tracker = WorkSpanTracker()
        self.stats = ExecutionStats()
        self.interior = pts[: d + 1].mean(axis=0)
        self._interior_inf = float(np.abs(self.interior).max(initial=0.0))
        self._pts_inf = np.abs(pts).max(axis=1)
        combo = tuple(range(d + 1))
        self._interior_combo = (pts[list(combo)], combo)
        self.kstats = KernelStats()

        noisy = kernel if isinstance(kernel, NoisyKernel) else None
        if noisy is None and kernel not in ("scalar", "batch"):
            raise ValueError(
                f"unknown kernel {kernel!r}; use 'scalar', 'batch', or a "
                "NoisyKernel"
            )
        # The flat fast path needs no FacetFactory at all; the scalar
        # and noisy modes delegate facet creation to the shared factory
        # (identical fid order and counters), which is what makes a p=0
        # noisy SoA run bit-identical to the unwrapped engine.
        self.factory = (
            None if (noisy is None and kernel == "batch")
            else FacetFactory(pts, self.interior, self.counters, kernel=kernel)
        )
        self.kernel = "batch" if self.factory is None else self.factory.kernel
        self.noisy = noisy
        # The <=2-registrations ridge invariant is a theorem of the
        # noise-free algorithm; a lying oracle can genuinely violate it.
        self._strict_pairs = noisy is None or noisy.p == 0.0

        self.store = _FacetStore(d)
        self.pool = _ConflictPool()
        self._exact_planes: dict[int, Hyperplane] = {}

        # Leave-one-out column template: row j = all columns except j.
        cols = np.arange(d, dtype=np.int64)
        grid = np.broadcast_to(cols, (d, d))
        self._loo = grid[grid != cols[:, None]].reshape(d, d - 1)

        # Half-registered ridges (Algorithm 3's multimap M), as sorted
        # rows + registrant fids + registration sequence numbers.
        self._pend_rows = np.zeros((0, d - 1), dtype=np.int64)
        self._pend_fids = np.zeros(0, dtype=np.int64)
        self._pend_seq = np.zeros(0, dtype=np.int64)
        self._reg_seq = 0

        self.round = 0
        self.events: list[dict] = []    # per-round decision records
        self._last_tid: int | None = None
        self._finished = False

        self._bootstrap()

    # -- plane materialization (the scalar ladder) -------------------------

    def _through_row(self, idx: tuple) -> Hyperplane:
        """Exactly ``FacetFactory._plane_for``: the scalar-constructed,
        interior-oriented plane (raises / SoS-perturbs on degenerate
        orientation references, as the oracle does)."""
        return Hyperplane.through(
            self.pts[list(idx)], self.interior,
            indices=idx, ref_combo=self._interior_combo,
        )

    def _facet_of(self, fid: int) -> Facet:
        fid = int(fid)
        idx = tuple(map(int, self.store.indices[fid]))
        plane = self._exact_planes.get(fid)
        if plane is None:
            # Float-certain row: the stored columns ARE the plane
            # Hyperplane.through would build (batch_planes is pinned
            # bit-compatible, and the interior flip was applied when the
            # row was created), so rebuild it from the columns instead
            # of re-running the cofactor expansion per facet -- on a
            # 1e5-point run that cut finish() from ~25% of engine wall
            # time to noise.  Ambiguous rows never reach here: their
            # scalar-ladder planes are persisted in _exact_planes.
            sos = sos_active()
            plane = Hyperplane(
                normal=self.store.normals[fid].copy(),
                offset=float(self.store.offsets[fid]),
                base_points=self.pts[list(idx)],
                ref_point=self.interior,
                err_scale=float(self.store.err_scale[fid]),
                err_base=float(self.store.err_base[fid]),
                always_exact=False,
                base_indices=idx if sos else None,
                sos=sos,
            )
        s = int(self.store.conf_start[fid])
        ln = int(self.store.conf_len[fid])
        return Facet(
            fid=fid, indices=idx, plane=plane,
            conflicts=self.pool.buf[s:s + ln].copy(),
            alive=bool(self.store.alive[fid]),
        )

    # -- facet-block creation ----------------------------------------------

    def _create_block(
        self,
        new_idx: np.ndarray,       # (K, d) sorted defining ranks
        vals: np.ndarray,          # flat cleaned candidate ranks
        owner: np.ndarray,         # (len(vals),) row in 0..K-1
        blocks: np.ndarray,        # (K,) candidate counts per row
        support: np.ndarray,       # (K, 2) support fids (-1 for base)
        pivot_point: np.ndarray,   # (K,) creating pivot (-1 for base)
    ) -> int:
        """Create ``K`` facets from cleaned candidate blocks: planes,
        one visibility sweep, prefix-sum partition into the pool.
        Returns the first new fid."""
        k = int(new_idx.shape[0])
        if self.factory is not None:
            surv_vals, surv_owner, cols = self._facets_via_factory(new_idx, vals, owner, blocks)
        else:
            surv_vals, surv_owner, cols = self._facets_flat(new_idx, vals, owner, blocks)
        normals, offsets, e_scale, e_base, exact_rows = cols

        lens = np.bincount(surv_owner, minlength=k)
        starts_local = np.cumsum(lens) - lens
        pool_start = self.pool.extend(surv_vals)
        pivots = np.full(k, _INF, dtype=np.int64)
        nz = lens > 0
        pivots[nz] = surv_vals[starts_local[nz]]

        fid0 = self.store.append_block(
            indices=new_idx, normals=normals, offsets=offsets,
            err_scale=e_scale, err_base=e_base, exact=exact_rows,
            pivot=pivots, conf_start=pool_start + starts_local,
            conf_len=lens, support=support, pivot_point=pivot_point,
            round_created=self.round,
        )
        if self.factory is not None and self.factory.fid_checkpoint() != self.store.size:
            raise AssertionError("factory fid allocation out of sync with SoA store")
        return fid0

    def _facets_flat(self, new_idx, vals, owner, blocks):
        """The flat fast path: batch planes + one flat einsum sweep."""
        # The filter boundary of the flat path: the orientation margin
        # below must clear the same committed envelope as
        # Hyperplane.through, with the plane bounds flowing out of the
        # batch_planes summary.  Checked by `repro fpcheck`:
        # repro: fp-bound: assume d in 2..3
        # repro: fp-bound: fact NRM <= 6*H
        # repro: fp-bound: fact OFF <= d*NRM*B
        # repro: fp-bound: guard env_ref certain
        # repro: fp-bound: envelope env_ref
        # repro: fp-bound: in self.interior ~ Q
        k = int(new_idx.shape[0])
        normals, offsets, e_scale, e_base = batch_planes(self.pts[new_idx])
        # Orient against the interior point: float-certain rows flip in
        # place (same envelope test as Hyperplane.through); ambiguous
        # rows -- or every row under exact_mode() -- materialize the
        # real scalar-ladder plane, so ValueError/SoS semantics on
        # degenerate references are byte-for-byte the oracle's.
        m_ref = normals @ self.interior - offsets
        # repro: fp-bound: claim m_ref <= 16*d*(d*d*H + NRM + 1)*(B + Q)
        env_ref = e_scale * (e_base + self._interior_inf)
        if exact_active():
            certain = np.zeros(k, dtype=bool)
        else:
            certain = np.abs(m_ref) > env_ref
        flip = certain & (m_ref > 0.0)
        normals[flip] = -normals[flip]
        offsets[flip] = -offsets[flip]
        exact_rows = ~certain
        row_planes: dict[int, Hyperplane] = {}
        ks = np.nonzero(exact_rows)[0]
        if ks.size:
            planes = list(map(self._through_row, map(tuple, new_idx[ks].tolist())))
            normals[ks] = np.stack(list(map(operator.attrgetter("normal"), planes)))
            offsets[ks] = np.fromiter(
                map(operator.attrgetter("offset"), planes), np.float64, count=ks.size
            )
            row_planes.update(zip(ks.tolist(), planes))

        def plane_for(row: int) -> Hyperplane:
            plane = row_planes.get(row)
            if plane is None:
                plane = self._through_row(tuple(map(int, new_idx[row])))
                row_planes[row] = plane
            return plane

        vis = visible_flat(
            self.pts, normals, offsets, e_scale, e_base, owner, vals,
            force_exact=exact_rows, plane_for=plane_for, stats=self.kstats,
            pts_inf=self._pts_inf,
        )
        self.counters.visibility_tests += int(vals.shape[0])
        self.counters.facets_created += k
        # Persist the scalar-ladder planes of always-exact rows so later
        # sweeps (and materialization) reuse them, keyed by fid.
        fid0 = self.store.size
        self._exact_planes.update(
            zip((fid0 + r for r in ks.tolist()),
                map(row_planes.__getitem__, ks.tolist()))
        )
        return vals[vis], owner[vis], (normals, offsets, e_scale, e_base, exact_rows)

    def _facets_via_factory(self, new_idx, vals, owner, blocks):
        """The compatibility path: delegate facet creation to the shared
        FacetFactory (scalar sweeps, batch kernel with sign cache, or
        the noisy lying oracle), then ingest the resulting columns."""
        k = int(new_idx.shape[0])
        d = self.d
        bounds = np.cumsum(blocks)[:-1]
        specs = list(zip(map(tuple, new_idx.tolist()), np.split(vals, bounds)))
        fs = self.factory.make_batch(specs)
        fid0 = self.store.size
        if fs and fs[0].fid != fid0:
            raise AssertionError("factory fid allocation out of sync with SoA store")
        if not fs:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, (
                np.zeros((0, d)), np.zeros(0), np.zeros(0), np.zeros(0),
                np.zeros(0, dtype=bool),
            )
        normals = np.stack(list(map(_NORMAL_OF, fs)))
        offsets = np.fromiter(map(_OFFSET_OF, fs), np.float64, count=k)
        e_scale = np.fromiter(map(_ESCALE_OF, fs), np.float64, count=k)
        e_base = np.fromiter(map(_EBASE_OF, fs), np.float64, count=k)
        exact_rows = np.fromiter(map(_EXACT_OF, fs), bool, count=k)
        self._exact_planes.update(
            itertools.compress(
                zip(range(fid0, fid0 + k), map(_PLANE_OF, fs)),
                exact_rows.tolist(),
            )
        )
        conf_list = list(map(_CONFLICTS_OF, fs))
        surv_vals = (np.concatenate(conf_list) if conf_list
                     else np.zeros(0, dtype=np.int64))
        surv_owner = np.repeat(
            np.arange(k, dtype=np.int64),
            np.fromiter(map(np.size, conf_list), np.int64, count=k),
        )
        return surv_vals, surv_owner, (normals, offsets, e_scale, e_base, exact_rows)

    # -- ridge pairing (the multimap M, per round) -------------------------

    def _pair_ridges(self, rows, fids, t1_first: bool):
        """Register new (ridge row, fid) pairs against the pending pool
        and pair up equal ridge keys.  Returns ``(t1, t2, ridge_rows)``
        of the matched tasks; unmatched registrations stay pending.

        Faithful to ``DictMultimap.insert_and_set``: sequence numbers
        order registrants, and equal keys pair two-by-two in arrival
        order.  Noise-free, every ridge key is registered at most twice
        over the whole run (a proven invariant of the algorithm), so a
        longer run raises; under a lying oracle (``p > 0``) the
        invariant can genuinely break, and the dict behavior -- pair
        consecutive registrants, leave a trailing single pending -- is
        what keeps the run alive for the certificate gate to judge."""
        seqs = self._reg_seq + np.arange(rows.shape[0], dtype=np.int64)
        self._reg_seq += int(rows.shape[0])
        all_rows = np.concatenate([self._pend_rows, rows], axis=0)
        all_fids = np.concatenate([self._pend_fids, fids])
        all_seqs = np.concatenate([self._pend_seq, seqs])
        m = int(all_rows.shape[0])
        if m == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, np.zeros((0, self.d - 1), dtype=np.int64)
        ordx = np.lexsort((all_seqs,) + tuple(all_rows.T[::-1]))
        sr = all_rows[ordx]
        sf = all_fids[ordx]
        ss = all_seqs[ordx]
        eq = (sr[1:] == sr[:-1]).all(axis=1)
        if eq.size > 1 and bool(np.any(eq[1:] & eq[:-1])):
            if self._strict_pairs:
                raise AssertionError(
                    "a ridge key was registered more than twice"
                )
            # Arrival-order two-by-two pairing within each equal-key run.
            new_run = np.ones(m, dtype=bool)
            new_run[1:] = ~eq
            run_id = np.cumsum(new_run) - 1
            run_start = np.nonzero(new_run)[0]
            pos = np.arange(m) - run_start[run_id]
            i = np.nonzero((pos[:-1] % 2 == 0) & eq)[0]
        else:
            i = np.nonzero(eq)[0]
        first, second = sf[i], sf[i + 1]  # seq-ordered within each pair
        singles = np.ones(m, dtype=bool)
        singles[i] = False
        singles[i + 1] = False
        self._pend_rows = sr[singles]
        self._pend_fids = sf[singles]
        self._pend_seq = ss[singles]
        if t1_first:
            return first, second, sr[i]
        return second, first, sr[i]

    # -- bootstrap ---------------------------------------------------------

    def _bootstrap(self) -> None:
        n, d = self.n, self.d
        base = self.base_size
        if base == d + 1:
            cols = np.arange(d + 1, dtype=np.int64)
            grid = np.broadcast_to(cols, (d + 1, d + 1))
            base_rows = grid[grid != cols[:, None]].reshape(d + 1, d)
        else:
            # Larger bootstrap: prefix hull built sequentially, its
            # facets re-issued with full conflict sets (parallel.py
            # parity; the prefix run's counters are discarded there too).
            from .sequential import sequential_hull
            prefix = sequential_hull(self.pts[:base], order=np.arange(base))
            base_rows = np.array(
                list(map(_INDICES_OF, prefix.facets)), dtype=np.int64
            ).reshape(-1, d)
        nb = int(base_rows.shape[0])
        later = np.arange(base, n, dtype=np.int64)
        vals = np.tile(later, nb)
        owner = np.repeat(np.arange(nb, dtype=np.int64), later.shape[0])
        blocks = np.full(nb, later.shape[0], dtype=np.int64)
        no_sup = np.full((nb, 2), -1, dtype=np.int64)
        no_piv = np.full(nb, -1, dtype=np.int64)
        fid0 = self._create_block(base_rows, vals, owner, blocks, no_sup, no_piv)
        if int(blocks.sum()):
            self._last_tid = self.tracker.add_batched_sweep(
                list(map(int, blocks))
            )
        # Seed: one ProcessRidge per ridge of the base hull.
        reg_rows = base_rows[:, self._loo].reshape(nb * d, d - 1)
        reg_fids = np.repeat(fid0 + np.arange(nb, dtype=np.int64), d)
        t1, t2, rows = self._pair_ridges(reg_rows, reg_fids, t1_first=True)
        if self._pend_rows.shape[0]:
            raise AssertionError("base hull is not closed: unpaired ridges")
        self._fr_t1, self._fr_t2, self._fr_rows = t1, t2, rows
        self.round = 1

    # -- the round transaction ---------------------------------------------

    def step_round(self) -> bool:
        """Process the whole ready frontier as one vectorized
        transaction; returns False when the run has terminated."""
        if self._finished:
            raise RuntimeError("engine already finished")
        t1, t2, rows = self._fr_t1, self._fr_t2, self._fr_rows
        k0 = int(t1.shape[0])
        if k0 == 0:
            return False
        # repro: shape: t1=(K,):int64, t2=(K,):int64, rows=(K,?):int64
        observe("repro.hull.soa.SoAHullEngine.step_round",
                t1=t1, t2=t2, rows=rows)
        self.stats.rounds += 1
        self.stats.round_sizes.append(k0)
        self.stats.tasks_executed += k0
        self.counters.ridges_processed += k0

        b1 = self.store.pivot[t1]
        b2 = self.store.pivot[t2]
        final_m = (b1 == _INF) & (b2 == _INF)
        bury_m = ~final_m & (b1 == b2)
        act_m = ~final_m & ~bury_m
        flip_m = act_m & (b2 < b1)
        self.counters.flips += int(flip_m.sum())

        # Case 2: equal pivots bury both facets (idempotent on already-
        # dead facets, exactly like the per-facet driver).
        self.store.alive[t1[bury_m]] = False
        self.store.alive[t2[bury_m]] = False
        self.counters.facets_buried += 2 * int(bury_m.sum())

        # Case 3+4: symmetry flip, then create t = r + p.
        ft1 = np.where(flip_m, t2, t1)
        ft2 = np.where(flip_m, t1, t2)
        pv = np.where(flip_m, b2, b1)
        t1c, t2c = ft1[act_m], ft2[act_m]
        pc = pv[act_m]
        rc = rows[act_m]
        k = int(t1c.shape[0])

        rec = {
            "round": self.round,
            "final_pos": np.nonzero(final_m)[0],
            "final_rows": rows[final_m],
            "bury_pos": np.nonzero(bury_m)[0],
            "bury_rows": rows[bury_m],
            "bury_pairs": np.stack([t1[bury_m], t2[bury_m]], axis=1)
            if int(bury_m.sum()) else np.zeros((0, 2), dtype=np.int64),
            "bury_piv": b1[bury_m],
            "create_pos": np.nonzero(act_m)[0],
            "create_rows": rc,
            "create_removed": t1c,
            "create_piv": pc,
            "create_fid0": self.store.size,
        }

        if k == 0:
            self.events.append(rec)
            self._fr_t1 = np.zeros(0, dtype=np.int64)
            self._fr_t2 = np.zeros(0, dtype=np.int64)
            self._fr_rows = np.zeros((0, self.d - 1), dtype=np.int64)
            self.round += 1
            return True

        new_idx = np.sort(np.concatenate([rc, pc[:, None]], axis=1), axis=1)

        # Candidate gather: both parents' conflict segments in two
        # indexed loads, filtered strictly above the pivot, cleaned of
        # defining ranks, merged and deduped by one lexsort -- exactly
        # merge_candidates + _clean_candidates for the whole round.
        pos_a, own_a = gather_segments(
            self.store.conf_start[t1c], self.store.conf_len[t1c]
        )
        pos_b, own_b = gather_segments(
            self.store.conf_start[t2c], self.store.conf_len[t2c]
        )
        vals = np.concatenate([self.pool.buf[pos_a], self.pool.buf[pos_b]])
        owner = np.concatenate([own_a, own_b])
        keep = vals > pc[owner]
        for j in range(self.d - 1):
            keep &= vals != rc[owner, j]
        vals, owner = vals[keep], owner[keep]
        # Group by owner, ascending and unique within each group: one
        # radix sort of the fused (owner, rank) key (owner < K <= n and
        # rank < n, so owner*n + rank is collision-free in int64),
        # then adjacent-equal dedupe on the key itself.
        fused = owner * np.int64(self.n) + vals
        fused.sort(kind="stable")
        if fused.shape[0]:
            keep2 = np.ones(fused.shape[0], dtype=bool)
            np.not_equal(fused[1:], fused[:-1], out=keep2[1:])
            fused = fused[keep2]
        owner, vals = np.divmod(fused, np.int64(self.n))
        blocks = np.bincount(owner, minlength=k)
        # repro: shape: vals=(M,):int64, owner=(M,):int64, blocks=(K,):int64
        observe("repro.hull.soa.SoAHullEngine._candidates",
                vals=vals, owner=owner, blocks=blocks)

        fid0 = self._create_block(
            new_idx, vals, owner, blocks,
            support=np.stack([t1c, t2c], axis=1), pivot_point=pc,
        )
        self.store.alive[t1c] = False
        self.counters.facets_replaced += k
        self.events.append(rec)

        # Scalar-equivalent work/span: the round's sweep is one batched
        # task over the cleaned blocks, chained on the previous round so
        # the tracker's depth realises the round structure.
        if int(blocks.sum()):
            deps = () if self._last_tid is None else (self._last_tid,)
            self._last_tid = self.tracker.add_batched_sweep(
                list(map(int, blocks)), deps=deps
            )

        # Children: the creation ridge is immediately ready against t2;
        # the other d-1 ridges of each new facet (all containing its
        # pivot) go through the pairing pool.
        new_fids = fid0 + np.arange(k, dtype=np.int64)
        pcol = np.argmax(new_idx == pc[:, None], axis=1)
        loo_rows = new_idx[:, self._loo]              # (K, d, d-1)
        sel = np.ones((k, self.d), dtype=bool)
        sel[np.arange(k), pcol] = False
        reg_rows = loo_rows[sel]                      # (K*(d-1), d-1)
        reg_fids = np.repeat(new_fids, self.d - 1)
        m_t1, m_t2, m_rows = self._pair_ridges(reg_rows, reg_fids, t1_first=False)

        self._fr_t1 = np.concatenate([new_fids, m_t1])
        self._fr_t2 = np.concatenate([t2c, m_t2])
        self._fr_rows = np.concatenate([rc, m_rows], axis=0)
        self.round += 1
        return True

    # -- chaos checkpointing -----------------------------------------------

    def snapshot(self) -> dict:
        """Byte-exact state capture: arrays are copied, counters and
        stats snapshotted, tracker/factory marks recorded."""
        return {
            "store": self.store.snapshot(),
            "pool": (self.pool.view().copy(), self.pool.end),
            "frontier": (self._fr_t1.copy(), self._fr_t2.copy(),
                         self._fr_rows.copy()),
            "pending": (self._pend_rows.copy(), self._pend_fids.copy(),
                        self._pend_seq.copy()),
            "reg_seq": self._reg_seq,
            "round": self.round,
            "counters": self.counters.as_dict(),
            "stats": copy.deepcopy(self.stats),
            "events": len(self.events),
            "exact_planes": dict(self._exact_planes),
            "tracker_mark": self.tracker.checkpoint(),
            "last_tid": self._last_tid,
            "fid_mark": None if self.factory is None
            else self.factory.fid_checkpoint(),
        }

    def restore(self, snap: dict) -> None:
        """Rewind to a :meth:`snapshot` (the chaos-rollback contract:
        a rolled-back round leaves no trace, including work accounting
        and fid allocation)."""
        self.store.restore(snap["store"])
        buf, end = snap["pool"]
        self.pool.end = 0
        self.pool.extend(buf)
        if self.pool.end != end:
            raise AssertionError("conflict pool restore size mismatch")
        self._fr_t1, self._fr_t2, self._fr_rows = (
            snap["frontier"][0].copy(), snap["frontier"][1].copy(),
            snap["frontier"][2].copy(),
        )
        self._pend_rows, self._pend_fids, self._pend_seq = (
            snap["pending"][0].copy(), snap["pending"][1].copy(),
            snap["pending"][2].copy(),
        )
        self._reg_seq = snap["reg_seq"]
        self.round = snap["round"]
        self.counters.restore(snap["counters"])
        self.stats = copy.deepcopy(snap["stats"])
        del self.events[snap["events"]:]
        self._exact_planes = dict(snap["exact_planes"])
        self.tracker.rollback(snap["tracker_mark"])
        self._last_tid = snap["last_tid"]
        if self.factory is not None:
            self.factory.fid_rollback(snap["fid_mark"])
        self._finished = False

    # -- termination -------------------------------------------------------

    def _kernel_snapshot(self) -> dict:
        if self.factory is not None:
            snap = self.factory.kernel_snapshot()
            snap["engine"] = "soa"
            return snap
        snap = {"kernel": "soa[batch]", "engine": "soa"}
        snap.update(self.kstats.snapshot())
        return snap

    def finish(self) -> SoAHullRun:
        """Materialize the result (idempotent once the frontier is
        empty; alive facets become regular Facet objects)."""
        self._finished = True
        self.stats.kernel_stats = self._kernel_snapshot()
        nf = self.store.size
        alive_fids = np.nonzero(self.store.alive[:nf])[0]
        facets = list(map(self._facet_of, alive_fids.tolist()))
        return SoAHullRun(
            points=self.pts,
            order=self.order,
            facets=facets,
            counters=self.counters,
            exec_stats=self.stats,
            tracker=self.tracker,
            interior=self.interior,
            base_size=self.base_size,
            created_indices=self.store.indices[:nf].copy(),
            created_normals=self.store.normals[:nf].copy(),
            created_alive=self.store.alive[:nf].copy(),
            support=self.store.support[:nf].copy(),
            pivot_points=self.store.pivot_point[:nf].copy(),
            rounds_created=self.store.round_created[:nf].copy(),
            conflict_lens=self.store.conf_len[:nf].copy(),
            conflict_pool=self.pool.view().copy(),
            engine=self,
        )


def soa_hull(
    points: np.ndarray,
    order: np.ndarray | None = None,
    seed: int | None = None,
    kernel: str | NoisyKernel = "batch",
    base_size: int | None = None,
) -> SoAHullRun:
    """Run the conflict-list SoA engine to completion.

    Same facet sets, conflict sets, certificates, and intrinsic
    counters as :func:`~repro.hull.sequential.sequential_hull` on the
    same ``(points, order)`` -- the differential suite pins this --
    but each round is a handful of NumPy sweeps instead of a per-facet
    Python loop.
    """
    eng = SoAHullEngine(
        points, order=order, seed=seed, kernel=kernel, base_size=base_size
    )
    while eng.step_round():
        pass
    return eng.finish()
