"""Algorithm 3: the parallel randomized incremental convex hull.

The algorithm runs the *same* computation as the sequential Algorithm 2
-- same facets created, same visibility tests -- but drives it from
ridges instead of points.  A ``ProcessRidge(t1, r, t2)`` call inspects
the conflict pivots of the two facets sharing ridge ``r`` and takes one
of the paper's four actions:

1. both conflict sets empty  -> the ridge is *final* (on the output hull);
2. equal pivots              -> both facets are *buried* by that pivot;
3. pivot of ``t2`` earlier   -> flip and re-dispatch (symmetry);
4. pivot ``p`` of ``t1`` earlier -> ``{t1, t2}`` supports the new facet
   ``t = r + p`` (Fact 5.2): create it, *replace* ``t1``, and recurse on
   the ridges of ``t`` -- the creation ridge directly against ``t2``,
   every other ridge through the multimap ``M`` (the second facet to
   register on a ridge becomes responsible for it).

Everything is recorded into a :class:`ParallelHullRun`: the support DAG
(the configuration dependence graph of Definition 4.1 restricted to
created facets), per-facet rounds, counters, and a work-span task log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..geometry.hyperplane import Hyperplane
from ..geometry.noisy import NoisyKernel
from ..geometry.simplex import Facet, Ridge, facet_ridges
from ..runtime.executors import ExecutionStats, RoundExecutor, SerialExecutor, ThreadExecutor
from ..runtime.faults import FaultPlan
from ..runtime.multimap import CASMultimap, DictMultimap, TASMultimap
from ..runtime.procexec import ChunkQuarantined, ExecutorBrokenError, ProcessExecutor
from ..runtime.workspan import WorkSpanTracker
from .common import (
    Counters,
    FacetFactory,
    HullSetupError,
    initial_simplex_ranks,
    prepare_points,
    promote_initial,
)
from .sequential import sequential_hull

__all__ = ["RidgeTask", "Event", "ParallelHullRun", "parallel_hull", "space_accounting"]

_INF = np.iinfo(np.int64).max


def _eval_ridge_item(arrays: dict, item: tuple) -> tuple:
    """Pure compute kernel for one case-4 ridge, run inside a
    :class:`~repro.runtime.procexec.ProcessExecutor` worker (or on the
    thread/serial rungs of the degradation ladder).

    ``item`` is ``(facet_indices, p, c1, c2)``: the new facet's defining
    ranks, the conflict pivot, and the two support facets' conflict
    arrays.  Returns ``(visible_conflicts, n_tests, n_merged)`` -- the
    surviving conflict set plus the scalar-equivalent work numbers the
    parent re-counts, so a supervised run is facet- and counter-
    identical to a serial one.  Module-level (not a closure) so the
    spawn start method can import it by reference; everything it reads
    arrives via ``arrays`` (shared memory) or ``item`` (the message).
    """
    from .common import FacetFactory  # deferred: keep worker imports lazy

    idx, p, c1, c2 = item
    pts = arrays["pts"]
    interior = arrays["interior"]
    d = pts.shape[1]
    merged = FacetFactory.merge_candidates(
        np.asarray(c1, dtype=np.int64), np.asarray(c2, dtype=np.int64), above=p
    )
    idx = tuple(sorted(int(i) for i in idx))
    combo = tuple(range(d + 1))
    plane = Hyperplane.through(
        pts[list(idx)], interior, indices=idx,
        ref_combo=(pts[list(combo)], combo),
    )
    cleaned = merged
    if cleaned.size:
        keep = np.ones(cleaned.shape[0], dtype=bool)
        for i in idx:
            keep &= cleaned != i
        cleaned = cleaned[keep]
    mask = (plane.visible_mask(pts[cleaned], indices=cleaned)
            if cleaned.size else np.zeros(0, dtype=bool))
    visible = cleaned[mask] if cleaned.size else cleaned
    return (visible, int(cleaned.size), int(merged.size))


@dataclass(frozen=True)
class RidgeTask:
    """One pending ``ProcessRidge(t1, r, t2)`` call."""

    t1: Facet
    ridge: Ridge
    t2: Facet
    tracker_tid: int  # work-span task id of this call


@dataclass(frozen=True)
class Event:
    """Trace record (consumed by the Figure 1 walkthrough and tests).

    ``kind`` is one of ``"final" | "bury" | "create"``; for ``create``,
    ``created`` is the new facet id and ``removed`` the replaced one;
    for ``bury`` both buried ids are in ``removed_pair``.
    """

    kind: str
    round: int
    ridge: Ridge
    created: int = -1
    removed: int = -1
    removed_pair: tuple[int, int] = (-1, -1)
    pivot: int = -1


@dataclass
class ParallelHullRun:
    """Full instrumented outcome of a parallel hull run."""

    points: np.ndarray
    order: np.ndarray
    facets: list[Facet]                    # alive facets (the hull)
    created: list[Facet]                   # every facet ever created, by fid
    support: dict[int, tuple[int, int]]    # fid -> (t1.fid, t2.fid) support pair
    pivots: dict[int, int]                 # fid -> conflict pivot that created it
    rounds: dict[int, int]                 # fid -> execution round of creation
    events: list[Event]
    counters: Counters
    exec_stats: ExecutionStats
    tracker: WorkSpanTracker
    interior: np.ndarray
    base_size: int

    @property
    def dimension(self) -> int:
        return int(self.points.shape[1])

    def vertex_ranks(self) -> set[int]:
        return {i for f in self.facets for i in f.indices}

    def vertex_indices(self) -> set[int]:
        return {int(self.order[i]) for i in self.vertex_ranks()}

    def facet_keys(self) -> set:
        return {f.key() for f in self.facets}

    def created_keys(self) -> set:
        return {f.key() for f in self.created}

    def dependence_depth(self) -> int:
        """Longest path in the configuration dependence graph
        (Definition 4.1): base facets have depth 0; a created facet sits
        one level below the deeper of its two support facets.  Facet ids
        ascend along support edges, so a single pass suffices."""
        depth: dict[int, int] = {}
        best = 0
        for f in self.created:
            sup = self.support.get(f.fid)
            d = 0 if sup is None else 1 + max(depth[sup[0]], depth[sup[1]])
            depth[f.fid] = d
            best = max(best, d)
        return best

    def depth_profile(self) -> dict[int, int]:
        """Histogram: dependence depth -> number of facets at it."""
        depth: dict[int, int] = {}
        hist: dict[int, int] = {}
        for f in self.created:
            sup = self.support.get(f.fid)
            d = 0 if sup is None else 1 + max(depth[sup[0]], depth[sup[1]])
            depth[f.fid] = d
            hist[d] = hist.get(d, 0) + 1
        return hist


def _build_base_hull(
    pts: np.ndarray,
    base_size: int,
    factory: FacetFactory,
) -> list[Facet]:
    """Facets of the hull of the first ``base_size`` ranks, with
    conflict sets over all later points.

    One ``make_batch`` call either way: under ``kernel="batch"`` the
    whole (base-facet x later-point) block -- the largest single
    conflict computation of the run -- is one einsum sweep."""
    n, d = pts.shape
    later = np.arange(base_size, n, dtype=np.int64)
    if base_size == d + 1:
        first = list(range(d + 1))
        return factory.make_batch([
            (tuple(i for i in first if i != leave_out), later)
            for leave_out in first
        ])
    # Larger bootstrap (e.g. the Figure 1 walkthrough): build the prefix
    # hull sequentially, then re-issue its facets with full conflict sets.
    prefix = sequential_hull(pts[:base_size], order=np.arange(base_size))
    return factory.make_batch([(f.indices, later) for f in prefix.facets])


def _soa_parallel_run(
    points: np.ndarray,
    order: np.ndarray | None,
    seed: int | None,
    base_size: int | None,
    kernel: str | NoisyKernel,
) -> ParallelHullRun:
    """Run the conflict-list SoA engine and adapt its column state into
    a full :class:`ParallelHullRun` (facets, support DAG, events).

    The adapter materializes every created facet as a ``Facet`` object
    (plane construction per facet, no visibility work), so it costs more
    than :func:`repro.hull.soa.soa_hull` -- use that entry point when
    only the hull and counters are needed.  Determinism makes the
    adapted run facet- and conflict-identical to the object driver;
    events are emitted in (round, frontier-position) order with the
    object driver's round numbering (the bootstrap frontier is round 0).
    """
    from .soa import SoAHullEngine  # local: soa imports this module's peers

    eng = SoAHullEngine(
        points, order=order, seed=seed, kernel=kernel, base_size=base_size
    )
    while eng.step_round():
        pass
    run = eng.finish()

    created = [eng._facet_of(fid) for fid in range(eng.store.size)]
    support = {
        fid: (int(s[0]), int(s[1]))
        for fid, s in enumerate(run.support) if s[0] >= 0
    }
    pivots = {
        fid: int(p) for fid, p in enumerate(run.pivot_points) if p >= 0
    }
    rounds = {
        fid: max(0, int(r) - 1) for fid, r in enumerate(run.rounds_created)
    }
    events: list[Event] = []
    for rec in eng.events:
        rnd = rec["round"] - 1
        items: list[tuple[int, Event]] = []
        for pos, row in zip(rec["final_pos"], rec["final_rows"]):
            items.append((int(pos), Event(
                kind="final", round=rnd,
                ridge=frozenset(int(x) for x in row),
            )))
        for pos, row, pair, piv in zip(
            rec["bury_pos"], rec["bury_rows"], rec["bury_pairs"], rec["bury_piv"]
        ):
            items.append((int(pos), Event(
                kind="bury", round=rnd,
                ridge=frozenset(int(x) for x in row),
                removed_pair=(int(pair[0]), int(pair[1])), pivot=int(piv),
            )))
        fid0 = int(rec["create_fid0"])
        for k, (pos, row, rem, piv) in enumerate(zip(
            rec["create_pos"], rec["create_rows"],
            rec["create_removed"], rec["create_piv"],
        )):
            items.append((int(pos), Event(
                kind="create", round=rnd,
                ridge=frozenset(int(x) for x in row),
                created=fid0 + k, removed=int(rem), pivot=int(piv),
            )))
        items.sort(key=lambda t: t[0])
        events.extend(e for _, e in items)

    return ParallelHullRun(
        points=run.points,
        order=run.order,
        facets=[f for f in created if f.alive],
        created=created,
        support=support,
        pivots=pivots,
        rounds=rounds,
        events=events,
        counters=run.counters,
        exec_stats=run.exec_stats,
        tracker=run.tracker,
        interior=run.interior,
        base_size=run.base_size,
    )


def parallel_hull(
    points: np.ndarray,
    order: np.ndarray | None = None,
    seed: int | None = None,
    executor: SerialExecutor | RoundExecutor | ThreadExecutor | ProcessExecutor | None = None,
    multimap: str = "dict",
    base_size: int | None = None,
    fault_plan: FaultPlan | None = None,
    kernel: str | NoisyKernel = "scalar",
    engine: str = "objects",
) -> ParallelHullRun:
    """Run Algorithm 3 on ``points``.

    Parameters
    ----------
    points, order, seed:
        As in :func:`repro.hull.sequential.sequential_hull`; the same
        ``order`` makes the two algorithms comparable facet-for-facet.
    executor:
        Execution discipline (default :class:`RoundExecutor`, whose
        round count realises the dependence-depth bound).  A
        :class:`~repro.runtime.procexec.ProcessExecutor` runs the
        supervised multiprocess round loop: visibility sweeps fan out
        to worker processes over shared-memory arrays, and the parent
        applies results transactionally so the committed run is
        bit-identical to the serial one.  The executor is started and
        closed by this call (segments are released on every exit path).
    multimap:
        ``"dict"`` (sequential reference, only valid with deterministic
        executors), ``"cas"`` (Algorithm 4) or ``"tas"`` (Algorithm 5).
    base_size:
        Bootstrap hull size; defaults to ``d + 1`` per the paper.
    fault_plan:
        When given (with a :class:`RoundExecutor`), run the round loop
        under fault injection: every round is checkpointed (frontier,
        multimap, engine state), crash faults abort a ``ProcessRidge``
        call after its work but before its children commit, and the
        round rolls back to its checkpoint and resumes.  Delay faults
        defer a task to the next round.  The surviving hull is
        bit-identical in facet structure to the fault-free run; the
        retry/rollback counters land in ``exec_stats``.  For thread
        chaos use :class:`repro.runtime.chaos.ChaosThreadExecutor`
        directly.
    kernel:
        Visibility engine, ``"scalar"`` (the default oracle) or
        ``"batch"`` (einsum sweeps over facet x candidate blocks with
        the exact-filter fallback, plus the per-run sign cache of
        :mod:`repro.geometry.kernels` -- under chaos rollbacks a
        re-created facet reuses its previously decided signs).  The
        kernel's sweep/fallback/cache counters land in
        ``exec_stats.kernel_stats``; ``counters`` and the work-span log
        stay kernel-invariant (scalar-equivalent accounting).  A
        :class:`~repro.geometry.noisy.NoisyKernel` runs its base engine
        and perturbs each visibility decision at its seeded flip rate
        (with majority-vote repair); not combinable with
        :class:`ProcessExecutor`, whose workers evaluate sweeps outside
        the factory the noise hooks into.
    engine:
        ``"objects"`` (this module's per-facet task driver) or
        ``"soa"`` (the round-vectorized conflict-list engine of
        :mod:`repro.hull.soa`, adapted back into a
        :class:`ParallelHullRun`).  The SoA engine is round-synchronous
        by construction, so it accepts only the default execution
        discipline: no custom executor/multimap and no fault plan
        (chaos-test the SoA core through its own snapshot/restore API).
        ``kernel`` keeps its meaning: ``"batch"`` runs the flat
        one-sweep-per-round fast path, ``"scalar"`` routes facet
        creation through the shared ``FacetFactory`` oracle; the
        produced run is facet- and conflict-identical either way.
    """
    if engine == "soa":
        if executor is not None and not isinstance(executor, RoundExecutor):
            raise ValueError(
                "engine='soa' is round-synchronous by construction; pass "
                "executor=None (or a plain RoundExecutor)"
            )
        if multimap != "dict":
            raise ValueError(
                "engine='soa' pairs ridges by sort, not a shared multimap; "
                "multimap must stay 'dict'"
            )
        if fault_plan is not None:
            raise ValueError(
                "engine='soa' does not take a fault_plan; drive faults "
                "through SoAHullEngine.snapshot()/restore() instead"
            )
        return _soa_parallel_run(points, order, seed, base_size, kernel)
    if engine != "objects":
        raise ValueError(f"unknown engine {engine!r}; use 'objects' or 'soa'")
    pts, order = prepare_points(points, order, seed)
    n, d = pts.shape
    if base_size is None:
        base_size = d + 1
    if base_size < d + 1:
        raise HullSetupError(f"base_size must be >= d+1 = {d + 1}")
    init = initial_simplex_ranks(pts)
    pts, order = promote_initial(pts, order, init)

    counters = Counters()
    interior = pts[: d + 1].mean(axis=0)
    factory = FacetFactory(pts, interior, counters, kernel=kernel)
    # The engine actually running underneath (a NoisyKernel names its
    # base); the work-span bootstrap below keys off this so a p=0 noisy
    # run logs the exact same DAG as its unwrapped counterpart.
    kernel_name = factory.kernel
    tracker = WorkSpanTracker()

    if executor is None:
        executor = RoundExecutor()
    if factory.noisy is not None and isinstance(executor, ProcessExecutor):
        raise ValueError(
            "NoisyKernel is not supported under ProcessExecutor: worker "
            "processes sweep conflicts outside the FacetFactory the noise "
            "wraps, so flips would silently not apply; use a serial, "
            "round, or thread executor"
        )
    if multimap == "dict":
        if isinstance(executor, ThreadExecutor):
            raise ValueError("the dict multimap is not safe under ThreadExecutor; "
                             "use multimap='cas' or 'tas'")
        M = DictMultimap()
    elif multimap == "cas":
        M = CASMultimap(capacity=max(64, 8 * n * (d + 1)))
    elif multimap == "tas":
        M = TASMultimap(capacity=max(64, 8 * n * (d + 1)))
    else:
        raise ValueError(f"unknown multimap kind {multimap!r}")

    base_facets = _build_base_hull(pts, base_size, factory)

    created: list[Facet] = list(base_facets)
    support: dict[int, tuple[int, int]] = {}
    pivots: dict[int, int] = {}
    rounds: dict[int, int] = {f.fid: 0 for f in base_facets}
    creator_tid: dict[int, int] = {}
    events: list[Event] = []
    facets_by_fid: dict[int, Facet] = {f.fid: f for f in base_facets}

    import math

    def _logcost(w: int) -> int:
        return max(1, int(math.log2(w + 2)))

    if kernel_name == "batch":
        # The base bootstrap ran as ONE batched sweep; log it as one
        # task at its scalar-equivalent work (sum of the per-facet
        # blocks) so W is identical to the scalar run's, with the
        # sweep's internally-parallel span (log of the widest block).
        block = max(1, n - base_size)
        sweep_tid = tracker.add_batched_sweep([block] * len(base_facets))
        for f in base_facets:
            creator_tid[f.fid] = sweep_tid
    else:
        for f in base_facets:
            cost = max(1, n - base_size)
            creator_tid[f.fid] = tracker.add_task(cost=cost, span_cost=_logcost(cost))

    # Seed: one ProcessRidge per ridge of the base hull (Lines 5-6).
    ridge_pairs: dict[Ridge, list[Facet]] = {}
    for f in base_facets:
        for r in facet_ridges(f.indices):
            ridge_pairs.setdefault(r, []).append(f)
    initial_tasks: list[RidgeTask] = []
    for r, pair in sorted(ridge_pairs.items(), key=lambda kv: sorted(kv[0])):
        if len(pair) != 2:
            raise AssertionError(f"base-hull ridge {set(r)} has {len(pair)} facets")
        t1, t2 = pair
        tid = tracker.add_task(
            cost=1, deps=(creator_tid[t1.fid], creator_tid[t2.fid])
        )
        initial_tasks.append(RidgeTask(t1=t1, ridge=r, t2=t2, tracker_tid=tid))

    round_counter = {"round": 0}

    # Round-transaction checkpointing, shared by the fault-injected
    # round loop and the supervised process loop: a checkpoint captures
    # everything a round can mutate, and restore() rewinds to it so a
    # failed round attempt leaves no trace (crash consistency).
    def take_checkpoint(frontier: list[RidgeTask]) -> dict:
        return {
            "frontier": list(frontier),
            "created": list(created),
            "support": dict(support),
            "pivots": dict(pivots),
            "rounds": dict(rounds),
            "creator_tid": dict(creator_tid),
            "events": len(events),
            "facets_by_fid": dict(facets_by_fid),
            "alive": {fid: f.alive for fid, f in facets_by_fid.items()},
            "counters": counters.as_dict(),
            "fid_mark": factory.fid_checkpoint(),
            "tracker_mark": tracker.checkpoint(),
            "multimap": M.snapshot(),
        }

    def restore(ckpt: dict) -> list[RidgeTask]:
        created[:] = ckpt["created"]
        support.clear(); support.update(ckpt["support"])
        pivots.clear(); pivots.update(ckpt["pivots"])
        rounds.clear(); rounds.update(ckpt["rounds"])
        creator_tid.clear(); creator_tid.update(ckpt["creator_tid"])
        del events[ckpt["events"]:]
        facets_by_fid.clear(); facets_by_fid.update(ckpt["facets_by_fid"])
        for fid, was_alive in ckpt["alive"].items():
            facets_by_fid[fid].alive = was_alive
        counters.restore(ckpt["counters"])
        factory.fid_rollback(ckpt["fid_mark"])
        tracker.rollback(ckpt["tracker_mark"])
        M.restore(ckpt["multimap"])
        return list(ckpt["frontier"])

    def process(task: RidgeTask) -> Sequence[RidgeTask]:
        t1, r, t2 = task.t1, task.ridge, task.t2
        counters.ridges_processed += 1
        rnd = round_counter["round"]
        b1 = t1.pivot if t1.conflicts.size else _INF
        b2 = t2.pivot if t2.conflicts.size else _INF

        # Case 1: no conflicts on either side -- the ridge is final.
        if b1 == _INF and b2 == _INF:
            events.append(Event(kind="final", round=rnd, ridge=r))
            return ()
        # Case 2: equal pivots -- the pivot buries both facets.
        if b1 == b2:
            t1.alive = False
            t2.alive = False
            counters.facets_buried += 2
            events.append(
                Event(kind="bury", round=rnd, ridge=r,
                      removed_pair=(t1.fid, t2.fid), pivot=int(b1))
            )
            return ()
        # Case 3: symmetry flip (Line 11-12).
        if b2 < b1:
            t1, t2 = t2, t1
            b1, b2 = b2, b1
            counters.flips += 1
        # Case 4: {t1, t2} supports the facet t = r + p with p = min C(t1).
        p = int(b1)
        candidates = FacetFactory.merge_candidates(t1.conflicts, t2.conflicts, above=p)
        t = factory.make(tuple(r | {p}), candidates)
        support[t.fid] = (t1.fid, t2.fid)
        pivots[t.fid] = p
        rounds[t.fid] = rnd
        creator_tid[t.fid] = task.tracker_tid
        created.append(t)
        facets_by_fid[t.fid] = t
        t1.alive = False
        counters.facets_replaced += 1
        events.append(
            Event(kind="create", round=rnd, ridge=r,
                  created=t.fid, removed=t1.fid, pivot=p)
        )

        children: list[RidgeTask] = []
        for r2 in facet_ridges(t.indices):
            if r2 == r:
                # The creation ridge is immediately ready against t2.
                tid = tracker.add_task(
                    cost=len(candidates) + 1,
                    deps=(creator_tid[t.fid], creator_tid[t2.fid]),
                    span_cost=_logcost(len(candidates)),
                )
                children.append(RidgeTask(t1=t, ridge=r2, t2=t2, tracker_tid=tid))
            elif not M.insert_and_set(r2, t):
                t_other = M.get_value(r2, t)
                tid = tracker.add_task(
                    cost=len(candidates) + 1,
                    deps=(creator_tid[t.fid], creator_tid[t_other.fid]),
                    span_cost=_logcost(len(candidates)),
                )
                children.append(
                    RidgeTask(t1=t, ridge=r2, t2=t_other, tracker_tid=tid)
                )
        return children

    def run_rounds() -> ExecutionStats:
        # Run the round loop inline so the trace can stamp each event
        # with its synchronous round number.
        stats = ExecutionStats()
        frontier: list[RidgeTask] = list(initial_tasks)
        rng = getattr(executor, "_rng", None)
        while frontier:
            if rng is not None:
                idx = rng.permutation(len(frontier))
                frontier = [frontier[i] for i in idx]
            stats.rounds += 1
            stats.round_sizes.append(len(frontier))
            nxt: list[RidgeTask] = []
            for task in frontier:
                stats.tasks_executed += 1
                nxt.extend(process(task))
            frontier = nxt
            round_counter["round"] += 1
        return stats

    def run_rounds_chaotic(plan: FaultPlan) -> ExecutionStats:
        # The fault-injected round loop: each round is a transaction.
        # A crash fault kills a ProcessRidge call *after* its work
        # (facet creation, multimap registration, counters) but before
        # its children commit -- at-least-once semantics -- so the round
        # rolls back to its checkpoint and re-executes.  Faults are
        # one-shot per ridge site, which bounds rollbacks by the number
        # of distinct fault sites and guarantees termination.
        stats = ExecutionStats()
        frontier: list[RidgeTask] = list(initial_tasks)
        rng = getattr(executor, "_rng", None)

        def site_of(task: RidgeTask) -> str:
            return "ridge:" + "-".join(str(i) for i in sorted(task.ridge))

        while frontier:
            if rng is not None:
                idx = rng.permutation(len(frontier))
                frontier = [frontier[i] for i in idx]
            ckpt = take_checkpoint(frontier)
            stats.checkpoints += 1
            nxt: list[RidgeTask] = []
            executed_this_attempt = 0
            aborted = False
            for task in frontier:
                site = site_of(task)
                if plan.should_delay(site):
                    stats.tasks_delayed += 1
                    nxt.append(task)  # deferred, not lost: next round
                    continue
                stats.tasks_executed += 1
                executed_this_attempt += 1
                children = process(task)
                if plan.should_crash(site):
                    stats.tasks_aborted += 1
                    aborted = True
                    break
                nxt.extend(children)
            if aborted:
                frontier = restore(ckpt)
                stats.rollbacks += 1
                stats.retries += executed_this_attempt
                continue
            stats.rounds += 1
            stats.round_sizes.append(len(frontier))
            frontier = nxt
            round_counter["round"] += 1
        return stats

    def run_rounds_supervised(pexec: ProcessExecutor) -> ExecutionStats:
        # Round-synchronous execution with the heavy work (conflict
        # merging + visibility sweeps) fanned out to supervised worker
        # processes over shared-memory arrays.  Each round is a
        # three-phase transaction:
        #
        #   A. classify -- pure reads of round-start state decide every
        #      ridge's case and build the case-4 payloads;
        #   B. evaluate -- workers compute conflict sets (faults, kills,
        #      retries, and the process->thread->serial ladder all live
        #      here; no parent state is touched);
        #   C. apply -- the parent replays the exact bookkeeping of
        #      process() in frontier order against a round checkpoint.
        #
        # Because B is pure and C is all-or-nothing, a worker dying
        # mid-round (or the whole pool degrading) can never leave the
        # run half-mutated, and the committed run is bit-identical to
        # the serial RoundExecutor run: same facets, fids, events,
        # counters, and work-span DAG.
        stats = pexec.stats
        arrays = {"pts": pts, "interior": interior}
        rung = {"now": "process"}

        def eval_items(items: list) -> list:
            if not items:
                return []
            n_chunks = max(
                1, min(len(items), pexec.n_workers * pexec.chunks_per_worker)
            )
            bounds = np.linspace(0, len(items), n_chunks + 1).astype(int)
            chunks = [items[bounds[i]:bounds[i + 1]] for i in range(n_chunks)
                      if bounds[i + 1] > bounds[i]]
            if rung["now"] == "process":
                try:
                    if not pexec.started:
                        pexec.start(arrays, _eval_ridge_item)
                    out = pexec.run_round(chunks)
                    return [r for chunk in out for r in chunk]
                except (ChunkQuarantined, ExecutorBrokenError) as exc:
                    rung["now"] = "thread"
                    stats.escalations.append(
                        f"process->thread: {type(exc).__name__}: {exc}"
                    )
                    pexec.close()
            if rung["now"] == "thread":
                try:
                    results: list = [None] * len(chunks)

                    def step(i: int):
                        results[i] = [_eval_ridge_item(arrays, it)
                                      for it in chunks[i]]
                        return ()

                    ThreadExecutor(max(1, pexec.n_workers)).run(
                        list(range(len(chunks))), step
                    )
                    if any(r is None for r in results):
                        raise RuntimeError("thread rung lost a chunk")
                    return [r for chunk in results for r in chunk]
                except Exception as exc:
                    rung["now"] = "serial"
                    stats.escalations.append(
                        f"thread->serial: {type(exc).__name__}: {exc}"
                    )
            return [_eval_ridge_item(arrays, it) for it in items]

        frontier: list[RidgeTask] = list(initial_tasks)
        try:
            while frontier:
                # Phase A: classify.  Conflict arrays are immutable and
                # ready calls touch disjoint support pairs, so reading
                # all of round-start state up front matches serial
                # semantics exactly.
                decisions: list[tuple] = []
                items: list[tuple] = []
                for task in frontier:
                    t1, r, t2 = task.t1, task.ridge, task.t2
                    b1 = t1.pivot if t1.conflicts.size else _INF
                    b2 = t2.pivot if t2.conflicts.size else _INF
                    if b1 == _INF and b2 == _INF:
                        decisions.append(("final", t1, t2, -1, False))
                        continue
                    if b1 == b2:
                        decisions.append(("bury", t1, t2, int(b1), False))
                        continue
                    flipped = b2 < b1
                    if flipped:
                        t1, t2 = t2, t1
                        b1 = b2
                    p = int(b1)
                    items.append(
                        (tuple(sorted(r | {p})), p, t1.conflicts, t2.conflicts)
                    )
                    decisions.append(("create", t1, t2, p, flipped))

                # Phase B: evaluate (pure; all fault handling inside).
                results = eval_items(items)

                # Phase C: apply transactionally.
                ckpt = take_checkpoint(frontier)
                stats.checkpoints += 1
                try:
                    rnd = round_counter["round"]
                    stats.rounds += 1
                    stats.round_sizes.append(len(frontier))
                    nxt: list[RidgeTask] = []
                    k = 0
                    for task, dec in zip(frontier, decisions):
                        stats.tasks_executed += 1
                        counters.ridges_processed += 1
                        kind, t1, t2, p, flipped = dec
                        r = task.ridge
                        if kind == "final":
                            events.append(Event(kind="final", round=rnd, ridge=r))
                            continue
                        if kind == "bury":
                            t1.alive = False
                            t2.alive = False
                            counters.facets_buried += 2
                            events.append(
                                Event(kind="bury", round=rnd, ridge=r,
                                      removed_pair=(t1.fid, t2.fid), pivot=p)
                            )
                            continue
                        if flipped:
                            counters.flips += 1
                        conflicts, n_tests, n_merged = results[k]
                        k += 1
                        t = factory.make_precomputed(
                            tuple(r | {p}), conflicts, n_tests
                        )
                        support[t.fid] = (t1.fid, t2.fid)
                        pivots[t.fid] = p
                        rounds[t.fid] = rnd
                        creator_tid[t.fid] = task.tracker_tid
                        created.append(t)
                        facets_by_fid[t.fid] = t
                        t1.alive = False
                        counters.facets_replaced += 1
                        events.append(
                            Event(kind="create", round=rnd, ridge=r,
                                  created=t.fid, removed=t1.fid, pivot=p)
                        )
                        for r2 in facet_ridges(t.indices):
                            if r2 == r:
                                tid = tracker.add_task(
                                    cost=n_merged + 1,
                                    deps=(creator_tid[t.fid], creator_tid[t2.fid]),
                                    span_cost=_logcost(n_merged),
                                )
                                nxt.append(RidgeTask(
                                    t1=t, ridge=r2, t2=t2, tracker_tid=tid
                                ))
                            elif not M.insert_and_set(r2, t):
                                t_other = M.get_value(r2, t)
                                tid = tracker.add_task(
                                    cost=n_merged + 1,
                                    deps=(creator_tid[t.fid],
                                          creator_tid[t_other.fid]),
                                    span_cost=_logcost(n_merged),
                                )
                                nxt.append(RidgeTask(
                                    t1=t, ridge=r2, t2=t_other, tracker_tid=tid
                                ))
                    frontier = nxt
                    round_counter["round"] += 1
                except BaseException:
                    # Crash consistency: an interrupted apply (e.g.
                    # KeyboardInterrupt) rewinds to the round boundary
                    # before propagating, so no half-applied round is
                    # ever observable.
                    frontier = restore(ckpt)
                    stats.rollbacks += 1
                    raise
        finally:
            pexec.close()
        return stats

    if isinstance(executor, RoundExecutor):
        exec_stats = run_rounds() if fault_plan is None else run_rounds_chaotic(fault_plan)
    elif isinstance(executor, ProcessExecutor):
        if fault_plan is not None and executor.plan is None:
            executor.plan = fault_plan
        exec_stats = run_rounds_supervised(executor)
    else:
        if fault_plan is not None:
            raise ValueError(
                "fault_plan requires a RoundExecutor (checkpoint-resume is "
                "round-synchronous) or a ProcessExecutor (worker-level fault "
                "injection); for thread chaos pass a "
                "repro.runtime.chaos.ChaosThreadExecutor as the executor"
            )
        exec_stats = executor.run(initial_tasks, process)

    exec_stats.kernel_stats = factory.kernel_snapshot()
    alive = sorted((f for f in facets_by_fid.values() if f.alive), key=lambda f: f.fid)
    created_sorted = sorted(created, key=lambda f: f.fid)
    return ParallelHullRun(
        points=pts,
        order=order,
        facets=alive,
        created=created_sorted,
        support=support,
        pivots=pivots,
        rounds=rounds,
        events=events,
        counters=counters,
        exec_stats=exec_stats,
        tracker=tracker,
        interior=interior,
        base_size=base_size,
    )


def space_accounting(run: ParallelHullRun) -> dict:
    """Space usage per the paper's Section 5.2 note: the hash tables and
    conflict sets take space proportional to the work.  Returns the
    measured totals so the claim is checkable."""
    total_conflicts = sum(int(f.conflicts.size) for f in run.created)
    return {
        "facets_created": len(run.created),
        "total_conflict_entries": total_conflicts,
        "visibility_tests": run.counters.visibility_tests,
        # Space proportional to work: conflict entries never exceed the
        # tests that produced them.
        "entries_per_test": total_conflicts / max(1, run.counters.visibility_tests),
    }
